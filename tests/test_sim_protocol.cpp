/**
 * @file
 * MESI protocol torture tests: random access storms checked against a
 * functional golden model of coherence state, across seeds, core counts,
 * and cache geometries (TEST_P sweeps).
 *
 * The golden model tracks, per line, which core (if any) may hold it in
 * an owned state and which cores may hold shared copies. After every
 * quiescent point the simulator's actual MESI states are validated
 * against it: an owned line is M/E only at its owner; shared lines are
 * never M/E anywhere; L1 contents are always covered by the inclusive
 * L2. The golden model treats L1/L2 capacity evictions as "may have
 * dropped the line", so it checks one-sided implications that hold
 * regardless of replacement behaviour.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sim/event_queue.hpp"
#include "sim/memory_system.hpp"
#include "util/rng.hpp"

namespace {

using namespace tlp;
using sim::Addr;
using sim::CmpConfig;
using sim::EventQueue;
using sim::MemorySystem;
using sim::Mesi;

/** Functional coherence oracle over the issued access sequence. */
class GoldenModel
{
  public:
    explicit GoldenModel(int cores) : cores_(cores) {}

    void
    onLoad(int core, Addr line)
    {
        auto& state = lines_[line];
        if (state.owner != core)
            state.owner = -1; // any previous owner loses exclusivity
        state.sharers.insert(core);
    }

    void
    onStore(int core, Addr line)
    {
        auto& state = lines_[line];
        state.owner = core;
        state.sharers.clear();
        state.sharers.insert(core);
    }

    /**
     * Validate the simulator's state. For every tracked line:
     *  - a core outside the sharers-since-last-store set must not hold
     *    the line at all (the store's BusRdX invalidated everyone else);
     *  - a Modified copy can only live at the last writer (Exclusive is
     *    weaker: any solitary *loader* may legitimately receive E);
     *  - every valid L1 line is covered by the inclusive L2.
     */
    void
    check(const MemorySystem& memsys) const
    {
        for (const auto& [line, state] : lines_) {
            for (int c = 0; c < cores_; ++c) {
                const Mesi st = memsys.l1(c).state(line);
                if (st == Mesi::Invalid)
                    continue;
                EXPECT_TRUE(state.sharers.count(c))
                    << "core " << c << " holds line 0x" << std::hex
                    << line << " it never accessed since the last store";
                if (st == Mesi::Modified) {
                    EXPECT_EQ(state.owner, c)
                        << "core " << c << " has line 0x" << std::hex
                        << line << " Modified without being the last "
                        << "writer";
                }
                // Inclusion.
                EXPECT_TRUE(memsys.l2().contains(line));
            }
        }
    }

  private:
    struct LineState
    {
        int owner = -1;
        std::set<int> sharers;
    };

    int cores_;
    std::map<Addr, LineState> lines_;
};

/** Drain the queue, routing memory-system events and counting finished
 *  accesses (MemDone for loads, StoreAccept for stores). */
int
pump(EventQueue& queue, MemorySystem& memsys)
{
    int completed = 0;
    queue.run([&](const sim::Event& event) {
        if (memsys.dispatch(event))
            return;
        if (event.kind == sim::EventKind::MemDone ||
            event.kind == sim::EventKind::StoreAccept)
            ++completed;
    });
    return completed;
}

struct TortureParam
{
    std::uint64_t seed;
    int cores;
    int lines;
    double store_fraction;
};

class MesiTorture : public ::testing::TestWithParam<TortureParam>
{
};

TEST_P(MesiTorture, GoldenModelAgreesUnderSerializedAccesses)
{
    // The oracle assumes a known global commit order, so each access is
    // quiesced before the next issues (store buffers and L1-hit fast
    // paths otherwise reorder commits legally). The unserialized case is
    // covered by MesiTortureDeep below with order-independent checks.
    const auto [seed, cores, lines, store_fraction] = GetParam();

    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    MemorySystem memsys(config, cores, 3.2e9, queue, stats);
    GoldenModel golden(cores);
    util::Rng rng(seed);

    constexpr int kOps = 1500;
    constexpr int kCheckEvery = 100;
    int completed = 0;

    for (int i = 0; i < kOps; ++i) {
        const int core = static_cast<int>(rng.below(cores));
        const Addr addr =
            0x40000 + rng.below(static_cast<std::uint64_t>(lines)) * 64;
        const Addr line = memsys.l1(core).lineAddr(addr);

        if (rng.uniform() < store_fraction) {
            memsys.store(core, addr);
            golden.onStore(core, line);
        } else {
            memsys.load(core, addr);
            golden.onLoad(core, line);
        }
        completed += pump(queue, memsys); // serialize with issue order

        if (i % kCheckEvery == kCheckEvery - 1) {
            golden.check(memsys);
            ASSERT_TRUE(memsys.checkCoherence());
        }
    }
    EXPECT_EQ(completed, kOps);
    golden.check(memsys);
    EXPECT_TRUE(memsys.checkCoherence());
}

INSTANTIATE_TEST_SUITE_P(
    Storms, MesiTorture,
    ::testing::Values(
        TortureParam{1, 2, 8, 0.5},     // heavy contention, tiny set
        TortureParam{2, 4, 32, 0.3},    // mixed
        TortureParam{3, 8, 16, 0.7},    // store-heavy
        TortureParam{4, 16, 64, 0.5},   // full chip
        TortureParam{5, 16, 4, 0.5},    // four lines, sixteen cores
        TortureParam{6, 3, 128, 0.1},   // read-mostly
        TortureParam{7, 16, 2048, 0.4}, // capacity evictions in play
        TortureParam{8, 5, 33, 0.45})); // odd sizes

/** Unserialized storm: with deep store buffers and overlapping requests
 *  the commit order is the bus's business, so only order-independent
 *  invariants apply — the single-writer property, inclusion, and the
 *  completion of every request. */
TEST(MesiTortureDeep, LongUncheckedInterleavings)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    MemorySystem memsys(config, 8, 3.2e9, queue, stats);
    util::Rng rng(0xfeed);

    int completed = 0;
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 3000; ++i) {
            const int core = static_cast<int>(rng.below(8));
            const Addr addr = 0x80000 + rng.below(96) * 64;
            if (rng.chance(0.5))
                memsys.store(core, addr);
            else
                memsys.load(core, addr);
        }
        completed += pump(queue, memsys);
        EXPECT_TRUE(memsys.checkCoherence());
    }
    EXPECT_EQ(completed, 15000);
}

/** Writeback path: dirty lines displaced under pressure reappear dirty
 *  in the L2 or memory, never lost. */
TEST(MesiWritebacks, DirtyDataAccountedUnderPressure)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    MemorySystem memsys(config, 2, 3.2e9, queue, stats);
    util::Rng rng(99);

    int completed = 0;
    // Store to many distinct lines mapping over the whole L1, forcing
    // steady dirty evictions.
    for (int i = 0; i < 6000; ++i) {
        const Addr addr = 0x100000 + rng.below(4096) * 64;
        memsys.store(0, addr);
        if (i % 64 == 0)
            completed += pump(queue, memsys);
    }
    completed += pump(queue, memsys);
    EXPECT_EQ(completed, 6000);
    const auto writebacks =
        stats.counterValue("core0.l1d.writebacks");
    EXPECT_GT(writebacks, 1000u);
    // Every writeback landed somewhere: L2 write or memory write.
    EXPECT_GE(stats.counterValue("l2.writes") +
                  stats.counterValue("memory.writes"),
              writebacks);
    EXPECT_TRUE(memsys.checkCoherence());
}

/** The bus serializes: overlapping requests to one line from all cores
 *  leave exactly one owner when the dust settles. */
TEST(MesiSerialization, AllCoresStoreToOneLine)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    MemorySystem memsys(config, 16, 3.2e9, queue, stats);

    for (int c = 0; c < 16; ++c)
        memsys.store(c, 0x7000);
    EXPECT_EQ(pump(queue, memsys), 16);

    int owners = 0, holders = 0;
    for (int c = 0; c < 16; ++c) {
        const Mesi st = memsys.l1(c).state(0x7000);
        holders += st != Mesi::Invalid;
        owners += st == Mesi::Modified;
    }
    EXPECT_EQ(owners, 1);
    EXPECT_EQ(holders, 1);
}

/** Reads from everyone converge to all-Shared. */
TEST(MesiSerialization, AllCoresReadOneLine)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    MemorySystem memsys(config, 16, 3.2e9, queue, stats);

    for (int c = 0; c < 16; ++c)
        memsys.load(c, 0x9000);
    EXPECT_EQ(pump(queue, memsys), 16);

    int shared = 0;
    for (int c = 0; c < 16; ++c)
        shared += memsys.l1(c).state(0x9000) == Mesi::Shared;
    // At least 15 must be Shared (the very first requester may have
    // been alone at grant time and later downgraded -- which also makes
    // it Shared; allow E only if no one else arrived, impossible here).
    EXPECT_EQ(shared, 16);
}

/** Different L2 lines covering the same L1 line halves: the 128 B L2
 *  line back-invalidates both covered 64 B L1 lines on eviction. */
TEST(MesiInclusion, BackInvalidationCoversBothHalves)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    MemorySystem memsys(config, 2, 3.2e9, queue, stats);

    const Addr base = 0x200000;
    // Touch both 64B halves of one 128B L2 line.
    memsys.load(0, base);
    memsys.load(0, base + 64);
    EXPECT_EQ(pump(queue, memsys), 2);
    ASSERT_TRUE(memsys.l1(0).contains(base));
    ASSERT_TRUE(memsys.l1(0).contains(base + 64));

    // Evict that L2 set by loading l2_assoc more lines into it.
    const std::uint64_t stride =
        static_cast<std::uint64_t>(config.l2_line_bytes) *
        memsys.l2().sets();
    for (std::uint64_t i = 1; i <= config.l2_assoc; ++i)
        memsys.load(1, base + i * stride);
    EXPECT_EQ(pump(queue, memsys),
              static_cast<int>(config.l2_assoc));

    EXPECT_FALSE(memsys.l2().contains(base));
    EXPECT_FALSE(memsys.l1(0).contains(base));
    EXPECT_FALSE(memsys.l1(0).contains(base + 64));
    EXPECT_TRUE(memsys.checkCoherence());
}

} // namespace
