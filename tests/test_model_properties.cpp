/**
 * @file
 * Deeper property suites for the analytical model: closed-form
 * cross-checks of Eq. 9, monotonicity sweeps of both scenarios across
 * the (N, eps, technology) grid, and consistency between the power
 * breakdown components.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/analytic_cmp.hpp"
#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using model::AnalyticCmp;
using model::Scenario1;
using model::Scenario2;

/**
 * Closed-form Eq. 9 with the thermal feedback disabled (leakage held at
 * the 100 C anchor): P_N/P1 = [Pd1 k^2/eps + Ps1hot N k s(V,T1)/s(V1,T1)]
 * / [Pd1 + Ps1hot].
 */
double
eq9NoFeedback(const tech::Technology& tech, int n, double eps)
{
    const double f1 = tech.fNominal();
    const double f = f1 / (n * eps);
    double vdd = tech.frequencyLaw().voltageFor(f);
    vdd = std::clamp(vdd, tech.vMin(), tech.vddNominal());
    const double kappa = vdd / tech.vddNominal();
    const double pd1 = tech.dynamicPowerNominal();
    const double dyn = pd1 * kappa * kappa / eps;
    const double stat = n * tech.staticPower(vdd, tech.tHotC());
    return (dyn + stat) / tech.corePowerHot();
}

class Eq9CrossCheck
    : public ::testing::TestWithParam<std::tuple<const char*, int, double>>
{
};

TEST_P(Eq9CrossCheck, ModelMatchesClosedForm)
{
    const auto [node, n, eps] = GetParam();
    const tech::Technology tech = std::string(node) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    if (n * eps < 1.0)
        GTEST_SKIP() << "infeasible point";

    const AnalyticCmp cmp(tech, 32, /*thermal_feedback=*/false);
    const Scenario1 scenario(cmp);
    const auto r = scenario.solve(n, eps);
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.normalized_power, eq9NoFeedback(tech, n, eps),
                0.02 * eq9NoFeedback(tech, n, eps))
        << node << " N=" << n << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Eq9CrossCheck,
    ::testing::Combine(::testing::Values("130nm", "65nm"),
                       ::testing::Values(2, 4, 8, 16, 32),
                       ::testing::Values(0.6, 0.8, 1.0)));

TEST(Eq9Feedback, FeedbackNeverIncreasesScenario1Power)
{
    // Scenario I operating points are cooler than the 100 C anchor, so
    // enabling the temperature-leakage feedback can only reduce power.
    for (const auto& tech : {tech::tech130nm(), tech::tech65nm()}) {
        const AnalyticCmp with(tech, 32, true);
        const AnalyticCmp without(tech, 32, false);
        const Scenario1 s_with(with);
        const Scenario1 s_without(without);
        for (int n : {2, 8, 32}) {
            const auto a = s_with.solve(n, 1.0);
            const auto b = s_without.solve(n, 1.0);
            EXPECT_LE(a.normalized_power, b.normalized_power + 1e-9)
                << tech.name() << " N=" << n;
        }
    }
}

TEST(BreakdownConsistency, ComponentsSumAndStayPositive)
{
    const AnalyticCmp cmp(tech::tech65nm(), 16);
    for (double vdd : {0.4, 0.7, 1.0}) {
        for (double f : {2e8, 1e9, 2.4e9}) {
            if (cmp.technology().frequencyLaw().maxFrequency(vdd) < f)
                continue;
            const auto pb = cmp.evaluate({4, vdd, f});
            EXPECT_GT(pb.dynamic_w, 0.0);
            EXPECT_GT(pb.static_w, 0.0);
            EXPECT_NEAR(pb.total_w, pb.dynamic_w + pb.static_w,
                        1e-6 * pb.total_w);
            EXPECT_GE(pb.avg_active_temp_c,
                      cmp.thermalModel().params().ambient_c - 1e-9);
        }
    }
}

TEST(BreakdownConsistency, DynamicScalesExactlyWithFrequency)
{
    const AnalyticCmp cmp(tech::tech65nm(), 16);
    const auto lo = cmp.evaluate({4, 0.7, 5e8});
    const auto hi = cmp.evaluate({4, 0.7, 1e9});
    EXPECT_NEAR(hi.dynamic_w / lo.dynamic_w, 2.0, 1e-9);
}

class Scenario2Monotonicity
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(Scenario2Monotonicity, SpeedupMonotoneInBudget)
{
    const tech::Technology tech = std::string(GetParam()) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    const AnalyticCmp cmp(tech, 32);
    double prev = 0.0;
    for (double budget_frac : {0.5, 0.75, 1.0, 1.5}) {
        const Scenario2 scenario(cmp,
                                 budget_frac * cmp.singleCorePower());
        const double s = scenario.solve(8, 1.0).speedup;
        EXPECT_GE(s, prev - 1e-6) << "budget x" << budget_frac;
        prev = s;
    }
}

TEST_P(Scenario2Monotonicity, SpeedupMonotoneInEfficiency)
{
    const tech::Technology tech = std::string(GetParam()) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    const AnalyticCmp cmp(tech, 32);
    const Scenario2 scenario(cmp);
    for (int n : {4, 12}) {
        double prev = 0.0;
        for (double eps : {0.3, 0.5, 0.7, 0.9, 1.0}) {
            const double s = scenario.solve(n, eps).speedup;
            EXPECT_GE(s, prev - 1e-6) << "N=" << n << " eps=" << eps;
            prev = s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, Scenario2Monotonicity,
                         ::testing::Values("130nm", "65nm"));

TEST(Scenario2Feasibility, OperatingPointIsOnOrBelowTheAlphaCurve)
{
    const AnalyticCmp cmp(tech::tech65nm(), 32);
    const Scenario2 scenario(cmp);
    for (int n : {1, 2, 4, 8, 16, 32}) {
        const auto r = scenario.solve(n, 1.0);
        if (!r.feasible)
            continue;
        EXPECT_LE(r.freq,
                  cmp.technology().frequencyLaw().maxFrequency(r.vdd) +
                      1e-3 * cmp.technology().fNominal())
            << "N=" << n;
        EXPECT_LE(r.freq, cmp.technology().fNominal() + 1.0);
        EXPECT_GE(r.vdd, cmp.technology().vMin() - 1e-12);
    }
}

TEST(Scenario1VsScenario2, SameChipSameAnchor)
{
    // At N=1 both scenarios describe the same full-throttle core.
    const AnalyticCmp cmp(tech::tech130nm(), 32);
    const Scenario1 s1(cmp);
    const Scenario2 s2(cmp);
    const auto a = s1.solve(1, 1.0);
    const auto b = s2.solve(1, 1.0);
    EXPECT_NEAR(a.power.total_w, b.power.total_w,
                0.03 * a.power.total_w);
    EXPECT_NEAR(a.freq, b.freq, 0.02 * a.freq);
}

TEST(ChipSize, SmallerDieSameScenario1Normalization)
{
    // Normalized Scenario I power is nearly chip-size independent when
    // N fits both dies (the idle tiles only spread heat).
    const AnalyticCmp big(tech::tech65nm(), 32);
    const AnalyticCmp small(tech::tech65nm(), 16);
    const Scenario1 sb(big);
    const Scenario1 ss(small);
    for (int n : {2, 8, 16}) {
        const auto a = sb.solve(n, 0.9);
        const auto b = ss.solve(n, 0.9);
        EXPECT_NEAR(a.normalized_power, b.normalized_power,
                    0.1 * a.normalized_power)
            << "N=" << n;
    }
}

} // namespace
