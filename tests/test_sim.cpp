/**
 * @file
 * Tests for tlp_sim: the event queue, cache arrays, the MESI snooping
 * protocol, synchronization primitives, and whole-chip runs (timing,
 * determinism, clock-domain behaviour).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.hpp"
#include "sim/cmp.hpp"
#include "sim/event_queue.hpp"
#include "sim/memory_system.hpp"
#include "sim/program.hpp"
#include "sim/sync.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace tlp;
using sim::Addr;
using sim::CacheArray;
using sim::Cmp;
using sim::CmpConfig;
using sim::Cycle;
using sim::EventQueue;
using sim::MemorySystem;
using sim::Mesi;
using sim::Program;
using sim::ThreadProgram;

// ------------------------------------------------------------ event queue

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(5); });
    q.schedule(1, [&] { order.push_back(1); });
    q.schedule(3, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
}

TEST(EventQueue, FifoWithinSameCycle)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NowAdvancesWithEvents)
{
    EventQueue q;
    Cycle seen = 0;
    q.schedule(42, [&] { seen = q.now(); });
    q.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5)
            q.scheduleIn(10, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [&] {
        EXPECT_THROW(q.schedule(5, [] {}), util::PanicError);
    });
    q.run();
}

TEST(EventQueue, MaxEventsBoundsExecution)
{
    EventQueue q;
    int count = 0;
    std::function<void()> forever = [&] {
        ++count;
        q.scheduleIn(1, forever);
    };
    q.schedule(0, forever);
    EXPECT_EQ(q.run(100), 100u);
    EXPECT_EQ(count, 100);
}

// ------------------------------------------------------------ cache array

TEST(CacheArray, MissThenHit)
{
    CacheArray cache(1024, 64, 2);
    EXPECT_EQ(cache.state(0x100), Mesi::Invalid);
    cache.insert(0x100, Mesi::Exclusive);
    EXPECT_EQ(cache.state(0x100), Mesi::Exclusive);
    EXPECT_EQ(cache.state(0x13f), Mesi::Exclusive); // same line
    EXPECT_EQ(cache.state(0x140), Mesi::Invalid);   // next line
}

TEST(CacheArray, LruEviction)
{
    // 2 ways, 8 sets of 64B lines: addresses 0, 0x200, 0x400 map to set 0.
    CacheArray cache(1024, 64, 2);
    cache.insert(0x0, Mesi::Shared);
    cache.insert(0x200, Mesi::Shared);
    cache.touch(0x0); // make 0x200 the LRU victim
    const auto victim = cache.insert(0x400, Mesi::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line_addr, 0x200u);
    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_FALSE(cache.contains(0x200));
}

TEST(CacheArray, VictimCarriesState)
{
    CacheArray cache(128, 64, 1); // direct-mapped, 2 sets
    cache.insert(0x0, Mesi::Modified);
    const auto victim = cache.insert(0x80, Mesi::Shared); // same set
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->state, Mesi::Modified);
}

TEST(CacheArray, InvalidateReturnsPreviousState)
{
    CacheArray cache(1024, 64, 2);
    cache.insert(0x40, Mesi::Modified);
    EXPECT_EQ(cache.invalidate(0x40), Mesi::Modified);
    EXPECT_EQ(cache.invalidate(0x40), Mesi::Invalid);
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(CacheArray, ReinsertingPresentLineDoesNotEvict)
{
    CacheArray cache(1024, 64, 2);
    cache.insert(0x0, Mesi::Shared);
    const auto victim = cache.insert(0x0, Mesi::Modified);
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(cache.state(0x0), Mesi::Modified);
    EXPECT_EQ(cache.validLines(), 1u);
}

TEST(CacheArray, ForEachValidLineVisitsAll)
{
    CacheArray cache(1024, 64, 2);
    cache.insert(0x0, Mesi::Shared);
    cache.insert(0x1000, Mesi::Modified);
    int count = 0;
    cache.forEachValidLine([&](Addr, Mesi) { ++count; });
    EXPECT_EQ(count, 2);
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(1000, 48, 2), util::FatalError); // line !pow2
    EXPECT_THROW(CacheArray(100, 64, 2), util::FatalError);  // not multiple
    EXPECT_THROW(CacheArray(1024, 64, 0), util::FatalError);
}

TEST(CacheArray, SetIndexingIsModular)
{
    CacheArray cache(64 * 1024, 64, 2); // 512 sets
    EXPECT_EQ(cache.sets(), 512u);
    // Fill one set beyond capacity; other sets unaffected.
    cache.insert(0x0, Mesi::Shared);
    cache.insert(0x8000, Mesi::Shared);
    cache.insert(0x10000, Mesi::Shared);
    EXPECT_EQ(cache.validLines(), 2u);
}

// ----------------------------------------------------------- MESI protocol

/** Harness: drive the memory system directly with scripted accesses. */
class MesiFixture : public ::testing::Test
{
  protected:
    MesiFixture()
        : memsys_(config_, 4, 3.2e9, queue_, stats_)
    {
    }

    /** Pump the queue: machinery events (bus grants, drains) go back
     *  into the memory system; completion events are tallied. */
    std::uint64_t
    pump(std::uint64_t max_events = ~0ull)
    {
        return queue_.run(
            [&](const sim::Event& event) {
                if (memsys_.dispatch(event))
                    return;
                if (event.kind == sim::EventKind::MemDone)
                    ++loads_done_;
                else if (event.kind == sim::EventKind::StoreAccept)
                    ++stores_accepted_;
            },
            max_events);
    }

    /** Blocking load: run the queue until the completion event fires. */
    void
    load(int core, Addr addr)
    {
        const std::uint64_t before = loads_done_;
        memsys_.load(core, addr);
        pump();
        ASSERT_EQ(loads_done_, before + 1);
    }

    void
    store(int core, Addr addr)
    {
        const std::uint64_t before = stores_accepted_;
        memsys_.store(core, addr);
        pump(); // drains the store buffer too
        ASSERT_EQ(stores_accepted_, before + 1);
    }

    CmpConfig config_;
    EventQueue queue_;
    util::StatRegistry stats_;
    MemorySystem memsys_;
    std::uint64_t loads_done_ = 0;
    std::uint64_t stores_accepted_ = 0;
};

TEST_F(MesiFixture, FirstLoadInstallsExclusive)
{
    load(0, 0x1000);
    EXPECT_EQ(memsys_.l1(0).state(0x1000), Mesi::Exclusive);
    EXPECT_TRUE(memsys_.l2().contains(0x1000));
    EXPECT_EQ(stats_.counterValue("memory.reads"), 1u);
}

TEST_F(MesiFixture, SecondReaderDowngradesToShared)
{
    load(0, 0x1000);
    load(1, 0x1000);
    EXPECT_EQ(memsys_.l1(0).state(0x1000), Mesi::Shared);
    EXPECT_EQ(memsys_.l1(1).state(0x1000), Mesi::Shared);
}

TEST_F(MesiFixture, SecondReaderHitsL2NotMemory)
{
    load(0, 0x1000);
    const auto mem_before = stats_.counterValue("memory.reads");
    load(1, 0x1000);
    EXPECT_EQ(stats_.counterValue("memory.reads"), mem_before);
}

TEST_F(MesiFixture, StoreToExclusiveSilentlyUpgrades)
{
    load(0, 0x1000);
    const auto bus_before = stats_.counterValue("bus.transactions");
    store(0, 0x1000);
    EXPECT_EQ(memsys_.l1(0).state(0x1000), Mesi::Modified);
    EXPECT_EQ(stats_.counterValue("bus.transactions"), bus_before);
}

TEST_F(MesiFixture, StoreToSharedIssuesUpgrade)
{
    load(0, 0x1000);
    load(1, 0x1000);
    store(0, 0x1000);
    EXPECT_EQ(memsys_.l1(0).state(0x1000), Mesi::Modified);
    EXPECT_EQ(memsys_.l1(1).state(0x1000), Mesi::Invalid);
    EXPECT_GE(stats_.counterValue("bus.upgrades"), 1u);
}

TEST_F(MesiFixture, ReadOfModifiedTriggersCacheToCache)
{
    store(0, 0x2000);
    EXPECT_EQ(memsys_.l1(0).state(0x2000), Mesi::Modified);
    load(1, 0x2000);
    EXPECT_EQ(memsys_.l1(0).state(0x2000), Mesi::Shared);
    EXPECT_EQ(memsys_.l1(1).state(0x2000), Mesi::Shared);
    EXPECT_GE(stats_.counterValue("bus.c2c_transfers"), 1u);
    // The owner's data was written back to the L2.
    EXPECT_TRUE(memsys_.l2().contains(0x2000));
}

TEST_F(MesiFixture, StoreMissInvalidatesAllCopies)
{
    load(0, 0x3000);
    load(1, 0x3000);
    load(2, 0x3000);
    store(3, 0x3000);
    EXPECT_EQ(memsys_.l1(0).state(0x3000), Mesi::Invalid);
    EXPECT_EQ(memsys_.l1(1).state(0x3000), Mesi::Invalid);
    EXPECT_EQ(memsys_.l1(2).state(0x3000), Mesi::Invalid);
    EXPECT_EQ(memsys_.l1(3).state(0x3000), Mesi::Modified);
}

TEST_F(MesiFixture, StoreMissOverModifiedStealsOwnership)
{
    store(0, 0x4000);
    store(1, 0x4000);
    EXPECT_EQ(memsys_.l1(0).state(0x4000), Mesi::Invalid);
    EXPECT_EQ(memsys_.l1(1).state(0x4000), Mesi::Modified);
}

TEST_F(MesiFixture, L1HitIsFast)
{
    load(0, 0x5000);
    const Cycle before = queue_.now();
    load(0, 0x5000);
    EXPECT_EQ(queue_.now() - before, config_.l1_hit_cycles);
}

TEST_F(MesiFixture, MemoryLatencyDominatesColdMiss)
{
    const Cycle before = queue_.now();
    load(0, 0x6000);
    EXPECT_GE(queue_.now() - before, config_.memoryCycles(3.2e9));
}

TEST_F(MesiFixture, L2HitLatencyForSecondSharer)
{
    load(0, 0x7000);
    const Cycle before = queue_.now();
    load(1, 0x7000);
    const Cycle latency = queue_.now() - before;
    EXPECT_GE(latency, config_.l2_rt_cycles);
    EXPECT_LT(latency, config_.memoryCycles(3.2e9));
}

TEST_F(MesiFixture, CoherenceInvariantAfterRandomStorm)
{
    util::Rng rng(2024);
    std::uint64_t issued = 0;
    for (int i = 0; i < 5000; ++i) {
        const int core = static_cast<int>(rng.below(4));
        const Addr addr = 0x8000 + rng.below(64) * 64;
        ++issued;
        if (rng.chance(0.5))
            memsys_.load(core, addr);
        else
            memsys_.store(core, addr);
        if (i % 7 == 0)
            pump();
    }
    pump();
    EXPECT_EQ(loads_done_ + stores_accepted_, issued);
    EXPECT_TRUE(memsys_.checkCoherence());
}

TEST_F(MesiFixture, StoreBufferForwardsToLoads)
{
    // A load that hits a buffered (not yet globally performed) store
    // completes at L1-hit latency.
    memsys_.store(0, 0x9000);
    memsys_.load(0, 0x9000);
    const Cycle start = queue_.now();
    pump(3); // just a few events; the forwarded load is quick
    EXPECT_EQ(loads_done_, 1u);
    EXPECT_LE(queue_.now() - start, config_.l1_hit_cycles + 1);
    pump();
    EXPECT_EQ(stores_accepted_, 1u);
}

TEST_F(MesiFixture, StoreBufferBackpressure)
{
    // Fill the buffer past capacity with misses to distinct lines; the
    // extra stores stall but all eventually complete.
    const int total = static_cast<int>(config_.store_buffer_entries) + 4;
    for (int i = 0; i < total; ++i)
        memsys_.store(0, 0xA000 + static_cast<Addr>(i) * 0x1000);
    EXPECT_LE(memsys_.storeBufferDepth(0), config_.store_buffer_entries);
    EXPECT_EQ(memsys_.storeBufferStalled(0), 4u);
    pump();
    EXPECT_EQ(stores_accepted_, static_cast<std::uint64_t>(total));
    EXPECT_EQ(memsys_.storeBufferDepth(0), 0u);
    EXPECT_EQ(memsys_.storeBufferStalled(0), 0u);
}

TEST_F(MesiFixture, L2EvictionBackInvalidatesL1)
{
    // Walk enough distinct L2 sets... simpler: fill one L2 set (8 ways of
    // 128B lines, set stride = 128 * sets) until the first line leaves.
    const Addr base = 0x100000;
    const std::uint64_t stride =
        static_cast<std::uint64_t>(config_.l2_line_bytes) *
        memsys_.l2().sets();
    load(0, base);
    EXPECT_TRUE(memsys_.l1(0).contains(base));
    for (std::uint64_t i = 1; i <= config_.l2_assoc; ++i)
        load(1, base + i * stride);
    // The L2 victim was base's line; inclusion forced the L1 copy out.
    EXPECT_FALSE(memsys_.l2().contains(base));
    EXPECT_FALSE(memsys_.l1(0).contains(base));
}

TEST_F(MesiFixture, DirtyL1EvictionWritesBackToL2)
{
    // Make a line dirty, then evict it from L1 by filling its set.
    store(0, 0x0);
    const std::uint64_t l1_stride =
        static_cast<std::uint64_t>(config_.l1_line_bytes) *
        memsys_.l1(0).sets();
    for (std::uint64_t i = 1; i <= config_.l1_assoc; ++i)
        load(0, 0x0 + i * l1_stride);
    queue_.run();
    EXPECT_FALSE(memsys_.l1(0).contains(0x0));
    EXPECT_GE(stats_.counterValue("core0.l1d.writebacks"), 1u);
    EXPECT_TRUE(memsys_.checkCoherence());
}

// ------------------------------------------------------------------- sync

/** Pump a queue, recording which cores sync-grant events release. */
std::vector<int>
pumpSyncGrants(EventQueue& queue)
{
    std::vector<int> granted;
    queue.run([&](const sim::Event& event) {
        if (event.kind == sim::EventKind::BarrierRelease ||
            event.kind == sim::EventKind::LockGrant)
            granted.push_back(static_cast<int>(event.arg));
    });
    return granted;
}

TEST(Barrier, ReleasesAllAtOnce)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    sim::BarrierManager barrier(config, 3, queue, stats);
    barrier.arrive(0);
    barrier.arrive(1);
    EXPECT_TRUE(pumpSyncGrants(queue).empty()); // waiting for the third
    barrier.arrive(2);
    EXPECT_EQ(pumpSyncGrants(queue), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(barrier.episodes(), 1u);
}

TEST(Barrier, ReusableAcrossEpisodes)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    sim::BarrierManager barrier(config, 2, queue, stats);
    int released = 0;
    for (int episode = 0; episode < 3; ++episode) {
        barrier.arrive(0);
        barrier.arrive(1);
        released += static_cast<int>(pumpSyncGrants(queue).size());
    }
    EXPECT_EQ(released, 6);
    EXPECT_EQ(barrier.episodes(), 3u);
}

TEST(Lock, UncontendedAcquireGrantsAfterRmwLatency)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    sim::LockManager locks(config, queue, stats);
    locks.acquire(7, 0);
    EXPECT_EQ(pumpSyncGrants(queue), (std::vector<int>{0}));
    EXPECT_TRUE(locks.held(7));
    EXPECT_EQ(queue.now(), config.lock_acquire_cycles);
}

TEST(Lock, ContendedHandoffIsFifo)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    sim::LockManager locks(config, queue, stats);
    std::vector<int> order;
    const auto pump = [&] {
        for (const int core : pumpSyncGrants(queue))
            order.push_back(core);
    };
    locks.acquire(1, 0);
    locks.acquire(1, 1);
    locks.acquire(1, 2);
    pump();
    locks.release(1, 0);
    pump();
    locks.release(1, 1);
    pump();
    locks.release(1, 2);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_FALSE(locks.held(1));
}

TEST(Lock, ReleaseByNonOwnerIsFatal)
{
    CmpConfig config;
    EventQueue queue;
    util::StatRegistry stats;
    sim::LockManager locks(config, queue, stats);
    locks.acquire(1, 0);
    pumpSyncGrants(queue);
    EXPECT_THROW(locks.release(1, 3), util::FatalError);
    EXPECT_THROW(locks.release(99, 0), util::FatalError);
}

// -------------------------------------------------------------- whole chip

Program
makeTinyProgram(int threads)
{
    Program prog;
    prog.threads.resize(threads);
    for (int t = 0; t < threads; ++t) {
        auto& tp = prog.threads[t];
        for (int i = 0; i < 100; ++i) {
            tp.intOps(8);
            tp.load(0x10000 + t * 0x4000 + (i % 16) * 64);
            tp.fpOps(4);
            tp.store(0x10000 + t * 0x4000 + (i % 16) * 64);
            if (i % 25 == 0)
                tp.barrier(i);
        }
        tp.barrier(1000);
        tp.finish();
    }
    return prog;
}

TEST(Cmp, RunsToCompletion)
{
    const Cmp cmp{CmpConfig{}};
    const auto result = cmp.run(makeTinyProgram(4), 3.2e9);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_TRUE(result.coherent);
    EXPECT_EQ(result.n_threads, 4);
    EXPECT_EQ(result.instructions,
              makeTinyProgram(4).instructionCount());
}

TEST(Cmp, DeterministicAcrossRuns)
{
    const Cmp cmp{CmpConfig{}};
    const auto a = cmp.run(makeTinyProgram(8), 3.2e9);
    const auto b = cmp.run(makeTinyProgram(8), 3.2e9);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.counterValue("bus.transactions"),
              b.stats.counterValue("bus.transactions"));
}

TEST(Cmp, LowerFrequencyShrinksMemoryCycles)
{
    // Chip-level DVFS: the same program takes fewer cycles at lower f
    // because the fixed-time memory round trip costs fewer cycles.
    Program prog;
    prog.threads.resize(1);
    for (int i = 0; i < 500; ++i)
        prog.threads[0].load(0x100000 + i * 4096); // all misses
    prog.threads[0].finish();
    const Cmp cmp{CmpConfig{}};
    const auto fast = cmp.run(prog, 3.2e9);
    const auto slow = cmp.run(prog, 0.2e9);
    EXPECT_LT(slow.cycles, fast.cycles);
    // ... but takes longer in wall-clock time.
    EXPECT_GT(slow.seconds, fast.seconds);
}

TEST(Cmp, SystemWideScalingAblationKeepsCyclesConstant)
{
    CmpConfig config;
    config.scale_memory_with_chip = true;
    Program prog;
    prog.threads.resize(1);
    for (int i = 0; i < 200; ++i)
        prog.threads[0].load(0x100000 + i * 4096);
    prog.threads[0].finish();
    const Cmp cmp{config};
    EXPECT_EQ(cmp.run(prog, 3.2e9).cycles, cmp.run(prog, 0.2e9).cycles);
}

TEST(Cmp, DeadlockedProgramIsFatal)
{
    // One thread waits at a barrier no one else reaches.
    Program prog;
    prog.threads.resize(2);
    prog.threads[0].barrier(0);
    prog.threads[0].finish();
    prog.threads[1].finish(); // never arrives
    const Cmp cmp{CmpConfig{}};
    EXPECT_THROW(cmp.run(prog, 3.2e9), util::FatalError);
}

TEST(Cmp, RejectsTooManyThreads)
{
    const Cmp cmp{CmpConfig{}};
    EXPECT_THROW(cmp.run(makeTinyProgram(17), 3.2e9), util::FatalError);
    EXPECT_THROW(cmp.run(makeTinyProgram(2), -1.0), util::FatalError);
}

TEST(Cmp, ComputeBoundIpcApproachesIssueModel)
{
    Program prog;
    prog.threads.resize(1);
    prog.threads[0].intOps(100000);
    prog.threads[0].finish();
    const Cmp cmp{CmpConfig{}};
    const auto result = cmp.run(prog, 3.2e9);
    EXPECT_NEAR(result.ipc(), CmpConfig{}.ipc_int, 0.05);
}

TEST(Cmp, StatsContractForPowerModel)
{
    const Cmp cmp{CmpConfig{}};
    const auto result = cmp.run(makeTinyProgram(2), 3.2e9);
    for (int c = 0; c < 2; ++c) {
        const std::string p = "core" + std::to_string(c) + ".";
        EXPECT_GT(result.stats.counterValue(p + "insts"), 0u);
        EXPECT_GT(result.stats.counterValue(p + "int_ops"), 0u);
        EXPECT_GT(result.stats.counterValue(p + "fp_ops"), 0u);
        EXPECT_GT(result.stats.counterValue(p + "loads"), 0u);
        EXPECT_GT(result.stats.counterValue(p + "stores"), 0u);
        EXPECT_GT(result.stats.counterValue(p + "l1i.reads"), 0u);
        EXPECT_GT(result.stats.counterValue(p + "active_cycles"), 0u);
    }
}

/** Parameterized determinism + coherence across thread counts. */
class CmpThreadSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CmpThreadSweep, CoherentAndDeterministic)
{
    const int threads = GetParam();
    const Cmp cmp{CmpConfig{}};
    const auto a = cmp.run(makeTinyProgram(threads), 3.2e9);
    const auto b = cmp.run(makeTinyProgram(threads), 3.2e9);
    EXPECT_TRUE(a.coherent);
    EXPECT_EQ(a.cycles, b.cycles);
}

INSTANTIATE_TEST_SUITE_P(Threads, CmpThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

} // namespace
