/**
 * @file
 * util::ThreadPool unit tests: futures carry results and exceptions,
 * destruction drains the queue, parallelFor covers its range, the
 * worker-index / default-jobs helpers behave, the work-stealing
 * scheduler's counters are sane, results are identical at any worker
 * count and with affinity pinning on or off, and the cgroup quota
 * parsers handle the real /sys/fs/cgroup formats.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace {

using tlp::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(4);
    auto f1 = pool.submit([] { return 41 + 1; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);

    // The pool survives a throwing task.
    auto g = pool.submit([] { return 7; });
    EXPECT_EQ(g.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> done{0};
    constexpr int kTasks = 64;
    {
        ThreadPool pool(3);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                done.fetch_add(1);
            });
        }
        // Futures intentionally dropped: the destructor must still run
        // every queued task before returning.
    }
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 100;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(0, kN, [&hits](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 10,
                                  [](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange)
{
    constexpr unsigned kWorkers = 3;
    ThreadPool pool(kWorkers);
    EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1); // caller thread

    std::mutex mutex;
    std::set<int> seen;
    pool.parallelFor(0, 64, [&](std::size_t) {
        const int index = ThreadPool::currentWorkerIndex();
        ASSERT_GE(index, 0);
        ASSERT_LT(index, static_cast<int>(kWorkers));
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(index);
    });
    EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, SizeClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

// A deterministic per-index computation heavy enough that workers go
// idle at different times and steal from each other.
double
indexWork(std::size_t i)
{
    double x = static_cast<double>(i) + 1.0;
    for (int k = 0; k < 2000; ++k)
        x = x * 1.0000001 + static_cast<double>(k % 7);
    return x;
}

std::vector<double>
runWorkload(unsigned workers, std::size_t count)
{
    ThreadPool pool(workers);
    std::vector<double> out(count, 0.0);
    pool.parallelFor(0, count,
                     [&out](std::size_t i) { out[i] = indexWork(i); });
    return out;
}

TEST(ThreadPool, ResultsIdenticalAtAnyWorkerCount)
{
    // The sweep engine's sacred invariant in miniature: results are
    // assembled by index, so the bytes cannot depend on which worker
    // ran which chunk. Compare jobs = 1 (serial reference) against
    // 2 and 8.
    constexpr std::size_t kN = 512;
    const std::vector<double> serial = runWorkload(1, kN);
    for (unsigned workers : {2u, 8u}) {
        const std::vector<double> parallel = runWorkload(workers, kN);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < kN; ++i)
            ASSERT_EQ(parallel[i], serial[i])
                << "index " << i << " at " << workers << " workers";
    }
}

TEST(ThreadPool, StatsCountersAreSane)
{
    ThreadPool pool(4);
    constexpr int kTasks = 256;
    std::vector<std::future<double>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
        futures.push_back(pool.submit(
            [i] { return indexWork(static_cast<std::size_t>(i)); }));
    for (auto& f : futures)
        f.get();

    // A worker fulfills the future inside the task and bumps `executed`
    // just after, so the counter can trail a get() by an instant; give
    // it a moment to settle before asserting exact totals.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (pool.stats().executed < static_cast<std::uint64_t>(kTasks) &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();

    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks));
    EXPECT_LE(stats.steals, stats.executed);

    // The per-worker split must add back up to the total.
    std::uint64_t per_worker = 0;
    for (unsigned w = 0; w < pool.size(); ++w)
        per_worker += pool.workerExecuted(w);
    EXPECT_EQ(per_worker, stats.executed);
}

TEST(ThreadPool, AffinityPinningPreservesResults)
{
    // TLPPM_AFFINITY is read at construction; pinning (where the
    // platform supports it) must be invisible in the computed bytes.
    constexpr std::size_t kN = 256;
    const std::vector<double> unpinned = runWorkload(4, kN);

    ASSERT_EQ(setenv("TLPPM_AFFINITY", "1", 1), 0);
    std::vector<double> pinned;
    std::uint64_t workers_pinned = 0;
    {
        ThreadPool pool(4);
        pinned.assign(kN, 0.0);
        pool.parallelFor(0, kN, [&pinned](std::size_t i) {
            pinned[i] = indexWork(i);
        });
        workers_pinned = pool.stats().workers_pinned;
    }
    ASSERT_EQ(unsetenv("TLPPM_AFFINITY"), 0);

    EXPECT_LE(workers_pinned, 4u);
    for (std::size_t i = 0; i < kN; ++i)
        ASSERT_EQ(pinned[i], unpinned[i]) << "index " << i;
}

TEST(ThreadPool, AffinityOffByDefault)
{
    ASSERT_EQ(unsetenv("TLPPM_AFFINITY"), 0);
    ThreadPool pool(2);
    pool.parallelFor(0, 8, [](std::size_t) {});
    EXPECT_EQ(pool.stats().workers_pinned, 0u);
}

TEST(ThreadPool, DestructorDrainsWhileTasksThrow)
{
    // A mix of throwing and counting tasks with all futures dropped:
    // the destructor must still run every task, and the stored
    // exceptions must not take the pool down.
    std::atomic<int> done{0};
    constexpr int kTasks = 96;
    {
        ThreadPool pool(3);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&done, i]() -> int {
                done.fetch_add(1);
                if (i % 3 == 0)
                    throw std::runtime_error("dropped-future throw");
                return i;
            });
        }
    }
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, ParallelForRunsAllIndicesDespiteThrows)
{
    // Every index is attempted even when some throw, and the smallest
    // failing index wins the rethrow.
    ThreadPool pool(4);
    constexpr std::size_t kN = 64;
    std::vector<std::atomic<int>> hits(kN);
    try {
        pool.parallelFor(0, kN, [&hits](std::size_t i) {
            hits[i].fetch_add(1);
            if (i == 9 || i == 41)
                throw std::out_of_range("index " + std::to_string(i));
        });
        FAIL() << "expected parallelFor to rethrow";
    } catch (const std::out_of_range& error) {
        EXPECT_STREQ(error.what(), "index 9");
    }
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, NestedSubmitStress)
{
    // Worker-local nested submission under contention: each outer task
    // fans out children from inside the pool (they land on the
    // submitting worker's own deque and are stolen from there). Run
    // under TSan this doubles as the data-race stress for the
    // stealing path.
    ThreadPool pool(4);
    std::atomic<int> children_done{0};
    constexpr int kOuter = 32;
    constexpr int kInner = 8;
    std::vector<std::future<void>> outer;
    outer.reserve(kOuter);
    for (int i = 0; i < kOuter; ++i) {
        outer.push_back(pool.submit([&pool, &children_done] {
            std::vector<std::future<int>> inner;
            inner.reserve(kInner);
            for (int j = 0; j < kInner; ++j)
                inner.push_back(pool.submit([&children_done, j] {
                    children_done.fetch_add(1);
                    return j;
                }));
            // Do not block on the children here: a worker waiting on
            // work only other workers can run is the classic pool
            // deadlock. The outer future only covers the spawning.
        }));
    }
    for (auto& f : outer)
        f.get();
    // Destruction drains whatever children are still queued.
    const ThreadPool::Stats before = pool.stats();
    EXPECT_EQ(before.submitted,
              static_cast<std::uint64_t>(kOuter + kOuter * kInner));
}

TEST(ThreadPool, ParseCgroupCpuMax)
{
    // "<quota> <period>" in microseconds; "max" = unlimited; rounded up.
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("200000 100000"), 2u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("200000 100000\n"), 2u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("150000 100000"), 2u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("50000 100000"), 1u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("max 100000"), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax(""), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("garbage"), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("100000"), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupCpuMax("100000 0"), 0u);
}

TEST(ThreadPool, ParseCgroupV1Quota)
{
    EXPECT_EQ(ThreadPool::parseCgroupV1Quota("200000", "100000"), 2u);
    EXPECT_EQ(ThreadPool::parseCgroupV1Quota("150000\n", "100000\n"), 2u);
    EXPECT_EQ(ThreadPool::parseCgroupV1Quota("-1", "100000"), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupV1Quota("", ""), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupV1Quota("abc", "100000"), 0u);
    EXPECT_EQ(ThreadPool::parseCgroupV1Quota("100000", "0"), 0u);
}

} // namespace
