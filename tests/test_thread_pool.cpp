/**
 * @file
 * util::ThreadPool unit tests: futures carry results and exceptions,
 * destruction drains the queue, parallelFor covers its range, and the
 * worker-index / default-jobs helpers behave.
 */

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace {

using tlp::util::ThreadPool;

TEST(ThreadPool, SubmitReturnsValues)
{
    ThreadPool pool(4);
    auto f1 = pool.submit([] { return 41 + 1; });
    auto f2 = pool.submit([] { return std::string("ok"); });
    EXPECT_EQ(f1.get(), 42);
    EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);

    // The pool survives a throwing task.
    auto g = pool.submit([] { return 7; });
    EXPECT_EQ(g.get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> done{0};
    constexpr int kTasks = 64;
    {
        ThreadPool pool(3);
        for (int i = 0; i < kTasks; ++i) {
            pool.submit([&done] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                done.fetch_add(1);
            });
        }
        // Futures intentionally dropped: the destructor must still run
        // every queued task before returning.
    }
    EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 100;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(0, kN, [&hits](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 10,
                                  [](std::size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error("bad");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange)
{
    constexpr unsigned kWorkers = 3;
    ThreadPool pool(kWorkers);
    EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1); // caller thread

    std::mutex mutex;
    std::set<int> seen;
    pool.parallelFor(0, 64, [&](std::size_t) {
        const int index = ThreadPool::currentWorkerIndex();
        ASSERT_GE(index, 0);
        ASSERT_LT(index, static_cast<int>(kWorkers));
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(index);
    });
    EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPool, SizeClampedToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    auto f = pool.submit([] { return 1; });
    EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPool, DefaultJobsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

} // namespace
