/**
 * @file
 * Tests for tlp_runner: the calibration sequence and the two experimental
 * pipelines, run at a small workload scale.
 */

#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using runner::Experiment;

constexpr double kScale = 0.08;

class ExperimentFixture : public ::testing::Test
{
  protected:
    static const Experiment&
    exp()
    {
        static const Experiment instance(kScale);
        return instance;
    }
};

TEST_F(ExperimentFixture, CalibrationProducesSaneRenormFactor)
{
    EXPECT_GT(exp().renormFactor(), 0.5);
    EXPECT_LT(exp().renormFactor(), 100.0);
}

TEST_F(ExperimentFixture, BudgetNearTechnologyCorePower)
{
    // The microbenchmark-derived single-core maximum should land in the
    // neighbourhood of the technology's hot core power (it adds the L2's
    // share and the run's exact temperature profile).
    const double budget = exp().maxSingleCorePower();
    const double anchor = exp().technology().corePowerHot();
    EXPECT_GT(budget, 0.7 * anchor);
    EXPECT_LT(budget, 1.4 * anchor);
}

TEST_F(ExperimentFixture, MicrobenchmarkCoreSitsAtHundredCelsius)
{
    const auto m = exp().measure(workloads::makePowerVirus(1, kScale),
                                 exp().technology().vddNominal(),
                                 exp().technology().fNominal());
    EXPECT_NEAR(m.avg_core_temp_c, exp().technology().tHotC(), 3.0);
    EXPECT_FALSE(m.runaway);
}

TEST_F(ExperimentFixture, MeasureSplitsDynamicAndStatic)
{
    const auto m = exp().measure(workloads::makeWaterSp(2, kScale),
                                 exp().technology().vddNominal(),
                                 exp().technology().fNominal());
    EXPECT_GT(m.dynamic_w, 0.0);
    EXPECT_GT(m.static_w, 0.0);
    EXPECT_NEAR(m.total_w, m.dynamic_w + m.static_w, 1e-9);
    EXPECT_GT(m.core_power_density_w_m2, 0.0);
}

TEST_F(ExperimentFixture, LowerOperatingPointUsesLessPower)
{
    const auto prog = workloads::makeWaterSp(2, kScale);
    const auto hi = exp().measure(prog, 1.1, 3.2e9);
    const auto lo = exp().measure(prog, 0.6, 0.8e9);
    EXPECT_LT(lo.total_w, hi.total_w);
    EXPECT_LT(lo.avg_core_temp_c, hi.avg_core_temp_c);
    EXPECT_GT(lo.seconds, hi.seconds);
}

TEST_F(ExperimentFixture, Scenario1RowsAreInternallyConsistent)
{
    const auto rows =
        exp().scenario1(workloads::byName("Water-Sp"), {1, 2, 4});
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_DOUBLE_EQ(rows[0].eps_n, 1.0);
    EXPECT_DOUBLE_EQ(rows[0].normalized_power, 1.0);
    for (const auto& row : rows) {
        EXPECT_GT(row.eps_n, 0.0);
        EXPECT_LE(row.freq_hz, exp().technology().fNominal() + 1.0);
        EXPECT_GE(row.vdd, exp().technology().vMin() - 1e-9);
        // Eq. 7 holds whenever the target is inside the V/f table range.
        if (row.n > 1 && row.freq_hz > exp().vfTable().fMin() + 1.0) {
            EXPECT_NEAR(row.freq_hz,
                        exp().technology().fNominal() /
                            (row.n * row.eps_n),
                        1.0);
        }
    }
}

TEST_F(ExperimentFixture, Scenario1SavesPowerWithGoodEfficiency)
{
    const auto rows =
        exp().scenario1(workloads::byName("Water-Sp"), {1, 2, 4});
    EXPECT_LT(rows[1].normalized_power, 1.0);
    EXPECT_LT(rows[2].normalized_power, rows[1].normalized_power);
}

TEST_F(ExperimentFixture, Scenario1PowerDensityCollapses)
{
    const auto rows =
        exp().scenario1(workloads::byName("Water-Sp"), {1, 2, 4});
    EXPECT_LT(rows[2].normalized_density, 0.35);
}

TEST_F(ExperimentFixture, Scenario2BudgetRespected)
{
    const auto rows =
        exp().scenario2(workloads::byName("Water-Sp"), {1, 2, 4});
    for (const auto& row : rows) {
        if (row.actual_speedup > 0.0 && !row.at_nominal) {
            EXPECT_LE(row.power_w, exp().maxSingleCorePower() * 1.07)
                << "N=" << row.n;
        }
        EXPECT_LE(row.actual_speedup, row.nominal_speedup + 0.25)
            << "N=" << row.n;
    }
}

TEST_F(ExperimentFixture, Scenario2LowPowerAppRunsNominalAtSmallN)
{
    // Radix's nominal power is far below the budget: small configurations
    // run at full V/f and actual == nominal speedup (paper §4.2).
    const auto rows =
        exp().scenario2(workloads::byName("Radix"), {1, 2});
    EXPECT_TRUE(rows[0].at_nominal);
    EXPECT_TRUE(rows[1].at_nominal);
    EXPECT_NEAR(rows[1].actual_speedup, rows[1].nominal_speedup, 1e-9);
}

TEST_F(ExperimentFixture, ListsMustStartAtOne)
{
    EXPECT_THROW(exp().scenario1(workloads::byName("Radix"), {2, 4}),
                 util::FatalError);
    EXPECT_THROW(exp().scenario2(workloads::byName("Radix"), {4}),
                 util::FatalError);
}

TEST(ExperimentAblation, SystemWideDvfsKillsMemorySpeedup)
{
    sim::CmpConfig system_wide;
    system_wide.scale_memory_with_chip = true;
    const Experiment chip_only(kScale);
    const Experiment scaled(kScale, system_wide);
    const auto& radix = workloads::byName("Radix");
    const auto a = chip_only.scenario1(radix, {1, 4});
    const auto b = scaled.scenario1(radix, {1, 4});
    // Chip-only DVFS gives the memory-bound app an actual speedup well
    // above 1; the system-wide ablation stays near the performance
    // target.
    EXPECT_GT(a[1].actual_speedup, b[1].actual_speedup + 0.15);
    EXPECT_NEAR(b[1].actual_speedup, 1.0, 0.25);
}

} // namespace
