/**
 * @file
 * Journal and RunCache-admissibility tests: the checkpoint layer must
 * round-trip Measurements bit-exactly (resume output is required to be
 * byte-identical to an uninterrupted run), survive corrupt and torn
 * lines by dropping exactly the damaged record, and refuse to replay a
 * poisoned (non-finite) record so the point is recomputed instead.
 */

#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/fault_injection.hpp"
#include "runner/journal.hpp"
#include "runner/run_cache.hpp"

namespace {

using namespace tlp;

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "tlppm_" + tag + "_" +
                std::to_string(::getpid()) + ".jsonl")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/** A Measurement whose doubles exercise the %.17g round trip: values
 *  with no short decimal representation, subnormals, and negatives. */
runner::Measurement
awkwardMeasurement()
{
    runner::Measurement m;
    m.cycles = 0xDEADBEEFCAFEull;
    m.seconds = 1.0 / 3.0;
    m.freq_hz = 3.2e9 * (2.0 / 3.0);
    m.vdd = std::nextafter(1.2, 2.0);
    m.dynamic_w = 0.1; // classic non-representable decimal
    m.static_w = std::numeric_limits<double>::denorm_min();
    m.total_w = 123.45678901234567;
    m.avg_core_temp_c = 99.999999999999986;
    m.core_power_density_w_m2 = 5.4321e5;
    m.instructions = 987654321098765ull;
    m.runaway = true;
    return m;
}

runner::RunKey
awkwardKey()
{
    return runner::RunKey{"FMM", 16, 0.1, std::nextafter(1.0, 2.0),
                          3.2e9 / 7.0};
}

void
expectBitIdentical(const runner::Measurement& a,
                   const runner::Measurement& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.freq_hz, b.freq_hz);
    EXPECT_EQ(a.vdd, b.vdd);
    EXPECT_EQ(a.dynamic_w, b.dynamic_w);
    EXPECT_EQ(a.static_w, b.static_w);
    EXPECT_EQ(a.total_w, b.total_w);
    EXPECT_EQ(a.avg_core_temp_c, b.avg_core_temp_c);
    EXPECT_EQ(a.core_power_density_w_m2, b.core_power_density_w_m2);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.runaway, b.runaway);
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string& path, const std::vector<std::string>& lines,
           bool final_newline = true)
{
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        out << lines[i];
        if (i + 1 < lines.size() || final_newline)
            out << "\n";
    }
}

TEST(Journal, RoundTripsMeasurementsBitExactly)
{
    const TempFile file("roundtrip");
    const runner::RunKey key = awkwardKey();
    const runner::Measurement m = awkwardMeasurement();

    {
        runner::Journal journal(file.path());
        journal.append(key, m);
        EXPECT_EQ(journal.appended(), 1u);
    }

    runner::RunCache cache;
    const runner::ReplayStats stats =
        runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.inadmissible, 0u);

    const auto found = cache.find(key);
    ASSERT_TRUE(found.has_value());
    expectBitIdentical(*found, m);
}

TEST(Journal, ReopenAppendsWithoutDuplicatingTheHeader)
{
    const TempFile file("reopen");
    runner::RunKey key = awkwardKey();
    {
        runner::Journal journal(file.path());
        journal.append(key, awkwardMeasurement());
    }
    {
        runner::Journal journal(file.path());
        key.n = 8;
        journal.append(key, awkwardMeasurement());
    }

    // One header plus two records.
    EXPECT_EQ(readLines(file.path()).size(), 3u);
    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(Journal, SkipsCorruptLineAndKeepsTheRest)
{
    const TempFile file("corrupt");
    runner::RunKey key = awkwardKey();
    {
        runner::Journal journal(file.path());
        for (int n : {1, 2, 4}) {
            key.n = n;
            journal.append(key, awkwardMeasurement());
        }
    }

    // Flip one payload digit of the middle record; its CRC no longer
    // matches, so replay must drop exactly that line.
    std::vector<std::string> lines = readLines(file.path());
    ASSERT_EQ(lines.size(), 4u);
    std::string& victim = lines[2];
    const std::size_t pos = victim.find("\"cyc\":");
    ASSERT_NE(pos, std::string::npos);
    char& digit = victim[pos + 6];
    digit = digit == '9' ? '1' : static_cast<char>(digit + 1);
    writeLines(file.path(), lines);

    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(stats.inadmissible, 0u);
    key.n = 1;
    EXPECT_TRUE(cache.find(key).has_value());
    key.n = 2;
    EXPECT_FALSE(cache.find(key).has_value()); // the corrupted record
    key.n = 4;
    EXPECT_TRUE(cache.find(key).has_value());
}

TEST(Journal, DropsTornFinalLine)
{
    const TempFile file("torn");
    runner::RunKey key = awkwardKey();
    {
        runner::Journal journal(file.path());
        for (int n : {1, 2}) {
            key.n = n;
            journal.append(key, awkwardMeasurement());
        }
    }

    // Simulate a crash mid-write: truncate the last record in half and
    // lose its newline.
    const std::vector<std::string> lines = readLines(file.path());
    ASSERT_EQ(lines.size(), 3u);
    std::vector<std::string> torn(lines.begin(), lines.end() - 1);
    torn.push_back(lines.back().substr(0, lines.back().size() / 2));
    writeLines(file.path(), torn, /*final_newline=*/false);

    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.corrupt, 1u);
    key.n = 1;
    EXPECT_TRUE(cache.find(key).has_value());
    key.n = 2;
    EXPECT_FALSE(cache.find(key).has_value());
}

TEST(Journal, MissingFileReplaysNothing)
{
    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(
        std::string(::testing::TempDir()) + "tlppm_never_written.jsonl",
        cache);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.inadmissible, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(Journal, FirstRecordWinsOnDuplicateKeys)
{
    const TempFile file("dupes");
    const runner::RunKey key = awkwardKey();
    runner::Measurement first = awkwardMeasurement();
    runner::Measurement second = awkwardMeasurement();
    second.cycles += 1;
    {
        runner::Journal journal(file.path());
        journal.append(key, first);
        journal.append(key, second);
    }

    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 2u);
    const auto found = cache.find(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->cycles, first.cycles);
}

TEST(RunCache, RejectsNonFiniteMeasurements)
{
    const double bads[] = {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
    for (const double bad : bads) {
        runner::RunCache cache;
        runner::Measurement m = awkwardMeasurement();
        m.total_w = bad;
        EXPECT_FALSE(runner::RunCache::admissible(m));
        EXPECT_FALSE(cache.insert(awkwardKey(), m));
        EXPECT_EQ(cache.size(), 0u);
        EXPECT_FALSE(cache.find(awkwardKey()).has_value());
    }

    // Each priced field individually poisons admissibility.
    for (double runner::Measurement::* field :
         {&runner::Measurement::seconds, &runner::Measurement::freq_hz,
          &runner::Measurement::vdd, &runner::Measurement::dynamic_w,
          &runner::Measurement::static_w, &runner::Measurement::total_w,
          &runner::Measurement::avg_core_temp_c,
          &runner::Measurement::core_power_density_w_m2}) {
        runner::Measurement m = awkwardMeasurement();
        m.*field = std::numeric_limits<double>::quiet_NaN();
        EXPECT_FALSE(runner::RunCache::admissible(m));
    }
    EXPECT_TRUE(runner::RunCache::admissible(awkwardMeasurement()));
}

TEST(Journal, PoisonedRecordIsDroppedSoThePointIsRecomputed)
{
    // A journal line can be bit-rot-free (valid CRC) and still carry a
    // non-finite Measurement — e.g. written by a buggy build. Replay
    // must refuse it: the cache stays empty for that key, so the sweep
    // re-simulates the point instead of replaying poison.
    const TempFile file("poisoned");
    const runner::RunKey key = awkwardKey();
    runner::Measurement poisoned = awkwardMeasurement();
    poisoned.total_w = std::numeric_limits<double>::quiet_NaN();

    const std::string header = "{\"tlppm_journal\":1}";
    const std::string line = runner::Journal::formatLine(key, poisoned);
    writeLines(file.path(), {header, line});

    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.inadmissible, 1u);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.find(key).has_value());

    // The recomputed (finite) value is then admitted normally.
    EXPECT_TRUE(cache.insert(key, awkwardMeasurement()));
    EXPECT_TRUE(cache.find(key).has_value());
}

TEST(Journal, ReplayIsIdempotentAcrossRepeatedResumes)
{
    // Resuming twice (or a service replaying the same generation file on
    // every request) must not duplicate or mutate anything: the cache
    // ends up with exactly the journaled records, bit-identical, no
    // matter how many times the file is replayed into it.
    const TempFile file("idempotent");
    runner::RunKey key = awkwardKey();
    const runner::Measurement m = awkwardMeasurement();
    {
        runner::Journal journal(file.path());
        for (int n : {1, 2, 4}) {
            key.n = n;
            journal.append(key, m);
        }
    }

    runner::RunCache cache;
    const auto first = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(first.entries, 3u);
    EXPECT_EQ(cache.size(), 3u);

    const auto second = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(second.corrupt, 0u);
    EXPECT_EQ(second.inadmissible, 0u);
    EXPECT_EQ(cache.size(), 3u); // zero duplicates
    for (int n : {1, 2, 4}) {
        key.n = n;
        const auto found = cache.find(key);
        ASSERT_TRUE(found.has_value());
        expectBitIdentical(*found, m);
    }
}

TEST(Journal, SigkillLosesAtMostOneFlushBatch)
{
    // The documented durability contract: with flush_every=N, a SIGKILL
    // loses at most the current batch of N records. The child appends M
    // records and dies without any flush or destructor; the parent
    // replays what reached the file.
    const TempFile file("sigkill");
    constexpr int kFlushEvery = 4;
    constexpr int kAppends = 10;

    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        runner::Journal journal(file.path(), kFlushEvery);
        runner::RunKey key = awkwardKey();
        for (int i = 0; i < kAppends; ++i) {
            key.n = i + 1;
            journal.append(key, awkwardMeasurement());
        }
        ::raise(SIGKILL); // no flush, no destructor, no atexit
        ::_exit(99);      // unreachable
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    // At least the flushed batches survive; at worst one batch (plus a
    // torn tail record, already counted as corrupt) is gone.
    EXPECT_GE(stats.entries, static_cast<std::size_t>(kAppends -
                                                      kFlushEvery));
    EXPECT_LE(stats.entries + stats.corrupt,
              static_cast<std::size_t>(kAppends));
    EXPECT_EQ(stats.inadmissible, 0u);
    EXPECT_EQ(cache.size(), stats.entries);
}

TEST(Journal, ShortWriteLosesExactlyTheFaultedRecord)
{
    // An injected ENOSPC-style short write on the second append: the
    // journal must count it, newline-terminate the torn tail so the next
    // record lands intact, and replay must quarantine exactly the torn
    // record.
    const TempFile file("shortwrite");
    runner::RunKey key = awkwardKey();
    {
        runner::StoreFaultPlan plan;
        plan.kind = runner::StoreFaultKind::ShortWrite;
        plan.ordinal = 2;
        runner::ScopedStoreFaultPlan scoped(plan);
        runner::Journal journal(file.path());
        for (int n : {1, 2, 4}) {
            key.n = n;
            journal.append(key, awkwardMeasurement());
        }
        EXPECT_EQ(journal.appended(), 2u);
        EXPECT_EQ(journal.writeErrors(), 1u);
    }

    runner::RunCache cache;
    const auto stats = runner::Journal::replayInto(file.path(), cache);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.corrupt, 1u); // the torn record, nothing else
    key.n = 1;
    EXPECT_TRUE(cache.find(key).has_value());
    key.n = 2;
    EXPECT_FALSE(cache.find(key).has_value()); // the short-written one
    key.n = 4;
    EXPECT_TRUE(cache.find(key).has_value());
}

TEST(RunCache, ObserverSeesOnlyFirstInsertions)
{
    runner::RunCache cache;
    std::vector<runner::RunKey> seen;
    cache.setInsertObserver(
        [&seen](const runner::RunKey& key, const runner::Measurement&) {
            seen.push_back(key);
        });

    const runner::RunKey key = awkwardKey();
    runner::Measurement m = awkwardMeasurement();
    EXPECT_TRUE(cache.insert(key, m));
    EXPECT_FALSE(cache.insert(key, m)); // duplicate: no re-observation
    m.total_w = std::numeric_limits<double>::quiet_NaN();
    runner::RunKey other = key;
    other.n = 2;
    EXPECT_FALSE(cache.insert(other, m)); // inadmissible: never observed

    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].workload, key.workload);
    EXPECT_EQ(seen[0].n, key.n);
}

} // namespace
