/**
 * @file
 * Observability-layer tests: the tracer must be inert when disabled,
 * recording must not change a bit of any sweep result at any job count,
 * the emitted Chrome-trace JSON must be well formed (matched B/E pairs,
 * monotone per-thread timestamps, valid thread ids), RunMetrics must
 * agree field-for-field with the SweepReport it snapshots, and
 * concurrent span emission from many threads must be race-free (this
 * binary runs under TSan in CI).
 */

#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runner/run_metrics.hpp"
#include "runner/sweep_runner.hpp"
#include "util/trace.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;

constexpr double kScale = 0.05;

/** Reset the process-global tracer between tests. */
void
resetTracer()
{
    util::Tracer& tracer = util::Tracer::instance();
    tracer.disable();
    tracer.clear();
}

std::vector<const workloads::WorkloadInfo*>
someApps()
{
    return {&workloads::byName("FMM"), &workloads::byName("Radix")};
}

void
expectSameRows(const std::vector<std::vector<runner::Scenario1Row>>& a,
               const std::vector<std::vector<runner::Scenario1Row>>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].size(), b[i].size());
        for (std::size_t j = 0; j < a[i].size(); ++j) {
            const runner::Scenario1Row& x = a[i][j];
            const runner::Scenario1Row& y = b[i][j];
            EXPECT_EQ(x.n, y.n);
            EXPECT_EQ(x.eps_n, y.eps_n);
            EXPECT_EQ(x.freq_hz, y.freq_hz);
            EXPECT_EQ(x.vdd, y.vdd);
            EXPECT_EQ(x.actual_speedup, y.actual_speedup);
            EXPECT_EQ(x.normalized_power, y.normalized_power);
            EXPECT_EQ(x.normalized_density, y.normalized_density);
            EXPECT_EQ(x.avg_temp_c, y.avg_temp_c);
            EXPECT_EQ(x.failed, y.failed);
        }
    }
}

std::vector<std::vector<runner::Scenario1Row>>
runSweep(int jobs)
{
    runner::SweepRunner::Options options;
    options.jobs = jobs;
    options.scale = kScale;
    runner::SweepRunner sweep(options);
    return sweep.scenario1Sweep(someApps(), {1, 2, 4});
}

TEST(Tracer, DisabledRecordsNothing)
{
    resetTracer();
    {
        TLPPM_TRACE_SCOPE("test", "should-not-record");
        util::traceInstant("test", "also-not-recorded");
    }
    EXPECT_TRUE(util::Tracer::instance().snapshot().empty());
}

TEST(Tracer, ResultsAreByteIdenticalWithTracingOnOrOff)
{
    resetTracer();
    const auto reference = runSweep(1);

    util::Tracer::instance().enable(""); // buffer only, no file
    const auto traced_serial = runSweep(1);
    const auto traced_parallel = runSweep(4);
    resetTracer();
    const auto plain_parallel = runSweep(4);

    expectSameRows(reference, traced_serial);
    expectSameRows(reference, traced_parallel);
    expectSameRows(reference, plain_parallel);
}

/** One parsed trace-event line of Tracer::json(). */
struct ParsedEvent
{
    char ph = '?';
    double ts = 0.0;
    int tid = -1;
    std::string name;
};

/** Parse the tracer's own JSON (one event object per line, fixed key
 *  order — see appendEvent in trace.cpp). */
std::vector<ParsedEvent>
parseTraceJson(const std::string& json)
{
    std::vector<ParsedEvent> events;
    std::size_t pos = 0;
    while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
        ParsedEvent ev;
        const std::size_t name_start = pos + 9;
        const std::size_t name_end = json.find("\",\"cat\":", name_start);
        EXPECT_NE(name_end, std::string::npos);
        ev.name = json.substr(name_start, name_end - name_start);
        const std::size_t ph = json.find("\"ph\":\"", name_end);
        EXPECT_NE(ph, std::string::npos);
        ev.ph = json[ph + 6];
        const std::size_t ts = json.find("\"ts\":", ph);
        EXPECT_NE(ts, std::string::npos);
        ev.ts = std::strtod(json.c_str() + ts + 5, nullptr);
        const std::size_t tid = json.find("\"tid\":", ts);
        EXPECT_NE(tid, std::string::npos);
        ev.tid = std::atoi(json.c_str() + tid + 6);
        pos = tid;
        events.push_back(std::move(ev));
    }
    return events;
}

TEST(Tracer, JsonIsWellFormed)
{
    resetTracer();
    util::Tracer::instance().enable("");
    (void)runSweep(4);
    util::Tracer::instance().disable();

    const std::vector<ParsedEvent> events =
        parseTraceJson(util::Tracer::instance().json());
    ASSERT_FALSE(events.empty());

    // Matched B/E pairs per thread (a stack per tid must never
    // underflow and must end empty), monotone timestamps within each
    // thread's emission order, and sane ids everywhere.
    std::map<int, int> open_spans;
    std::map<int, double> last_ts;
    for (const ParsedEvent& ev : events) {
        EXPECT_TRUE(ev.ph == 'B' || ev.ph == 'E' || ev.ph == 'i')
            << "unexpected phase " << ev.ph;
        EXPECT_GE(ev.tid, 1);
        EXPECT_FALSE(ev.name.empty());
        EXPECT_GE(ev.ts, 0.0);
        if (last_ts.count(ev.tid)) {
            EXPECT_GE(ev.ts, last_ts[ev.tid])
                << "timestamps regressed within tid " << ev.tid;
        }
        last_ts[ev.tid] = ev.ts;
        if (ev.ph == 'B') {
            ++open_spans[ev.tid];
        } else if (ev.ph == 'E') {
            ASSERT_GT(open_spans[ev.tid], 0)
                << "E without matching B on tid " << ev.tid;
            --open_spans[ev.tid];
        }
    }
    for (const auto& [tid, open] : open_spans)
        EXPECT_EQ(open, 0) << "unclosed span(s) on tid " << tid;
    resetTracer();
}

TEST(Tracer, SnapshotMatchesJsonEventCount)
{
    resetTracer();
    util::Tracer::instance().enable("");
    (void)runSweep(2);
    util::Tracer::instance().disable();

    std::size_t spans = 0, instants = 0;
    for (const util::TraceRecord& r : util::Tracer::instance().snapshot())
        (r.instant ? instants : spans) += 1;
    const std::vector<ParsedEvent> events =
        parseTraceJson(util::Tracer::instance().json());
    std::size_t b = 0, e = 0, i = 0;
    for (const ParsedEvent& ev : events) {
        if (ev.ph == 'B')
            ++b;
        else if (ev.ph == 'E')
            ++e;
        else
            ++i;
    }
    EXPECT_EQ(b, spans);
    EXPECT_EQ(e, spans);
    EXPECT_EQ(i, instants);
    resetTracer();
}

TEST(Tracer, ConcurrentEmissionIsRaceFree)
{
    resetTracer();
    util::Tracer::instance().enable("");
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 250;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int s = 0; s < kSpansPerThread; ++s) {
                TLPPM_TRACE_SCOPE("stress", "t", t, ":outer", s);
                {
                    TLPPM_TRACE_SCOPE("stress", "t", t, ":inner", s);
                    util::traceInstant("stress", "t", t, ":mark", s);
                }
            }
        });
    }
    for (std::thread& thread : threads)
        thread.join();
    util::Tracer::instance().disable();

    const std::vector<util::TraceRecord> records =
        util::Tracer::instance().snapshot();
    std::size_t spans = 0, instants = 0;
    for (const util::TraceRecord& r : records)
        (r.instant ? instants : spans) += 1;
    EXPECT_EQ(spans,
              static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
    EXPECT_EQ(instants,
              static_cast<std::size_t>(kThreads) * kSpansPerThread);
    resetTracer();
}

TEST(RunMetrics, AgreesWithSweepReport)
{
    runner::SweepRunner::Options options;
    options.jobs = 1;
    options.scale = kScale;
    runner::SweepRunner sweep(options);
    (void)sweep.scenario1Sweep(someApps(), {1, 2});
    const runner::SweepReport& report = sweep.lastReport();

    const runner::RunMetrics m = runner::RunMetrics::fromReport(report);
    EXPECT_EQ(m.ok, report.ok);
    EXPECT_EQ(m.failed, report.failed.size());
    EXPECT_EQ(m.retried, report.retried);
    EXPECT_EQ(m.skipped, report.skipped);
    EXPECT_EQ(m.replayed, report.replayed);
    EXPECT_EQ(m.sim_calls, report.sim_calls);
    EXPECT_EQ(m.sim_events, report.sim_events);
    EXPECT_EQ(m.price_calls, report.price_calls);
    EXPECT_EQ(m.raw_hits, report.raw_hits);
    EXPECT_EQ(m.raw_misses, report.raw_misses);
    EXPECT_EQ(m.priced_hits, report.priced_hits);
    EXPECT_EQ(m.priced_misses, report.priced_misses);
    EXPECT_EQ(m.thermal_damped_solves, report.thermal_damped_solves);
    EXPECT_EQ(m.thermal_accelerated_solves,
              report.thermal_accelerated_solves);
    EXPECT_EQ(m.thermal_fallback_solves, report.thermal_fallback_solves);
    EXPECT_EQ(m.thermal_solves, report.thermal_solves);
    EXPECT_EQ(m.thermal_solve_passes, report.thermal_solve_passes);
    EXPECT_EQ(m.thermal_factorizations, report.thermal_factorizations);
    EXPECT_EQ(m.thermal_max_batch_rhs, report.thermal_max_batch_rhs);
    EXPECT_EQ(m.queue_high_water, report.queue_high_water);
    EXPECT_EQ(m.core_cycles.size(), report.core_cycles.size());

    // The sweep actually ran simulations, priced points, and classified
    // every thermal solve into exactly one rung.
    EXPECT_GT(m.sim_calls, 0u);
    EXPECT_GT(m.price_calls, 0u);
    EXPECT_EQ(m.thermal_damped_solves + m.thermal_accelerated_solves +
                  m.thermal_fallback_solves,
              m.price_calls);

    // Linear-solver accounting: every RHS rode some factor traversal,
    // and traversals can never outnumber the sides they carried.
    EXPECT_GT(m.thermal_solves, 0u);
    EXPECT_GT(m.thermal_solve_passes, 0u);
    EXPECT_LE(m.thermal_solve_passes, m.thermal_solves);
    EXPECT_GE(m.thermal_max_batch_rhs, 1u);
    EXPECT_FALSE(m.core_cycles.empty());
    std::uint64_t total_cycles = 0;
    for (const sim::CoreCycleBreakdown& c : m.core_cycles)
        total_cycles += c.busy + c.stall_mem + c.stall_sync;
    EXPECT_GT(total_cycles, 0u);
}

TEST(RunMetrics, JsonCarriesEveryCounter)
{
    runner::SweepRunner::Options options;
    options.jobs = 1;
    options.scale = kScale;
    runner::SweepRunner sweep(options);
    (void)sweep.scenario1Sweep({&workloads::byName("Radix")}, {1, 2});

    const std::string json = sweep.lastReport().metricsJson();
    for (const char* key :
         {"\"ok\":", "\"failed\":", "\"retried\":", "\"skipped\":",
          "\"replayed\":", "\"sim_calls\":", "\"sim_events\":",
          "\"price_calls\":", "\"raw_cache_hits\":",
          "\"raw_cache_misses\":", "\"raw_cache_hit_rate\":",
          "\"priced_cache_hits\":", "\"priced_cache_misses\":",
          "\"priced_cache_hit_rate\":", "\"thermal_damped_solves\":",
          "\"thermal_accelerated_solves\":",
          "\"thermal_fallback_solves\":", "\"thermal_solves\":",
          "\"thermal_solve_passes\":", "\"thermal_factorizations\":",
          "\"thermal_max_batch_rhs\":", "\"queue_high_water\":",
          "\"per_core\":", "\"busy\":", "\"stall_mem\":",
          "\"stall_sync\":"}) {
        EXPECT_NE(json.find(key), std::string::npos)
            << "metrics JSON lost key " << key;
    }

    // Serial metrics are bit-reproducible: the same sweep again yields
    // the same snapshot text.
    runner::SweepRunner again(options);
    (void)again.scenario1Sweep({&workloads::byName("Radix")}, {1, 2});
    EXPECT_EQ(json, again.lastReport().metricsJson());
}

} // namespace
