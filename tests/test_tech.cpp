/**
 * @file
 * Tests for tlp_tech: the alpha-power frequency law, the leakage
 * reference model and curve fit (the paper's Eq. 1/3 machinery), the
 * technology presets, and the V/f operating-point table.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tech/alpha_power.hpp"
#include "tech/leakage.hpp"
#include "tech/technology.hpp"
#include "tech/vf_table.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace {

using namespace tlp;
using tech::AlphaPowerLaw;
using tech::Technology;

// ------------------------------------------------------------ alpha-power

TEST(AlphaPower, NominalPointIsCalibrated)
{
    AlphaPowerLaw law(1.1, 0.18, 3.2e9, 1.3);
    EXPECT_NEAR(law.maxFrequency(1.1), 3.2e9, 1.0);
}

TEST(AlphaPower, ZeroAtThreshold)
{
    AlphaPowerLaw law(1.1, 0.18, 3.2e9, 1.3);
    EXPECT_DOUBLE_EQ(law.maxFrequency(0.18), 0.0);
    EXPECT_DOUBLE_EQ(law.maxFrequency(0.1), 0.0);
}

TEST(AlphaPower, MonotoneIncreasingAboveThreshold)
{
    AlphaPowerLaw law(1.1, 0.18, 3.2e9, 2.0);
    double prev = 0.0;
    for (double v = 0.2; v <= 2.2; v += 0.05) {
        const double f = law.maxFrequency(v);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(AlphaPower, InverseRoundTrips)
{
    AlphaPowerLaw law(1.1, 0.18, 3.2e9, 1.3);
    for (double f = 2e8; f <= 3.2e9; f += 2e8) {
        const double v = law.voltageFor(f);
        EXPECT_NEAR(law.maxFrequency(v), f, f * 1e-6);
    }
}

TEST(AlphaPower, InverseRejectsUnreachableFrequency)
{
    AlphaPowerLaw law(1.1, 0.18, 3.2e9, 1.3);
    EXPECT_THROW(law.voltageFor(1e12), util::FatalError);
    EXPECT_THROW(law.voltageFor(0.0), util::FatalError);
}

TEST(AlphaPower, RejectsDegenerateParameters)
{
    EXPECT_THROW(AlphaPowerLaw(0.1, 0.18, 3.2e9), util::FatalError);
    EXPECT_THROW(AlphaPowerLaw(1.1, 0.18, -1.0), util::FatalError);
    EXPECT_THROW(AlphaPowerLaw(1.1, 0.18, 3.2e9, 0.0), util::FatalError);
}

TEST(AlphaPower, HigherAlphaScalesVoltageLessAggressively)
{
    // At the same target frequency, a larger alpha requires a higher
    // supply (the f(V) curve collapses faster near threshold).
    AlphaPowerLaw shallow(1.1, 0.18, 3.2e9, 1.3);
    AlphaPowerLaw steep(1.1, 0.18, 3.2e9, 2.0);
    EXPECT_LT(shallow.voltageFor(1.6e9), steep.voltageFor(1.6e9));
}

// ---------------------------------------------------------------- leakage

class LeakageFixture : public ::testing::Test
{
  protected:
    tech::LeakageReferenceParams params65_ =
        tech::tech65nm().params().leakage_reference;
};

TEST_F(LeakageFixture, NormalizedAtNominalRoomTemperature)
{
    tech::LeakageReference ref(params65_);
    EXPECT_NEAR(ref.current(params65_.v_nominal, 25.0), 1.0, 1e-12);
}

TEST_F(LeakageFixture, GateFractionRespectedAtNominal)
{
    tech::LeakageReference ref(params65_);
    EXPECT_NEAR(ref.gateOxide(params65_.v_nominal),
                params65_.gate_fraction_nominal, 1e-12);
}

TEST_F(LeakageFixture, CurrentGrowsWithTemperature)
{
    tech::LeakageReference ref(params65_);
    double prev = 0.0;
    for (double t = 25.0; t <= 110.0; t += 5.0) {
        const double i = ref.current(1.1, t);
        EXPECT_GT(i, prev);
        prev = i;
    }
}

TEST_F(LeakageFixture, SubthresholdGrowsWithVoltageViaDibl)
{
    tech::LeakageReference ref(params65_);
    EXPECT_GT(ref.subthreshold(1.1, 80.0), ref.subthreshold(0.5, 80.0));
}

TEST_F(LeakageFixture, GateLeakageDiesAtLowVoltage)
{
    tech::LeakageReference ref(params65_);
    EXPECT_LT(ref.gateOxide(0.36), 0.05 * ref.gateOxide(1.1));
}

TEST_F(LeakageFixture, FitMatchesReferenceWithinPaperBounds)
{
    // The paper reports max HSpice-vs-fit errors of 9.5% / 7.5%; our fit
    // over the same window must do at least as well.
    for (const auto& tech : {tech::tech130nm(), tech::tech65nm()}) {
        const auto& report = tech.leakageFitReport();
        EXPECT_LT(report.max_rel_error, 0.095)
            << tech.name() << " fit worse than the paper's 130nm bound";
        EXPECT_LT(report.avg_rel_error, 0.02) << tech.name();
    }
}

TEST_F(LeakageFixture, FitIsExactAtTheAnchorPoint)
{
    const Technology tech = tech::tech65nm();
    EXPECT_NEAR(tech.leakageFit().scale(1.1, 25.0), 1.0, 0.05);
}

TEST_F(LeakageFixture, FitterRejectsDegenerateWindows)
{
    tech::LeakageReference ref(params65_);
    EXPECT_THROW(tech::fitLeakageScale(ref, 0.5, 0.5, 40.0, 110.0),
                 util::FatalError);
    EXPECT_THROW(tech::fitLeakageScale(ref, 0.4, 1.1, 40.0, 110.0, 2),
                 util::FatalError);
}

/** Property sweep: the fitted scale stays within 15% of the reference on
 *  a denser grid than the one it was fitted on (no overfitting). */
class FitGeneralization
    : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FitGeneralization, DenseGridStaysClose)
{
    const Technology tech = std::string(GetParam()) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    const auto& ref = tech.leakageReference();
    const double ref_nominal = ref.current(tech.vddNominal(), 25.0);
    for (double v = tech.vMin(); v <= tech.vddNominal(); v += 0.017) {
        for (double t = 41.0; t <= 109.0; t += 3.7) {
            const double want = ref.current(v, t) / ref_nominal;
            const double got = tech.leakageFit().scale(v, t);
            ASSERT_NEAR(got / want, 1.0, 0.15)
                << "at V=" << v << " T=" << t;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, FitGeneralization,
                         ::testing::Values("130nm", "65nm"));

// ------------------------------------------------------------- technology

TEST(Technology, PresetInvariants)
{
    for (const auto& tech : {tech::tech130nm(), tech::tech65nm()}) {
        EXPECT_GT(tech.vddNominal(), tech.vth());
        EXPECT_GE(tech.vMin(), tech.vth());
        EXPECT_LT(tech.vMin(), tech.vddNominal());
        EXPECT_GT(tech.corePowerHot(), 0.0);
        EXPECT_NEAR(tech.dynamicPowerNominal() + tech.staticPowerHot(),
                    tech.corePowerHot(), 1e-9);
    }
}

TEST(Technology, SixtyFiveNmMatchesPaperTable1)
{
    const Technology t = tech::tech65nm();
    EXPECT_DOUBLE_EQ(t.vddNominal(), 1.1);
    EXPECT_DOUBLE_EQ(t.vth(), 0.18);
    EXPECT_DOUBLE_EQ(t.fNominal(), 3.2e9);
    EXPECT_DOUBLE_EQ(t.featureNm(), 65.0);
}

TEST(Technology, StaticShareLargerAtSixtyFiveNm)
{
    // The ITRS attributes a higher static fraction to the smaller node;
    // this asymmetry drives the Figure 2 contrast.
    EXPECT_GT(tech::tech65nm().params().static_fraction_hot,
              tech::tech130nm().params().static_fraction_hot);
}

TEST(Technology, StaticPowerConsistentAtHotAnchor)
{
    const Technology t = tech::tech65nm();
    EXPECT_NEAR(t.staticPower(t.vddNominal(), t.tHotC()),
                t.staticPowerHot(), t.staticPowerHot() * 1e-9);
}

TEST(Technology, StaticPowerFallsWithTemperature)
{
    const Technology t = tech::tech65nm();
    EXPECT_LT(t.staticPower(1.1, 50.0), t.staticPower(1.1, 100.0));
}

TEST(Technology, DynamicPowerScalesAsV2F)
{
    const Technology t = tech::tech65nm();
    const double full = t.dynamicPower(1.1, 3.2e9);
    EXPECT_NEAR(t.dynamicPower(0.55, 3.2e9), full * 0.25, full * 1e-9);
    EXPECT_NEAR(t.dynamicPower(1.1, 1.6e9), full * 0.5, full * 1e-9);
}

TEST(Technology, RejectsVMinBelowVth)
{
    Technology::Params p = tech::tech65nm().params();
    p.v_min = p.vth * 0.5;
    EXPECT_THROW(Technology{std::move(p)}, util::FatalError);
}

// --------------------------------------------------------------- vf table

TEST(VfTable, MonotoneAndAnchored)
{
    const Technology t = tech::tech65nm();
    const tech::VfTable vf = tech::pentiumMLike(t);
    EXPECT_NEAR(vf.voltageFor(t.fNominal()), t.vddNominal(), 1e-9);
    double prev = 0.0;
    for (double f = vf.fMin(); f <= vf.fMax(); f += 1e8) {
        const double v = vf.voltageFor(f);
        EXPECT_GE(v, prev - 1e-12);
        prev = v;
    }
}

TEST(VfTable, FloorAtTwoHundredMegahertz)
{
    const Technology t = tech::tech65nm();
    const tech::VfTable vf = tech::pentiumMLike(t);
    EXPECT_DOUBLE_EQ(vf.fMin(), 2e8);
    EXPECT_NEAR(vf.voltageFor(2e8), t.vMin(), 1e-9);
}

TEST(VfTable, ClampsOutsideRange)
{
    const tech::VfTable vf = tech::pentiumMLike(tech::tech65nm());
    EXPECT_DOUBLE_EQ(vf.voltageFor(1.0), vf.voltageFor(vf.fMin()));
    EXPECT_DOUBLE_EQ(vf.voltageFor(1e12), vf.voltageFor(vf.fMax()));
}

TEST(VfTable, RejectsNonMonotoneVoltage)
{
    EXPECT_THROW(tech::VfTable({{1e9, 1.0}, {2e9, 0.8}}),
                 util::FatalError);
}

TEST(VfTable, RejectsDegenerateTables)
{
    EXPECT_THROW(tech::VfTable({{1e9, 1.0}}), util::FatalError);
    EXPECT_THROW(tech::VfTable({{1e9, 1.0}, {2e9, -0.5}}),
                 util::FatalError);
}

TEST(VfTable, VoltageBelowAlphaPowerRequirementNever)
{
    // A shipping-part table is conservative: at any tabulated frequency,
    // the table voltage is at least the alpha-power-law minimum.
    const Technology t = tech::tech65nm();
    const tech::VfTable vf = tech::pentiumMLike(t);
    for (double f = 4e8; f <= t.fNominal(); f += 2e8) {
        EXPECT_GE(vf.voltageFor(f) + 1e-9,
                  t.frequencyLaw().voltageFor(f) * 0.85)
            << "at f=" << f;
    }
}

} // namespace
