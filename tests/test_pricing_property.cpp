/**
 * @file
 * Property test of the split measurement pipeline: for any operating
 * point (v, f), simulating once (trySimulateApp) and pricing the run at v
 * (priceRun, which includes the coupled thermal solve) must equal a full
 * measure() at the same point with tolerance ZERO — the figure tables are
 * byte-compared against pre-split output, so "close" is not good enough.
 * Equality is checked on the %.17g-formatted rendering of every
 * Measurement field (the round-trip-exact format the journal uses), which
 * is a byte-compare of the values' decimal images.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "runner/raw_run_cache.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;

constexpr double kScale = 0.08;

/** Every field of @p m rendered %.17g (round-trip exact for doubles):
 *  two Measurements are byte-equal iff these strings are. */
std::string
formatted(const runner::Measurement& m)
{
    char buffer[512];
    std::snprintf(
        buffer, sizeof buffer,
        "cyc=%llu sec=%.17g fhz=%.17g vdd=%.17g dyn=%.17g sta=%.17g "
        "tot=%.17g tmp=%.17g den=%.17g ins=%llu run=%d",
        static_cast<unsigned long long>(m.cycles), m.seconds, m.freq_hz,
        m.vdd, m.dynamic_w, m.static_w, m.total_w, m.avg_core_temp_c,
        m.core_power_density_w_m2,
        static_cast<unsigned long long>(m.instructions),
        m.runaway ? 1 : 0);
    return buffer;
}

class PricingProperty : public ::testing::TestWithParam<const char*>
{
};

TEST_P(PricingProperty, SplitPipelineEqualsFullMeasureOnVfGrid)
{
    const runner::Experiment exp(kScale);
    const auto& app = workloads::byName(GetParam());
    const double f1 = exp.technology().fNominal();
    const double v1 = exp.technology().vddNominal();
    const double v_min = exp.technology().vMin();

    const std::vector<double> freqs = {0.4 * f1, 0.7 * f1, f1};
    const std::vector<double> vdds = {v_min, 0.5 * (v_min + v1), v1};

    for (const double f : freqs) {
        // One simulation per frequency...
        const auto run = exp.trySimulateApp(app, 2, f);
        ASSERT_TRUE(run.ok()) << run.error().describe();
        for (const double v : vdds) {
            // ...priced at every voltage equals the full pipeline.
            const runner::Measurement split = exp.priceRun(*run.value(), v);
            const runner::Measurement full =
                exp.measure(app.make(2, kScale), v, f);
            EXPECT_EQ(formatted(split), formatted(full))
                << GetParam() << " at v=" << v << " f=" << f;
        }
    }
}

TEST_P(PricingProperty, PriceBatchEqualsScalarPriceRunOnVfGrid)
{
    // The batched pricer runs all voltages of a run through one lockstep
    // thermal fixed point; every entry must render %.17g-identical to the
    // scalar priceRun of that voltage — batching may only amortize factor
    // traversals, never move a bit.
    const runner::Experiment exp(kScale);
    const auto& app = workloads::byName(GetParam());
    const double f1 = exp.technology().fNominal();
    const double v1 = exp.technology().vddNominal();
    const double v_min = exp.technology().vMin();

    const std::vector<double> vdds = {v_min, 0.35 * v_min + 0.65 * v1,
                                      0.5 * (v_min + v1), v1};
    for (const double f : {0.5 * f1, f1}) {
        const auto run = exp.trySimulateApp(app, 2, f);
        ASSERT_TRUE(run.ok()) << run.error().describe();
        const std::vector<runner::Measurement> batch =
            exp.priceBatch(*run.value(), vdds);
        ASSERT_EQ(batch.size(), vdds.size());
        for (std::size_t p = 0; p < vdds.size(); ++p) {
            const runner::Measurement scalar =
                exp.priceRun(*run.value(), vdds[p]);
            EXPECT_EQ(formatted(batch[p]), formatted(scalar))
                << GetParam() << " at v=" << vdds[p] << " f=" << f;
        }
    }
}

TEST_P(PricingProperty, RawCachedRunPricesIdenticallyToFreshRun)
{
    // The shared raw cache hands every worker the same RunResult object;
    // pricing through the cache must not perturb a single bit relative
    // to pricing a freshly simulated run.
    runner::RawRunCache raw;
    const runner::Experiment cached(kScale, sim::CmpConfig{}, &raw);
    const runner::Experiment fresh(kScale);
    const auto& app = workloads::byName(GetParam());
    const double f = 0.6 * cached.technology().fNominal();
    const double v1 = cached.technology().vddNominal();

    const auto first = cached.trySimulateApp(app, 4, f);
    ASSERT_TRUE(first.ok());
    const auto replayed = cached.trySimulateApp(app, 4, f);
    ASSERT_TRUE(replayed.ok());
    EXPECT_EQ(first.value().get(), replayed.value().get()); // raw hit

    for (const double v : {v1, v1 - 0.15}) {
        const runner::Measurement via_cache =
            cached.priceRun(*replayed.value(), v);
        const runner::Measurement via_fresh =
            fresh.measure(app.make(4, kScale), v, f);
        EXPECT_EQ(formatted(via_cache), formatted(via_fresh))
            << GetParam() << " at v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(TwoWorkloads, PricingProperty,
                         ::testing::Values("FMM", "Radix"));

} // namespace
