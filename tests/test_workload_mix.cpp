/**
 * @file
 * Instruction-mix and working-set characterization of every workload,
 * including snapshot regressions of the generated streams (guarding the
 * determinism contract across refactors) and cross-app regime orderings
 * the figures rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/cmp.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;
using sim::Op;
using sim::OpType;
using sim::Program;

struct Mix
{
    std::uint64_t insts = 0;
    std::uint64_t fp = 0;
    std::uint64_t mem = 0;
    std::uint64_t lines = 0; ///< distinct cache lines touched
};

Mix
mixOf(const Program& prog)
{
    Mix m;
    std::set<std::uint64_t> lines;
    for (const auto& t : prog.threads) {
        for (const Op& op : t.ops()) {
            switch (op.type) {
              case OpType::IntOps:
                m.insts += op.count;
                break;
              case OpType::FpOps:
                m.insts += op.count;
                m.fp += op.count;
                break;
              case OpType::Load:
              case OpType::Store:
                ++m.insts;
                ++m.mem;
                lines.insert(op.addr / 64);
                break;
              default:
                break;
            }
        }
    }
    m.lines = lines.size();
    return m;
}

/**
 * Snapshot regression: the exact dynamic instruction count of every
 * generator at a reference configuration. These values are part of the
 * determinism contract — a change here means previously published
 * numbers are no longer reproducible and must be a conscious decision
 * (update the constant AND note it in EXPERIMENTS.md).
 */
struct Snapshot
{
    const char* name;
    std::uint64_t insts_2_threads_scale_quarter;
};

class SnapshotSweep : public ::testing::TestWithParam<Snapshot>
{
};

TEST_P(SnapshotSweep, InstructionCountIsStable)
{
    const auto [name, expected] = GetParam();
    const Program prog = workloads::byName(name).make(2, 0.25);
    EXPECT_EQ(prog.instructionCount(), expected) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SnapshotSweep,
    ::testing::Values(Snapshot{"Barnes", 821376},
                      Snapshot{"Cholesky", 393709},
                      Snapshot{"FFT", 303104},
                      Snapshot{"FMM", 1332864},
                      Snapshot{"LU", 48256},
                      Snapshot{"Ocean", 224536},
                      Snapshot{"Radiosity", 254122},
                      Snapshot{"Radix", 459904},
                      Snapshot{"Raytrace", 1305575},
                      Snapshot{"Volrend", 378027},
                      Snapshot{"Water-Nsq", 218240},
                      Snapshot{"Water-Sp", 280320}));

TEST(Mixes, RegimeLabelsMatchMeasuredMixes)
{
    // The registry's regime tags must be consistent with the generated
    // streams: "memory" apps have the highest memory-op share of the
    // suite, "compute" apps the lowest.
    double worst_compute = 0.0;
    double best_memory = 1.0;
    for (const auto& info : workloads::suite()) {
        const Mix m = mixOf(info.make(1, 0.25));
        const double mem_share =
            static_cast<double>(m.mem) / m.insts;
        if (info.regime == "compute")
            worst_compute = std::max(worst_compute, mem_share);
        if (info.regime == "memory")
            best_memory = std::min(best_memory, mem_share);
    }
    EXPECT_LT(worst_compute, best_memory + 0.06);
}

TEST(Mixes, WorkingSetTiersAreRespected)
{
    // Radix and Ocean carry the largest footprints of the suite (the
    // memory-bound tier); the Water codes the smallest.
    const auto lines = [](const char* name) {
        return mixOf(workloads::byName(name).make(1, 1.0)).lines;
    };
    const auto radix = lines("Radix");
    const auto ocean = lines("Ocean");
    const auto water = lines("Water-Sp");
    EXPECT_GT(radix, 16u * water);
    EXPECT_GT(ocean, 16u * water);
}

TEST(Mixes, FpShareOrderingFmmHighestRadixZero)
{
    double fmm_share = 0.0, radix_share = 1.0;
    for (const auto& info : workloads::suite()) {
        const Mix m = mixOf(info.make(1, 0.25));
        const double fp_share = static_cast<double>(m.fp) / m.insts;
        if (info.name == "FMM")
            fmm_share = fp_share;
        if (info.name == "Radix")
            radix_share = fp_share;
    }
    EXPECT_GT(fmm_share, 0.85);
    EXPECT_EQ(radix_share, 0.0);
}

TEST(Mixes, ThreadCountPreservesMemoryFootprint)
{
    // The same data structures are touched regardless of N (only the
    // partitioning changes).
    for (const char* name : {"Ocean", "LU", "Radix"}) {
        const auto one = mixOf(workloads::byName(name).make(1, 0.25));
        const auto eight = mixOf(workloads::byName(name).make(8, 0.25));
        EXPECT_NEAR(static_cast<double>(eight.lines) / one.lines, 1.0,
                    0.1)
            << name;
    }
}

TEST(Mixes, SimulatedIpcOrderingMatchesRegimes)
{
    // On the real machine model, the compute tier sustains higher IPC
    // than the memory tier (cold caches included).
    const sim::Cmp cmp{sim::CmpConfig{}};
    const auto ipc = [&](const char* name) {
        return cmp.run(workloads::byName(name).make(1, 0.2), 3.2e9).ipc();
    };
    EXPECT_GT(ipc("Water-Nsq"), ipc("Radix") * 2.0);
    EXPECT_GT(ipc("FMM"), ipc("Ocean"));
}

} // namespace
