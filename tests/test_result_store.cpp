/**
 * @file
 * ResultStore tests: the crash-safety protocol of the persistent result
 * store. Every injected fault — torn table write, corrupt read, corrupt
 * manifest, kill inside the compaction publish window — must degrade to
 * quarantine-and-recompute, never to a wrong or lost answer; and two
 * daemons must never share one store (advisory lock).
 */

#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/fault_injection.hpp"
#include "runner/journal.hpp"
#include "service/result_store.hpp"
#include "service/wire.hpp"
#include "util/fs.hpp"

namespace {

using namespace tlp;

/** Unique store directory per test; contents removed on destruction. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "tlppm_store_" + tag +
                "_" + std::to_string(::getpid()))
    {
        removeAll();
    }
    ~TempStoreDir() { removeAll(); }
    const std::string& path() const { return path_; }

  private:
    void removeAll()
    {
        for (const char* sub : {"/tables", "/queue", "/work", "/results"}) {
            const std::string dir = path_ + sub;
            for (const std::string& name : util::listDir(dir))
                util::removePath(dir + "/" + name);
            util::removePath(dir);
        }
        for (const std::string& name : util::listDir(path_))
            util::removePath(path_ + "/" + name);
        util::removePath(path_);
    }

    std::string path_;
};

std::unique_ptr<service::ResultStore>
openOrDie(const std::string& dir)
{
    auto store = service::ResultStore::open(dir);
    EXPECT_TRUE(store.ok())
        << (store.ok() ? std::string() : store.error().describe());
    return std::move(store.value());
}

runner::RunKey
pointKey(int n)
{
    return runner::RunKey{"FFT", n, 0.05, 1.2, 3.2e9};
}

runner::Measurement
pointMeasurement(double total_w)
{
    runner::Measurement m;
    m.cycles = 1000;
    m.seconds = 1e-3;
    m.freq_hz = 3.2e9;
    m.vdd = 1.2;
    m.dynamic_w = total_w / 2;
    m.static_w = total_w / 2;
    m.total_w = total_w;
    m.avg_core_temp_c = 70.0;
    m.core_power_density_w_m2 = 1e5;
    m.instructions = 500;
    return m;
}

TEST(ResultStore, OpenCreatesLayoutAndSealedManifest)
{
    const TempStoreDir dir("layout");
    auto store = openOrDie(dir.path());
    EXPECT_EQ(store->generation(), 0u);
    EXPECT_EQ(store->pointsPath(), dir.path() + "/points.g0.jsonl");
    for (const char* sub : {"/tables", "/queue", "/work", "/results"})
        EXPECT_TRUE(util::pathExists(dir.path() + sub)) << sub;

    auto manifest = util::readFile(dir.path() + "/MANIFEST");
    ASSERT_TRUE(manifest.ok());
    std::string line = manifest.value();
    ASSERT_FALSE(line.empty());
    line.pop_back(); // the newline
    EXPECT_TRUE(service::checkSealedJsonLine(line));
    std::uint64_t generation = 99;
    EXPECT_TRUE(service::jsonFieldU64(line, "generation", generation));
    EXPECT_EQ(generation, 0u);
}

TEST(ResultStore, SecondOpenIsRefusedWhileTheLockIsHeld)
{
    const TempStoreDir dir("lock");
    auto store = openOrDie(dir.path());
    auto second = service::ResultStore::open(dir.path());
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, util::ErrorCode::Overloaded);

    // Releasing the first handle frees the store.
    store.reset();
    auto third = service::ResultStore::open(dir.path());
    EXPECT_TRUE(third.ok());
}

TEST(ResultStore, TableKeyEncodesFigureAndQuantizedScale)
{
    EXPECT_EQ(service::tableKey("fig3", 0.05),
              service::tableKey("fig3", 0.05));
    EXPECT_NE(service::tableKey("fig3", 0.05),
              service::tableKey("fig3", 0.1));
    EXPECT_NE(service::tableKey("fig3", 0.05),
              service::tableKey("fig4", 0.05));
}

TEST(ResultStore, TableRoundTripsAndCountsHitsAndMisses)
{
    const TempStoreDir dir("roundtrip");
    auto store = openOrDie(dir.path());
    const std::string key = service::tableKey("fig3", 0.05);
    const std::string payload = "row1\nrow2\nrow3 with \"quotes\"\n";

    auto miss = store->loadTable(key);
    ASSERT_TRUE(miss.ok());
    EXPECT_FALSE(miss.value().has_value());

    ASSERT_TRUE(store->storeTable(key, payload).ok());
    auto hit = store->loadTable(key);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(hit.value().has_value());
    EXPECT_EQ(*hit.value(), payload); // byte-identical round trip

    const service::StoreStats stats = store->stats();
    EXPECT_EQ(stats.table_hits, 1u);
    EXPECT_EQ(stats.table_misses, 1u);
    EXPECT_EQ(stats.quarantined, 0u);
}

TEST(ResultStore, PathEscapingTableKeysAreRejected)
{
    const TempStoreDir dir("badkey");
    auto store = openOrDie(dir.path());
    for (const char* key : {"../evil", "a/b", "", ".hidden", "sp ace"}) {
        auto stored = store->storeTable(key, "x");
        EXPECT_FALSE(stored.ok()) << key;
        auto loaded = store->loadTable(key);
        EXPECT_FALSE(loaded.ok()) << key;
    }
}

TEST(ResultStore, CorruptReadIsQuarantinedAndRecomputable)
{
    const TempStoreDir dir("corrupt");
    auto store = openOrDie(dir.path());
    const std::string key = service::tableKey("fig1", 1.0);
    ASSERT_TRUE(store->storeTable(key, "precious table bytes").ok());

    {
        runner::StoreFaultPlan plan;
        plan.kind = runner::StoreFaultKind::CorruptRead;
        runner::ScopedStoreFaultPlan scoped(plan);
        auto load = store->loadTable(key);
        ASSERT_TRUE(load.ok());
        EXPECT_FALSE(load.value().has_value()); // corruption -> miss
    }
    EXPECT_EQ(store->stats().quarantined, 1u);
    EXPECT_TRUE(util::pathExists(dir.path() + "/tables/" + key +
                                 ".table.quarantined"));

    // The recompute path rewrites the artifact; the next load is a hit.
    ASSERT_TRUE(store->storeTable(key, "precious table bytes").ok());
    auto reload = store->loadTable(key);
    ASSERT_TRUE(reload.ok());
    ASSERT_TRUE(reload.value().has_value());
    EXPECT_EQ(*reload.value(), "precious table bytes");
}

TEST(ResultStore, TornWriteIsCaughtOnTheNextLoad)
{
    const TempStoreDir dir("torn");
    auto store = openOrDie(dir.path());
    const std::string key = service::tableKey("fig2", 1.0);
    {
        runner::StoreFaultPlan plan;
        plan.kind = runner::StoreFaultKind::TornWrite;
        runner::ScopedStoreFaultPlan scoped(plan);
        // The faulted write leaves a half-written artifact at the final
        // path — the state a crash inside a non-atomic writer leaves.
        ASSERT_TRUE(store->storeTable(key, "0123456789abcdef").ok());
    }
    auto load = store->loadTable(key);
    ASSERT_TRUE(load.ok());
    EXPECT_FALSE(load.value().has_value()); // torn -> quarantined miss
    EXPECT_EQ(store->stats().quarantined, 1u);
}

TEST(ResultStore, CompactionDedupsAndDropsDamage)
{
    const TempStoreDir dir("compact");
    auto store = openOrDie(dir.path());
    {
        runner::Journal journal(store->pointsPath());
        journal.append(pointKey(1), pointMeasurement(10.0));
        journal.append(pointKey(2), pointMeasurement(20.0));
        journal.append(pointKey(1), pointMeasurement(99.0)); // duplicate
    }
    // Corrupt the duplicate line (the last one) so compaction has both a
    // duplicate and a corrupt record to drop. First record wins anyway.
    {
        std::vector<std::string> lines;
        {
            std::ifstream in(store->pointsPath());
            std::string line;
            while (std::getline(in, line))
                lines.push_back(line);
        }
        ASSERT_EQ(lines.size(), 4u); // header + three records
        lines.back()[10] ^= 0x01;    // break the last record's CRC
        std::ofstream out(store->pointsPath(), std::ios::trunc);
        for (const std::string& line : lines)
            out << line << "\n";
    }

    auto result = store->compact();
    ASSERT_TRUE(result.ok())
        << (result.ok() ? std::string() : result.error().describe());
    EXPECT_EQ(result.value().generation, 1u);
    EXPECT_EQ(result.value().kept, 2u);
    EXPECT_EQ(result.value().dropped_corrupt, 1u);
    EXPECT_EQ(store->generation(), 1u);
    EXPECT_FALSE(util::pathExists(dir.path() + "/points.g0.jsonl"));
    EXPECT_TRUE(util::pathExists(dir.path() + "/points.g1.jsonl"));

    // The rewritten generation replays clean, deduplicated, bit-intact.
    runner::RunCache cache;
    const runner::ReplayStats replay = store->replayPoints(cache);
    EXPECT_EQ(replay.entries, 2u);
    EXPECT_EQ(replay.corrupt, 0u);
    const auto kept = cache.find(pointKey(1));
    ASSERT_TRUE(kept.has_value());
    EXPECT_EQ(kept->total_w, 10.0); // the first record, not the dup
}

TEST(ResultStore, KillInsideCompactionPublishWindowRecovers)
{
    const TempStoreDir dir("killcompact");
    {
        auto store = openOrDie(dir.path());
        {
            runner::Journal journal(store->pointsPath());
            journal.append(pointKey(1), pointMeasurement(10.0));
            journal.append(pointKey(2), pointMeasurement(20.0));
        }
        runner::StoreFaultPlan plan;
        plan.kind = runner::StoreFaultKind::KillCompaction;
        runner::ScopedStoreFaultPlan scoped(plan);
        EXPECT_THROW(static_cast<void>(store->compact()),
                     runner::FaultKillError);
        // Died between writing points.g1.jsonl and flipping the
        // manifest: both generations exist, the manifest names g0.
        EXPECT_TRUE(util::pathExists(dir.path() + "/points.g0.jsonl"));
        EXPECT_TRUE(util::pathExists(dir.path() + "/points.g1.jsonl"));
    }

    // Recovery: the manifest is the authority, so g0 stays live and the
    // orphaned g1 is garbage-collected; no record is lost.
    auto store = openOrDie(dir.path());
    EXPECT_EQ(store->generation(), 0u);
    EXPECT_FALSE(util::pathExists(dir.path() + "/points.g1.jsonl"));
    runner::RunCache cache;
    const runner::ReplayStats replay = store->replayPoints(cache);
    EXPECT_EQ(replay.entries, 2u);

    // And a clean compaction afterwards completes the interrupted move.
    auto result = store->compact();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().generation, 1u);
    EXPECT_EQ(result.value().kept, 2u);
}

TEST(ResultStore, CorruptManifestIsQuarantinedAndRebuilt)
{
    const TempStoreDir dir("badmanifest");
    {
        auto store = openOrDie(dir.path());
        {
            runner::Journal journal(store->pointsPath());
            journal.append(pointKey(1), pointMeasurement(10.0));
        }
        ASSERT_TRUE(store->compact().ok()); // now at generation 1
    }
    {
        std::ofstream manifest(dir.path() + "/MANIFEST",
                               std::ios::trunc);
        manifest << "{\"tlppm_store\":1,\"generation\":1,\"crc\":42}\n";
    }

    auto store = openOrDie(dir.path());
    // Rebuilt from the on-disk evidence: the highest generation present.
    EXPECT_EQ(store->generation(), 1u);
    EXPECT_GE(store->stats().quarantined, 1u);
    EXPECT_TRUE(
        util::pathExists(dir.path() + "/MANIFEST.quarantined"));
    runner::RunCache cache;
    EXPECT_EQ(store->replayPoints(cache).entries, 1u);
}

TEST(ResultStore, OpenSweepsStrayTmpFiles)
{
    const TempStoreDir dir("tmpsweep");
    {
        auto store = openOrDie(dir.path());
        ASSERT_TRUE(store->storeTable("fig1-s1000000000", "x").ok());
    }
    // Plant the debris a crash inside atomicWriteFile leaves behind.
    ASSERT_TRUE(util::writeFileRaw(
                    dir.path() + "/tables/k.table.tmp.1234", "junk")
                    .ok());
    ASSERT_TRUE(
        util::writeFileRaw(dir.path() + "/MANIFEST.tmp.1234", "junk")
            .ok());

    auto store = openOrDie(dir.path());
    EXPECT_FALSE(
        util::pathExists(dir.path() + "/tables/k.table.tmp.1234"));
    EXPECT_FALSE(util::pathExists(dir.path() + "/MANIFEST.tmp.1234"));
    // The real artifact survives the sweep.
    auto hit = store->loadTable("fig1-s1000000000");
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit.value().has_value());
}

} // namespace
