/**
 * @file
 * Tests for the per-core DVFS extension: policy equivalence when
 * balanced, monotone savings in skew, deadline feasibility, and the
 * heterogeneous chip-evaluation path it relies on.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "model/per_core_dvfs.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using model::AnalyticCmp;
using model::PerCoreDvfs;

class PerCoreFixture : public ::testing::Test
{
  protected:
    PerCoreFixture() : cmp_(tech::tech65nm(), 32), solver_(cmp_) {}

    static std::vector<double>
    skewed(int n, double ratio)
    {
        std::vector<double> w(n);
        double sum = 0.0;
        for (int i = 0; i < n; ++i) {
            w[i] = 1.0 + (ratio - 1.0) * i / std::max(1, n - 1);
            sum += w[i];
        }
        for (double& x : w)
            x /= sum;
        return w;
    }

    AnalyticCmp cmp_;
    PerCoreDvfs solver_;
};

TEST_F(PerCoreFixture, BalancedWorkYieldsIdenticalPolicies)
{
    const auto r = solver_.solve(std::vector<double>(8, 0.125));
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.saving_fraction, 0.0, 1e-9);
    EXPECT_NEAR(r.per_core.total_w, r.global.total_w,
                1e-9 * r.global.total_w);
}

TEST_F(PerCoreFixture, SavingsGrowWithSkew)
{
    double prev = -1.0;
    for (double ratio : {1.5, 2.0, 3.0, 4.0}) {
        const auto r = solver_.solve(skewed(8, ratio));
        ASSERT_TRUE(r.feasible);
        ASSERT_FALSE(r.global.runaway);
        EXPECT_GT(r.saving_fraction, prev) << "ratio " << ratio;
        prev = r.saving_fraction;
    }
    EXPECT_GT(prev, 0.1);
}

TEST_F(PerCoreFixture, PerCoreNeverWorseThanGlobal)
{
    for (double ratio : {1.0, 1.7, 2.5}) {
        const auto r = solver_.solve(skewed(4, ratio));
        ASSERT_TRUE(r.feasible);
        EXPECT_LE(r.per_core.total_w, r.global.total_w + 1e-9);
    }
}

TEST_F(PerCoreFixture, FrequenciesTrackWorkExactly)
{
    const auto work = skewed(4, 3.0);
    const auto r = solver_.solve(work);
    ASSERT_TRUE(r.feasible);
    const double f1 = cmp_.technology().fNominal();
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(r.freqs[i], f1 * work[i], 1.0);
    // Heavier threads never run slower than lighter ones.
    for (int i = 1; i < 4; ++i)
        EXPECT_GE(r.freqs[i], r.freqs[i - 1]);
}

TEST_F(PerCoreFixture, VoltagesRespectTheWindow)
{
    const auto r = solver_.solve(skewed(16, 4.0));
    ASSERT_TRUE(r.feasible);
    for (double v : r.vdds) {
        EXPECT_GE(v, cmp_.technology().vMin() - 1e-12);
        EXPECT_LE(v, cmp_.technology().vddNominal() + 1e-12);
    }
}

TEST_F(PerCoreFixture, RejectsBadDistributions)
{
    EXPECT_THROW(solver_.solve({}), util::FatalError);
    EXPECT_THROW(solver_.solve({0.5, -0.5, 1.0}), util::FatalError);
    EXPECT_THROW(solver_.solve({0.3, 0.3}), util::FatalError); // sum != 1
    EXPECT_THROW(solver_.solve(std::vector<double>(64, 1.0 / 64)),
                 util::FatalError); // more threads than cores
}

TEST_F(PerCoreFixture, EvaluatePerCoreMatchesUniformEvaluate)
{
    // With identical per-core points, the heterogeneous path must agree
    // with the uniform one.
    const std::vector<double> vdds(4, 0.8);
    const std::vector<double> freqs(4, 1.2e9);
    const auto het = cmp_.evaluatePerCore(vdds, freqs);
    const auto uni = cmp_.evaluate({4, 0.8, 1.2e9});
    EXPECT_NEAR(het.total_w, uni.total_w, 1e-6 * uni.total_w);
    EXPECT_NEAR(het.avg_active_temp_c, uni.avg_active_temp_c, 1e-6);
}

TEST_F(PerCoreFixture, EvaluatePerCoreRejectsBadInput)
{
    EXPECT_THROW(cmp_.evaluatePerCore({}, {}), util::FatalError);
    EXPECT_THROW(cmp_.evaluatePerCore({0.8, 0.8}, {1e9}),
                 util::FatalError);
    EXPECT_THROW(cmp_.evaluatePerCore({-0.8}, {1e9}), util::FatalError);
}

TEST_F(PerCoreFixture, HotterCoreIsTheFasterOne)
{
    // A strongly skewed pair: the fast core's tile runs hotter.
    const auto r = solver_.solve({0.2, 0.8});
    ASSERT_TRUE(r.feasible);
    // Re-evaluate to obtain block temperatures directly.
    const auto& plan = cmp_.thermalModel().floorplan();
    const auto coupled = thermal::solveCoupled(
        cmp_.thermalModel(), [&](const std::vector<double>& temps) {
            std::vector<double> power(plan.size(), 0.0);
            for (std::size_t i = 0; i < plan.size(); ++i) {
                const int core = plan.blocks()[i].core_id;
                if (core < 0 || core >= 2)
                    continue;
                power[i] =
                    cmp_.technology().dynamicPower(r.vdds[core],
                                                   r.freqs[core]) +
                    cmp_.technology().staticPower(r.vdds[core],
                                                  temps[i]);
            }
            return power;
        });
    const double t0 =
        coupled.thermal.block_temps_c[plan.indexOf("core0")];
    const double t1 =
        coupled.thermal.block_temps_c[plan.indexOf("core1")];
    EXPECT_GT(t1, t0);
}

} // namespace
