/**
 * @file
 * Tests for tlp_power: CactiLite scaling properties and the
 * activity-based chip power model with its renormalization and
 * temperature-dependent static power.
 */

#include <gtest/gtest.h>

#include "power/cacti_lite.hpp"
#include "power/chip_power.hpp"
#include "tech/technology.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace {

using namespace tlp;
using power::ArrayConfig;
using power::CactiLite;
using power::ChipPowerModel;
using power::CmpGeometry;

// -------------------------------------------------------------- CactiLite

TEST(CactiLite, EnergyGrowsWithArraySize)
{
    CactiLite cacti(65.0, 1.1);
    const auto small = cacti.estimate({16384, 64, 2, 1});
    const auto large = cacti.estimate({65536, 64, 2, 1});
    EXPECT_GT(large.read_energy_j, small.read_energy_j);
}

TEST(CactiLite, AreaLinearInCapacity)
{
    CactiLite cacti(65.0, 1.1);
    const auto a = cacti.estimate({65536, 64, 2, 1});
    const auto b = cacti.estimate({131072, 64, 2, 1});
    EXPECT_NEAR(b.area_m2 / a.area_m2, 2.0, 1e-9);
}

TEST(CactiLite, WritesCostMoreThanReads)
{
    CactiLite cacti(65.0, 1.1);
    const auto est = cacti.estimate({65536, 64, 2, 1});
    EXPECT_GT(est.write_energy_j, est.read_energy_j);
}

TEST(CactiLite, SmallerFeatureLowersEnergy)
{
    const ArrayConfig cfg{65536, 64, 2, 1};
    CactiLite big(130.0, 1.1), small(65.0, 1.1);
    EXPECT_GT(big.estimate(cfg).read_energy_j,
              small.estimate(cfg).read_energy_j);
}

TEST(CactiLite, VoltageScalesEnergyQuadratically)
{
    const ArrayConfig cfg{65536, 64, 2, 1};
    CactiLite hi(65.0, 1.1), lo(65.0, 0.55);
    EXPECT_NEAR(hi.estimate(cfg).read_energy_j /
                    lo.estimate(cfg).read_energy_j,
                4.0, 1e-9);
}

TEST(CactiLite, ExtraPortsCostEnergyAndArea)
{
    CactiLite cacti(65.0, 1.1);
    const auto one = cacti.estimate({65536, 64, 2, 1});
    const auto two = cacti.estimate({65536, 64, 2, 2});
    EXPECT_GT(two.read_energy_j, one.read_energy_j);
    EXPECT_GT(two.area_m2, one.area_m2);
}

TEST(CactiLite, L2AccessCostsMoreThanL1)
{
    // The banked 4 MB L2 pays inter-bank routing on top of a bank
    // access: its per-read energy must exceed the (single-ported) L1's.
    CactiLite cacti(65.0, 1.1);
    EXPECT_GT(cacti.estimate({4194304, 128, 8, 1}).read_energy_j,
              cacti.estimate({65536, 64, 2, 1}).read_energy_j);
}

TEST(CactiLite, AccessTimeGrowsWithSize)
{
    CactiLite cacti(65.0, 1.1);
    EXPECT_GT(cacti.estimate({4194304, 128, 8, 1}).access_time_s,
              cacti.estimate({65536, 64, 2, 1}).access_time_s);
}

TEST(CactiLite, PaperDieAreaBallpark)
{
    // 16 cores (10 mm^2 each) + the CactiLite 4 MB L2 should land near
    // the paper's CACTI result of 244.5 mm^2.
    CactiLite cacti(65.0, 1.1);
    const auto l2 = cacti.estimate({4194304, 128, 8, 1});
    const double total = 16 * 1e-5 + l2.area_m2;
    EXPECT_GT(total, util::mm2(180.0));
    EXPECT_LT(total, util::mm2(280.0));
}

TEST(CactiLite, RejectsDegenerateConfigs)
{
    CactiLite cacti(65.0, 1.1);
    EXPECT_THROW(cacti.estimate({0, 64, 2, 1}), util::FatalError);
    EXPECT_THROW(cacti.estimate({64, 64, 2, 1}), util::FatalError);
    EXPECT_THROW(CactiLite(-1.0, 1.1), util::FatalError);
}

// ---------------------------------------------------------- ChipPowerModel

class ChipPowerFixture : public ::testing::Test
{
  protected:
    ChipPowerFixture() : tech_(tech::tech65nm()), model_(tech_, geometry_)
    {
    }

    /** A plausible activity pattern for @p cores cores. */
    util::StatRegistry
    makeActivity(int cores, std::uint64_t insts_per_core) const
    {
        util::StatRegistry stats;
        for (int c = 0; c < cores; ++c) {
            const std::string p = "core" + std::to_string(c) + ".";
            stats.counter(p + "insts").increment(insts_per_core);
            stats.counter(p + "int_ops").increment(insts_per_core / 2);
            stats.counter(p + "fp_ops").increment(insts_per_core / 4);
            stats.counter(p + "loads").increment(insts_per_core / 5);
            stats.counter(p + "stores").increment(insts_per_core / 10);
            stats.counter(p + "l1i.reads").increment(insts_per_core / 4);
            stats.counter(p + "l1d.reads").increment(insts_per_core / 5);
            stats.counter(p + "l1d.writes").increment(insts_per_core / 10);
            stats.counter(p + "active_cycles").increment(insts_per_core);
        }
        stats.counter("l2.reads").increment(insts_per_core / 100);
        stats.counter("bus.transactions").increment(insts_per_core / 100);
        return stats;
    }

    CmpGeometry geometry_;
    tech::Technology tech_;
    ChipPowerModel model_;
};

TEST_F(ChipPowerFixture, FloorplanHasCoresAndL2)
{
    EXPECT_TRUE(model_.floorplan().has("L2"));
    EXPECT_TRUE(model_.floorplan().has("core0.icache"));
    EXPECT_TRUE(model_.floorplan().has("core15.clock"));
}

TEST_F(ChipPowerFixture, RawPowerPositiveForActiveCores)
{
    const auto stats = makeActivity(2, 1000000);
    const auto watts =
        model_.rawDynamicPower(stats, 1000000, 2, 1.1, 3.2e9);
    double total = 0.0;
    for (double w : watts)
        total += w;
    EXPECT_GT(total, 0.0);
    // Idle core blocks draw nothing.
    for (std::size_t i = 0; i < watts.size(); ++i) {
        if (model_.floorplan().blocks()[i].core_id >= 2)
            EXPECT_DOUBLE_EQ(watts[i], 0.0);
    }
}

TEST_F(ChipPowerFixture, DynamicPowerScalesWithV2F)
{
    const auto stats = makeActivity(1, 1000000);
    const auto full = model_.rawDynamicPower(stats, 1000000, 1, 1.1,
                                             3.2e9);
    // Same cycle count at half frequency doubles the runtime: power per
    // event halves. Quarter from half voltage.
    const auto scaled = model_.rawDynamicPower(stats, 1000000, 1, 0.55,
                                               1.6e9);
    for (std::size_t i = 0; i < full.size(); ++i) {
        if (full[i] > 0.0)
            EXPECT_NEAR(scaled[i] / full[i], 0.125, 1e-9);
    }
}

TEST_F(ChipPowerFixture, RenormalizationMapsMicrobenchToBudget)
{
    model_.calibrate(10.0);
    EXPECT_NEAR(model_.renormFactor(),
                model_.maxCoreDynamicPower() / 10.0, 1e-12);
}

TEST_F(ChipPowerFixture, DynamicPowerRequiresCalibration)
{
    const auto stats = makeActivity(1, 1000);
    EXPECT_THROW(model_.dynamicPower(stats, 1000, 1, 1.1, 3.2e9),
                 util::FatalError);
    model_.calibrate(5.0);
    EXPECT_NO_THROW(model_.dynamicPower(stats, 1000, 1, 1.1, 3.2e9));
}

TEST_F(ChipPowerFixture, StaticGrowsWithTemperature)
{
    model_.calibrate(5.0);
    const auto stats = makeActivity(1, 1000000);
    const auto dyn = model_.dynamicPower(stats, 1000000, 1, 1.1, 3.2e9);
    const std::vector<double> cold(model_.floorplan().size(), 50.0);
    const std::vector<double> hot(model_.floorplan().size(), 100.0);
    const auto s_cold = model_.staticPower(cold, dyn, 1, 1.1, 3.2e9);
    const auto s_hot = model_.staticPower(hot, dyn, 1, 1.1, 3.2e9);
    double cold_total = 0.0, hot_total = 0.0;
    for (std::size_t i = 0; i < s_cold.size(); ++i) {
        cold_total += s_cold[i];
        hot_total += s_hot[i];
    }
    EXPECT_GT(hot_total, 2.0 * cold_total);
}

TEST_F(ChipPowerFixture, GatedCoresLeakNothing)
{
    model_.calibrate(5.0);
    const auto stats = makeActivity(2, 1000000);
    const auto dyn = model_.dynamicPower(stats, 1000000, 2, 1.1, 3.2e9);
    const std::vector<double> temps(model_.floorplan().size(), 80.0);
    const auto stat = model_.staticPower(temps, dyn, 2, 1.1, 3.2e9);
    for (std::size_t i = 0; i < stat.size(); ++i) {
        const int core = model_.floorplan().blocks()[i].core_id;
        if (core >= 2)
            EXPECT_DOUBLE_EQ(stat[i], 0.0);
        else
            EXPECT_GT(stat[i], 0.0);
    }
}

TEST_F(ChipPowerFixture, StaticRatioMatchesTechnologySplit)
{
    const double s = tech_.params().static_fraction_hot;
    EXPECT_NEAR(model_.staticRatioHot(), s / (1.0 - s), 1e-12);
}

TEST_F(ChipPowerFixture, HigherActivityMeansMoreStaticAtSameOperating)
{
    // The paper's model: static is a fraction of dynamic power, so a
    // busier core leaks more (at equal V, T).
    model_.calibrate(5.0);
    const auto lo_stats = makeActivity(1, 100000);
    const auto hi_stats = makeActivity(1, 1000000);
    const auto lo_dyn =
        model_.dynamicPower(lo_stats, 1000000, 1, 1.1, 3.2e9);
    const auto hi_dyn =
        model_.dynamicPower(hi_stats, 1000000, 1, 1.1, 3.2e9);
    const std::vector<double> temps(model_.floorplan().size(), 80.0);
    const auto lo = model_.staticPower(temps, lo_dyn, 1, 1.1, 3.2e9);
    const auto hi = model_.staticPower(temps, hi_dyn, 1, 1.1, 3.2e9);
    double lo_total = 0.0, hi_total = 0.0;
    for (std::size_t i = 0; i < lo.size(); ++i) {
        lo_total += lo[i];
        hi_total += hi[i];
    }
    EXPECT_GT(hi_total, lo_total);
}

TEST_F(ChipPowerFixture, RejectsBadArguments)
{
    const auto stats = makeActivity(1, 1000);
    EXPECT_THROW(model_.rawDynamicPower(stats, 0, 1, 1.1, 3.2e9),
                 util::FatalError);
    EXPECT_THROW(model_.rawDynamicPower(stats, 1000, 0, 1.1, 3.2e9),
                 util::FatalError);
    EXPECT_THROW(model_.rawDynamicPower(stats, 1000, 99, 1.1, 3.2e9),
                 util::FatalError);
    EXPECT_THROW(model_.calibrate(-1.0), util::FatalError);
}

/** Parameterized: chip area scales sensibly across core counts. */
class GeometrySweep : public ::testing::TestWithParam<int>
{
};

TEST_P(GeometrySweep, FloorplanMatchesGeometry)
{
    CmpGeometry g;
    g.n_cores = GetParam();
    const tech::Technology tech = tech::tech65nm();
    const ChipPowerModel model(tech, g);
    EXPECT_NEAR(model.floorplan().coreArea(),
                g.n_cores * tech.coreAreaM2(),
                g.n_cores * tech.coreAreaM2() * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cores, GeometrySweep,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
