/**
 * @file
 * Runner tests on non-default machine configurations: smaller chips,
 * alternative cache organizations, Eq. 7 clamping at the V/f table
 * limits, and custom Scenario II budgets.
 */

#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using runner::Experiment;

constexpr double kScale = 0.08;

TEST(RunnerConfig, EightCoreChipCalibratesAndRuns)
{
    sim::CmpConfig config;
    config.n_cores = 8;
    const Experiment exp(kScale, config);
    EXPECT_GT(exp.maxSingleCorePower(), 0.0);
    const auto rows =
        exp.scenario1(workloads::byName("Water-Sp"), {1, 2, 8});
    EXPECT_EQ(rows.size(), 3u);
    EXPECT_LT(rows.back().normalized_power, 1.0);
}

TEST(RunnerConfig, SmallerL2RaisesMemoryTraffic)
{
    sim::CmpConfig small;
    small.l2_size_bytes = 256 * 1024;
    const sim::Cmp big_chip{sim::CmpConfig{}};
    const sim::Cmp small_chip{small};
    const auto prog = workloads::makeOcean(4, 0.3);
    const auto big_run = big_chip.run(prog, 3.2e9);
    const auto small_run = small_chip.run(prog, 3.2e9);
    EXPECT_GT(small_run.stats.counterValue("memory.reads"),
              big_run.stats.counterValue("memory.reads"));
    EXPECT_GE(small_run.cycles, big_run.cycles);
}

TEST(RunnerConfig, SlowerMemoryHurtsMemoryBoundMore)
{
    sim::CmpConfig slow;
    slow.memory_rt_ns = 300.0;
    const sim::Cmp fast_chip{sim::CmpConfig{}};
    const sim::Cmp slow_chip{slow};
    const auto penalty = [&](const char* name) {
        const auto prog = workloads::byName(name).make(1, 0.15);
        const double fast =
            static_cast<double>(fast_chip.run(prog, 3.2e9).cycles);
        const double slower =
            static_cast<double>(slow_chip.run(prog, 3.2e9).cycles);
        return slower / fast;
    };
    EXPECT_GT(penalty("Radix"), penalty("Water-Nsq"));
}

TEST(RunnerConfig, Eq7ClampsAtTheVfTableFloor)
{
    // A highly parallel run would want f below the 200 MHz table floor;
    // the runner clamps and reports the floor frequency.
    const Experiment exp(kScale);
    const auto rows =
        exp.scenario1(workloads::byName("FMM"), {1, 16});
    EXPECT_GE(rows.back().freq_hz, exp.vfTable().fMin() - 1.0);
}

TEST(RunnerConfig, TightBudgetLowersScenario2Speedups)
{
    const Experiment exp(kScale);
    const auto& app = workloads::byName("Water-Sp");
    const auto generous = exp.scenario2(app, {1, 4}, {},
                                        2.0 * exp.maxSingleCorePower());
    const auto tight = exp.scenario2(app, {1, 4}, {},
                                     0.4 * exp.maxSingleCorePower());
    EXPECT_GE(generous.back().actual_speedup,
              tight.back().actual_speedup);
}

TEST(RunnerConfig, CustomFrequencyGridIsHonoured)
{
    const Experiment exp(kScale);
    const auto rows = exp.scenario2(workloads::byName("FMM"), {1, 4},
                                    {8e8, 1.6e9, 3.2e9});
    for (const auto& row : rows) {
        if (row.actual_speedup <= 0.0)
            continue;
        EXPECT_GE(row.freq_hz, 8e8 - 1.0) << "N=" << row.n;
    }
}

TEST(RunnerConfig, MeasureRejectsNonsense)
{
    const Experiment exp(kScale);
    const auto prog = workloads::makeWaterSp(1, kScale);
    EXPECT_THROW(exp.measure(prog, -1.0, 3.2e9), util::FatalError);
    EXPECT_THROW(exp.measure(prog, 1.1, 0.0), util::FatalError);
}

TEST(RunnerConfig, CoherenceTrafficOnlyExistsWithSharers)
{
    // A single thread generates no coherence events; the all-to-all FFT
    // transposes at 16 threads do (upgrades and/or cache-to-cache
    // transfers), and the serialization shows as sub-linear per-thread
    // IPC.
    const sim::Cmp cmp{sim::CmpConfig{}};
    const auto one = cmp.run(workloads::makeFft(1, 0.15), 3.2e9);
    const auto sixteen = cmp.run(workloads::makeFft(16, 0.15), 3.2e9);
    const auto coherence = [](const sim::RunResult& r) {
        return r.stats.counterValue("bus.upgrades") +
            r.stats.counterValue("bus.c2c_transfers");
    };
    EXPECT_EQ(coherence(one), 0u);
    EXPECT_GT(coherence(sixteen), 100u);
    EXPECT_LT(sixteen.ipc() / 16.0, one.ipc());
}

} // namespace
