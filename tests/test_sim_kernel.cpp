/**
 * @file
 * Simulator-kernel tests: the 4-ary indexed event heap against a
 * reference priority queue (randomized lockstep property test), typed
 * event ordering against a stable sort, CacheArray probe/replacement
 * goldens for the shift/mask + sentinel-tag layout, and the
 * TLPPM_SIM_FASTPATH differential — fast-path-on and -off runs of the
 * full CMP must produce byte-identical architectural results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "sim/cache.hpp"
#include "sim/cmp.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace {

using namespace tlp;
using sim::Addr;
using sim::CacheArray;
using sim::Cmp;
using sim::CmpConfig;
using sim::Cycle;
using sim::Event;
using sim::EventKind;
using sim::EventQueue;
using sim::Mesi;
using sim::Program;

// ---------------------------------------------------------------------
// EventQueue vs a reference priority queue
// ---------------------------------------------------------------------

/**
 * Lockstep oracle: every schedule() also records (when, id) in a mirror
 * multiset ordered the same way the kernel promises — (when, then
 * insertion order). Each callback pops the mirror minimum and checks it
 * matches what actually ran. Cascading reschedules from inside callbacks
 * exercise the heap under the simulator's real push-per-pop churn.
 */
/** Shared state of the lockstep property test, reachable through one
 *  pointer so each scheduled closure stays tiny. */
struct LockstepCtx
{
    EventQueue queue;
    util::Rng rng{0xc0ffee};
    /** (when, id), id in schedule order; the reference pop order is the
     *  lexicographic minimum — exactly the kernel's (when, seq). */
    std::vector<std::pair<Cycle, std::uint64_t>> mirror;
    std::uint64_t next_id = 0;
    std::uint64_t executed = 0;

    void
    sched(Cycle when)
    {
        const std::uint64_t id = next_id++;
        mirror.emplace_back(when, id);
        queue.schedule(when, [this, id] { onFire(id); });
    }

    void
    onFire(std::uint64_t id)
    {
        const auto it = std::min_element(mirror.begin(), mirror.end());
        ASSERT_NE(it, mirror.end());
        EXPECT_EQ(it->second, id);
        EXPECT_EQ(it->first, queue.now());
        mirror.erase(it);
        ++executed;
        // Cascade: schedule 0-3 future events with heavy tie pressure
        // (small when-range, often == now).
        const int extra = static_cast<int>(rng.below(4));
        for (int i = 0; i < extra && next_id < 6000; ++i)
            sched(queue.now() + rng.below(5));
    }
};

TEST(EventQueueProperty, MatchesReferenceQueueUnderRandomCascades)
{
    LockstepCtx ctx;
    for (int i = 0; i < 500; ++i)
        ctx.sched(ctx.rng.below(64));
    ctx.queue.run();

    EXPECT_TRUE(ctx.mirror.empty());
    EXPECT_GE(ctx.executed, 500u);
    EXPECT_EQ(ctx.executed, ctx.next_id);
    EXPECT_TRUE(ctx.queue.empty());
}

TEST(EventQueueProperty, TypedPostsPopInStableSortedOrder)
{
    EventQueue queue;
    util::Rng rng(42);

    // Post typed events with many duplicate times; the pop order must be
    // a stable sort by `when` of the post order.
    struct Posted
    {
        Cycle when;
        std::uint32_t arg;
    };
    std::vector<Posted> posted;
    for (std::uint32_t i = 0; i < 3000; ++i) {
        const Cycle when = rng.below(16);
        posted.push_back({when, i});
        queue.post(when, EventKind::CoreResume, i, /*addr=*/i * 64);
    }
    std::stable_sort(posted.begin(), posted.end(),
                     [](const Posted& a, const Posted& b) {
                         return a.when < b.when;
                     });

    std::size_t next = 0;
    queue.run([&](const Event& event) {
        ASSERT_LT(next, posted.size());
        EXPECT_EQ(event.when, posted[next].when);
        EXPECT_EQ(event.arg, posted[next].arg);
        EXPECT_EQ(event.kind, EventKind::CoreResume);
        EXPECT_EQ(event.addr, posted[next].arg * 64u);
        ++next;
    });
    EXPECT_EQ(next, posted.size());
}

TEST(EventQueueProperty, NextEventTimeTracksHeapMinimum)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextEventTime(), EventQueue::kNever);
    queue.post(10, EventKind::CoreResume, 0);
    EXPECT_EQ(queue.nextEventTime(), 10u);
    queue.post(3, EventKind::CoreResume, 1);
    EXPECT_EQ(queue.nextEventTime(), 3u);
    queue.post(7, EventKind::CoreResume, 2);
    EXPECT_EQ(queue.nextEventTime(), 3u);

    std::vector<Cycle> pops;
    queue.run([&](const Event& event) { pops.push_back(event.when); });
    EXPECT_EQ(pops, (std::vector<Cycle>{3, 7, 10}));
    EXPECT_EQ(queue.nextEventTime(), EventQueue::kNever);
}

// ---------------------------------------------------------------------
// CacheArray goldens
// ---------------------------------------------------------------------

TEST(CacheArrayGolden, LruEvictsInAccessOrder)
{
    // One set, 4 ways: the victim sequence is the LRU order.
    CacheArray cache(/*size=*/64 * 4, /*line=*/64, /*assoc=*/4);
    ASSERT_EQ(cache.sets(), 1u);

    const Addr stride = 64;
    for (Addr i = 0; i < 4; ++i)
        EXPECT_FALSE(cache.insert(i * stride, Mesi::Shared).has_value());

    // Touch line 0 so line 1 becomes LRU.
    cache.touch(0);
    auto victim = cache.insert(4 * stride, Mesi::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line_addr, 1 * stride);

    // readHit() refreshes LRU too: hit line 2, next victim is line 3.
    EXPECT_TRUE(cache.readHit(2 * stride));
    victim = cache.insert(5 * stride, Mesi::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line_addr, 3 * stride);
}

TEST(CacheArrayGolden, InvalidatedLinesNeverGhostHit)
{
    CacheArray cache(64 * 8, 64, 2);
    cache.insert(0x1000, Mesi::Modified);
    ASSERT_TRUE(cache.contains(0x1000));

    EXPECT_EQ(cache.invalidate(0x1000), Mesi::Modified);
    // The stale tag must not satisfy any probe flavor.
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.readHit(0x1000));
    EXPECT_FALSE(cache.writeHitUpgrade(0x1000));
    EXPECT_EQ(cache.state(0x1000), Mesi::Invalid);
    EXPECT_EQ(cache.validLines(), 0u);

    // Same via setState(Invalid).
    cache.insert(0x2000, Mesi::Exclusive);
    cache.setState(0x2000, Mesi::Invalid);
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_FALSE(cache.readHit(0x2000));
}

TEST(CacheArrayGolden, HighAddressesNearTopOfSpaceBehave)
{
    // The sentinel invalid tag is ~0, which is NOT line-aligned; the
    // highest line-aligned address must still hit normally.
    CacheArray cache(64 * 8, 64, 2);
    const Addr top = ~Addr{0} & ~Addr{63}; // highest 64B-aligned address
    cache.insert(top, Mesi::Modified);
    EXPECT_TRUE(cache.contains(top));
    EXPECT_TRUE(cache.readHit(top + 63)); // any byte in the line
    EXPECT_TRUE(cache.writeHitUpgrade(top));
    EXPECT_EQ(cache.state(top), Mesi::Modified);
    EXPECT_EQ(cache.invalidate(top), Mesi::Modified);
    EXPECT_FALSE(cache.contains(top));
}

TEST(CacheArrayGolden, NonPowerOfTwoSetCountUsesModuloCorrectly)
{
    // 3 sets x 2 ways of 64 B lines: lines i and i+3 share a set.
    CacheArray cache(3 * 64 * 2, 64, 2);
    ASSERT_EQ(cache.sets(), 3u);

    const Addr stride = 64;
    // Fill set 0 with lines 0 and 3; line 6 must evict one of them.
    cache.insert(0 * stride, Mesi::Shared);
    cache.insert(3 * stride, Mesi::Shared);
    cache.insert(1 * stride, Mesi::Shared); // set 1, unrelated
    const auto victim = cache.insert(6 * stride, Mesi::Shared);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line_addr, 0 * stride); // LRU of set 0
    EXPECT_TRUE(cache.contains(3 * stride));
    EXPECT_TRUE(cache.contains(6 * stride));
    EXPECT_TRUE(cache.contains(1 * stride));
}

TEST(CacheArrayGolden, WriteHitUpgradeOnlyOnWritableStates)
{
    // 4 sets x 2 ways; pick lines in three distinct sets.
    CacheArray cache(64 * 8, 64, 2);
    cache.insert(0x100, Mesi::Shared);    // set 0
    cache.insert(0x140, Mesi::Exclusive); // set 1
    cache.insert(0x180, Mesi::Modified);  // set 2

    EXPECT_FALSE(cache.writeHitUpgrade(0x100)); // Shared needs the bus
    EXPECT_EQ(cache.state(0x100), Mesi::Shared);
    EXPECT_FALSE(cache.writeHitUpgrade(0x1c0)); // miss

    EXPECT_TRUE(cache.writeHitUpgrade(0x140)); // E -> M silently
    EXPECT_EQ(cache.state(0x140), Mesi::Modified);
    EXPECT_TRUE(cache.writeHitUpgrade(0x180)); // M stays M
    EXPECT_EQ(cache.state(0x180), Mesi::Modified);
}

// ---------------------------------------------------------------------
// Fast-path differential: TLPPM_SIM_FASTPATH=0 vs 1
// ---------------------------------------------------------------------

/** Run @p program with the fast path forced on or off. */
sim::RunResult
runWithFastPath(const Program& program, bool fast)
{
    ::setenv("TLPPM_SIM_FASTPATH", fast ? "1" : "0", /*overwrite=*/1);
    const Cmp cmp{CmpConfig{}};
    sim::RunResult result = cmp.run(program, 3.2e9);
    ::unsetenv("TLPPM_SIM_FASTPATH");
    return result;
}

std::string
statsDump(const sim::RunResult& result)
{
    std::ostringstream os;
    result.stats.dump(os);
    return os.str();
}

void
expectFastPathEquivalent(const Program& program)
{
    const sim::RunResult slow = runWithFastPath(program, false);
    const sim::RunResult fast = runWithFastPath(program, true);

    EXPECT_EQ(fast.cycles, slow.cycles);
    EXPECT_EQ(fast.instructions, slow.instructions);
    EXPECT_EQ(fast.coherent, slow.coherent);
    // The architectural counter registry must be byte-identical; only
    // the kernel's event count may (and should) shrink.
    EXPECT_EQ(statsDump(fast), statsDump(slow));
    EXPECT_LE(fast.events, slow.events);
}

TEST(FastPathDifferential, SingleThreadHitHeavyStream)
{
    Program prog;
    prog.threads.resize(1);
    auto& tp = prog.threads[0];
    for (int i = 0; i < 400; ++i) {
        tp.load(0x1000 + (i % 8) * 64); // mostly L1 hits after warmup
        tp.store(0x3000 + (i % 4) * 64);
        tp.intOps(7);
    }
    tp.finish();

    const sim::RunResult slow = runWithFastPath(prog, false);
    const sim::RunResult fast = runWithFastPath(prog, true);
    EXPECT_EQ(fast.cycles, slow.cycles);
    EXPECT_EQ(statsDump(fast), statsDump(slow));
    // A single-threaded hit-heavy stream is where the fast path bites:
    // nearly every hit must be resolved without a queue round trip.
    EXPECT_LT(fast.events, slow.events / 2);
}

TEST(FastPathDifferential, SharingBarriersAndLocks)
{
    // Four threads sharing lines, hitting barriers and a contended lock:
    // the fast path must never fire across a coherence interaction it
    // could perturb, so the full architectural state stays identical.
    Program prog;
    prog.threads.resize(4);
    for (int t = 0; t < 4; ++t) {
        auto& tp = prog.threads[t];
        for (int round = 0; round < 5; ++round) {
            for (int i = 0; i < 40; ++i) {
                tp.load(0x8000 + ((t + i) % 16) * 64); // shared region
                tp.store(0x20000 + t * 0x4000 + (i % 8) * 64); // private
                tp.intOps(3 + t);
            }
            tp.lock(1);
            tp.store(0xf000); // contended line under the lock
            tp.load(0xf000);
            tp.unlock(1);
            tp.barrier(0);
        }
        tp.finish();
    }
    expectFastPathEquivalent(prog);
}

TEST(FastPathDifferential, StoreBufferPressure)
{
    // Store bursts past the buffer capacity force stalls and drains; the
    // fast path must coexist with backpressure byte-identically.
    Program prog;
    prog.threads.resize(2);
    for (int t = 0; t < 2; ++t) {
        auto& tp = prog.threads[t];
        for (int i = 0; i < 64; ++i) {
            tp.store(0x40000 + t * 0x100000 + i * 0x10000); // all misses
            if (i % 4 == 0)
                tp.load(0x40000 + t * 0x100000 + i * 0x10000);
        }
        tp.finish();
    }
    expectFastPathEquivalent(prog);
}

} // namespace
