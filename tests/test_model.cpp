/**
 * @file
 * Tests for tlp_model — the paper's analytical contribution. Besides unit
 * checks, these encode the paper's headline claims as properties:
 * Scenario I power falls as efficiency rises and saves power beyond a
 * break-even efficiency that shrinks with N; Scenario II speedup peaks at
 * a moderate core count and declines beyond it, worse on 65 nm.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "model/analytic_cmp.hpp"
#include "model/efficiency.hpp"
#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using model::AnalyticCmp;
using model::Scenario1;
using model::Scenario2;

// -------------------------------------------------------------- efficiency

TEST(Efficiency, ConstantIsOneAtSingleCore)
{
    model::ConstantEfficiency c(0.7);
    EXPECT_DOUBLE_EQ(c.at(1), 1.0);
    EXPECT_DOUBLE_EQ(c.at(8), 0.7);
}

TEST(Efficiency, AmdahlMatchesClosedForm)
{
    model::AmdahlEfficiency amdahl(0.1);
    // Speedup(10) = 1 / (0.1 + 0.9/10) = 5.263...; eps = S/N.
    EXPECT_NEAR(amdahl.nominalSpeedup(10), 1.0 / 0.19, 1e-12);
    EXPECT_DOUBLE_EQ(amdahl.at(1), 1.0);
}

TEST(Efficiency, AmdahlZeroSerialIsPerfect)
{
    model::AmdahlEfficiency perfect(0.0);
    for (int n : {1, 2, 7, 32})
        EXPECT_DOUBLE_EQ(perfect.at(n), 1.0);
}

TEST(Efficiency, OverheadDecaysMonotonically)
{
    model::OverheadEfficiency oh(0.05);
    double prev = 2.0;
    for (int n = 1; n <= 64; n *= 2) {
        const double e = oh.at(n);
        EXPECT_LT(e, prev);
        prev = e;
    }
}

TEST(Efficiency, TabulatedExactAtSamples)
{
    model::TabulatedEfficiency tab({{1, 1.0}, {4, 0.8}, {16, 0.5}});
    EXPECT_DOUBLE_EQ(tab.at(4), 0.8);
    EXPECT_DOUBLE_EQ(tab.at(16), 0.5);
}

TEST(Efficiency, TabulatedInterpolatesBetweenSamples)
{
    model::TabulatedEfficiency tab({{1, 1.0}, {4, 0.8}, {16, 0.4}});
    const double e8 = tab.at(8);
    EXPECT_LT(e8, 0.8);
    EXPECT_GT(e8, 0.4);
}

TEST(Efficiency, TabulatedClampsOutsideRange)
{
    model::TabulatedEfficiency tab({{1, 1.0}, {8, 0.6}});
    EXPECT_DOUBLE_EQ(tab.at(32), 0.6);
}

TEST(Efficiency, TabulatedSupportsSuperlinear)
{
    model::TabulatedEfficiency tab({{1, 1.0}, {4, 1.1}});
    EXPECT_GT(tab.nominalSpeedup(4), 4.0);
}

TEST(Efficiency, RejectsBadInput)
{
    EXPECT_THROW(model::ConstantEfficiency(0.0), util::FatalError);
    EXPECT_THROW(model::AmdahlEfficiency(1.5), util::FatalError);
    EXPECT_THROW(model::OverheadEfficiency(-0.1), util::FatalError);
    EXPECT_THROW(model::TabulatedEfficiency({{2, 0.9}}),
                 util::FatalError);
    model::ConstantEfficiency c(1.0);
    EXPECT_THROW(c.at(0), util::FatalError);
}

// ------------------------------------------------------------- AnalyticCmp

class AnalyticFixture : public ::testing::Test
{
  protected:
    AnalyticFixture() : cmp65_(tech::tech65nm(), 32) {}
    AnalyticCmp cmp65_;
};

TEST_F(AnalyticFixture, CalibrationAnchorsSingleCoreAtHundredCelsius)
{
    const tech::Technology& t = cmp65_.technology();
    const auto pb = cmp65_.evaluate({1, t.vddNominal(), t.fNominal()});
    EXPECT_TRUE(pb.converged);
    EXPECT_NEAR(pb.avg_active_temp_c, t.tHotC(), 0.5);
    EXPECT_NEAR(pb.total_w, cmp65_.singleCorePower(),
                0.02 * cmp65_.singleCorePower());
}

TEST_F(AnalyticFixture, PowerSplitsMatchTechnologyAtAnchor)
{
    const tech::Technology& t = cmp65_.technology();
    const auto pb = cmp65_.evaluate({1, t.vddNominal(), t.fNominal()});
    EXPECT_NEAR(pb.dynamic_w, t.dynamicPowerNominal(), 1e-6);
    EXPECT_NEAR(pb.static_w, t.staticPowerHot(),
                0.05 * t.staticPowerHot());
}

TEST_F(AnalyticFixture, MoreCoresMorePower)
{
    const auto two = cmp65_.evaluate({2, 0.8, 1.0e9});
    const auto four = cmp65_.evaluate({4, 0.8, 1.0e9});
    EXPECT_GT(four.total_w, two.total_w);
}

TEST_F(AnalyticFixture, LowerVoltageLowerPower)
{
    const auto hi = cmp65_.evaluate({4, 0.9, 1.0e9});
    const auto lo = cmp65_.evaluate({4, 0.6, 1.0e9});
    EXPECT_LT(lo.total_w, hi.total_w);
    EXPECT_LT(lo.avg_active_temp_c, hi.avg_active_temp_c);
}

TEST_F(AnalyticFixture, RejectsBadOperatingPoints)
{
    EXPECT_THROW(cmp65_.evaluate({0, 1.0, 1e9}), util::FatalError);
    EXPECT_THROW(cmp65_.evaluate({33, 1.0, 1e9}), util::FatalError);
    EXPECT_THROW(cmp65_.evaluate({1, -1.0, 1e9}), util::FatalError);
}

TEST(AnalyticCmpNoFeedback, AblationHoldsLeakageAtAnchorTemperature)
{
    const AnalyticCmp with(tech::tech65nm(), 8, true);
    const AnalyticCmp without(tech::tech65nm(), 8, false);
    // At a cool low-V point, feedback-on leaks less than the
    // held-at-100C ablation.
    const auto a = with.evaluate({4, 0.5, 4e8});
    const auto b = without.evaluate({4, 0.5, 4e8});
    EXPECT_LT(a.static_w, b.static_w);
}

// -------------------------------------------------------------- Scenario I

class Scenario1Fixture : public ::testing::Test
{
  protected:
    Scenario1Fixture()
        : cmp_(tech::tech65nm(), 32), scenario_(cmp_)
    {
    }
    AnalyticCmp cmp_;
    Scenario1 scenario_;
};

TEST_F(Scenario1Fixture, Eq7FrequencyTarget)
{
    const auto r = scenario_.solve(8, 0.5);
    EXPECT_TRUE(r.feasible);
    EXPECT_NEAR(r.freq, cmp_.technology().fNominal() / 4.0, 1.0);
}

TEST_F(Scenario1Fixture, InfeasibleWhenSpeedupBelowOne)
{
    // N * eps < 1 would need overclocking: disallowed by the model.
    EXPECT_FALSE(scenario_.solve(2, 0.4).feasible);
    EXPECT_FALSE(scenario_.solve(8, 0.1).feasible);
}

TEST_F(Scenario1Fixture, SuperlinearEfficiencyAllowed)
{
    const auto r = scenario_.solve(4, 1.2);
    EXPECT_TRUE(r.feasible);
    EXPECT_LT(r.freq, cmp_.technology().fNominal() / 4.0);
}

TEST_F(Scenario1Fixture, PowerFallsAsEfficiencyRises)
{
    double prev = 1e18;
    for (double eps : {0.4, 0.6, 0.8, 1.0}) {
        const auto r = scenario_.solve(8, eps);
        ASSERT_TRUE(r.feasible);
        EXPECT_LT(r.normalized_power, prev);
        prev = r.normalized_power;
    }
}

TEST_F(Scenario1Fixture, SavesPowerAtHighEfficiency)
{
    // The paper: all configurations show savings beyond some eps_n.
    for (int n : {2, 4, 8, 16, 32}) {
        const auto r = scenario_.solve(n, 1.0);
        EXPECT_LT(r.normalized_power, 1.0) << "N=" << n;
        EXPECT_FALSE(r.power.runaway) << "N=" << n;
    }
}

TEST_F(Scenario1Fixture, HighNCurvesAboveLowNAtFullEfficiency)
{
    // Aggressive scaling saturates: at eps_n = 1 the 32-core point burns
    // more than the 4-core point (Fig. 1's crossing structure).
    EXPECT_GT(scenario_.solve(32, 1.0).normalized_power,
              scenario_.solve(4, 1.0).normalized_power);
}

TEST_F(Scenario1Fixture, BreakEvenShrinksWithCores)
{
    // Find the efficiency at which P_N/P1 crosses 1.0, per N; it must
    // decrease with N (paper: "higher N requires a lower level of
    // efficiency to reach their power break-even points").
    const auto break_even = [&](int n) {
        for (double eps = 1.0 / n + 0.01; eps <= 1.0; eps += 0.01) {
            const auto r = scenario_.solve(n, eps);
            if (r.feasible && !r.power.runaway &&
                r.normalized_power <= 1.0) {
                return eps;
            }
        }
        return 2.0;
    };
    const double be4 = break_even(4);
    const double be16 = break_even(16);
    EXPECT_LT(be16, be4);
}

TEST_F(Scenario1Fixture, VoltageFloorFlagAtVeryLowFrequency)
{
    const auto r = scenario_.solve(32, 1.0); // f = f1/32
    EXPECT_TRUE(r.v_floor_hit);
    EXPECT_DOUBLE_EQ(r.vdd, cmp_.technology().vMin());
}

TEST_F(Scenario1Fixture, TemperatureDropsBelowAnchor)
{
    const auto r = scenario_.solve(8, 1.0);
    EXPECT_LT(r.power.avg_active_temp_c, cmp_.technology().tHotC());
    EXPECT_GE(r.power.avg_active_temp_c,
              cmp_.thermalModel().params().ambient_c);
}

TEST_F(Scenario1Fixture, RejectsBadArguments)
{
    EXPECT_THROW(scenario_.solve(0, 0.5), util::FatalError);
    EXPECT_THROW(scenario_.solve(64, 0.5), util::FatalError);
    EXPECT_THROW(scenario_.solve(4, 0.0), util::FatalError);
}

/** Property sweep over both nodes and several (N, eps) combinations:
 *  feasible solutions respect the voltage window and Eq. 7. */
struct S1Param
{
    const char* node;
    int n;
    double eps;
};

class Scenario1Sweep : public ::testing::TestWithParam<S1Param>
{
};

TEST_P(Scenario1Sweep, SolutionRespectsModelInvariants)
{
    const auto [node, n, eps] = GetParam();
    const tech::Technology tech = std::string(node) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    const AnalyticCmp cmp(tech, 32);
    const Scenario1 scenario(cmp);
    const auto r = scenario.solve(n, eps);
    ASSERT_EQ(r.feasible, n * eps >= 1.0 - 1e-9);
    if (!r.feasible)
        return;
    EXPECT_NEAR(r.freq, tech.fNominal() / (n * eps),
                tech.fNominal() * 1e-9);
    EXPECT_GE(r.vdd, tech.vMin() - 1e-12);
    EXPECT_LE(r.vdd, tech.vddNominal() + 1e-12);
    EXPECT_GT(r.power.total_w, 0.0);
    if (!r.v_floor_hit) {
        // On the alpha-power curve, the chosen V sustains the frequency.
        EXPECT_GE(tech.frequencyLaw().maxFrequency(r.vdd) + 1.0, r.freq);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Scenario1Sweep,
    ::testing::Values(S1Param{"130nm", 2, 0.9}, S1Param{"130nm", 8, 0.6},
                      S1Param{"130nm", 32, 0.8},
                      S1Param{"130nm", 4, 0.2}, S1Param{"65nm", 2, 0.9},
                      S1Param{"65nm", 8, 0.6}, S1Param{"65nm", 16, 1.0},
                      S1Param{"65nm", 32, 0.03}));

// ------------------------------------------------------------- Scenario II

class Scenario2Fixture : public ::testing::Test
{
  protected:
    Scenario2Fixture()
        : cmp_(tech::tech65nm(), 32), scenario_(cmp_)
    {
    }
    AnalyticCmp cmp_;
    Scenario2 scenario_;
};

TEST_F(Scenario2Fixture, SingleCoreRunsAtNominal)
{
    const auto r = scenario_.solve(1, 1.0);
    EXPECT_NEAR(r.speedup, 1.0, 0.02);
    EXPECT_NEAR(r.vdd, cmp_.technology().vddNominal(), 0.02);
}

TEST_F(Scenario2Fixture, BudgetIsRespectedEverywhere)
{
    for (int n : {2, 4, 8, 16, 24, 32}) {
        const auto r = scenario_.solve(n, 1.0);
        if (r.feasible) {
            EXPECT_LE(r.power.total_w, scenario_.budget() * 1.02)
                << "N=" << n;
        }
    }
}

TEST_F(Scenario2Fixture, SpeedupSublinearUnderBudget)
{
    for (int n : {2, 4, 8}) {
        const auto r = scenario_.solve(n, 1.0);
        EXPECT_LT(r.speedup, static_cast<double>(n)) << "N=" << n;
        EXPECT_GT(r.speedup, 1.0) << "N=" << n;
    }
}

TEST_F(Scenario2Fixture, SpeedupPeaksAtModerateCoreCount)
{
    // The paper's headline: even for eps_n = 1, the optimum uses fewer
    // cores than available, and speedup declines beyond the peak.
    double peak = 0.0;
    int argmax = 1;
    double at32 = 0.0;
    for (int n = 1; n <= 32; ++n) {
        const auto r = scenario_.solve(n, 1.0);
        if (r.speedup > peak) {
            peak = r.speedup;
            argmax = n;
        }
        if (n == 32)
            at32 = r.speedup;
    }
    EXPECT_GT(argmax, 4);
    EXPECT_LT(argmax, 32);
    EXPECT_LT(at32, 0.8 * peak);
}

TEST_F(Scenario2Fixture, LowerEfficiencyLowersSpeedup)
{
    const auto hi = scenario_.solve(8, 1.0);
    const auto lo = scenario_.solve(8, 0.6);
    EXPECT_GT(hi.speedup, lo.speedup);
}

TEST_F(Scenario2Fixture, CustomBudgetScalesSpeedup)
{
    const Scenario2 tight(cmp_, 20.0);
    const Scenario2 loose(cmp_, 100.0);
    EXPECT_LT(tight.solve(8, 1.0).speedup, loose.solve(8, 1.0).speedup);
}

TEST_F(Scenario2Fixture, RejectsBadArguments)
{
    EXPECT_THROW(scenario_.solve(0, 1.0), util::FatalError);
    EXPECT_THROW(scenario_.solve(8, -1.0), util::FatalError);
}

TEST(Scenario2Nodes, PaperFigure2Shape)
{
    // 130nm peaks "a little over 4"; 65nm lies below with the faster
    // post-peak degradation.
    const AnalyticCmp cmp130(tech::tech130nm(), 32);
    const AnalyticCmp cmp65(tech::tech65nm(), 32);
    const Scenario2 s130(cmp130);
    const Scenario2 s65(cmp65);

    double peak130 = 0.0, peak65 = 0.0;
    for (int n = 1; n <= 32; ++n) {
        peak130 = std::max(peak130, s130.solve(n, 1.0).speedup);
        peak65 = std::max(peak65, s65.solve(n, 1.0).speedup);
    }
    EXPECT_GT(peak130, 4.0);
    EXPECT_LT(peak130, 5.2);
    EXPECT_LT(peak65, peak130);
    EXPECT_GT(peak65, 2.5);
    // Both decline substantially beyond their peaks, and the 65nm curve
    // ends below the 130nm one.
    const double tail130 = s130.solve(32, 1.0).speedup;
    const double tail65 = s65.solve(32, 1.0).speedup;
    EXPECT_LT(tail130, 0.7 * peak130);
    EXPECT_LT(tail65, 0.6 * peak65);
    EXPECT_LT(tail65, tail130 * 1.05);
}

// -------------------------------------- batched vs scalar differentials

TEST(BatchedEvaluate, BitIdenticalToScalarEvaluate)
{
    const AnalyticCmp cmp(tech::tech65nm(), 32);
    const tech::Technology& t = cmp.technology();

    std::vector<model::OperatingPoint> ops;
    for (int n : {1, 4, 16, 32})
        for (double v : {0.6, 0.8, t.vddNominal()})
            ops.push_back({n, v, 0.75 * t.fNominal()});

    const auto batched = cmp.evaluateBatch(ops);
    ASSERT_EQ(batched.size(), ops.size());
    for (std::size_t p = 0; p < ops.size(); ++p) {
        const auto scalar = cmp.evaluate(ops[p]);
        EXPECT_EQ(batched[p].total_w, scalar.total_w) << "p=" << p;
        EXPECT_EQ(batched[p].dynamic_w, scalar.dynamic_w) << "p=" << p;
        EXPECT_EQ(batched[p].static_w, scalar.static_w) << "p=" << p;
        EXPECT_EQ(batched[p].avg_active_temp_c, scalar.avg_active_temp_c)
            << "p=" << p;
        EXPECT_EQ(batched[p].max_temp_c, scalar.max_temp_c) << "p=" << p;
        EXPECT_EQ(batched[p].iterations, scalar.iterations) << "p=" << p;
        EXPECT_EQ(batched[p].converged, scalar.converged) << "p=" << p;
        EXPECT_EQ(batched[p].runaway, scalar.runaway) << "p=" << p;
    }
}

TEST(BatchedEvaluate, EmptyBatchIsFine)
{
    const AnalyticCmp cmp(tech::tech65nm(), 4);
    EXPECT_TRUE(cmp.evaluateBatch({}).empty());
}

TEST(BatchedScenario1, SolveBatchBitIdenticalToScalarSolve)
{
    const AnalyticCmp cmp(tech::tech65nm(), 32);
    const Scenario1 scenario(cmp);

    // Mix of feasible and infeasible (n * eps < 1) points, as in a
    // figure row swept over the efficiency grid.
    std::vector<std::pair<int, double>> points = {
        {1, 1.0}, {2, 0.3}, {4, 0.9}, {8, 1.0}, {16, 0.7}, {32, 0.5}};
    const auto batched = scenario.solveBatch(points);
    ASSERT_EQ(batched.size(), points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
        const auto scalar =
            scenario.solve(points[p].first, points[p].second);
        EXPECT_EQ(batched[p].feasible, scalar.feasible) << "p=" << p;
        EXPECT_EQ(batched[p].freq, scalar.freq) << "p=" << p;
        EXPECT_EQ(batched[p].vdd, scalar.vdd) << "p=" << p;
        EXPECT_EQ(batched[p].v_floor_hit, scalar.v_floor_hit) << "p=" << p;
        EXPECT_EQ(batched[p].normalized_power, scalar.normalized_power)
            << "p=" << p;
        EXPECT_EQ(batched[p].power.total_w, scalar.power.total_w)
            << "p=" << p;
        EXPECT_EQ(batched[p].power.avg_active_temp_c,
                  scalar.power.avg_active_temp_c)
            << "p=" << p;
    }
}

TEST(BatchedScenario2, SolveBitIdenticalToSolveScalar)
{
    const AnalyticCmp cmp(tech::tech65nm(), 32);
    const Scenario2 scenario(cmp);

    for (int n : {1, 6, 16, 32}) {
        const auto batched = scenario.solve(n, 1.0);
        const auto scalar = scenario.solveScalar(n, 1.0);
        EXPECT_EQ(batched.vdd, scalar.vdd) << "n=" << n;
        EXPECT_EQ(batched.freq, scalar.freq) << "n=" << n;
        EXPECT_EQ(batched.speedup, scalar.speedup) << "n=" << n;
        EXPECT_EQ(batched.feasible, scalar.feasible) << "n=" << n;
        EXPECT_EQ(batched.budget_bound, scalar.budget_bound) << "n=" << n;
        EXPECT_EQ(batched.power.total_w, scalar.power.total_w)
            << "n=" << n;
    }
}

} // namespace
