/**
 * @file
 * Targeted core-timing tests: the IPC arithmetic of compute runs, memory
 * stall accounting, store-buffer interaction with program order, lock
 * and barrier timing as seen from the instruction stream, and the
 * fractional-cycle carry of mixed-rate op streams.
 */

#include <gtest/gtest.h>

#include "sim/cmp.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using sim::Cmp;
using sim::CmpConfig;
using sim::Program;

Program
singleThread(const std::function<void(sim::ThreadProgram&)>& fill)
{
    Program prog;
    prog.threads.resize(1);
    fill(prog.threads[0]);
    prog.threads[0].finish();
    return prog;
}

TEST(CoreTiming, IntOnlyStreamRunsAtIntIpc)
{
    const CmpConfig config;
    const Cmp cmp{config};
    const auto r = cmp.run(
        singleThread([](auto& tp) { tp.intOps(50000); }), 3.2e9);
    EXPECT_NEAR(static_cast<double>(r.cycles),
                50000.0 / config.ipc_int, 2.0);
}

TEST(CoreTiming, FpOnlyStreamRunsAtFpIpc)
{
    const CmpConfig config;
    const Cmp cmp{config};
    const auto r = cmp.run(
        singleThread([](auto& tp) { tp.fpOps(50000); }), 3.2e9);
    EXPECT_NEAR(static_cast<double>(r.cycles),
                50000.0 / config.ipc_fp, 2.0);
}

TEST(CoreTiming, FractionalCyclesCarryAcrossRuns)
{
    // 999 runs of 3 int ops at IPC 2 = 1498.5 cycles; the carry must
    // accumulate rather than round per run (which would give 1998).
    const CmpConfig config;
    const Cmp cmp{config};
    const auto r = cmp.run(singleThread([](auto& tp) {
                               for (int i = 0; i < 999; ++i)
                                   tp.intOps(3);
                           }),
                           3.2e9);
    EXPECT_NEAR(static_cast<double>(r.cycles), 999 * 3 / 2.0, 3.0);
}

TEST(CoreTiming, L1HitLoadsCostHitLatency)
{
    const CmpConfig config;
    const Cmp cmp{config};
    // One cold miss, then 1000 hits to the same line.
    const auto r = cmp.run(singleThread([](auto& tp) {
                               for (int i = 0; i < 1001; ++i)
                                   tp.load(0x1000);
                           }),
                           3.2e9);
    const auto hits_cost = 1000ull * config.l1_hit_cycles;
    EXPECT_GE(r.cycles, hits_cost);
    EXPECT_LE(r.cycles,
              hits_cost + config.memoryCycles(3.2e9) + 64);
    EXPECT_EQ(r.stats.counterValue("core0.l1d.misses"), 1u);
}

TEST(CoreTiming, ColdMissesSerializeOnMemory)
{
    const CmpConfig config;
    const Cmp cmp{config};
    constexpr int kMisses = 100;
    const auto r = cmp.run(singleThread([](auto& tp) {
                               for (int i = 0; i < kMisses; ++i)
                                   tp.load(0x10000 + i * 0x10000);
                           }),
                           3.2e9);
    // A blocking in-order core pays at least the memory round trip per
    // miss.
    EXPECT_GE(r.cycles,
              static_cast<std::uint64_t>(kMisses) *
                  config.memoryCycles(3.2e9));
}

TEST(CoreTiming, StoresDoNotBlockWithBufferSpace)
{
    const CmpConfig config;
    const Cmp cmp{config};
    // A few store misses interleaved with compute: the compute hides the
    // store latency almost entirely.
    const auto with_stores = cmp.run(
        singleThread([](auto& tp) {
            for (int i = 0; i < 4; ++i) {
                tp.store(0x20000 + i * 0x10000);
                tp.intOps(2000);
            }
        }),
        3.2e9);
    const auto compute_only = cmp.run(
        singleThread([](auto& tp) {
            for (int i = 0; i < 4; ++i)
                tp.intOps(2000);
        }),
        3.2e9);
    EXPECT_LT(with_stores.cycles, compute_only.cycles + 200);
}

TEST(CoreTiming, StoreBurstEventuallyBackpressures)
{
    const CmpConfig config;
    const Cmp cmp{config};
    constexpr int kStores = 64; // 8x the buffer capacity, all misses
    const auto r = cmp.run(singleThread([](auto& tp) {
                               for (int i = 0; i < kStores; ++i)
                                   tp.store(0x40000 + i * 0x10000);
                           }),
                           3.2e9);
    // Once the buffer is full, progress is limited by the drain rate
    // (one miss round trip each).
    EXPECT_GT(r.cycles,
              static_cast<std::uint64_t>(kStores - 8) *
                  config.memoryCycles(3.2e9) / 2);
}

TEST(CoreTiming, BarrierSkewIsPaidByTheEarlyThread)
{
    // Thread 0 computes 1000 cycles, thread 1 computes 10000; both end
    // at (roughly) the barrier release after the slow one arrives.
    Program prog;
    prog.threads.resize(2);
    prog.threads[0].intOps(2000); // 1000 cycles at IPC 2
    prog.threads[0].barrier(0);
    prog.threads[0].finish();
    prog.threads[1].intOps(20000); // 10000 cycles
    prog.threads[1].barrier(0);
    prog.threads[1].finish();
    const Cmp cmp{CmpConfig{}};
    const auto r = cmp.run(prog, 3.2e9);
    EXPECT_NEAR(static_cast<double>(r.cycles),
                10000.0 + CmpConfig{}.barrier_release_cycles, 16.0);
}

TEST(CoreTiming, ContendedLockSerializesCriticalSections)
{
    // Two threads, each: lock, 1000-cycle critical section, unlock. The
    // total must exceed 2000 cycles (serialization) regardless of the
    // parallel hardware.
    Program prog;
    prog.threads.resize(2);
    for (int t = 0; t < 2; ++t) {
        prog.threads[t].lock(5);
        prog.threads[t].intOps(2000);
        prog.threads[t].unlock(5);
        prog.threads[t].finish();
    }
    const Cmp cmp{CmpConfig{}};
    const auto r = cmp.run(prog, 3.2e9);
    EXPECT_GT(r.cycles, 2000u);
    EXPECT_EQ(r.stats.counterValue("sync.lock_contended"), 1u);
}

TEST(CoreTiming, UncontendedLocksRunInParallel)
{
    // Distinct locks: the two critical sections overlap.
    Program prog;
    prog.threads.resize(2);
    for (int t = 0; t < 2; ++t) {
        prog.threads[t].lock(10 + t);
        prog.threads[t].intOps(2000);
        prog.threads[t].unlock(10 + t);
        prog.threads[t].finish();
    }
    const Cmp cmp{CmpConfig{}};
    const auto r = cmp.run(prog, 3.2e9);
    EXPECT_LT(r.cycles, 1500u);
    EXPECT_EQ(r.stats.counterValue("sync.lock_contended"), 0u);
}

TEST(CoreTiming, ActiveCyclesEqualFinishCycle)
{
    const Cmp cmp{CmpConfig{}};
    const auto r = cmp.run(singleThread([](auto& tp) {
                               tp.intOps(1000);
                               tp.load(0x99000);
                           }),
                           3.2e9);
    EXPECT_EQ(r.stats.counterValue("core0.active_cycles"), r.cycles);
}

TEST(CoreTiming, InstructionCountingMatchesProgram)
{
    const auto prog = singleThread([](auto& tp) {
        tp.intOps(123);
        tp.fpOps(45);
        tp.load(0x1000);
        tp.store(0x1040);
        tp.barrier(0);
        tp.lock(1);
        tp.unlock(1);
    });
    const Cmp cmp{CmpConfig{}};
    const auto r = cmp.run(prog, 3.2e9);
    EXPECT_EQ(r.stats.counterValue("core0.insts"), 123u + 45u + 2u);
    EXPECT_EQ(r.stats.counterValue("core0.int_ops"), 123u);
    EXPECT_EQ(r.stats.counterValue("core0.fp_ops"), 45u);
    EXPECT_EQ(r.stats.counterValue("core0.loads"), 1u);
    EXPECT_EQ(r.stats.counterValue("core0.stores"), 1u);
}

TEST(CoreTiming, FrequencyOnlyChangesMemoryCosts)
{
    // A pure-compute program takes identical cycles at any frequency.
    const Cmp cmp{CmpConfig{}};
    const auto prog =
        singleThread([](auto& tp) { tp.intOps(30000); });
    EXPECT_EQ(cmp.run(prog, 3.2e9).cycles, cmp.run(prog, 0.2e9).cycles);
}

} // namespace
