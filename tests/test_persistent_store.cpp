/**
 * @file
 * PersistentRawStore tests: the on-disk raw-run memoization layer.
 *
 * The contract under test: a stored RunResult prices byte-identically
 * to a freshly simulated one (lossless %.17g serialization); records
 * from a different model version are invisible; torn and corrupt
 * records quarantine-and-recompute instead of surfacing wrong data;
 * two handles appending to one store concurrently lose no records; and
 * the generation/compaction protocol survives an injected kill inside
 * its publish window.
 */

#include <cmath>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/fault_injection.hpp"
#include "runner/persistent_raw_store.hpp"
#include "runner/raw_run_cache.hpp"
#include "sim/config.hpp"
#include "sim/run_result_io.hpp"
#include "tech/technology.hpp"
#include "util/fs.hpp"

namespace {

using namespace tlp;

/** Unique store directory per test; contents removed on destruction. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "tlppm_raw_" + tag +
                "_" + std::to_string(::getpid()))
    {
        removeAll();
    }
    ~TempStoreDir() { removeAll(); }
    const std::string& path() const { return path_; }

  private:
    void removeAll()
    {
        for (const std::string& name : util::listDir(path_))
            util::removePath(path_ + "/" + name);
        util::removePath(path_);
    }

    std::string path_;
};

/** An admissible RunResult exercising every serialized field, with
 *  deliberately awkward doubles (non-terminating binary fractions and
 *  a subnormal-adjacent magnitude) that only survive %.17g. */
sim::RunResult
makeRun(std::uint64_t seed)
{
    sim::RunResult run;
    run.cycles = 1000 + seed;
    run.freq_hz = 2.4e9 + 0.1 * static_cast<double>(seed);
    run.seconds = static_cast<double>(run.cycles) / run.freq_hz;
    run.instructions = 3000 + 7 * seed;
    run.n_threads = static_cast<int>(1 + seed % 16);
    run.coherent = true;
    run.events = 12345 + seed;
    run.queue_high_water = 17 + seed;
    for (int c = 0; c < run.n_threads; ++c) {
        sim::CoreCycleBreakdown core;
        core.busy = 100 + seed + static_cast<std::uint64_t>(c);
        core.stall_mem = 50 + static_cast<std::uint64_t>(c);
        core.stall_sync = 5 + static_cast<std::uint64_t>(c);
        run.core_cycles.push_back(core);
    }
    run.stats.counter("l1.hits").increment(9000 + seed);
    run.stats.counter("l2.misses").increment(11 + seed);
    run.stats.accumulator("bus.occupancy").sample(0.1 + 1.0 / 3.0);
    run.stats.accumulator("bus.occupancy")
        .sample(0.7 + static_cast<double>(seed) * 1e-13);
    return run;
}

runner::RawRunKey
makeKey(const std::string& workload, int n, std::uint64_t seed)
{
    runner::RawRunKey key;
    key.workload = workload;
    key.n = n;
    key.scale = 0.05 + 1e-9 * static_cast<double>(seed);
    key.freq_hz = 2.4e9;
    return key;
}

std::uint32_t
testFingerprint()
{
    return runner::modelFingerprint(sim::CmpConfig{}, tech::tech65nm());
}

std::unique_ptr<runner::PersistentRawStore>
openOrDie(const std::string& dir,
          util::FileLock::Mode mode = util::FileLock::Mode::Shared)
{
    auto store =
        runner::PersistentRawStore::open(dir, testFingerprint(), mode);
    if (!store.ok()) {
        ADD_FAILURE() << "open('" << dir
                      << "') failed: " << store.error().describe();
        return nullptr;
    }
    return std::move(store.value());
}

// --------------------------------------------------------------------
// RunResult serialization: lossless round trips.
// --------------------------------------------------------------------

TEST(RunResultIo, RoundTripIsByteIdentical)
{
    for (std::uint64_t seed : {0ull, 1ull, 17ull, 999983ull}) {
        const sim::RunResult run = makeRun(seed);
        const std::string text = sim::formatRunResult(run);
        auto parsed = sim::parseRunResult(text);
        ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
        // Byte identity of the re-serialization proves every double
        // survived %.17g exactly — the property the warm pricing path
        // (cold-vs-warm table byte-identity) rests on.
        EXPECT_EQ(text, sim::formatRunResult(parsed.value()));
        EXPECT_EQ(run.cycles, parsed.value().cycles);
        EXPECT_EQ(run.instructions, parsed.value().instructions);
        EXPECT_EQ(run.n_threads, parsed.value().n_threads);
        EXPECT_EQ(run.coherent, parsed.value().coherent);
        EXPECT_EQ(run.core_cycles.size(),
                  parsed.value().core_cycles.size());
        EXPECT_EQ(run.stats.counterValue("l1.hits"),
                  parsed.value().stats.counterValue("l1.hits"));
        const auto& acc = run.stats.accumulators().at("bus.occupancy");
        const auto& back =
            parsed.value().stats.accumulators().at("bus.occupancy");
        EXPECT_EQ(acc.count(), back.count());
        EXPECT_EQ(acc.sum(), back.sum()); // exact, not approximate
        EXPECT_EQ(acc.min(), back.min());
        EXPECT_EQ(acc.max(), back.max());
    }
}

TEST(RunResultIo, RejectsGarbage)
{
    EXPECT_FALSE(sim::parseRunResult("").ok());
    EXPECT_FALSE(sim::parseRunResult("{}").ok());
    EXPECT_FALSE(sim::parseRunResult("{\"cycles\":}").ok());
    const std::string good = sim::formatRunResult(makeRun(1));
    EXPECT_FALSE(sim::parseRunResult(good + "x").ok());
    EXPECT_FALSE(sim::parseRunResult(good.substr(0, good.size() - 3)).ok());
}

// --------------------------------------------------------------------
// Store basics: append, reopen, fetch.
// --------------------------------------------------------------------

TEST(PersistentRawStore, AppendsSurviveReopen)
{
    TempStoreDir dir("reopen");
    const auto run = std::make_shared<const sim::RunResult>(makeRun(7));
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 7), run);
        store->append(makeKey("LU", 8, 8),
                      std::make_shared<const sim::RunResult>(makeRun(8)));
        EXPECT_EQ(2u, store->stats().appends);
        // One handle never writes a key twice.
        store->append(makeKey("FFT", 4, 7), run);
        EXPECT_EQ(2u, store->stats().appends);
    }
    auto store = openOrDie(dir.path());
    EXPECT_EQ(2u, store->stats().loaded);
    const auto hit = store->fetch(makeKey("FFT", 4, 7));
    ASSERT_NE(nullptr, hit);
    EXPECT_EQ(sim::formatRunResult(*run), sim::formatRunResult(*hit));
    EXPECT_TRUE(store->contains(makeKey("LU", 8, 8)));
    EXPECT_FALSE(store->contains(makeKey("LU", 16, 8)));
    EXPECT_EQ(nullptr, store->fetch(makeKey("Radix", 2, 1)));
    EXPECT_EQ(1u, store->stats().hits);
    EXPECT_EQ(1u, store->stats().misses);
}

TEST(PersistentRawStore, InadmissibleRunsAreNeverStored)
{
    TempStoreDir dir("inadmissible");
    auto store = openOrDie(dir.path());
    sim::RunResult bad = makeRun(3);
    bad.cycles = 0; // inadmissible
    store->append(makeKey("FFT", 2, 3),
                  std::make_shared<const sim::RunResult>(bad));
    EXPECT_EQ(0u, store->stats().appends);
    EXPECT_FALSE(store->contains(makeKey("FFT", 2, 3)));
}

// --------------------------------------------------------------------
// Model-version fingerprint: stale records are invisible.
// --------------------------------------------------------------------

TEST(PersistentRawStore, FingerprintMismatchRejectsRecords)
{
    TempStoreDir dir("fingerprint");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
    }
    // A model change (here: one more core) must make the stored record
    // invisible — it may never satisfy a lookup under the new model.
    sim::CmpConfig changed;
    changed.n_cores += 1;
    auto store = runner::PersistentRawStore::open(
        dir.path(), runner::modelFingerprint(changed, tech::tech65nm()));
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(0u, store.value()->stats().loaded);
    EXPECT_EQ(1u, store.value()->stats().fingerprint_rejected);
    EXPECT_FALSE(store.value()->contains(makeKey("FFT", 4, 1)));
}

TEST(PersistentRawStore, FingerprintIsSensitiveToModelIdentity)
{
    const std::uint32_t base = testFingerprint();
    sim::CmpConfig cores;
    cores.n_cores += 1;
    EXPECT_NE(base, runner::modelFingerprint(cores, tech::tech65nm()));
    sim::CmpConfig latency;
    latency.l2_rt_cycles += 1;
    EXPECT_NE(base, runner::modelFingerprint(latency, tech::tech65nm()));
    EXPECT_NE(base,
              runner::modelFingerprint(sim::CmpConfig{}, tech::tech130nm()));
    EXPECT_EQ(base,
              runner::modelFingerprint(sim::CmpConfig{}, tech::tech65nm()));
}

// --------------------------------------------------------------------
// Corruption: torn tails and flipped bytes quarantine-and-recompute.
// --------------------------------------------------------------------

TEST(PersistentRawStore, TornTailIsQuarantinedAndKeyRecomputes)
{
    TempStoreDir dir("torn");
    std::string runs_path;
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
        store->append(makeKey("LU", 8, 2),
                      std::make_shared<const sim::RunResult>(makeRun(2)));
        runs_path = dir.path() + "/runs.g0.jsonl";
    }
    // Tear the tail mid-record, as a crashed writer would.
    auto content = util::readFile(runs_path);
    ASSERT_TRUE(content.ok());
    const std::string text = content.value();
    const std::size_t first_nl = text.find('\n');
    ASSERT_NE(std::string::npos, first_nl);
    {
        std::ofstream torn(runs_path, std::ios::trunc | std::ios::binary);
        torn << text.substr(0, first_nl + 1)
             << text.substr(first_nl + 1, (text.size() - first_nl) / 2);
    }
    auto store = openOrDie(dir.path());
    EXPECT_EQ(1u, store->stats().loaded);
    EXPECT_EQ(1u, store->stats().quarantined);
    EXPECT_TRUE(store->contains(makeKey("FFT", 4, 1)));
    // The torn key is simply absent: the caller recomputes and
    // re-appends it.
    EXPECT_FALSE(store->contains(makeKey("LU", 8, 2)));
    store->append(makeKey("LU", 8, 2),
                  std::make_shared<const sim::RunResult>(makeRun(2)));
    EXPECT_EQ(1u, store->stats().appends);
}

TEST(PersistentRawStore, ShortWriteFaultTearsOnlyItsOwnRecord)
{
    TempStoreDir dir("shortwrite");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
        runner::ScopedStoreFaultPlan fault(runner::StoreFaultPlan{
            runner::StoreFaultKind::ShortWrite, 1});
        store->append(makeKey("LU", 8, 2),
                      std::make_shared<const sim::RunResult>(makeRun(2)));
    }
    auto store = openOrDie(dir.path());
    EXPECT_EQ(1u, store->stats().loaded);
    EXPECT_EQ(1u, store->stats().quarantined);
    EXPECT_TRUE(store->contains(makeKey("FFT", 4, 1)));
    EXPECT_FALSE(store->contains(makeKey("LU", 8, 2)));
}

TEST(PersistentRawStore, CorruptReadFaultQuarantinesOneRecord)
{
    TempStoreDir dir("corruptread");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
        store->append(makeKey("LU", 8, 2),
                      std::make_shared<const sim::RunResult>(makeRun(2)));
    }
    runner::ScopedStoreFaultPlan fault(
        runner::StoreFaultPlan{runner::StoreFaultKind::CorruptRead, 1});
    auto store = openOrDie(dir.path());
    EXPECT_EQ(1u, store->stats().loaded);
    EXPECT_EQ(1u, store->stats().quarantined);
}

TEST(PersistentRawStore, CorruptManifestIsQuarantinedAndRebuilt)
{
    TempStoreDir dir("manifest");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
    }
    {
        std::ofstream bad(dir.path() + "/MANIFEST", std::ios::trunc);
        bad << "{\"tlppm_raw_store\":1,\"generation\":0,\"crc\":1}\n";
    }
    auto store = openOrDie(dir.path());
    // The bad manifest is quarantined and the store rebuilds from the
    // on-disk generation — no records lost.
    EXPECT_GE(store->stats().quarantined, 1u);
    EXPECT_EQ(1u, store->stats().loaded);
    EXPECT_TRUE(store->contains(makeKey("FFT", 4, 1)));
}

// --------------------------------------------------------------------
// Compaction: exclusive-only, crash-tolerant publish.
// --------------------------------------------------------------------

TEST(PersistentRawStore, CompactionRequiresExclusiveMode)
{
    TempStoreDir dir("exclusive");
    auto store = openOrDie(dir.path(), util::FileLock::Mode::Shared);
    auto compacted = store->compact();
    ASSERT_FALSE(compacted.ok());
    EXPECT_EQ(util::ErrorCode::InvalidArgument, compacted.error().code);
}

TEST(PersistentRawStore, CompactionDropsCorruptLinesForGood)
{
    TempStoreDir dir("compact");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
        store->append(makeKey("LU", 8, 2),
                      std::make_shared<const sim::RunResult>(makeRun(2)));
    }
    // Inject a garbage line between the two records.
    {
        std::ofstream f(dir.path() + "/runs.g0.jsonl", std::ios::app);
        f << "not json at all\n";
    }
    {
        auto store =
            openOrDie(dir.path(), util::FileLock::Mode::Exclusive);
        EXPECT_EQ(2u, store->stats().loaded);
        EXPECT_EQ(1u, store->stats().quarantined);
        auto compacted = store->compact();
        ASSERT_TRUE(compacted.ok()) << compacted.error().describe();
        EXPECT_EQ(1u, compacted.value().generation);
        EXPECT_EQ(2u, compacted.value().kept);
        // Appends continue against the new generation.
        store->append(makeKey("Radix", 2, 3),
                      std::make_shared<const sim::RunResult>(makeRun(3)));
    }
    auto store = openOrDie(dir.path());
    EXPECT_EQ(1u, store->generation());
    EXPECT_EQ(3u, store->stats().loaded);
    EXPECT_EQ(0u, store->stats().quarantined);
}

TEST(PersistentRawStore, KillInsidePublishWindowLeavesRecoverableStore)
{
    TempStoreDir dir("kill");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
    }
    {
        auto store =
            openOrDie(dir.path(), util::FileLock::Mode::Exclusive);
        runner::ScopedStoreFaultPlan fault(runner::StoreFaultPlan{
            runner::StoreFaultKind::KillCompaction, 1});
        EXPECT_THROW(static_cast<void>(store->compact()),
                     runner::FaultKillError);
    }
    // The new generation exists but the manifest still names g0: the
    // next open keeps serving g0 and sweeps the orphan.
    auto store = openOrDie(dir.path());
    EXPECT_EQ(0u, store->generation());
    EXPECT_EQ(1u, store->stats().loaded);
    EXPECT_EQ(1u, store->stats().orphans_swept);
    EXPECT_TRUE(store->contains(makeKey("FFT", 4, 1)));
}

// --------------------------------------------------------------------
// Concurrency: two handles, one store, no lost records.
// --------------------------------------------------------------------

TEST(PersistentRawStore, TwoHandlesAppendConcurrentlyWithoutLoss)
{
    TempStoreDir dir("concurrent");
    constexpr int kPerHandle = 64;
    auto a = openOrDie(dir.path());
    auto b = openOrDie(dir.path()); // second shared holder, same store

    const auto appender = [&](runner::PersistentRawStore* store,
                              const char* workload) {
        for (int i = 0; i < kPerHandle; ++i) {
            store->append(
                makeKey(workload, 1 + (i % 16),
                        static_cast<std::uint64_t>(i)),
                std::make_shared<const sim::RunResult>(
                    makeRun(static_cast<std::uint64_t>(i))));
        }
    };
    std::thread ta(appender, a.get(), "Barnes");
    std::thread tb(appender, b.get(), "Ocean");
    ta.join();
    tb.join();
    EXPECT_EQ(static_cast<std::uint64_t>(kPerHandle), a->stats().appends);
    EXPECT_EQ(static_cast<std::uint64_t>(kPerHandle), b->stats().appends);
    a.reset();
    b.reset();

    auto store = openOrDie(dir.path());
    EXPECT_EQ(static_cast<std::uint64_t>(2 * kPerHandle),
              store->stats().loaded);
    EXPECT_EQ(0u, store->stats().quarantined);
    for (int i = 0; i < kPerHandle; ++i) {
        EXPECT_TRUE(store->contains(
            makeKey("Barnes", 1 + (i % 16),
                    static_cast<std::uint64_t>(i))));
        EXPECT_TRUE(store->contains(
            makeKey("Ocean", 1 + (i % 16),
                    static_cast<std::uint64_t>(i))));
    }
}

TEST(PersistentRawStore, DuplicateCrossHandleAppendsDedupOnLoad)
{
    TempStoreDir dir("dup");
    auto a = openOrDie(dir.path());
    auto b = openOrDie(dir.path());
    // Both handles compute the same deterministic point (as racing
    // shards do for a shared baseline) and both append it.
    const auto run = std::make_shared<const sim::RunResult>(makeRun(5));
    a->append(makeKey("FFT", 1, 5), run);
    b->append(makeKey("FFT", 1, 5), run);
    a.reset();
    b.reset();
    auto store = openOrDie(dir.path());
    // First record wins; the duplicate is simply not double-counted.
    EXPECT_EQ(1u, store->stats().loaded);
    ASSERT_NE(nullptr, store->fetch(makeKey("FFT", 1, 5)));
}

// --------------------------------------------------------------------
// Orphan sweeping without a handle (tlppm_serve --compact).
// --------------------------------------------------------------------

TEST(PersistentRawStore, SweepRawStoreOrphansRemovesDeadFiles)
{
    TempStoreDir dir("sweep");
    {
        auto store = openOrDie(dir.path());
        store->append(makeKey("FFT", 4, 1),
                      std::make_shared<const sim::RunResult>(makeRun(1)));
    }
    // Crash leftovers: a stray tmp file and an orphan generation.
    { std::ofstream(dir.path() + "/MANIFEST.tmp.999") << "half"; }
    { std::ofstream(dir.path() + "/runs.g7.jsonl") << "orphan\n"; }
    EXPECT_EQ(2u, runner::sweepRawStoreOrphans(dir.path()));
    EXPECT_FALSE(util::pathExists(dir.path() + "/MANIFEST.tmp.999"));
    EXPECT_FALSE(util::pathExists(dir.path() + "/runs.g7.jsonl"));
    // The live generation and manifest are untouched.
    EXPECT_TRUE(util::pathExists(dir.path() + "/runs.g0.jsonl"));
    auto store = openOrDie(dir.path());
    EXPECT_EQ(1u, store->stats().loaded);
}

TEST(PersistentRawStore, SweepWithoutManifestOnlyRemovesTmpFiles)
{
    TempStoreDir dir("sweepnomanifest");
    ASSERT_TRUE(util::ensureDir(dir.path()).ok());
    { std::ofstream(dir.path() + "/runs.g3.jsonl") << "x\n"; }
    { std::ofstream(dir.path() + "/LOCK.tmp.1") << "y"; }
    // No manifest: no generation is provably dead, so only tmp files go.
    EXPECT_EQ(1u, runner::sweepRawStoreOrphans(dir.path()));
    EXPECT_TRUE(util::pathExists(dir.path() + "/runs.g3.jsonl"));
}

} // namespace
