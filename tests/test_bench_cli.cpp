/**
 * @file
 * Bench CLI parser tests (tryParseSweepCli): flags parse in any order
 * and in both "--flag VALUE" and "--flag=VALUE" spellings, a duplicate
 * or unknown or malformed flag is a ParseError (the harnesses turn that
 * into exit 2), sweep-only flags are rejected for the analytic figures,
 * and cross-flag constraints (--resume needs --journal) hold.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.hpp"

namespace {

using tlppm_bench::SweepCliOptions;
using tlppm_bench::tryParseSweepCli;

tlp::util::Expected<SweepCliOptions>
parse(std::vector<const char*> args, bool sim_flags = true)
{
    args.insert(args.begin(), "bench");
    return tryParseSweepCli(static_cast<int>(args.size()), args.data(),
                            sim_flags);
}

TEST(SweepCli, DefaultsWithNoArguments)
{
    const auto r = parse({});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().jobs, 0);
    EXPECT_TRUE(r.value().journal.empty());
    EXPECT_FALSE(r.value().resume);
    EXPECT_EQ(r.value().point_timeout_s, 0.0);
    EXPECT_FALSE(r.value().cache_stats);
    EXPECT_TRUE(r.value().trace.empty());
    EXPECT_TRUE(r.value().metrics.empty());
    EXPECT_FALSE(r.value().progress);
}

TEST(SweepCli, ParsesEveryFlagInAnyOrder)
{
    const auto r =
        parse({"--progress", "--metrics", "m.json", "--journal=j.jsonl",
               "--trace", "t.json", "--point-timeout=30", "--resume",
               "--cache-stats", "--jobs", "8"});
    ASSERT_TRUE(r.ok());
    const SweepCliOptions& o = r.value();
    EXPECT_EQ(o.jobs, 8);
    EXPECT_EQ(o.journal, "j.jsonl");
    EXPECT_TRUE(o.resume);
    EXPECT_EQ(o.point_timeout_s, 30.0);
    EXPECT_TRUE(o.cache_stats);
    EXPECT_EQ(o.trace, "t.json");
    EXPECT_EQ(o.metrics, "m.json");
    EXPECT_TRUE(o.progress);
}

TEST(SweepCli, EqualsAndSeparateValueSpellingsAgree)
{
    const auto a = parse({"--jobs", "4"});
    const auto b = parse({"--jobs=4"});
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().jobs, b.value().jobs);
}

TEST(SweepCli, RejectsDuplicateFlags)
{
    for (const auto& args :
         std::vector<std::vector<const char*>>{
             {"--jobs", "2", "--jobs", "3"},
             {"--jobs=2", "--jobs", "2"}, // duplicate even when equal
             {"--cache-stats", "--cache-stats"},
             {"--trace", "a.json", "--trace=b.json"}}) {
        const auto r = parse(args);
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, tlp::util::ErrorCode::ParseError);
        EXPECT_NE(r.error().describe().find("duplicate"),
                  std::string::npos);
    }
}

TEST(SweepCli, RejectsUnknownFlag)
{
    const auto r = parse({"--bogus"});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, tlp::util::ErrorCode::ParseError);
    EXPECT_NE(r.error().describe().find("unknown"), std::string::npos);
}

TEST(SweepCli, RejectsValueOnBooleanFlag)
{
    const auto r = parse({"--resume=yes", "--journal", "j"});
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().describe().find("takes no value"),
              std::string::npos);
}

TEST(SweepCli, RejectsMissingValue)
{
    const auto r = parse({"--metrics"});
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().describe().find("needs a value"),
              std::string::npos);
}

TEST(SweepCli, RejectsMalformedNumbers)
{
    EXPECT_FALSE(parse({"--jobs", "zero"}).ok());
    EXPECT_FALSE(parse({"--jobs", "0"}).ok());
    EXPECT_FALSE(parse({"--jobs", "100000"}).ok());
    EXPECT_FALSE(parse({"--point-timeout", "-5"}).ok());
    EXPECT_FALSE(parse({"--point-timeout", "1e9"}).ok());
}

TEST(SweepCli, ResumeRequiresJournal)
{
    EXPECT_FALSE(parse({"--resume"}).ok());
    EXPECT_TRUE(parse({"--resume", "--journal", "j.jsonl"}).ok());
}

TEST(SweepCli, WorkloadsAcceptsTraceSpecsWithPathCharacters)
{
    // Trace specs carry ':', '/', and '.'; both value spellings must
    // deliver them verbatim, not trip the unknown-argument path.
    const auto a =
        parse({"--workloads", "trace:runs/fft.v2.trc,Radix"});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().workloads, "trace:runs/fft.v2.trc,Radix");
    const auto b = parse({"--workloads=trace:runs/fft.v2.trc"});
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.value().workloads, "trace:runs/fft.v2.trc");
}

TEST(SweepCli, WorkloadsValueMayContainEquals)
{
    // The '=' splitter only applies to "--flag=value" tokens: a value
    // with its own '=' survives both spellings (the attached form splits
    // at the FIRST '='), and a bare operand containing '=' is reported
    // whole as unknown instead of being misparsed as a flag.
    const auto a = parse({"--workloads", "trace:runs/a=b.trc"});
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a.value().workloads, "trace:runs/a=b.trc");
    const auto b = parse({"--workloads=trace:runs/a=b.trc"});
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b.value().workloads, "trace:runs/a=b.trc");
    const auto bare = parse({"trace:runs/a=b.trc"});
    ASSERT_FALSE(bare.ok());
    EXPECT_NE(bare.error().describe().find("trace:runs/a=b.trc"),
              std::string::npos);
}

TEST(SweepCli, WorkloadsRejectsEmptyAndQuoted)
{
    EXPECT_FALSE(parse({"--workloads", ""}).ok());
    // '"' would corrupt the journal shard-meta line the list is
    // stamped into (parsed without escape handling).
    EXPECT_FALSE(parse({"--workloads", "trace:a\".trc"}).ok());
}

TEST(SweepCli, AnalyticFiguresRejectSweepOnlyFlags)
{
    for (const auto& args : std::vector<std::vector<const char*>>{
             {"--journal", "j"},
             {"--resume"},
             {"--point-timeout", "10"},
             {"--workloads", "FFT"},
             {"--progress"}}) {
        const auto r = parse(args, /*sim_flags=*/false);
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.error().describe().find("only applies"),
                  std::string::npos);
    }
    // The shared knobs still work for the analytic figures.
    const auto ok = parse({"--jobs", "2", "--trace", "t.json",
                           "--metrics", "m.json", "--cache-stats"},
                          /*sim_flags=*/false);
    EXPECT_TRUE(ok.ok());
}

} // namespace
