/**
 * @file
 * Snapshot regressions of the analytic figure data: the exact values the
 * benches print (and EXPERIMENTS.md records) at reference grid points.
 * The technology presets, leakage fit, thermal calibration, and scenario
 * solvers all feed these numbers, so an unexplained change here means
 * the published reproduction changed — update the constants AND
 * EXPERIMENTS.md deliberately, never casually.
 *
 * Tolerances are 2% (solver refinement and fit regression leave small
 * numeric slack; anything beyond that is a modelling change).
 */

#include <gtest/gtest.h>

#include "model/scenario1.hpp"
#include "model/scenario2.hpp"

namespace {

using namespace tlp;

struct Fig1Point
{
    const char* node;
    int n;
    double eps;
    double normalized_power;
};

class Fig1Snapshot : public ::testing::TestWithParam<Fig1Point>
{
};

TEST_P(Fig1Snapshot, NormalizedPowerIsStable)
{
    const auto [node, n, eps, expected] = GetParam();
    const tech::Technology tech = std::string(node) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    const model::AnalyticCmp cmp(tech, 32);
    const model::Scenario1 scenario(cmp);
    const auto r = scenario.solve(n, eps);
    ASSERT_TRUE(r.feasible);
    ASSERT_FALSE(r.power.runaway);
    EXPECT_NEAR(r.normalized_power, expected, 0.02 * expected)
        << node << " N=" << n << " eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(
    Fig1, Fig1Snapshot,
    ::testing::Values(Fig1Point{"130nm", 2, 1.0, 0.200},
                      Fig1Point{"130nm", 8, 0.6, 0.364},
                      Fig1Point{"130nm", 16, 1.0, 0.322},
                      Fig1Point{"130nm", 32, 0.6, 0.932},
                      Fig1Point{"65nm", 2, 1.0, 0.357},
                      Fig1Point{"65nm", 8, 0.6, 0.312},
                      Fig1Point{"65nm", 16, 1.0, 0.218},
                      Fig1Point{"65nm", 32, 1.0, 0.554}));

struct Fig2Point
{
    const char* node;
    int n;
    double speedup;
};

class Fig2Snapshot : public ::testing::TestWithParam<Fig2Point>
{
};

TEST_P(Fig2Snapshot, BudgetSpeedupIsStable)
{
    const auto [node, n, expected] = GetParam();
    const tech::Technology tech = std::string(node) == "130nm"
        ? tech::tech130nm()
        : tech::tech65nm();
    const model::AnalyticCmp cmp(tech, 32);
    const model::Scenario2 scenario(cmp);
    EXPECT_NEAR(scenario.solve(n, 1.0).speedup, expected,
                0.03 * expected)
        << node << " N=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Fig2, Fig2Snapshot,
    ::testing::Values(Fig2Point{"130nm", 2, 1.67},
                      Fig2Point{"130nm", 8, 4.13},
                      Fig2Point{"130nm", 10, 4.53},
                      Fig2Point{"130nm", 16, 3.76},
                      Fig2Point{"65nm", 2, 1.48},
                      Fig2Point{"65nm", 8, 2.80},
                      Fig2Point{"65nm", 16, 3.25},
                      Fig2Point{"65nm", 32, 1.25}));

TEST(FigSnapshot, LeakageFitErrorsAreStable)
{
    // The paper-analogous validation numbers recorded in EXPERIMENTS.md.
    EXPECT_LT(tech::tech130nm().leakageFitReport().max_rel_error, 0.025);
    EXPECT_LT(tech::tech65nm().leakageFitReport().max_rel_error, 0.045);
}

TEST(FigSnapshot, SingleCoreBudgetsAreTheTechAnchors)
{
    EXPECT_NEAR(model::AnalyticCmp(tech::tech130nm(), 32)
                    .singleCorePower(),
                55.0, 1e-9);
    EXPECT_NEAR(model::AnalyticCmp(tech::tech65nm(), 32)
                    .singleCorePower(),
                65.0, 1e-9);
}

} // namespace
