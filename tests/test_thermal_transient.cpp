/**
 * @file
 * Tests for the transient thermal solver: convergence to the steady
 * state, time-constant behaviour, monotone step responses, and input
 * validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/transient.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using thermal::RCModel;
using thermal::RCParams;
using thermal::TransientParams;
using thermal::TransientSolver;

class TransientFixture : public ::testing::Test
{
  protected:
    TransientFixture()
        : model_(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{}),
          solver_(model_)
    {
    }

    std::vector<double>
    ambientStart() const
    {
        return std::vector<double>(model_.floorplan().size(),
                                   model_.params().ambient_c);
    }

    RCModel model_;
    TransientSolver solver_;
};

TEST_F(TransientFixture, ZeroPowerStaysAtAmbient)
{
    const auto result = solver_.simulate(
        ambientStart(), [](double) { return std::vector<double>(4, 0.0); },
        1.0, 1e-3, 10);
    for (double t : result.final_temps_c)
        EXPECT_NEAR(t, model_.params().ambient_c, 1e-9);
}

TEST_F(TransientFixture, ConvergesToSteadyState)
{
    const std::vector<double> power = {8.0, 2.0, 0.0, 4.0};
    const auto steady = model_.solve(power);
    const auto result = solver_.simulate(
        ambientStart(), [&](double) { return power; },
        12.0 * solver_.sinkTimeConstant(), 5e-3, 10);
    for (std::size_t i = 0; i < power.size(); ++i) {
        EXPECT_NEAR(result.final_temps_c[i], steady.block_temps_c[i],
                    0.05)
            << "block " << i;
    }
}

TEST_F(TransientFixture, StepResponseIsMonotone)
{
    const std::vector<double> power(4, 5.0);
    const auto result = solver_.simulate(
        ambientStart(), [&](double) { return power; },
        2.0 * solver_.sinkTimeConstant(), 1e-3, 50);
    for (std::size_t i = 1; i < result.samples.size(); ++i) {
        EXPECT_GE(result.samples[i].avg_core_temp_c + 1e-9,
                  result.samples[i - 1].avg_core_temp_c);
    }
}

TEST_F(TransientFixture, CoolDownIsMonotone)
{
    // Start hot, remove all power.
    std::vector<double> hot(4, 95.0);
    const auto result = solver_.simulate(
        hot, [](double) { return std::vector<double>(4, 0.0); },
        2.0 * solver_.sinkTimeConstant(), 1e-3, 50);
    for (std::size_t i = 1; i < result.samples.size(); ++i) {
        EXPECT_LE(result.samples[i].avg_core_temp_c - 1e-9,
                  result.samples[i - 1].avg_core_temp_c);
    }
    EXPECT_LT(result.samples.back().avg_core_temp_c, 55.0);
}

TEST_F(TransientFixture, SinkTimeConstantMatchesRC)
{
    EXPECT_NEAR(solver_.sinkTimeConstant(),
                solver_.params().sink_capacity *
                    model_.params().r_convection,
                1e-12);
}

TEST_F(TransientFixture, OneTimeConstantReachesSixtyThreePercent)
{
    // For the dominant sink mode, the rise at t = tau is ~(1 - 1/e) of
    // the final value (loose bounds: die modes are much faster).
    const std::vector<double> power(4, 10.0);
    const auto steady = model_.solve(power);
    const double final_rise =
        steady.sink_temp_c - model_.params().ambient_c;
    const auto result = solver_.simulate(
        ambientStart(), [&](double) { return power; },
        solver_.sinkTimeConstant(), 1e-3, 4);
    const double rise_at_tau =
        result.samples.back().sink_temp_c - model_.params().ambient_c;
    EXPECT_NEAR(rise_at_tau / final_rise, 0.632, 0.08);
}

TEST_F(TransientFixture, TimeVaryingPowerIsApplied)
{
    // Power on for the first half, off for the second: the end state is
    // cooler than the midpoint.
    const double tau = solver_.sinkTimeConstant();
    const auto result = solver_.simulate(
        ambientStart(),
        [&](double t) {
            return std::vector<double>(4, t < tau ? 20.0 : 0.0);
        },
        2.0 * tau, 1e-3, 20);
    const auto mid = result.samples[result.samples.size() / 2];
    EXPECT_LT(result.samples.back().avg_core_temp_c,
              mid.avg_core_temp_c);
}

TEST_F(TransientFixture, LargerSinkCapacitySlowsSettling)
{
    TransientParams slow_params;
    slow_params.sink_capacity = 600.0;
    const TransientSolver slow(model_, slow_params);
    const std::vector<double> power(4, 10.0);
    const double horizon = solver_.sinkTimeConstant();
    const auto fast_result = solver_.simulate(
        ambientStart(), [&](double) { return power; }, horizon, 1e-3, 2);
    const auto slow_result = slow.simulate(
        ambientStart(), [&](double) { return power; }, horizon, 1e-3, 2);
    EXPECT_GT(fast_result.samples.back().sink_temp_c,
              slow_result.samples.back().sink_temp_c);
}

TEST_F(TransientFixture, RejectsBadInput)
{
    EXPECT_THROW(solver_.simulate(
                     {1.0}, [](double) { return std::vector<double>(); },
                     1.0),
                 util::FatalError);
    EXPECT_THROW(solver_.simulate(
                     ambientStart(),
                     [](double) { return std::vector<double>(4, 0.0); },
                     -1.0),
                 util::FatalError);
    EXPECT_THROW(solver_.simulate(
                     ambientStart(),
                     [](double) { return std::vector<double>(2, 0.0); },
                     1.0),
                 util::FatalError);
}

TEST(TransientParamsTest, RejectsNonPositiveCapacity)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    TransientParams params;
    params.sink_capacity = 0.0;
    EXPECT_THROW(TransientSolver(model, params), util::FatalError);
}

} // namespace
