/**
 * @file
 * Unit and property tests for tlp_util: logging, RNG, solvers,
 * interpolation, statistics, tables, and dense linear algebra.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/interp.hpp"
#include "util/linalg.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/solver.hpp"
#include "util/sparse_cholesky.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "util/watchdog.hpp"

namespace {

using namespace tlp::util;

// ---------------------------------------------------------------- logging

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
}

TEST(Logging, FatalCarriesMessage)
{
    try {
        fatal(strcatMsg("value is ", 42));
        FAIL() << "fatal did not throw";
    } catch (const FatalError& e) {
        EXPECT_STREQ(e.what(), "value is 42");
    }
}

TEST(Logging, StrcatMsgConcatenatesMixedTypes)
{
    EXPECT_EQ(strcatMsg("a", 1, "b", 2.5), "a1b2.5");
}

// -------------------------------------------------------------------- rng

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(10, 13);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

// ------------------------------------------------------------------ units

TEST(Units, TemperatureConversionRoundTrips)
{
    EXPECT_DOUBLE_EQ(celsiusToKelvin(0.0), 273.15);
    EXPECT_DOUBLE_EQ(kelvinToCelsius(celsiusToKelvin(85.0)), 85.0);
}

TEST(Units, ThermalVoltageAtRoomTemperature)
{
    EXPECT_NEAR(thermalVoltage(celsiusToKelvin(25.0)), 0.0257, 0.0002);
}

TEST(Units, Multipliers)
{
    EXPECT_DOUBLE_EQ(ghz(3.2), 3.2e9);
    EXPECT_DOUBLE_EQ(mhz(200), 2e8);
    EXPECT_DOUBLE_EQ(ns(75), 7.5e-8);
    EXPECT_DOUBLE_EQ(mm2(244.5), 244.5e-6);
}

// ---------------------------------------------------------------- solvers

TEST(Bisect, FindsRootOfCubic)
{
    const auto result =
        bisect([](double x) { return x * x * x - 8.0; }, 0.0, 10.0);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, 2.0, 1e-8);
}

TEST(Bisect, HandlesEndpointRoot)
{
    const auto result = bisect([](double x) { return x; }, 0.0, 1.0);
    EXPECT_TRUE(result.converged);
    EXPECT_DOUBLE_EQ(result.x, 0.0);
}

TEST(Bisect, RejectsNonBracketingInterval)
{
    EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
                 FatalError);
}

TEST(Bisect, RejectsInvertedInterval)
{
    EXPECT_THROW(bisect([](double x) { return x; }, 1.0, -1.0),
                 FatalError);
}

// ---------------------------------------------- non-throwing root search

TEST(TryBisect, FindsRootLikeBisect)
{
    const auto result =
        tryBisect([](double x) { return x * x * x - 8.0; }, 0.0, 10.0);
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.failure, RootFailure::None);
    EXPECT_NEAR(result.x, 2.0, 1e-8);
}

TEST(TryBisect, ReportsNoSignChangeWithEndpointValues)
{
    const auto result =
        tryBisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.failure, RootFailure::NoSignChange);
    EXPECT_DOUBLE_EQ(result.f_lo, 2.0);
    EXPECT_DOUBLE_EQ(result.f_hi, 2.0);
    EXPECT_STREQ(rootFailureName(result.failure), "no-sign-change");
}

TEST(TryBisect, ReportsInvalidBracket)
{
    const auto result = tryBisect([](double x) { return x; }, 1.0, -1.0);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.failure, RootFailure::InvalidBracket);
}

TEST(TryBisect, ReportsNanObjective)
{
    const auto result = tryBisect(
        [](double x) { return x < 0.0 ? -1.0 : std::nan(""); }, -1.0,
        1.0);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.failure, RootFailure::NanObjective);
}

TEST(TryBisect, ReportsMaxIterationsWithDiagnostics)
{
    // A 20-unit bracket at 1e-12 tolerance needs ~44 halvings; cap at 5.
    const auto result = tryBisect(
        [](double x) { return std::tanh(x - 0.3); }, -10.0, 10.0, 1e-12,
        5);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.failure, RootFailure::MaxIterations);
    EXPECT_EQ(result.iterations, 5);
    // The estimate is still the midpoint of a valid (shrunken) bracket.
    EXPECT_NEAR(result.x, 0.3, 20.0 / (1 << 5));
}

TEST(Bisect, ThrowingWrapperStillReturnsMaxIterResult)
{
    // bisect() historically returned converged=false on budget
    // exhaustion (only bracket failures throw); keep that contract.
    const auto result = bisect([](double x) { return x - 0.3; }, 0.0,
                               1.0, 1e-15, 3);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.failure, RootFailure::MaxIterations);
}

TEST(GoldenMax, FindsParabolaPeak)
{
    const auto result = goldenMax(
        [](double x) { return -(x - 1.7) * (x - 1.7); }, -10.0, 10.0);
    EXPECT_NEAR(result.x, 1.7, 1e-5);
}

TEST(MaximizeScan, FindsGlobalMaxOfBimodal)
{
    // Two peaks; the taller is at x = 8.
    const auto f = [](double x) {
        return std::exp(-(x - 2) * (x - 2)) +
            2.0 * std::exp(-(x - 8) * (x - 8));
    };
    const auto result = maximizeScan(f, 0.0, 10.0, 64);
    EXPECT_NEAR(result.x, 8.0, 1e-3);
}

TEST(MaximizeScan, MonotoneFunctionPicksBoundary)
{
    const auto result =
        maximizeScan([](double x) { return x; }, 0.0, 5.0, 16);
    EXPECT_NEAR(result.x, 5.0, 1e-6);
}

// ------------------------------------------------------------------ interp

TEST(PiecewiseLinear, InterpolatesBetweenPoints)
{
    PiecewiseLinear f({{0.0, 0.0}, {2.0, 4.0}});
    EXPECT_DOUBLE_EQ(f(1.0), 2.0);
    EXPECT_DOUBLE_EQ(f(0.5), 1.0);
}

TEST(PiecewiseLinear, SortsUnorderedInput)
{
    PiecewiseLinear f({{2.0, 4.0}, {0.0, 0.0}, {1.0, 1.0}});
    EXPECT_DOUBLE_EQ(f(1.5), 2.5);
}

TEST(PiecewiseLinear, ClampsOutOfRangeByDefault)
{
    PiecewiseLinear f({{0.0, 1.0}, {1.0, 3.0}});
    EXPECT_DOUBLE_EQ(f(-5.0), 1.0);
    EXPECT_DOUBLE_EQ(f(9.0), 3.0);
}

TEST(PiecewiseLinear, ExtrapolatesWhenAsked)
{
    PiecewiseLinear f({{0.0, 0.0}, {1.0, 2.0}},
                      PiecewiseLinear::OutOfRange::Extrapolate);
    EXPECT_DOUBLE_EQ(f(2.0), 4.0);
    EXPECT_DOUBLE_EQ(f(-1.0), -2.0);
}

TEST(PiecewiseLinear, InverseOfMonotoneTable)
{
    PiecewiseLinear f({{0.0, 0.0}, {1.0, 10.0}, {2.0, 30.0}});
    EXPECT_DOUBLE_EQ(f.inverse(5.0), 0.5);
    EXPECT_DOUBLE_EQ(f.inverse(20.0), 1.5);
}

TEST(PiecewiseLinear, InverseRejectsNonMonotone)
{
    PiecewiseLinear f({{0.0, 0.0}, {1.0, 10.0}, {2.0, 5.0}});
    EXPECT_THROW(f.inverse(3.0), FatalError);
}

TEST(PiecewiseLinear, RejectsDuplicateX)
{
    EXPECT_THROW(PiecewiseLinear({{1.0, 0.0}, {1.0, 2.0}}), FatalError);
}

TEST(PiecewiseLinear, RejectsEmpty)
{
    std::vector<std::pair<double, double>> empty;
    EXPECT_THROW(PiecewiseLinear{empty}, FatalError);
}

// ------------------------------------------------------------------- stats

TEST(Stats, CounterAccumulates)
{
    StatRegistry reg;
    reg.counter("a").increment();
    reg.counter("a").increment(4);
    EXPECT_EQ(reg.counterValue("a"), 5u);
}

TEST(Stats, MissingCounterReadsZero)
{
    StatRegistry reg;
    EXPECT_EQ(reg.counterValue("nope"), 0u);
    EXPECT_FALSE(reg.hasCounter("nope"));
}

TEST(Stats, SumByPrefix)
{
    StatRegistry reg;
    reg.counter("core0.loads").increment(3);
    reg.counter("core1.loads").increment(4);
    reg.counter("bus.loads").increment(9);
    EXPECT_EQ(reg.sumByPrefix("core"), 7u);
}

TEST(Stats, SumBySuffix)
{
    StatRegistry reg;
    reg.counter("core0.l1d.misses").increment(3);
    reg.counter("core7.l1d.misses").increment(2);
    reg.counter("core7.l1d.hits").increment(50);
    EXPECT_EQ(reg.sumBySuffix("l1d.misses"), 5u);
}

TEST(Stats, ResetAllZeroes)
{
    StatRegistry reg;
    reg.counter("x").increment(9);
    reg.accumulator("y").sample(3.0);
    reg.resetAll();
    EXPECT_EQ(reg.counterValue("x"), 0u);
    EXPECT_EQ(reg.accumulator("y").count(), 0u);
}

TEST(Stats, AccumulatorTracksMinMeanMax)
{
    Accumulator acc;
    acc.sample(2.0);
    acc.sample(6.0);
    acc.sample(4.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 6.0);
    EXPECT_DOUBLE_EQ(acc.mean(), 4.0);
}

TEST(Stats, HistogramClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(-100.0);
    h.sample(100.0);
    h.sample(5.0);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Stats, HistogramBucketBoundaries)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(4), 10.0);
}

TEST(Stats, HistogramRejectsBadRange)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

// ------------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns)
{
    Table t("demo", {"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("demo", {"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RejectsRaggedRow)
{
    Table t("demo", {"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, CellAccessorBoundsChecked)
{
    Table t("demo", {"a"});
    t.addRow({"x"});
    EXPECT_EQ(t.cell(0, 0), "x");
    EXPECT_THROW(t.cell(1, 0), FatalError);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
}

// ------------------------------------------------------------------ linalg

TEST(Linalg, SolvesIdentity)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = 1.0;
    const auto x = solveDense(a, {3.0, 4.0});
    EXPECT_DOUBLE_EQ(x[0], 3.0);
    EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(Linalg, SolvesGeneralSystem)
{
    // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
    Matrix a(2, 2);
    a(0, 0) = 2.0;
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    a(1, 1) = 3.0;
    const auto x = solveDense(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Linalg, PivotsZeroDiagonal)
{
    Matrix a(2, 2);
    a(0, 1) = 1.0;
    a(1, 0) = 1.0;
    const auto x = solveDense(a, {2.0, 3.0});
    EXPECT_DOUBLE_EQ(x[0], 3.0);
    EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Linalg, RejectsSingular)
{
    Matrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 2.0;
    a(1, 1) = 4.0;
    EXPECT_THROW(solveDense(a, {1.0, 2.0}), FatalError);
}

TEST(Linalg, LeastSquaresRecoversLine)
{
    // Fit y = 2x + 1 from exact samples.
    Matrix a(4, 2);
    std::vector<double> b(4);
    for (int i = 0; i < 4; ++i) {
        a(i, 0) = i;
        a(i, 1) = 1.0;
        b[i] = 2.0 * i + 1.0;
    }
    const auto x = solveLeastSquares(a, b);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(Linalg, LeastSquaresOverdeterminedAverages)
{
    // One unknown, contradictory samples: least squares -> mean.
    Matrix a(2, 1);
    a(0, 0) = 1.0;
    a(1, 0) = 1.0;
    const auto x = solveLeastSquares(a, {1.0, 3.0});
    EXPECT_NEAR(x[0], 2.0, 1e-12);
}

/**
 * Reference one-shot Gaussian elimination with partial pivoting and the
 * right-hand side interleaved — the elimination LuFactorization::solve()
 * claims to replay bit-for-bit (same pivot rule, same factor == 0 skips,
 * same operation order).
 */
std::vector<double>
referenceElimination(Matrix a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        double best = std::fabs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300)
            fatal("referenceElimination: singular matrix");
        if (pivot != col) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(a(pivot, c), a(col, c));
            std::swap(b[pivot], b[col]);
        }
        const double inv_diag = 1.0 / a(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = a(r, col) * inv_diag;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col + 1; c < n; ++c)
                a(r, c) -= factor * a(col, c);
            b[r] -= factor * b[col];
        }
    }
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= a(ri, c) * b[c];
        b[ri] = acc / a(ri, ri);
    }
    return b;
}

TEST(LuFactorization, BitIdenticalToReferenceEliminationOnRandomSystems)
{
    // The thermal hot path depends on factor-once/solve-many producing
    // the exact doubles of the historical per-call elimination: compare
    // bit patterns, not EXPECT_NEAR, across sizes and seeds. Random
    // dense systems of this kind are comfortably nonsingular.
    Rng rng(20240805);
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u}) {
        for (int trial = 0; trial < 5; ++trial) {
            Matrix a(n, n);
            std::vector<double> b(n);
            for (std::size_t r = 0; r < n; ++r) {
                for (std::size_t c = 0; c < n; ++c)
                    a(r, c) = rng.uniform(-10.0, 10.0);
                // Diagonal dominance mirrors the conductance matrices.
                a(r, r) += 25.0;
                b[r] = rng.uniform(-100.0, 100.0);
            }
            const std::vector<double> expected =
                referenceElimination(a, b);
            const LuFactorization lu(a);
            const std::vector<double> got = lu.solve(b);
            ASSERT_EQ(got.size(), expected.size());
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(got[i], expected[i])
                    << "n=" << n << " trial=" << trial << " i=" << i;
        }
    }
}

TEST(LuFactorization, BitIdenticalWhenPivotingIsForced)
{
    // Zero diagonal forces a row swap in every elimination step.
    Matrix a(3, 3);
    a(0, 1) = 2.0;
    a(0, 2) = 1.0;
    a(1, 0) = 3.0;
    a(1, 2) = 4.0;
    a(2, 0) = 1.0;
    a(2, 1) = 1.0;
    const std::vector<double> b = {1.0, 2.0, 3.0};
    const std::vector<double> expected = referenceElimination(a, b);
    const LuFactorization lu(a);
    const std::vector<double> got = lu.solve(b);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_EQ(got[i], expected[i]);
}

TEST(LuFactorization, ReusesFactorsAcrossRightHandSides)
{
    Rng rng(7);
    Matrix a(6, 6);
    for (std::size_t r = 0; r < 6; ++r) {
        for (std::size_t c = 0; c < 6; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 4.0;
    }
    const LuFactorization lu(a);
    EXPECT_EQ(lu.size(), 6u);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<double> b(6);
        for (double& v : b)
            v = rng.uniform(-5.0, 5.0);
        const std::vector<double> expected = solveDense(a, b);
        const std::vector<double> got = lu.solve(b);
        for (std::size_t i = 0; i < b.size(); ++i)
            EXPECT_EQ(got[i], expected[i]) << "trial=" << trial;
    }
}

TEST(LuFactorization, RejectsSingularAndNonSquare)
{
    Matrix singular(2, 2);
    singular(0, 0) = 1.0;
    singular(0, 1) = 2.0;
    singular(1, 0) = 2.0;
    singular(1, 1) = 4.0;
    EXPECT_THROW(LuFactorization{singular}, FatalError);

    Matrix rect(2, 3);
    EXPECT_THROW(LuFactorization{rect}, FatalError);

    Matrix good(2, 2);
    good(0, 0) = 1.0;
    good(1, 1) = 1.0;
    const LuFactorization lu(good);
    std::vector<double> wrong_size = {1.0, 2.0, 3.0};
    EXPECT_THROW(lu.solveInPlace(wrong_size), FatalError);
}

TEST(LuFactorization, InterleavedSolveBitIdenticalToScalarSolves)
{
    Rng rng(42);
    Matrix a(7, 7);
    for (std::size_t r = 0; r < 7; ++r) {
        for (std::size_t c = 0; c < 7; ++c)
            a(r, c) = rng.uniform(-1.0, 1.0);
        a(r, r) += 5.0;
    }
    const LuFactorization lu(a);

    constexpr std::size_t kRhs = 3;
    std::vector<std::vector<double>> rhs(kRhs, std::vector<double>(7));
    for (auto& b : rhs)
        for (double& v : b)
            v = rng.uniform(-5.0, 5.0);

    std::vector<double> interleaved(7 * kRhs);
    for (std::size_t i = 0; i < 7; ++i)
        for (std::size_t p = 0; p < kRhs; ++p)
            interleaved[i * kRhs + p] = rhs[p][i];
    std::vector<double> work;
    lu.solveInterleavedInPlace(interleaved.data(), kRhs, work);

    for (std::size_t p = 0; p < kRhs; ++p) {
        const std::vector<double> scalar = lu.solve(rhs[p]);
        for (std::size_t i = 0; i < 7; ++i)
            EXPECT_EQ(interleaved[i * kRhs + p], scalar[i]) << "rhs=" << p;
    }
}

// ------------------------------------------------------ sparse Cholesky

/** Random SPD system shaped like the thermal conductance matrices:
 *  a sparse symmetric Laplacian-ish coupling plus a strictly positive
 *  diagonal, assembled simultaneously into dense and sparse forms. */
void
makeRandomSpd(Rng& rng, std::size_t n, double link_chance, Matrix& dense,
              SparseSpdMatrix& sparse)
{
    dense = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double d = rng.uniform(1.0, 3.0);
        dense(i, i) += d;
        sparse.add(i, i, d);
    }
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            if (!rng.chance(link_chance))
                continue;
            const double w = rng.uniform(0.1, 2.0);
            dense(i, i) += w;
            dense(j, j) += w;
            dense(i, j) -= w;
            dense(j, i) -= w;
            sparse.add(i, i, w);
            sparse.add(j, j, w);
            sparse.add(i, j, -w); // upper-triangle image, mapped down
        }
    }
    sparse.compress();
}

TEST(SparseCholesky, MatchesDenseSolveOnRandomSpdSystems)
{
    Rng rng(20260808);
    for (const std::size_t n : {1u, 2u, 5u, 12u, 33u}) {
        Matrix dense(1, 1);
        SparseSpdMatrix sparse(n);
        makeRandomSpd(rng, n, 0.3, dense, sparse);

        SparseCholesky chol;
        chol.factorize(sparse);
        EXPECT_EQ(chol.size(), n);

        std::vector<double> b(n);
        for (double& v : b)
            v = rng.uniform(-10.0, 10.0);
        const std::vector<double> expected = solveDense(dense, b);
        std::vector<double> got = b;
        chol.solveInPlace(got);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(got[i], expected[i], 1e-9) << "n=" << n;
    }
}

TEST(SparseCholesky, InterleavedSolveBitIdenticalToSingleRhs)
{
    Rng rng(99);
    const std::size_t n = 14;
    Matrix dense(1, 1);
    SparseSpdMatrix sparse(n);
    makeRandomSpd(rng, n, 0.25, dense, sparse);
    SparseCholesky chol;
    chol.factorize(sparse);

    constexpr std::size_t kRhs = 4;
    std::vector<std::vector<double>> rhs(kRhs, std::vector<double>(n));
    for (auto& b : rhs)
        for (double& v : b)
            v = rng.uniform(-5.0, 5.0);

    std::vector<double> interleaved(n * kRhs);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t p = 0; p < kRhs; ++p)
            interleaved[i * kRhs + p] = rhs[p][i];
    std::vector<double> work;
    chol.solveInterleavedInPlace(interleaved.data(), kRhs, work);

    for (std::size_t p = 0; p < kRhs; ++p) {
        std::vector<double> scalar = rhs[p];
        chol.solveInPlace(scalar);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(interleaved[i * kRhs + p], scalar[i]) << "rhs=" << p;
    }
}

TEST(SparseCholesky, SymbolicAnalysisReusedForValueOnlyRefactorization)
{
    const auto assemble = [](double scale) {
        SparseSpdMatrix a(4);
        for (std::size_t i = 0; i < 4; ++i)
            a.add(i, i, 2.0 * scale);
        a.add(1, 0, -0.5 * scale);
        a.add(2, 1, -0.5 * scale);
        a.add(3, 2, -0.5 * scale);
        a.compress();
        return a;
    };

    SparseCholesky chol;
    EXPECT_EQ(chol.symbolicAnalyses(), 0u);
    const SparseSpdMatrix a1 = assemble(1.0);
    chol.factorize(a1);
    EXPECT_EQ(chol.symbolicAnalyses(), 1u);

    // Same pattern, different values: numeric-only refactorization.
    const SparseSpdMatrix a2 = assemble(3.0);
    chol.factorize(a2);
    EXPECT_EQ(chol.symbolicAnalyses(), 1u);

    std::vector<double> b = {1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b_orig = b;
    chol.solveInPlace(b);
    // a2 = 3 * a1, so x2 = x1 / 3: the refactorization took the values.
    SparseCholesky fresh;
    fresh.factorize(a1);
    std::vector<double> b1 = b_orig;
    fresh.solveInPlace(b1);
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(b[i], b1[i] / 3.0, 1e-12);

    // A different pattern triggers a second symbolic analysis.
    SparseSpdMatrix wider(4);
    for (std::size_t i = 0; i < 4; ++i)
        wider.add(i, i, 2.0);
    wider.add(3, 0, -0.5);
    wider.compress();
    chol.factorize(wider);
    EXPECT_EQ(chol.symbolicAnalyses(), 2u);
}

TEST(SparseCholesky, DuplicateEntriesAccumulate)
{
    SparseSpdMatrix a(2);
    a.add(0, 0, 1.0);
    a.add(0, 0, 1.0); // accumulates to 2.0
    a.add(1, 1, 2.0);
    a.compress();
    EXPECT_EQ(a.nnzLower(), 2u);

    SparseCholesky chol;
    chol.factorize(a);
    std::vector<double> b = {4.0, 6.0};
    chol.solveInPlace(b);
    EXPECT_NEAR(b[0], 2.0, 1e-12);
    EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SparseCholesky, RejectsIndefiniteMatrix)
{
    SparseSpdMatrix a(2);
    a.add(0, 0, 1.0);
    a.add(1, 1, -1.0);
    a.compress();
    SparseCholesky chol;
    EXPECT_THROW(chol.factorize(a), FatalError);
}

TEST(SparseCholesky, FillInIsBoundedOnChainGraph)
{
    // A path graph has a perfect elimination ordering; minimum degree
    // must find a zero-fill factorization.
    const std::size_t n = 32;
    SparseSpdMatrix a(n);
    for (std::size_t i = 0; i < n; ++i)
        a.add(i, i, 3.0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        a.add(i + 1, i, -1.0);
    a.compress();
    SparseCholesky chol;
    chol.factorize(a);
    EXPECT_EQ(chol.fillIn(), 0u);
}

/** Property sweep: bisect recovers known roots across a parameter grid. */
class BisectSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BisectSweep, RecoversShiftedRoot)
{
    const double root = GetParam();
    const auto result = bisect(
        [root](double x) { return std::tanh(x - root); }, root - 10.0,
        root + 10.0, 1e-12);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(result.x, root, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Roots, BisectSweep,
                         ::testing::Values(-7.5, -1.0, 0.0, 0.3, 2.0,
                                           42.0));

// --------------------------------------------------------- error taxonomy

TEST(Error, DescribeRendersCodeMessageAndContextChain)
{
    Error e{ErrorCode::NoConvergence, "residual 0.5 C"};
    e.withContext("solveCoupled").withContext("measure FFT n=4");
    const std::string text = e.describe();
    EXPECT_NE(text.find("no-convergence"), std::string::npos);
    EXPECT_NE(text.find("residual 0.5 C"), std::string::npos);
    // Innermost frame first.
    EXPECT_LT(text.find("solveCoupled"), text.find("measure FFT n=4"));
}

TEST(Expected, HoldsValueOrError)
{
    Expected<int> good(42);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(good.valueOr(0), 42);

    Expected<int> bad(Error{ErrorCode::Timeout, "too slow"});
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::Timeout);
    EXPECT_EQ(bad.valueOr(-1), -1);
}

TEST(Expected, ValueOnErrorPanics)
{
    const Expected<int> bad(Error{ErrorCode::Unknown, "nope"});
    EXPECT_THROW(bad.value(), PanicError);
}

TEST(ErrorCodeNames, AreStable)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::NonFinite), "non-finite");
    EXPECT_STREQ(errorCodeName(ErrorCode::Timeout), "timeout");
    EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected),
                 "fault-injected");
}

// --------------------------------------------------------- checked parsing

TEST(ParseNumber, AcceptsPlainAndScientific)
{
    EXPECT_DOUBLE_EQ(parseNumber("0.25", "x").value(), 0.25);
    EXPECT_DOUBLE_EQ(parseNumber("3e8", "x").value(), 3e8);
    EXPECT_DOUBLE_EQ(parseNumber("-1.5", "x").value(), -1.5);
}

TEST(ParseNumber, RejectsGarbage)
{
    EXPECT_FALSE(parseNumber("", "x").ok());
    EXPECT_FALSE(parseNumber("abc", "x").ok());
    EXPECT_FALSE(parseNumber("0.3.5", "x").ok());
    EXPECT_FALSE(parseNumber("1.0 ", "x").ok());
    EXPECT_FALSE(parseNumber("nan", "x").ok());
    EXPECT_FALSE(parseNumber("inf", "x").ok());
}

TEST(ParseNumber, EnforcesRangeAndNamesTheInput)
{
    const auto out_of_range = parseNumber("2.5", "TLPPM_SCALE", 0.0, 1.0);
    ASSERT_FALSE(out_of_range.ok());
    EXPECT_EQ(out_of_range.error().code, ErrorCode::ParseError);
    EXPECT_NE(out_of_range.error().message.find("TLPPM_SCALE"),
              std::string::npos);
    EXPECT_NE(out_of_range.error().message.find("2.5"), std::string::npos);
}

TEST(ParseInt, StrictnessMatchesParseNumber)
{
    EXPECT_EQ(parseInt("16", "--jobs").value(), 16);
    EXPECT_FALSE(parseInt("4x", "--jobs").ok());
    EXPECT_FALSE(parseInt("", "--jobs").ok());
    EXPECT_FALSE(parseInt("3.5", "--jobs").ok());
    EXPECT_FALSE(parseInt("99", "--jobs", 1, 64).ok());
}

// ------------------------------------------------------------------ crc32

TEST(Crc32, MatchesKnownVectors)
{
    // Standard IEEE 802.3 (zlib) check values.
    EXPECT_EQ(crc32(""), 0u);
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32("The quick brown fox jumps over the lazy dog"),
              0x414FA339u);
}

TEST(Crc32, DetectsSingleCharacterCorruption)
{
    EXPECT_NE(crc32("{\"n\":4,\"sec\":1.5}"), crc32("{\"n\":5,\"sec\":1.5}"));
}

// --------------------------------------------------------------- watchdog

TEST(Watchdog, UnarmedThreadNeverTimesOut)
{
    clearPointDeadline();
    EXPECT_FALSE(pointDeadlineArmed());
    EXPECT_NO_THROW(checkPointDeadline("test"));
}

TEST(Watchdog, ExpiredDeadlineThrowsTimeoutError)
{
    setPointDeadline(1e-9); // effectively already expired
    EXPECT_TRUE(pointDeadlineArmed());
    EXPECT_THROW(checkPointDeadline("test"), TimeoutError);
    clearPointDeadline();
    EXPECT_NO_THROW(checkPointDeadline("test"));
}

TEST(Watchdog, GuardDisarmsOnScopeExit)
{
    {
        PointDeadlineGuard guard(60.0);
        EXPECT_TRUE(pointDeadlineArmed());
        EXPECT_NO_THROW(checkPointDeadline("test"));
    }
    EXPECT_FALSE(pointDeadlineArmed());
}

} // namespace
