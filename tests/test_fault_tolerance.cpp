/**
 * @file
 * Fault-tolerance tests: configuration validation fails fast with the
 * offending field named; fault plans parse strictly; an injected failing
 * point is contained (the sweep completes, reports exactly that point,
 * and every other row is bit-identical to a fault-free run at any job
 * count); a transient fault is retried to a bit-identical success; and a
 * killed sweep resumes from its journal without re-simulating any
 * completed point.
 */

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include <unistd.h>

#include "runner/fault_injection.hpp"
#include "runner/sweep_runner.hpp"
#include "util/logging.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;

constexpr double kScale = 0.08;

std::string
fatalMessageOf(const std::function<void()>& f)
{
    try {
        f();
    } catch (const util::FatalError& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected FatalError";
    return {};
}

void
expectSameMeasurement(const runner::Measurement& a,
                      const runner::Measurement& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.freq_hz, b.freq_hz);
    EXPECT_EQ(a.vdd, b.vdd);
    EXPECT_EQ(a.dynamic_w, b.dynamic_w);
    EXPECT_EQ(a.static_w, b.static_w);
    EXPECT_EQ(a.total_w, b.total_w);
    EXPECT_EQ(a.avg_core_temp_c, b.avg_core_temp_c);
    EXPECT_EQ(a.core_power_density_w_m2, b.core_power_density_w_m2);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.runaway, b.runaway);
}

void
expectSameRow(const runner::Scenario1Row& a, const runner::Scenario1Row& b)
{
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.eps_n, b.eps_n);
    EXPECT_EQ(a.freq_hz, b.freq_hz);
    EXPECT_EQ(a.vdd, b.vdd);
    EXPECT_EQ(a.actual_speedup, b.actual_speedup);
    EXPECT_EQ(a.normalized_power, b.normalized_power);
    EXPECT_EQ(a.normalized_density, b.normalized_density);
    EXPECT_EQ(a.avg_temp_c, b.avg_temp_c);
    expectSameMeasurement(a.measurement, b.measurement);
}

// ---------------------------------------------------------------------
// Configuration validation: a bad field is a FatalError naming the field
// and the accepted range, raised before any simulation runs.
// ---------------------------------------------------------------------

TEST(ConfigValidation, RejectsBadCoreCount)
{
    sim::CmpConfig config;
    config.n_cores = 0;
    const std::string msg = fatalMessageOf(
        [&] { runner::Experiment exp(kScale, config); });
    EXPECT_NE(msg.find("n_cores"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[1, 1024]"), std::string::npos) << msg;
}

TEST(ConfigValidation, RejectsImpossibleCacheShape)
{
    sim::CmpConfig config;
    config.l1_size_bytes = 64; // smaller than line_bytes x assoc
    const std::string msg = fatalMessageOf(
        [&] { runner::Experiment exp(kScale, config); });
    EXPECT_NE(msg.find("L1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("size_bytes"), std::string::npos) << msg;
}

TEST(ConfigValidation, RejectsL2LinesSmallerThanL1)
{
    sim::CmpConfig config;
    config.l2_line_bytes = 32; // < l1_line_bytes: breaks inclusion
    const std::string msg = fatalMessageOf(
        [&] { runner::Experiment exp(kScale, config); });
    EXPECT_NE(msg.find("l2_line_bytes"), std::string::npos) << msg;
}

TEST(ConfigValidation, RejectsNonPositiveRates)
{
    sim::CmpConfig config;
    config.ipc_int = 0.0;
    const std::string msg = fatalMessageOf(
        [&] { runner::Experiment exp(kScale, config); });
    EXPECT_NE(msg.find("ipc_int"), std::string::npos) << msg;
}

TEST(ConfigValidation, RejectsOutOfRangeScale)
{
    for (const double bad : {0.0, -0.5, 1.5}) {
        const std::string msg =
            fatalMessageOf([&] { runner::Experiment exp(bad); });
        EXPECT_NE(msg.find("scale"), std::string::npos) << msg;
        EXPECT_NE(msg.find("(0, 1]"), std::string::npos) << msg;
    }
}

// ---------------------------------------------------------------------
// Fault-plan parsing (the TLPPM_FAULT grammar).
// ---------------------------------------------------------------------

TEST(FaultPlanParse, AcceptsOrdinalSpecs)
{
    const auto plan = runner::parseFaultPlan("point:5");
    ASSERT_TRUE(plan.ok()) << plan.error().describe();
    EXPECT_EQ(plan.value().kind, runner::FaultKind::Throw);
    EXPECT_EQ(plan.value().point, 5u);
    EXPECT_FALSE(plan.value().byKey());

    const auto nan = runner::parseFaultPlan("nan:3");
    ASSERT_TRUE(nan.ok());
    EXPECT_EQ(nan.value().kind, runner::FaultKind::Nan);
    EXPECT_EQ(nan.value().point, 3u);

    const auto kill = runner::parseFaultPlan("kill:1");
    ASSERT_TRUE(kill.ok());
    EXPECT_EQ(kill.value().kind, runner::FaultKind::Kill);
}

TEST(FaultPlanParse, AcceptsKeySpecs)
{
    const auto plan = runner::parseFaultPlan("stall:FMM:4");
    ASSERT_TRUE(plan.ok()) << plan.error().describe();
    EXPECT_EQ(plan.value().kind, runner::FaultKind::Stall);
    EXPECT_TRUE(plan.value().byKey());
    EXPECT_EQ(plan.value().workload, "FMM");
    EXPECT_EQ(plan.value().n, 4);
}

TEST(FaultPlanParse, RejectsMalformedSpecs)
{
    for (const char* bad :
         {"", "point", "bogus:1", "nan:", "nan:0", "throw:-2",
          "throw:FMM:", "stall:FMM:zero", "kill::4", "nan:FMM:0"}) {
        const auto plan = runner::parseFaultPlan(bad);
        EXPECT_FALSE(plan.ok()) << "accepted '" << bad << "'";
        if (!plan.ok()) {
            EXPECT_EQ(plan.error().code, util::ErrorCode::ParseError);
        }
    }
}

// ---------------------------------------------------------------------
// Containment: an injected persistently-failing point is reported, every
// other row is bit-identical to a fault-free sweep, at any job count.
// ---------------------------------------------------------------------

TEST(FaultTolerance, StickyFaultIsContainedAtAnyJobCount)
{
    const std::vector<const workloads::WorkloadInfo*> apps = {
        &workloads::byName("FMM"), &workloads::byName("Radix")};
    const std::vector<int> ns = {1, 2, 4};

    runner::SweepRunner::Options clean_opts;
    clean_opts.jobs = 1;
    clean_opts.scale = kScale;
    runner::SweepRunner clean(clean_opts);
    const auto reference = clean.scenario1Sweep(apps, ns);
    ASSERT_TRUE(clean.lastReport().allOk());

    // Every measurement of (Radix, n=2) throws — on every attempt, on
    // every worker.
    runner::FaultPlan plan;
    plan.kind = runner::FaultKind::Throw;
    plan.workload = "Radix";
    plan.n = 2;
    runner::ScopedFaultPlan scoped(plan);

    for (const int jobs : {1, 4}) {
        runner::SweepRunner::Options options;
        options.jobs = jobs;
        options.scale = kScale;
        runner::SweepRunner sweep(options);
        const auto rows = sweep.scenario1Sweep(apps, ns);

        const runner::SweepReport& report = sweep.lastReport();
        ASSERT_EQ(report.failed.size(), 1u) << "jobs=" << jobs;
        const runner::FailedPoint& failure = report.failed.front();
        EXPECT_EQ(failure.workload, "Radix");
        EXPECT_EQ(failure.n, 2);
        EXPECT_EQ(failure.phase, "profile");
        EXPECT_EQ(failure.error.code, util::ErrorCode::SimulationError);
        EXPECT_EQ(failure.attempts, 2); // initial try + one retry
        EXPECT_EQ(report.skipped, 1u);  // the (Radix, 2) row
        // 5 profile points + 5 assembled rows succeeded.
        EXPECT_EQ(report.ok, 10u);

        ASSERT_EQ(rows.size(), reference.size());
        for (std::size_t a = 0; a < reference.size(); ++a) {
            ASSERT_EQ(rows[a].size(), reference[a].size());
            for (std::size_t i = 0; i < reference[a].size(); ++i) {
                const bool injected = a == 1 && ns[i] == 2;
                EXPECT_EQ(rows[a][i].failed, injected);
                EXPECT_EQ(rows[a][i].n, ns[i]);
                if (!injected)
                    expectSameRow(rows[a][i], reference[a][i]);
            }
        }
    }
}

TEST(FaultTolerance, TransientFaultIsRetriedToBitIdenticalSuccess)
{
    const std::vector<const workloads::WorkloadInfo*> apps = {
        &workloads::byName("Radix")};
    const std::vector<int> ns = {1, 2};

    runner::SweepRunner::Options clean_opts;
    clean_opts.jobs = 1;
    clean_opts.scale = kScale;
    runner::SweepRunner clean(clean_opts);
    const auto reference = clean.scenario1Sweep(apps, ns);

    // The 2nd real measurement — the (Radix, 2) nominal profile — throws
    // once; the retry re-simulates it successfully.
    runner::FaultPlan plan;
    plan.kind = runner::FaultKind::Throw;
    plan.point = 2;
    runner::ScopedFaultPlan scoped(plan);
    runner::FaultInjector::instance().resetCount();

    runner::SweepRunner::Options options;
    options.jobs = 1;
    options.scale = kScale;
    options.max_point_retries = 1;
    runner::SweepRunner sweep(options);
    const auto rows = sweep.scenario1Sweep(apps, ns);

    const runner::SweepReport& report = sweep.lastReport();
    EXPECT_TRUE(report.failed.empty());
    EXPECT_EQ(report.skipped, 0u);
    EXPECT_EQ(report.retried, 1u);

    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].size(), reference[0].size());
    for (std::size_t i = 0; i < reference[0].size(); ++i)
        expectSameRow(rows[0][i], reference[0][i]);
}

TEST(FaultTolerance, NanFaultIsCaughtByTheNonFiniteGuard)
{
    runner::FaultPlan plan;
    plan.kind = runner::FaultKind::Nan;
    plan.workload = "FMM";
    plan.n = 2;
    runner::ScopedFaultPlan scoped(plan);

    runner::SweepRunner::Options options;
    options.jobs = 1;
    options.scale = kScale;
    options.max_point_retries = 0;
    runner::SweepRunner sweep(options);
    const auto rows =
        sweep.scenario1Sweep({&workloads::byName("FMM")}, {1, 2});

    const runner::SweepReport& report = sweep.lastReport();
    ASSERT_EQ(report.failed.size(), 1u);
    EXPECT_EQ(report.failed.front().error.code,
              util::ErrorCode::NonFinite);
    EXPECT_EQ(report.failed.front().n, 2);
    EXPECT_TRUE(rows[0][1].failed);
    // The poisoned value must never have entered the shared cache.
    runner::RunKey key{"FMM", 2, kScale,
                       sweep.experiment().technology().vddNominal(),
                       sweep.experiment().technology().fNominal()};
    EXPECT_FALSE(sweep.cache().find(key).has_value());
}

TEST(FaultTolerance, StallFaultTripsThePointWatchdog)
{
    runner::FaultPlan plan;
    plan.kind = runner::FaultKind::Stall;
    plan.workload = "FMM";
    plan.n = 2;
    runner::ScopedFaultPlan scoped(plan);

    runner::SweepRunner::Options options;
    options.jobs = 1;
    options.scale = kScale;
    options.max_point_retries = 0;
    options.point_timeout_s = 0.2;
    runner::SweepRunner sweep(options);
    const auto rows =
        sweep.scenario1Sweep({&workloads::byName("FMM")}, {1, 2});

    const runner::SweepReport& report = sweep.lastReport();
    ASSERT_EQ(report.failed.size(), 1u);
    EXPECT_EQ(report.failed.front().error.code, util::ErrorCode::Timeout);
    EXPECT_GE(report.failed.front().wall_seconds, 0.2);
    EXPECT_TRUE(rows[0][1].failed);
}

// ---------------------------------------------------------------------
// Kill-and-resume: a sweep killed mid-flight resumes from its journal,
// re-simulates zero completed points, and reproduces the uninterrupted
// rows bit-identically.
// ---------------------------------------------------------------------

TEST(FaultTolerance, KilledSweepResumesFromJournalWithoutRecomputing)
{
    const std::string journal_path = std::string(::testing::TempDir()) +
        "tlppm_kill_resume_" + std::to_string(::getpid()) + ".jsonl";
    std::remove(journal_path.c_str());

    const std::vector<const workloads::WorkloadInfo*> apps = {
        &workloads::byName("FMM")};
    const std::vector<int> ns = {1, 2, 4};

    // Fault-free reference, counting the real simulations it needs.
    runner::FaultInjector::instance().resetCount();
    runner::SweepRunner::Options clean_opts;
    clean_opts.jobs = 1;
    clean_opts.scale = kScale;
    runner::SweepRunner clean(clean_opts);
    const auto reference = clean.scenario1Sweep(apps, ns);
    const std::uint64_t clean_measurements =
        runner::FaultInjector::instance().measurements();
    ASSERT_GE(clean_measurements, ns.size());

    // Run with a journal and die (FaultKillError) at the 2nd real
    // measurement: exactly one completed point is on disk.
    {
        runner::FaultPlan plan;
        plan.kind = runner::FaultKind::Kill;
        plan.point = 2;
        runner::ScopedFaultPlan scoped(plan);
        runner::FaultInjector::instance().resetCount();

        runner::SweepRunner::Options options;
        options.jobs = 1;
        options.scale = kScale;
        options.journal_path = journal_path;
        runner::SweepRunner sweep(options);
        EXPECT_THROW(sweep.scenario1Sweep(apps, ns),
                     runner::FaultKillError);
    }

    // Resume from the journal: the completed point is replayed, every
    // remaining point is simulated exactly once, and the rows match the
    // uninterrupted reference bit for bit.
    runner::FaultInjector::instance().resetCount();
    runner::SweepRunner::Options resume_opts;
    resume_opts.jobs = 1;
    resume_opts.scale = kScale;
    resume_opts.journal_path = journal_path;
    resume_opts.resume = true;
    runner::SweepRunner resumed(resume_opts);
    EXPECT_EQ(resumed.replayedEntries(), 1u);

    const auto rows = resumed.scenario1Sweep(apps, ns);
    EXPECT_TRUE(resumed.lastReport().allOk());
    EXPECT_EQ(resumed.lastReport().replayed, 1u);
    EXPECT_EQ(runner::FaultInjector::instance().measurements(),
              clean_measurements - 1);

    ASSERT_EQ(rows.size(), reference.size());
    ASSERT_EQ(rows[0].size(), reference[0].size());
    for (std::size_t i = 0; i < reference[0].size(); ++i)
        expectSameRow(rows[0][i], reference[0][i]);

    std::remove(journal_path.c_str());
}

} // namespace
