/**
 * @file
 * SweepRunner and RunCache tests: the parallel sweep engine must produce
 * bit-identical rows to the serial pipeline at any job count, the
 * Measurement cache must account hits/misses and actually deduplicate the
 * scenario pipelines' repeated points, and the Cmp run arena must keep
 * repeated runs identical to a freshly constructed simulator.
 */

#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "runner/raw_run_cache.hpp"
#include "runner/run_cache.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/cmp.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;

constexpr double kScale = 0.08;

void
expectSameMeasurement(const runner::Measurement& a,
                      const runner::Measurement& b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.freq_hz, b.freq_hz);
    EXPECT_EQ(a.vdd, b.vdd);
    EXPECT_EQ(a.dynamic_w, b.dynamic_w);
    EXPECT_EQ(a.static_w, b.static_w);
    EXPECT_EQ(a.total_w, b.total_w);
    EXPECT_EQ(a.avg_core_temp_c, b.avg_core_temp_c);
    EXPECT_EQ(a.core_power_density_w_m2, b.core_power_density_w_m2);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.runaway, b.runaway);
}

TEST(RunCache, MissThenHit)
{
    runner::RunCache cache;
    const runner::RunKey key{"FMM", 4, 0.1, 1.2, 2.0e9};

    EXPECT_FALSE(cache.find(key).has_value());
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 1u);

    runner::Measurement m;
    m.cycles = 1234;
    m.total_w = 42.0;
    cache.insert(key, m);
    EXPECT_EQ(cache.size(), 1u);

    const auto found = cache.find(key);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->cycles, 1234u);
    EXPECT_EQ(found->total_w, 42.0);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(RunCache, DistinguishesEveryKeyField)
{
    runner::RunCache cache;
    const runner::RunKey key{"FMM", 4, 0.1, 1.2, 2.0e9};
    cache.insert(key, runner::Measurement{});

    runner::RunKey other = key;
    other.workload = "Radix";
    EXPECT_FALSE(cache.find(other).has_value());
    other = key;
    other.n = 8;
    EXPECT_FALSE(cache.find(other).has_value());
    other = key;
    other.scale = 0.2;
    EXPECT_FALSE(cache.find(other).has_value());
    other = key;
    other.vdd = 1.1;
    EXPECT_FALSE(cache.find(other).has_value());
    other = key;
    other.freq_hz = 1.0e9;
    EXPECT_FALSE(cache.find(other).has_value());
    EXPECT_TRUE(cache.find(key).has_value());
}

TEST(RunCache, ClearResetsEverything)
{
    runner::RunCache cache;
    cache.insert(runner::RunKey{"a", 1, 1.0, 1.0, 1.0},
                 runner::Measurement{});
    (void)cache.find(runner::RunKey{"a", 1, 1.0, 1.0, 1.0});
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
}

TEST(RunKey, QuantizationAbsorbsLastUlpDrift)
{
    // Bisection midpoints recomputed on resume or under a different
    // worker interleaving can differ in the last ulps; such keys must
    // land on the same cache entry.
    runner::RunCache cache;
    const runner::RunKey key{"FMM", 4, 0.1, 1.2, 2.0e9};
    cache.insert(key, runner::Measurement{});

    runner::RunKey perturbed = key;
    perturbed.vdd = key.vdd * (1.0 + 1e-12);
    perturbed.freq_hz = key.freq_hz * (1.0 + 1e-13);
    perturbed.scale = key.scale * (1.0 - 1e-12);
    EXPECT_FALSE(perturbed < key);
    EXPECT_FALSE(key < perturbed);
    EXPECT_TRUE(cache.find(perturbed).has_value());
}

TEST(RunKey, QuantizationKeepsDistinctOperatingPointsDistinct)
{
    // Deliberately different points sit many quanta apart (1 uV, 1 Hz,
    // 1e-9 scale) and must stay separate entries.
    runner::RunCache cache;
    const runner::RunKey key{"FMM", 4, 0.1, 1.2, 2.0e9};
    cache.insert(key, runner::Measurement{});

    runner::RunKey other = key;
    other.vdd = 1.2 + 1e-3;
    EXPECT_FALSE(cache.find(other).has_value());
    other = key;
    other.freq_hz = 2.0e9 + 10.0;
    EXPECT_FALSE(cache.find(other).has_value());
    other = key;
    other.scale = 0.1 + 1e-6;
    EXPECT_FALSE(cache.find(other).has_value());
    EXPECT_TRUE(cache.find(key).has_value());
}

TEST(RawRunCache, MissThenHitSharesTheStoredRun)
{
    runner::RawRunCache cache;
    const runner::RawRunKey key{"FMM", 4, 0.1, 2.0e9};
    EXPECT_EQ(cache.find(key), nullptr);
    EXPECT_EQ(cache.misses(), 1u);

    auto run = std::make_shared<sim::RunResult>();
    run->cycles = 1234;
    run->freq_hz = 2.0e9;
    run->seconds = 1234 / 2.0e9;
    const auto stored = cache.insert(key, run);
    EXPECT_EQ(stored.get(), run.get()); // first writer wins
    EXPECT_EQ(cache.size(), 1u);

    // A racing duplicate insert adopts the canonical stored run.
    auto dup = std::make_shared<sim::RunResult>(*run);
    EXPECT_EQ(cache.insert(key, dup).get(), run.get());
    EXPECT_EQ(cache.size(), 1u);

    const auto found = cache.find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found.get(), run.get());
    EXPECT_EQ(found->cycles, 1234u);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(RawRunCache, KeyIgnoresNothingButVdd)
{
    runner::RawRunCache cache;
    const runner::RawRunKey key{"FMM", 4, 0.1, 2.0e9};
    auto run = std::make_shared<sim::RunResult>();
    run->cycles = 1;
    run->freq_hz = 2.0e9;
    run->seconds = 0.5e-9;
    cache.insert(key, run);

    runner::RawRunKey other = key;
    other.workload = "Radix";
    EXPECT_EQ(cache.find(other), nullptr);
    other = key;
    other.n = 8;
    EXPECT_EQ(cache.find(other), nullptr);
    other = key;
    other.scale = 0.2;
    EXPECT_EQ(cache.find(other), nullptr);
    other = key;
    other.freq_hz = 1.0e9;
    EXPECT_EQ(cache.find(other), nullptr);
    EXPECT_NE(cache.find(key), nullptr);
}

TEST(RawRunCache, RejectsInadmissibleRuns)
{
    runner::RawRunCache cache;
    const runner::RawRunKey key{"FMM", 1, 0.1, 2.0e9};
    auto zero_cycles = std::make_shared<sim::RunResult>();
    zero_cycles->freq_hz = 2.0e9;
    cache.insert(key, zero_cycles); // cycles == 0: not storable
    EXPECT_EQ(cache.size(), 0u);

    auto bad_seconds = std::make_shared<sim::RunResult>();
    bad_seconds->cycles = 10;
    bad_seconds->freq_hz = 2.0e9;
    bad_seconds->seconds = std::numeric_limits<double>::quiet_NaN();
    cache.insert(key, bad_seconds);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(runner::RawRunCache::admissible(*bad_seconds));
}

TEST(Experiment, MeasureAppMatchesMeasure)
{
    const runner::Experiment exp(kScale);
    const auto& app = workloads::byName("FMM");
    const double v1 = exp.technology().vddNominal();
    const double f1 = exp.technology().fNominal();

    const runner::Measurement direct =
        exp.measure(app.make(2, kScale), v1, f1);
    const runner::Measurement via_app = exp.measureApp(app, 2, v1, f1);
    expectSameMeasurement(direct, via_app);

    // With a cache attached the value is identical and the second call
    // hits.
    runner::RunCache cache;
    runner::Experiment cached(kScale);
    cached.setRunCache(&cache);
    const runner::Measurement first = cached.measureApp(app, 2, v1, f1);
    const runner::Measurement second = cached.measureApp(app, 2, v1, f1);
    expectSameMeasurement(first, direct);
    expectSameMeasurement(second, direct);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Experiment, TwoLevelCacheElidesSimulationAcrossVoltages)
{
    runner::RawRunCache raw;
    runner::RunCache priced;
    runner::Experiment exp(kScale, sim::CmpConfig{}, &raw);
    exp.setRunCache(&priced);
    const auto& app = workloads::byName("FMM");
    const double f1 = exp.technology().fNominal();
    const double v1 = exp.technology().vddNominal();

    const std::uint64_t sims_before = exp.simCalls();
    const runner::Measurement at_v1 = exp.measureApp(app, 2, v1, f1);
    EXPECT_EQ(exp.simCalls(), sims_before + 1);

    // Same frequency, different voltage: the raw level serves the run,
    // only the pricing pass re-runs.
    const std::uint64_t prices_before = exp.priceCalls();
    const runner::Measurement at_v2 =
        exp.measureApp(app, 2, v1 - 0.1, f1);
    EXPECT_EQ(exp.simCalls(), sims_before + 1); // no new simulation
    EXPECT_EQ(exp.priceCalls(), prices_before + 1);
    EXPECT_GE(raw.hits(), 1u);
    EXPECT_EQ(at_v2.vdd, v1 - 0.1);
    EXPECT_EQ(at_v2.cycles, at_v1.cycles); // same run, new price
    EXPECT_LT(at_v2.dynamic_w, at_v1.dynamic_w);

    // The priced level still distinguishes the two voltages.
    EXPECT_EQ(priced.size(), 2u);

    // A second Experiment sharing the raw cache skips even its own
    // calibration simulation (the power-virus run is cached too).
    runner::Experiment sibling(kScale, sim::CmpConfig{}, &raw);
    EXPECT_EQ(sibling.simCalls(), 0u);
}

TEST(Experiment, PriceRunMatchesMeasureAtEveryVoltage)
{
    const runner::Experiment exp(kScale);
    const auto& app = workloads::byName("Radix");
    const double f = exp.technology().fNominal();

    auto run = exp.trySimulateApp(app, 2, f);
    ASSERT_TRUE(run.ok());
    for (const double vdd : {1.0, 1.1, exp.technology().vddNominal()}) {
        const runner::Measurement split =
            exp.priceRun(*run.value(), vdd);
        const runner::Measurement full =
            exp.measure(app.make(2, kScale), vdd, f);
        expectSameMeasurement(split, full);
    }
}

TEST(Experiment, ScenarioPipelineReusesCachedPoints)
{
    // Scenario I and Scenario II share the nominal-V/f profiling pass;
    // with a RunCache attached the second pipeline must replay those
    // points instead of re-simulating them.
    runner::RunCache cache;
    runner::Experiment exp(kScale);
    exp.setRunCache(&cache);
    const auto& app = workloads::byName("Radix");
    const std::vector<int> ns = {1, 2, 4};

    const auto s1 = exp.scenario1(app, ns);
    ASSERT_EQ(s1.size(), ns.size());
    const std::uint64_t hits_after_s1 = cache.hits();

    const auto s2 = exp.scenario2(app, ns);
    ASSERT_EQ(s2.size(), ns.size());
    EXPECT_GT(cache.hits(), hits_after_s1);
    EXPECT_GT(cache.hits(), 0u);
}

TEST(SweepRunner, SerialMatchesExperimentPipeline)
{
    const auto& app = workloads::byName("LU");
    const std::vector<int> ns = {1, 2, 4};

    const runner::Experiment exp(kScale);
    const auto expected = exp.scenario1(app, ns);

    runner::SweepRunner::Options options;
    options.jobs = 1;
    options.scale = kScale;
    runner::SweepRunner sweep(options);
    EXPECT_EQ(sweep.jobs(), 1);
    const auto got = sweep.scenario1Sweep({&app}, ns);
    ASSERT_EQ(got.size(), 1u);
    ASSERT_EQ(got[0].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(got[0][i].n, expected[i].n);
        EXPECT_EQ(got[0][i].eps_n, expected[i].eps_n);
        EXPECT_EQ(got[0][i].freq_hz, expected[i].freq_hz);
        EXPECT_EQ(got[0][i].vdd, expected[i].vdd);
        EXPECT_EQ(got[0][i].actual_speedup, expected[i].actual_speedup);
        EXPECT_EQ(got[0][i].normalized_power,
                  expected[i].normalized_power);
        EXPECT_EQ(got[0][i].normalized_density,
                  expected[i].normalized_density);
        EXPECT_EQ(got[0][i].avg_temp_c, expected[i].avg_temp_c);
        expectSameMeasurement(got[0][i].measurement,
                              expected[i].measurement);
    }
}

TEST(SweepRunner, ParallelScenario1IsBitIdenticalToSerial)
{
    const std::vector<const workloads::WorkloadInfo*> apps = {
        &workloads::byName("FMM"), &workloads::byName("Radix")};
    const std::vector<int> ns = {1, 2, 4};

    runner::SweepRunner::Options serial_opts;
    serial_opts.jobs = 1;
    serial_opts.scale = kScale;
    runner::SweepRunner serial(serial_opts);
    const auto serial_rows = serial.scenario1Sweep(apps, ns);

    runner::SweepRunner::Options par_opts;
    par_opts.jobs = 4;
    par_opts.scale = kScale;
    runner::SweepRunner parallel(par_opts);
    EXPECT_EQ(parallel.jobs(), 4);
    const auto parallel_rows = parallel.scenario1Sweep(apps, ns);

    ASSERT_EQ(parallel_rows.size(), serial_rows.size());
    for (std::size_t a = 0; a < serial_rows.size(); ++a) {
        ASSERT_EQ(parallel_rows[a].size(), serial_rows[a].size());
        for (std::size_t i = 0; i < serial_rows[a].size(); ++i) {
            const runner::Scenario1Row& s = serial_rows[a][i];
            const runner::Scenario1Row& p = parallel_rows[a][i];
            EXPECT_EQ(p.n, s.n);
            EXPECT_EQ(p.eps_n, s.eps_n);
            EXPECT_EQ(p.freq_hz, s.freq_hz);
            EXPECT_EQ(p.vdd, s.vdd);
            EXPECT_EQ(p.actual_speedup, s.actual_speedup);
            EXPECT_EQ(p.normalized_power, s.normalized_power);
            EXPECT_EQ(p.normalized_density, s.normalized_density);
            EXPECT_EQ(p.avg_temp_c, s.avg_temp_c);
            expectSameMeasurement(p.measurement, s.measurement);
        }
    }
    // Re-running the sweep on the warm runner must replay every point
    // from the cache: no new misses, and identical rows again.
    const std::uint64_t misses_before = parallel.cache().misses();
    const auto replay = parallel.scenario1Sweep(apps, ns);
    EXPECT_EQ(parallel.cache().misses(), misses_before);
    EXPECT_GT(parallel.cache().hits(), 0u);
    ASSERT_EQ(replay.size(), parallel_rows.size());
    for (std::size_t a = 0; a < replay.size(); ++a) {
        ASSERT_EQ(replay[a].size(), parallel_rows[a].size());
        for (std::size_t i = 0; i < replay[a].size(); ++i)
            expectSameMeasurement(replay[a][i].measurement,
                                  parallel_rows[a][i].measurement);
    }
}

TEST(SweepRunner, ParallelScenario2IsBitIdenticalToSerial)
{
    const std::vector<const workloads::WorkloadInfo*> apps = {
        &workloads::byName("Radix")};
    const std::vector<int> ns = {1, 2, 4};

    runner::SweepRunner::Options serial_opts;
    serial_opts.jobs = 1;
    serial_opts.scale = kScale;
    runner::SweepRunner serial(serial_opts);
    const auto serial_rows = serial.scenario2Sweep(apps, ns);

    runner::SweepRunner::Options par_opts;
    par_opts.jobs = 4;
    par_opts.scale = kScale;
    runner::SweepRunner parallel(par_opts);
    const auto parallel_rows = parallel.scenario2Sweep(apps, ns);

    ASSERT_EQ(parallel_rows.size(), serial_rows.size());
    for (std::size_t a = 0; a < serial_rows.size(); ++a) {
        ASSERT_EQ(parallel_rows[a].size(), serial_rows[a].size());
        for (std::size_t i = 0; i < serial_rows[a].size(); ++i) {
            const runner::Scenario2Row& s = serial_rows[a][i];
            const runner::Scenario2Row& p = parallel_rows[a][i];
            EXPECT_EQ(p.n, s.n);
            EXPECT_EQ(p.nominal_speedup, s.nominal_speedup);
            EXPECT_EQ(p.actual_speedup, s.actual_speedup);
            EXPECT_EQ(p.freq_hz, s.freq_hz);
            EXPECT_EQ(p.vdd, s.vdd);
            EXPECT_EQ(p.power_w, s.power_w);
            EXPECT_EQ(p.at_nominal, s.at_nominal);
        }
    }
}

TEST(SweepRunner, MeasureAllPreservesOrderAndDeduplicates)
{
    const auto& app = workloads::byName("FMM");
    runner::SweepRunner::Options options;
    options.jobs = 2;
    options.scale = kScale;
    runner::SweepRunner sweep(options);

    const double v1 = sweep.experiment().technology().vddNominal();
    const double f1 = sweep.experiment().technology().fNominal();
    const std::vector<runner::MeasureSpec> specs = {
        {&app, 1, v1, f1},
        {&app, 2, v1, f1},
        {&app, 1, v1, f1}, // repeat of specs[0]: identical result
    };
    const auto results = sweep.measureAll(specs);
    ASSERT_EQ(results.size(), specs.size());
    expectSameMeasurement(results[0], results[2]);
    EXPECT_GT(results[0].cycles, 0u);
    EXPECT_GT(results[1].cycles, 0u);

    // A second pass over the same specs is fully served by the cache.
    const std::uint64_t misses_before = sweep.cache().misses();
    const auto replay = sweep.measureAll(specs);
    ASSERT_EQ(replay.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        expectSameMeasurement(replay[i], results[i]);
    EXPECT_EQ(sweep.cache().misses(), misses_before);
    EXPECT_GE(sweep.cache().hits(), specs.size());
}

TEST(Cmp, ArenaReuseKeepsRunsIdentical)
{
    const auto& app = workloads::byName("Radix");
    const sim::Program program = app.make(4, kScale);
    const double freq = 3.0e9;

    const sim::Cmp reused{sim::CmpConfig{}};
    const sim::RunResult first = reused.run(program, freq);
    const sim::RunResult second = reused.run(program, freq);
    const sim::Cmp fresh{sim::CmpConfig{}};
    const sim::RunResult reference = fresh.run(program, freq);

    EXPECT_EQ(first.cycles, reference.cycles);
    EXPECT_EQ(second.cycles, reference.cycles);
    EXPECT_EQ(first.instructions, reference.instructions);
    EXPECT_EQ(second.instructions, reference.instructions);
    EXPECT_TRUE(first.coherent);
    EXPECT_TRUE(second.coherent);

    // Every counter must agree, and the kernel telemetry fields too.
    for (const auto& [name, counter] : reference.stats.counters()) {
        EXPECT_EQ(second.stats.counterValue(name), counter.value())
            << "counter " << name;
    }
    EXPECT_EQ(first.events, reference.events);
    EXPECT_EQ(second.events, reference.events);
    EXPECT_EQ(second.queue_high_water, reference.queue_high_water);
    EXPECT_GT(reference.queue_high_water, 0u);
}

} // namespace
