/**
 * @file
 * Cross-module integration tests: the analytical model and the simulated
 * testbed must agree on the paper's qualitative stories, and the figure
 * pipelines must reproduce the headline claims end to end (at reduced
 * problem scale).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "runner/experiment.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;

constexpr double kScale = 0.1;

const runner::Experiment&
experiment()
{
    static const runner::Experiment instance(kScale);
    return instance;
}

TEST(Integration, AnalyticAndSimulatedScenario1Agree)
{
    // Feed the simulator-measured efficiency curve of a well-scaling app
    // into the analytical Scenario I; the predicted normalized power must
    // agree with the measured one in shape: monotone drop from N=1, and
    // within a factor band at each point (the substrates differ).
    const auto rows =
        experiment().scenario1(workloads::byName("Water-Sp"), {1, 2, 4});

    const model::AnalyticCmp cmp(tech::tech65nm(), 16);
    const model::Scenario1 scenario(cmp);
    for (std::size_t i = 1; i < rows.size(); ++i) {
        const auto analytic = scenario.solve(rows[i].n, rows[i].eps_n);
        ASSERT_TRUE(analytic.feasible);
        EXPECT_GT(rows[i].normalized_power,
                  0.35 * analytic.normalized_power);
        EXPECT_LT(rows[i].normalized_power,
                  3.0 * analytic.normalized_power);
        EXPECT_LT(rows[i].normalized_power, 1.0);
        EXPECT_LT(analytic.normalized_power, 1.0);
    }
}

TEST(Integration, ComputeBoundGapExceedsMemoryBoundGap)
{
    // Figure 4's central contrast, end to end: the nominal/actual
    // speedup gap at N=8 is larger for FMM than for Radix.
    const std::vector<int> ns = {1, 2, 4, 8};
    const auto fmm =
        experiment().scenario2(workloads::byName("FMM"), ns);
    const auto radix =
        experiment().scenario2(workloads::byName("Radix"), ns);
    const auto gap = [](const runner::Scenario2Row& row) {
        return row.nominal_speedup - row.actual_speedup;
    };
    EXPECT_GT(gap(fmm.back()), gap(radix.back()));
    // And Radix's nominal power is the lower of the two.
    EXPECT_LT(radix.front().power_w, fmm.front().power_w);
}

TEST(Integration, PaperConclusionPowerSavingsAtPerformanceParity)
{
    // "Parallel computing can bring significant power savings and still
    // meet a given performance target": a scalable app on 4 cores at the
    // Eq. 7 operating point must deliver >= 1x speedup at well under the
    // sequential power.
    const auto rows =
        experiment().scenario1(workloads::byName("FMM"), {1, 2, 4});
    const auto& four = rows.back();
    EXPECT_GE(four.actual_speedup, 0.99);
    EXPECT_LT(four.normalized_power, 0.8);
}

TEST(Integration, TemperatureOrderingMatchesPowerOrdering)
{
    // Hotter app at N=1 (FMM) runs hotter than the thrifty one (Radix),
    // and both cool toward ambient as N grows.
    const auto fmm =
        experiment().scenario1(workloads::byName("FMM"), {1, 4});
    const auto radix =
        experiment().scenario1(workloads::byName("Radix"), {1, 4});
    EXPECT_GT(fmm[0].avg_temp_c, radix[0].avg_temp_c);
    EXPECT_LT(fmm[1].avg_temp_c, fmm[0].avg_temp_c);
    EXPECT_LT(radix[1].avg_temp_c, radix[0].avg_temp_c);
}

TEST(Integration, AnalyticBudgetCurveHasInteriorPeak)
{
    // The dark-silicon-precursor claim on both nodes.
    for (const auto& tech : {tech::tech130nm(), tech::tech65nm()}) {
        const model::AnalyticCmp cmp(tech, 32);
        const model::Scenario2 scenario(cmp);
        std::vector<double> speedups;
        for (int n = 1; n <= 32; ++n)
            speedups.push_back(scenario.solve(n, 1.0).speedup);
        const auto peak =
            std::max_element(speedups.begin(), speedups.end());
        const auto peak_n = peak - speedups.begin() + 1;
        EXPECT_GT(peak_n, 2) << tech.name();
        EXPECT_LT(peak_n, 32) << tech.name();
        EXPECT_LT(speedups.back(), *peak) << tech.name();
    }
}

TEST(Integration, EfficiencyCurveFeedsTabulatedModel)
{
    // The measured efficiency curve can drive the analytic scenarios via
    // TabulatedEfficiency (the intended cross-model workflow).
    const auto rows = experiment().scenario1(
        workloads::byName("Raytrace"), {1, 2, 4});
    std::map<int, double> samples;
    for (const auto& row : rows)
        samples[row.n] = row.eps_n;
    const model::TabulatedEfficiency eff(samples);
    const model::AnalyticCmp cmp(tech::tech65nm(), 16);
    const model::Scenario2 scenario(cmp);
    const auto r = scenario.solve(4, eff);
    EXPECT_GT(r.speedup, 1.0);
    EXPECT_LE(r.power.total_w, scenario.budget() * 1.02);
}

} // namespace
