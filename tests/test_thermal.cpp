/**
 * @file
 * Tests for tlp_thermal: floorplan geometry, the steady-state RC network,
 * calibration, and the coupled power/temperature fixed point.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/floorplan.hpp"
#include "thermal/rc_model.hpp"
#include "util/logging.hpp"

namespace {

using namespace tlp;
using thermal::Block;
using thermal::Floorplan;
using thermal::RCModel;
using thermal::RCParams;
using thermal::ThermalSolverKind;

// -------------------------------------------------------------- floorplan

TEST(Floorplan, SharedEdgeVerticalNeighbours)
{
    Block a{"a", 0.0, 0.0, 1.0, 1.0, 0};
    Block b{"b", 1.0, 0.0, 1.0, 1.0, 1};
    EXPECT_DOUBLE_EQ(a.sharedEdge(b), 1.0);
    EXPECT_DOUBLE_EQ(b.sharedEdge(a), 1.0);
}

TEST(Floorplan, SharedEdgePartialOverlap)
{
    Block a{"a", 0.0, 0.0, 1.0, 1.0, 0};
    Block b{"b", 0.5, 1.0, 1.0, 1.0, 1}; // on top, shifted right
    EXPECT_DOUBLE_EQ(a.sharedEdge(b), 0.5);
}

TEST(Floorplan, NoSharedEdgeWhenApart)
{
    Block a{"a", 0.0, 0.0, 1.0, 1.0, 0};
    Block b{"b", 2.5, 0.0, 1.0, 1.0, 1};
    EXPECT_DOUBLE_EQ(a.sharedEdge(b), 0.0);
}

TEST(Floorplan, DiagonalCornersDoNotTouch)
{
    Block a{"a", 0.0, 0.0, 1.0, 1.0, 0};
    Block b{"b", 1.0, 1.0, 1.0, 1.0, 1};
    EXPECT_DOUBLE_EQ(a.sharedEdge(b), 0.0);
}

TEST(Floorplan, Ev6FractionsSumToOne)
{
    double sum = 0.0;
    for (const auto& unit : thermal::ev6BlockFractions())
        sum += unit.fraction;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Floorplan, RejectsDuplicateNames)
{
    Floorplan plan;
    plan.addBlock({"x", 0, 0, 1, 1, 0});
    EXPECT_THROW(plan.addBlock({"x", 1, 0, 1, 1, 1}), util::FatalError);
}

TEST(Floorplan, RejectsDegenerateBlocks)
{
    Floorplan plan;
    EXPECT_THROW(plan.addBlock({"zero", 0, 0, 0.0, 1, 0}),
                 util::FatalError);
}

TEST(Floorplan, IndexOfUnknownIsFatal)
{
    Floorplan plan;
    plan.addBlock({"x", 0, 0, 1, 1, 0});
    EXPECT_EQ(plan.indexOf("x"), 0u);
    EXPECT_THROW(plan.indexOf("y"), util::FatalError);
}

class TiledCmpSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(TiledCmpSweep, AreaAndStructure)
{
    const auto [cores, detailed] = GetParam();
    const double core_area = 1e-5;
    const double l2_area = 4e-5;
    const Floorplan plan =
        thermal::makeTiledCmp(cores, core_area, l2_area, detailed);

    EXPECT_NEAR(plan.coreArea(), cores * core_area,
                cores * core_area * 1e-9);
    EXPECT_TRUE(plan.has("L2"));
    for (int c = 0; c < cores; ++c) {
        const auto blocks = plan.blocksOfCore(c);
        EXPECT_EQ(blocks.size(),
                  detailed ? thermal::ev6BlockFractions().size() : 1u);
        double area = 0.0;
        for (auto i : blocks)
            area += plan.blocks()[i].area();
        EXPECT_NEAR(area, core_area, core_area * 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TiledCmpSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 15, 16, 32),
                       ::testing::Bool()));

TEST(TiledCmp, NoL2WhenAreaZero)
{
    const Floorplan plan = thermal::makeTiledCmp(4, 1e-5, 0.0, false);
    EXPECT_FALSE(plan.has("L2"));
    EXPECT_EQ(plan.size(), 4u);
}

TEST(TiledCmp, RejectsBadArguments)
{
    EXPECT_THROW(thermal::makeTiledCmp(0, 1e-5, 0.0, false),
                 util::FatalError);
    EXPECT_THROW(thermal::makeTiledCmp(4, -1.0, 0.0, false),
                 util::FatalError);
}

// --------------------------------------------------------------- RC model

class RCFixture : public ::testing::Test
{
  protected:
    RCFixture()
        : model_(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{})
    {
    }
    RCModel model_;
};

TEST_F(RCFixture, ZeroPowerIsAmbient)
{
    const auto sol = model_.solve({0.0, 0.0, 0.0, 0.0});
    for (double t : sol.block_temps_c)
        EXPECT_NEAR(t, model_.params().ambient_c, 1e-9);
    EXPECT_NEAR(sol.sink_temp_c, model_.params().ambient_c, 1e-9);
}

TEST_F(RCFixture, TemperatureAboveAmbientWithPower)
{
    const auto sol = model_.solve({10.0, 0.0, 0.0, 0.0});
    for (double t : sol.block_temps_c)
        EXPECT_GT(t, model_.params().ambient_c);
    EXPECT_GT(sol.block_temps_c[0], sol.block_temps_c[3]);
}

TEST_F(RCFixture, LinearSuperposition)
{
    // Steady-state RC networks are linear: T(p1 + p2) - Tamb equals
    // (T(p1) - Tamb) + (T(p2) - Tamb).
    const std::vector<double> p1 = {5.0, 0.0, 1.0, 0.0};
    const std::vector<double> p2 = {0.0, 3.0, 0.0, 2.0};
    std::vector<double> sum = {5.0, 3.0, 1.0, 2.0};
    const auto s1 = model_.solve(p1);
    const auto s2 = model_.solve(p2);
    const auto s12 = model_.solve(sum);
    const double amb = model_.params().ambient_c;
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(s12.block_temps_c[i] - amb,
                    (s1.block_temps_c[i] - amb) +
                        (s2.block_temps_c[i] - amb),
                    1e-9);
    }
}

TEST_F(RCFixture, SymmetricTilesHeatSymmetrically)
{
    // Uniform power on a symmetric floorplan: all tiles equal.
    const auto sol = model_.solve({2.0, 2.0, 2.0, 2.0});
    for (std::size_t i = 1; i < 4; ++i)
        EXPECT_NEAR(sol.block_temps_c[i], sol.block_temps_c[0], 1e-9);
}

TEST_F(RCFixture, SinkTracksTotalPowerOnly)
{
    // The shared-sink rise depends on total power, not its distribution.
    const auto a = model_.solve({8.0, 0.0, 0.0, 0.0});
    const auto b = model_.solve({2.0, 2.0, 2.0, 2.0});
    EXPECT_NEAR(a.sink_temp_c, b.sink_temp_c, 1e-9);
}

TEST_F(RCFixture, SpreadingPowerLowersPeakTemperature)
{
    const auto one = model_.solve({8.0, 0.0, 0.0, 0.0});
    const auto four = model_.solve({2.0, 2.0, 2.0, 2.0});
    EXPECT_LT(four.max_temp_c, one.max_temp_c);
}

TEST_F(RCFixture, RejectsBadPowerMaps)
{
    EXPECT_THROW(model_.solve({1.0}), util::FatalError);
    EXPECT_THROW(model_.solve({-1.0, 0.0, 0.0, 0.0}), util::FatalError);
}

TEST(RCCalibration, HitsTargetTemperature)
{
    RCModel model(thermal::makeTiledCmp(8, 1e-5, 0.0, false), RCParams{});
    std::vector<double> power(8, 0.0);
    power[0] = 60.0;
    thermal::calibratePackage(
        model, power,
        [](const thermal::ThermalSolution& sol) {
            return sol.block_temps_c[0];
        },
        100.0);
    EXPECT_NEAR(model.solve(power).block_temps_c[0], 100.0, 0.01);
}

TEST(RCCalibration, SinkFractionSplitsTheRise)
{
    RCModel model(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{});
    std::vector<double> power = {50.0, 0.0, 0.0, 0.0};
    thermal::calibratePackage(
        model, power,
        [](const thermal::ThermalSolution& sol) {
            return sol.block_temps_c[0];
        },
        100.0, 0.6);
    const auto sol = model.solve(power);
    // Ambient 45, target 100: the sink should carry 0.6 * 55 = 33 K.
    EXPECT_NEAR(sol.sink_temp_c, 45.0 + 33.0, 0.5);
}

TEST(RCCalibration, RejectsTargetBelowAmbient)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    EXPECT_THROW(thermal::calibrateVertical(model, {1.0, 1.0}, 20.0),
                 util::FatalError);
}

// ------------------------------------------------------------ fixed point

TEST(Coupled, ConstantPowerConvergesInOneStep)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    const auto result = thermal::solveCoupled(
        model,
        [](const std::vector<double>&) {
            return std::vector<double>{5.0, 5.0};
        });
    EXPECT_TRUE(result.converged);
    EXPECT_FALSE(result.runaway);
    EXPECT_NEAR(result.total_power, 10.0, 1e-9);
}

TEST(Coupled, TemperatureDependentPowerConverges)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    const auto result = thermal::solveCoupled(
        model, [&](const std::vector<double>& temps) {
            // Mild positive feedback: +1% per kelvin above ambient.
            std::vector<double> p(temps.size());
            for (std::size_t i = 0; i < temps.size(); ++i)
                p[i] = 4.0 * (1.0 + 0.01 * (temps[i] - 45.0));
            return p;
        });
    EXPECT_TRUE(result.converged);
    EXPECT_FALSE(result.runaway);
    EXPECT_GT(result.total_power, 8.0);
}

TEST(Coupled, ExplosiveFeedbackFlagsRunaway)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    const auto result = thermal::solveCoupled(
        model, [&](const std::vector<double>& temps) {
            std::vector<double> p(temps.size());
            for (std::size_t i = 0; i < temps.size(); ++i)
                p[i] = std::exp((temps[i] - 40.0) * 0.5);
            return p;
        });
    EXPECT_TRUE(result.runaway);
    for (double t : result.thermal.block_temps_c)
        EXPECT_LE(t, thermal::kRunawayTempC + 1e-9);
}

// ------------------------------------------- factored-solve optimization

TEST(RCCounters, FactorizesOncePerParamsChangeNotPerSolve)
{
    RCModel model(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{});
    EXPECT_EQ(model.factorizationCount(), 1u); // construction
    EXPECT_EQ(model.solveCount(), 0u);

    const std::vector<double> power = {1.0, 2.0, 3.0, 4.0};
    for (int i = 0; i < 10; ++i)
        model.solve(power);
    EXPECT_EQ(model.solveCount(), 10u);
    EXPECT_EQ(model.factorizationCount(), 1u); // solves don't re-factor

    RCParams params = model.params();
    params.ambient_c += 1.0;
    model.setParams(params);
    EXPECT_EQ(model.factorizationCount(), 2u); // params change re-factors
}

TEST(RCCounters, CopyCarriesCountersButNotSharing)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    model.solve({1.0, 1.0});
    RCModel copy(model);
    EXPECT_EQ(copy.solveCount(), 1u);
    copy.solve({1.0, 1.0});
    EXPECT_EQ(copy.solveCount(), 2u);
    EXPECT_EQ(model.solveCount(), 1u); // copies count independently
}

TEST(RCFactoredSolve, BitIdenticalToDirectDenseSolve)
{
    // The cached-LU solve must reproduce the historical
    // solveDense(conductance, rhs) doubles exactly — the figure tables
    // are byte-compared against pre-optimization output. Pinned to the
    // dense backend: the sparse-Cholesky path agrees only to roundoff
    // (see SparseSolverMatchesDense below).
    RCModel model(thermal::makeTiledCmp(8, 1e-5, 2e-5, true), RCParams{},
                  ThermalSolverKind::Dense);
    const std::size_t blocks = model.floorplan().size();
    std::vector<double> power(blocks);
    for (std::size_t i = 0; i < blocks; ++i)
        power[i] = 0.5 + 0.25 * static_cast<double>(i);

    const auto sol = model.solve(power);

    std::vector<double> rhs = power;
    rhs.push_back(0.0); // sink node
    const std::vector<double> rise =
        tlp::util::solveDense(model.conductance(), rhs);
    ASSERT_EQ(sol.block_temps_c.size(), blocks);
    for (std::size_t i = 0; i < blocks; ++i) {
        EXPECT_EQ(sol.block_temps_c[i],
                  model.params().ambient_c + rise[i]);
    }
    EXPECT_EQ(sol.sink_temp_c, model.params().ambient_c + rise[blocks]);
}

TEST(CoupledScratchOverload, BitIdenticalToAllocatingOverload)
{
    RCModel model(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{});
    const auto power_of_temp = [](const std::vector<double>& temps) {
        std::vector<double> p(temps.size());
        for (std::size_t i = 0; i < temps.size(); ++i)
            p[i] = 3.0 * (1.0 + 0.02 * (temps[i] - 45.0));
        return p;
    };
    const auto plain = thermal::solveCoupled(model, power_of_temp);
    thermal::CoupledScratch scratch;
    for (int round = 0; round < 3; ++round) { // scratch reuse is clean
        const auto scratched =
            thermal::solveCoupled(model, power_of_temp, scratch);
        EXPECT_EQ(scratched.converged, plain.converged);
        EXPECT_EQ(scratched.iterations, plain.iterations);
        ASSERT_EQ(scratched.thermal.block_temps_c.size(),
                  plain.thermal.block_temps_c.size());
        for (std::size_t i = 0; i < plain.thermal.block_temps_c.size();
             ++i) {
            EXPECT_EQ(scratched.thermal.block_temps_c[i],
                      plain.thermal.block_temps_c[i]);
            EXPECT_EQ(scratched.block_power[i], plain.block_power[i]);
        }
        EXPECT_EQ(scratched.total_power, plain.total_power);
    }
}

TEST(CoupledAccelerated, ConvergesToTheDampedFixedPoint)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    const auto power_of_temp = [](const std::vector<double>& temps) {
        std::vector<double> p(temps.size());
        for (std::size_t i = 0; i < temps.size(); ++i)
            p[i] = 4.0 * (1.0 + 0.015 * (temps[i] - 45.0));
        return p;
    };
    const auto damped = thermal::solveCoupled(model, power_of_temp);
    const auto accel =
        thermal::solveCoupledAccelerated(model, power_of_temp);
    ASSERT_TRUE(damped.converged);
    ASSERT_TRUE(accel.converged);
    EXPECT_FALSE(accel.runaway);
    // Same fixed point (to the shared tolerance), typically in fewer
    // iterations.
    for (std::size_t i = 0; i < damped.thermal.block_temps_c.size(); ++i) {
        EXPECT_NEAR(accel.thermal.block_temps_c[i],
                    damped.thermal.block_temps_c[i], 0.05);
    }
    EXPECT_LE(accel.iterations, damped.iterations);
}

TEST(CoupledAccelerated, ExplosiveFeedbackStillFlagsRunaway)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    const auto result = thermal::solveCoupledAccelerated(
        model, [&](const std::vector<double>& temps) {
            std::vector<double> p(temps.size());
            for (std::size_t i = 0; i < temps.size(); ++i)
                p[i] = std::exp((temps[i] - 40.0) * 0.5);
            return p;
        });
    EXPECT_TRUE(result.runaway);
    for (double t : result.thermal.block_temps_c)
        EXPECT_LE(t, thermal::kRunawayTempC + 1e-9);
}

// --------------------------------------------- sparse-Cholesky backend

TEST(SparseSolver, MatchesDenseToRoundoff)
{
    // Differential test across the two factorization backends: the
    // figure tables print at 3 decimals, so agreement to ~1e-9 C keeps
    // them byte-identical under either TLPPM_THERMAL_SOLVER setting.
    const auto plan = thermal::makeTiledCmp(8, 1e-5, 2e-5, true);
    RCModel dense(plan, RCParams{}, ThermalSolverKind::Dense);
    RCModel sparse(plan, RCParams{}, ThermalSolverKind::Sparse);
    EXPECT_STREQ(dense.solverName(), "dense-lu");
    EXPECT_STREQ(sparse.solverName(), "sparse-cholesky");

    std::vector<double> power(plan.size());
    for (std::size_t i = 0; i < power.size(); ++i)
        power[i] = 0.5 + 0.25 * static_cast<double>(i);

    const auto sd = dense.solve(power);
    const auto ss = sparse.solve(power);
    ASSERT_EQ(sd.block_temps_c.size(), ss.block_temps_c.size());
    for (std::size_t i = 0; i < sd.block_temps_c.size(); ++i)
        EXPECT_NEAR(ss.block_temps_c[i], sd.block_temps_c[i], 1e-9);
    EXPECT_NEAR(ss.sink_temp_c, sd.sink_temp_c, 1e-9);
    EXPECT_NEAR(ss.max_temp_c, sd.max_temp_c, 1e-9);
    EXPECT_NEAR(ss.avg_core_temp_c, sd.avg_core_temp_c, 1e-9);
}

TEST(SparseSolver, SymbolicAnalysisCachedAcrossRefactorizations)
{
    RCModel model(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{},
                  ThermalSolverKind::Sparse);
    EXPECT_EQ(model.factorizationCount(), 1u);
    EXPECT_EQ(model.symbolicAnalysisCount(), 1u);

    for (int round = 0; round < 3; ++round) {
        RCParams params = model.params();
        params.ambient_c += 1.0;
        model.setParams(params);
    }
    // Values changed three times, the pattern never did: three numeric
    // refactorizations ride on the single cached symbolic analysis.
    EXPECT_EQ(model.factorizationCount(), 4u);
    EXPECT_EQ(model.symbolicAnalysisCount(), 1u);

    RCModel dense(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{},
                  ThermalSolverKind::Dense);
    EXPECT_EQ(dense.symbolicAnalysisCount(), 0u);
}

// ------------------------------------------------- batched solve paths

TEST(BatchSolve, ManyIntoBitIdenticalToScalarSolves)
{
    RCModel model(thermal::makeTiledCmp(4, 1e-5, 2e-5, true), RCParams{});
    const std::size_t blocks = model.floorplan().size();

    std::vector<std::vector<double>> maps;
    for (int k = 0; k < 3; ++k) {
        std::vector<double> p(blocks);
        for (std::size_t i = 0; i < blocks; ++i)
            p[i] = 0.5 * (k + 1) + 0.1 * static_cast<double>(i);
        maps.push_back(std::move(p));
    }

    std::vector<thermal::ThermalSolution> scalar;
    for (const auto& p : maps)
        scalar.push_back(model.solve(p));

    const auto solves_before = model.solveCount();
    const auto passes_before = model.solvePassCount();
    std::vector<const std::vector<double>*> ptrs;
    for (const auto& p : maps)
        ptrs.push_back(&p);
    std::vector<thermal::ThermalSolution> batched;
    thermal::BatchSolveScratch scratch;
    model.solveManyInto(ptrs, batched, scratch);

    EXPECT_EQ(model.solveCount(), solves_before + maps.size());
    EXPECT_EQ(model.solvePassCount(), passes_before + 1);
    EXPECT_GE(model.maxBatchRhs(), maps.size());

    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t k = 0; k < maps.size(); ++k) {
        for (std::size_t i = 0; i < blocks; ++i) {
            EXPECT_EQ(batched[k].block_temps_c[i],
                      scalar[k].block_temps_c[i]);
        }
        EXPECT_EQ(batched[k].sink_temp_c, scalar[k].sink_temp_c);
        EXPECT_EQ(batched[k].max_temp_c, scalar[k].max_temp_c);
        EXPECT_EQ(batched[k].avg_core_temp_c, scalar[k].avg_core_temp_c);
    }
}

TEST(CoupledBatch, BitIdenticalToScalarSolveCoupled)
{
    RCModel model(thermal::makeTiledCmp(4, 1e-5, 0.0, false), RCParams{});
    const std::size_t blocks = model.floorplan().size();

    // Three points with different feedback gains converge at different
    // iterations, exercising the active-set compaction.
    const double gains[] = {0.005, 0.02, 0.035};
    const auto power_at = [&](std::size_t p,
                              const std::vector<double>& temps,
                              std::vector<double>& out) {
        out.assign(blocks, 0.0);
        for (std::size_t i = 0; i < blocks; ++i)
            out[i] = 3.0 * (1.0 + gains[p] * (temps[i] - 45.0));
    };

    std::vector<thermal::CoupledResult> scalar;
    for (std::size_t p = 0; p < 3; ++p) {
        scalar.push_back(thermal::solveCoupled(
            model, [&](const std::vector<double>& temps) {
                std::vector<double> out;
                power_at(p, temps, out);
                return out;
            }));
    }

    thermal::CoupledBatchScratch scratch;
    const auto batched =
        thermal::solveCoupledBatch(model, 3, power_at, scratch);

    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t p = 0; p < 3; ++p) {
        EXPECT_EQ(batched[p].converged, scalar[p].converged);
        EXPECT_EQ(batched[p].runaway, scalar[p].runaway);
        EXPECT_EQ(batched[p].iterations, scalar[p].iterations);
        EXPECT_EQ(batched[p].total_power, scalar[p].total_power);
        for (std::size_t i = 0; i < blocks; ++i) {
            EXPECT_EQ(batched[p].thermal.block_temps_c[i],
                      scalar[p].thermal.block_temps_c[i]);
            EXPECT_EQ(batched[p].block_power[i], scalar[p].block_power[i]);
        }
    }
}

TEST(CoupledBatch, RunawayPointDoesNotPerturbOthers)
{
    RCModel model(thermal::makeTiledCmp(2, 1e-5, 0.0, false), RCParams{});
    const std::size_t blocks = model.floorplan().size();
    const auto power_at = [&](std::size_t p,
                              const std::vector<double>& temps,
                              std::vector<double>& out) {
        out.assign(blocks, 0.0);
        for (std::size_t i = 0; i < blocks; ++i) {
            out[i] = p == 0 ? std::exp((temps[i] - 40.0) * 0.5)
                            : 4.0 * (1.0 + 0.01 * (temps[i] - 45.0));
        }
    };

    thermal::CoupledBatchScratch scratch;
    const auto batched =
        thermal::solveCoupledBatch(model, 2, power_at, scratch);
    EXPECT_TRUE(batched[0].runaway);
    EXPECT_FALSE(batched[1].runaway);
    EXPECT_TRUE(batched[1].converged);

    const auto mild = thermal::solveCoupled(
        model, [&](const std::vector<double>& temps) {
            std::vector<double> out;
            power_at(1, temps, out);
            return out;
        });
    EXPECT_EQ(batched[1].iterations, mild.iterations);
    EXPECT_EQ(batched[1].total_power, mild.total_power);
    for (std::size_t i = 0; i < blocks; ++i) {
        EXPECT_EQ(batched[1].thermal.block_temps_c[i],
                  mild.thermal.block_temps_c[i]);
    }
}

} // namespace
