/**
 * @file
 * Trace front-end tests: the parser accepts the documented grammar
 * (comments, blank lines, free per-core interleaving) and compiles it
 * into the exact sim::Program the generators emit; every malformed
 * input is a *typed* error naming the offending line; the sealed-header
 * CRC turns truncation/corruption into CorruptData instead of a
 * plausible-but-wrong table; and a trace's content CRC is part of its
 * cache identity, so an edited trace can never hit a stale cached run.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/program.hpp"
#include "util/error.hpp"
#include "workloads/trace.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;
using workloads::parseTrace;
using workloads::formatTrace;
using workloads::TraceFile;

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "tlppm_trace_" + tag +
                "_" + std::to_string(::getpid()) + ".trc")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

    void write(const std::string& text) const
    {
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out << text;
        ASSERT_TRUE(out.good()) << "cannot write " << path_;
    }

  private:
    std::string path_;
};

/** Field-exact comparison of two op streams. */
void
expectSamePrograms(const sim::Program& a, const sim::Program& b)
{
    EXPECT_EQ(a.n_barriers, b.n_barriers);
    EXPECT_EQ(a.n_locks, b.n_locks);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        const auto& ta = a.threads[t].ops();
        const auto& tb = b.threads[t].ops();
        ASSERT_EQ(ta.size(), tb.size()) << "thread " << t;
        for (std::size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(static_cast<int>(ta[i].type),
                      static_cast<int>(tb[i].type))
                << "thread " << t << " op " << i;
            EXPECT_EQ(ta[i].count, tb[i].count)
                << "thread " << t << " op " << i;
            EXPECT_EQ(ta[i].addr, tb[i].addr)
                << "thread " << t << " op " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Parser goldens

TEST(TraceParser, GoldenWithCommentsBlanksAndInterleaving)
{
    // Unsealed file, comments and blank lines sprinkled throughout,
    // and the two cores' lines interleaved — each core's own order is
    // its program order.
    const std::string text =
        "# a leading comment (not a sealed header)\n"
        "\n"
        "@trace workload=Golden scale=0.25\n"
        "# two-core section\n"
        "@program n=2 barriers=1 locks=1\n"
        "C0 INT 150\n"
        "C1 FP 80\n"
        "\n"
        "C0 RD 0x10000\n"
        "C1 WR 0x10040 25\n"
        "C0 BAR 0\n"
        "C1 BAR 0\n"
        "C1 LOCK 0\n"
        "C1 UNLOCK 0\n"
        "C0 END\n"
        "C1 END\n"
        "@end\n";
    const auto parsed = parseTrace(text, "golden");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    const TraceFile& file = parsed.value();
    EXPECT_EQ(file.workload, "Golden");
    EXPECT_DOUBLE_EQ(file.scale, 0.25);
    ASSERT_EQ(file.programs.size(), 1u);
    const sim::Program& p = file.programs.at(2);
    EXPECT_EQ(p.n_barriers, 1u);
    EXPECT_EQ(p.n_locks, 1u);
    ASSERT_EQ(p.threads.size(), 2u);

    // Core 0: INT 150, RD, BAR, END.
    const auto& c0 = p.threads[0].ops();
    ASSERT_EQ(c0.size(), 4u);
    EXPECT_EQ(c0[0].type, sim::OpType::IntOps);
    EXPECT_EQ(c0[0].count, 150u);
    EXPECT_EQ(c0[1].type, sim::OpType::Load);
    EXPECT_EQ(c0[1].addr, 0x10000u);
    EXPECT_EQ(c0[2].type, sim::OpType::Barrier);
    EXPECT_EQ(c0[3].type, sim::OpType::End);

    // Core 1: FP 80, then "WR 0x10040 25" desugars to INT 25 + Store,
    // then BAR, LOCK, UNLOCK, END.
    const auto& c1 = p.threads[1].ops();
    ASSERT_EQ(c1.size(), 7u);
    EXPECT_EQ(c1[0].type, sim::OpType::FpOps);
    EXPECT_EQ(c1[0].count, 80u);
    EXPECT_EQ(c1[1].type, sim::OpType::IntOps);
    EXPECT_EQ(c1[1].count, 25u);
    EXPECT_EQ(c1[2].type, sim::OpType::Store);
    EXPECT_EQ(c1[2].addr, 0x10040u);
    EXPECT_EQ(c1[3].type, sim::OpType::Barrier);
    EXPECT_EQ(c1[4].type, sim::OpType::Lock);
    EXPECT_EQ(c1[5].type, sim::OpType::Unlock);
    EXPECT_EQ(c1[6].type, sim::OpType::End);
}

TEST(TraceParser, MultipleProgramSectionsKeyedByThreadCount)
{
    const std::string text =
        "@trace workload=W scale=1\n"
        "@program n=1 barriers=0 locks=0\n"
        "C0 INT 1\nC0 END\n"
        "@end\n"
        "@program n=4 barriers=0 locks=0\n"
        "C3 INT 4\nC0 END\nC1 END\nC2 END\nC3 END\n"
        "@end\n";
    const auto parsed = parseTrace(text, "multi");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    ASSERT_EQ(parsed.value().programs.size(), 2u);
    EXPECT_EQ(parsed.value().programs.at(1).nThreads(), 1);
    EXPECT_EQ(parsed.value().programs.at(4).nThreads(), 4);
}

// ---------------------------------------------------------------------
// Typed errors

TEST(TraceParser, MalformedLineIsParseErrorNamingTheLine)
{
    const std::string text =
        "@trace workload=W scale=1\n"
        "@program n=1 barriers=0 locks=0\n"
        "garbage here\n"
        "C0 END\n"
        "@end\n";
    const auto r = parseTrace(text, "bad.trc");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::ParseError);
    const std::string what = r.error().describe();
    EXPECT_NE(what.find("garbage here"), std::string::npos) << what;
    EXPECT_NE(what.find("bad.trc:3"), std::string::npos) << what;
}

TEST(TraceParser, OverflowAddressIsParseError)
{
    const std::string text =
        "@trace workload=W scale=1\n"
        "@program n=1 barriers=0 locks=0\n"
        "C0 RD 0x10000000000000000\n" // 17 nibbles: > 64 bits
        "C0 END\n"
        "@end\n";
    const auto r = parseTrace(text, "overflow.trc");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::ParseError);
    EXPECT_NE(r.error().describe().find("overflows 64 bits"),
              std::string::npos)
        << r.error().describe();
}

TEST(TraceParser, UnknownCoreIsParseError)
{
    const std::string text =
        "@trace workload=W scale=1\n"
        "@program n=2 barriers=0 locks=0\n"
        "C2 INT 5\n"
        "C0 END\nC1 END\n"
        "@end\n";
    const auto r = parseTrace(text, "core.trc");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::ParseError);
    const std::string what = r.error().describe();
    EXPECT_NE(what.find("unknown core C2"), std::string::npos) << what;
    EXPECT_NE(what.find("n=2"), std::string::npos) << what;
}

TEST(TraceParser, UnknownMnemonicAndMissingTraceLineAreParseErrors)
{
    const auto bad_op = parseTrace("@trace workload=W scale=1\n"
                                   "@program n=1 barriers=0 locks=0\n"
                                   "C0 MOV 3\n@end\n",
                                   "op.trc");
    ASSERT_FALSE(bad_op.ok());
    EXPECT_EQ(bad_op.error().code, util::ErrorCode::ParseError);
    EXPECT_NE(bad_op.error().describe().find("unknown mnemonic 'MOV'"),
              std::string::npos);

    const auto no_trace = parseTrace("# nothing\n", "empty.trc");
    ASSERT_FALSE(no_trace.ok());
    EXPECT_EQ(no_trace.error().code, util::ErrorCode::ParseError);
}

TEST(TraceParser, UnterminatedProgramIsCorruptData)
{
    // A @program with no @end means the tail of the file is gone — that
    // is data loss, not a grammar quibble.
    const auto r = parseTrace("@trace workload=W scale=1\n"
                              "@program n=1 barriers=0 locks=0\n"
                              "C0 INT 5\n",
                              "cut.trc");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::CorruptData);
    EXPECT_NE(r.error().describe().find("truncated"), std::string::npos);
}

// ---------------------------------------------------------------------
// Sealed-header CRC

TEST(TraceCrc, SealedHeaderRoundTripsAndDetectsCorruption)
{
    sim::Program p;
    p.threads.resize(1);
    p.threads[0].intOps(42);
    p.threads[0].load(0x1000);
    p.threads[0].finish();
    const std::string text = formatTrace("Sealed", 0.5, {{1, p}});
    ASSERT_EQ(text.rfind("#tlppm-trace v1 crc=0x", 0), 0u) << text;

    const auto ok = parseTrace(text, "sealed");
    ASSERT_TRUE(ok.ok()) << ok.error().describe();
    EXPECT_EQ(ok.value().workload, "Sealed");
    expectSamePrograms(ok.value().programs.at(1), p);

    // Flip one payload byte: the seal must catch it as CorruptData.
    std::string corrupt = text;
    corrupt[corrupt.size() / 2] ^= 0x01;
    const auto bad = parseTrace(corrupt, "sealed");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, util::ErrorCode::CorruptData);
    EXPECT_NE(bad.error().describe().find("trace CRC mismatch"),
              std::string::npos)
        << bad.error().describe();

    // Truncation of a sealed file is equally refused.
    const auto cut =
        parseTrace(std::string_view(text).substr(0, text.size() - 10),
                   "sealed");
    ASSERT_FALSE(cut.ok());
    EXPECT_EQ(cut.error().code, util::ErrorCode::CorruptData);
}

TEST(TraceCrc, MalformedHeaderIsParseError)
{
    const auto r = parseTrace("#tlppm-trace v2 crc=0x0\n", "hdr");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::ParseError);
    EXPECT_NE(r.error().describe().find("unsupported trace header"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Generator-vs-replay identity

TEST(TraceRoundTrip, GeneratorProgramsSurviveDumpAndReload)
{
    // Two suite members with different op mixes (FFT: barriers; Radix:
    // locks), dumped at two thread counts, must reload field-identical —
    // this is the program-level half of the byte-identical-tables
    // guarantee (the other half is the shared pricing pipeline).
    const double scale = 0.02;
    for (const char* name : {"FFT", "Radix"}) {
        const workloads::WorkloadInfo& app = workloads::byName(name);
        std::vector<std::pair<int, sim::Program>> programs;
        for (int n : {1, 4})
            programs.emplace_back(n, app.make(n, scale));
        const std::string text = formatTrace(app.name, scale, programs);
        const auto parsed = parseTrace(text, app.name);
        ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
        EXPECT_EQ(parsed.value().workload, app.name);
        for (const auto& [n, program] : programs) {
            SCOPED_TRACE(std::string(name) + " n=" + std::to_string(n));
            expectSamePrograms(parsed.value().programs.at(n), program);
        }

        // And the text itself is a fixed point: re-dumping the parsed
        // programs reproduces the file byte for byte.
        std::vector<std::pair<int, sim::Program>> reloaded(
            parsed.value().programs.begin(),
            parsed.value().programs.end());
        EXPECT_EQ(formatTrace(parsed.value().workload,
                              parsed.value().scale, reloaded),
                  text);
    }
}

// ---------------------------------------------------------------------
// Cache identity

TEST(TraceIdentity, CacheKeyCarriesContentCrc)
{
    sim::Program p;
    p.threads.resize(1);
    p.threads[0].intOps(7);
    p.threads[0].finish();

    TempFile a("key_a");
    a.write(formatTrace("FFT", 0.05, {{1, p}}));
    const std::string spec_a = "trace:" + a.path();
    const auto wa = workloads::resolve(spec_a);
    ASSERT_TRUE(wa.ok()) << wa.error().describe();
    // Display name is the embedded workload; cache identity is the spec
    // plus the content CRC.
    EXPECT_EQ(wa.value()->name, "FFT");
    EXPECT_EQ(wa.value()->key().rfind(spec_a + "#crc32=", 0), 0u)
        << wa.value()->key();

    // An edited trace (one more op) at another path: same display name,
    // different key — a RunKey/RawRunKey built from it cannot collide
    // with the original's cached runs.
    sim::Program q = p;
    q.threads[0] = sim::ThreadProgram{};
    q.threads[0].intOps(8);
    q.threads[0].finish();
    TempFile b("key_b");
    b.write(formatTrace("FFT", 0.05, {{1, q}}));
    const auto wb = workloads::resolve("trace:" + b.path());
    ASSERT_TRUE(wb.ok()) << wb.error().describe();
    EXPECT_EQ(wb.value()->name, wa.value()->name);
    EXPECT_NE(wb.value()->key(), wa.value()->key());
    const std::string crc_a =
        wa.value()->key().substr(wa.value()->key().rfind('=') + 1);
    const std::string crc_b =
        wb.value()->key().substr(wb.value()->key().rfind('=') + 1);
    EXPECT_NE(crc_a, crc_b);
}

TEST(TraceIdentity, CorruptFileSurfacesTypedErrorThroughResolve)
{
    TempFile f("corrupt");
    sim::Program p;
    p.threads.resize(1);
    p.threads[0].intOps(3);
    p.threads[0].finish();
    std::string text = formatTrace("FFT", 0.05, {{1, p}});
    text.resize(text.size() - 5); // truncate: the seal must catch it
    f.write(text);
    const auto r = workloads::resolve("trace:" + f.path());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, util::ErrorCode::CorruptData);
    // Sticky: the second resolve re-returns the same typed error
    // without re-reading the file.
    const auto again = workloads::resolve("trace:" + f.path());
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.error().code, util::ErrorCode::CorruptData);
}

TEST(TraceIdentity, MissingFileIsTypedNotFatal)
{
    const auto r = workloads::resolve(
        "trace:" + std::string(::testing::TempDir()) +
        "tlppm_trace_nonexistent_" + std::to_string(::getpid()) + ".trc");
    ASSERT_FALSE(r.ok());
}

} // namespace
