/**
 * @file
 * Deterministic multi-process sharding tests: the stable row-to-shard
 * hash partitions every (application, N) row exactly once, shard
 * journals carry CRC-protected identity metadata, mergeShards refuses
 * incomplete/mismatched/duplicated shard sets with typed errors, and —
 * the sacred invariant — a 3-way sharded fig3 run merged back together
 * renders tables byte-identical to the unsharded serial run with zero
 * re-simulation.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/journal.hpp"
#include "runner/run_cache.hpp"
#include "runner/sweep_runner.hpp"
#include "service/figures.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;

/** Unique temp path per test; removed on destruction. */
class TempFile
{
  public:
    explicit TempFile(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "tlppm_shard_" + tag +
                "_" + std::to_string(::getpid()) + ".jsonl")
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

constexpr double kScale = 0.05;

TEST(ShardOf, PartitionsEveryRowExactlyOnce)
{
    const std::vector<int> ns = {1, 2, 4, 8, 16};
    for (int shards : {1, 2, 3, 7}) {
        for (const auto& info : workloads::suite()) {
            for (int n : ns) {
                const int owner = runner::SweepRunner::shardOf(
                    info.name, n, kScale, shards);
                ASSERT_GE(owner, 0);
                ASSERT_LT(owner, shards);
                // Stable: the same row always lands on the same shard.
                EXPECT_EQ(owner, runner::SweepRunner::shardOf(
                                     info.name, n, kScale, shards));
            }
        }
    }
}

TEST(ShardOf, SpreadsRowsAcrossShards)
{
    // Not a balance guarantee, but with 60 rows over 3 shards every
    // shard must own something — an empty shard would mean the hash
    // degenerated.
    const std::vector<int> ns = {1, 2, 4, 8, 16};
    std::set<int> owners;
    for (const auto& info : workloads::suite())
        for (int n : ns)
            owners.insert(
                runner::SweepRunner::shardOf(info.name, n, kScale, 3));
    EXPECT_EQ(owners.size(), 3u);
}

TEST(ShardMeta, RoundTripsThroughJournal)
{
    const TempFile file("meta_roundtrip");
    const runner::ShardInfo info{"fig3", 0.05, 3, 1};
    {
        runner::Journal journal(file.path());
        ASSERT_TRUE(journal.createdEmpty());
        journal.appendShardMeta(info);
    }
    const auto read = runner::Journal::readShardInfo(file.path());
    ASSERT_TRUE(read.ok()) << read.error().describe();
    ASSERT_TRUE(read.value().has_value());
    EXPECT_EQ(read.value()->label, "fig3");
    EXPECT_EQ(read.value()->scale, 0.05);
    EXPECT_EQ(read.value()->shards, 3);
    EXPECT_EQ(read.value()->shard_index, 1);
}

TEST(ShardMeta, UnshardedJournalHasNone)
{
    const TempFile file("meta_none");
    {
        runner::Journal journal(file.path()); // header only, no meta
    }
    const auto read = runner::Journal::readShardInfo(file.path());
    ASSERT_TRUE(read.ok());
    EXPECT_FALSE(read.value().has_value());
}

TEST(ShardMeta, MissingFileHasNone)
{
    const auto read = runner::Journal::readShardInfo(
        std::string(::testing::TempDir()) + "tlppm_shard_nonexistent_" +
        std::to_string(::getpid()) + ".jsonl");
    ASSERT_TRUE(read.ok());
    EXPECT_FALSE(read.value().has_value());
}

TEST(ShardMeta, CorruptMetaLineIsTypedError)
{
    const TempFile file("meta_corrupt");
    {
        runner::Journal journal(file.path());
        journal.appendShardMeta(runner::ShardInfo{"fig3", 0.05, 2, 0});
    }
    // Flip one byte inside the metadata line's label so the CRC fails.
    std::ifstream in(file.path());
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    const std::string::size_type at = text.find("fig3");
    ASSERT_NE(at, std::string::npos);
    text[at] = 'x';
    std::ofstream out(file.path(), std::ios::trunc);
    out << text;
    out.close();

    const auto read = runner::Journal::readShardInfo(file.path());
    ASSERT_FALSE(read.ok());
    EXPECT_EQ(read.error().code, util::ErrorCode::CorruptData);
}

/** A shard journal with metadata but no records — enough for the merge
 *  validation tests, which must fail before any replay happens. */
void
writeShardJournal(const std::string& path, const runner::ShardInfo& info)
{
    runner::Journal journal(path);
    journal.appendShardMeta(info);
}

TEST(MergeShards, RejectsMissingShard)
{
    const TempFile s0("miss0"), s1("miss1"), out("miss_out");
    writeShardJournal(s0.path(), {"fig3", 0.05, 3, 0});
    writeShardJournal(s1.path(), {"fig3", 0.05, 3, 1});
    const auto merged =
        runner::Journal::mergeShards({s0.path(), s1.path()}, out.path());
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error().code, util::ErrorCode::InvalidArgument);
}

TEST(MergeShards, RejectsDuplicateShardIndex)
{
    const TempFile s0("dup0"), s1("dup1"), s1b("dup1b"), out("dup_out");
    writeShardJournal(s0.path(), {"fig3", 0.05, 3, 0});
    writeShardJournal(s1.path(), {"fig3", 0.05, 3, 1});
    writeShardJournal(s1b.path(), {"fig3", 0.05, 3, 1});
    const auto merged = runner::Journal::mergeShards(
        {s0.path(), s1.path(), s1b.path()}, out.path());
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error().code, util::ErrorCode::InvalidArgument);
}

TEST(MergeShards, RejectsMismatchedSweeps)
{
    // Same K, different scale: not the same sweep.
    const TempFile s0("mix0"), s1("mix1"), out("mix_out");
    writeShardJournal(s0.path(), {"fig3", 0.05, 2, 0});
    writeShardJournal(s1.path(), {"fig3", 0.30, 2, 1});
    const auto merged =
        runner::Journal::mergeShards({s0.path(), s1.path()}, out.path());
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error().code, util::ErrorCode::InvalidArgument);

    // Different figure, same scale: also not the same sweep.
    const TempFile f0("fig0"), f1("fig1"), out2("fig_out");
    writeShardJournal(f0.path(), {"fig3", 0.05, 2, 0});
    writeShardJournal(f1.path(), {"fig4", 0.05, 2, 1});
    const auto merged2 =
        runner::Journal::mergeShards({f0.path(), f1.path()}, out2.path());
    ASSERT_FALSE(merged2.ok());
    EXPECT_EQ(merged2.error().code, util::ErrorCode::InvalidArgument);
}

TEST(MergeShards, RejectsJournalWithoutMetadata)
{
    const TempFile s0("plain0"), out("plain_out");
    {
        runner::Journal journal(s0.path()); // unsharded: no meta line
    }
    const auto merged =
        runner::Journal::mergeShards({s0.path()}, out.path());
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error().code, util::ErrorCode::CorruptData);
}

TEST(MergeShards, RejectsEmptyInput)
{
    const TempFile out("empty_out");
    const auto merged = runner::Journal::mergeShards({}, out.path());
    ASSERT_FALSE(merged.ok());
    EXPECT_EQ(merged.error().code, util::ErrorCode::InvalidArgument);
}

/** The end-to-end invariant: a 3-way sharded fig3 run, merged, renders
 *  byte-identically to the unsharded serial run — and the merged
 *  re-render replays everything from the journal (zero simulations). */
TEST(Sharding, Fig3ThreeWayMergeMatchesSerialByteForByte)
{
    service::FigureOptions serial_opts;
    serial_opts.jobs = 1;
    serial_opts.scale = kScale;
    const auto serial = service::renderFigure("fig3", serial_opts);
    ASSERT_TRUE(serial.ok()) << serial.error().describe();

    const TempFile s0("e2e0"), s1("e2e1"), s2("e2e2"), merged_j("e2e_m");
    const std::vector<const TempFile*> shards = {&s0, &s1, &s2};
    std::uint64_t sharded_sim_calls = 0;
    for (int i = 0; i < 3; ++i) {
        service::FigureOptions opts;
        opts.jobs = 2;
        opts.scale = kScale;
        opts.journal_path = shards[static_cast<std::size_t>(i)]->path();
        opts.shards = 3;
        opts.shard_index = i;
        const auto run = service::renderFigure("fig3", opts);
        ASSERT_TRUE(run.ok()) << run.error().describe();
        // A shard renders its own rows and dashes for the rest, so its
        // output must differ from the full table.
        EXPECT_NE(run.value().output, serial.value().output);
        EXPECT_GT(run.value().report.out_of_shard, 0u) << "shard " << i;
        sharded_sim_calls += run.value().report.sim_calls;
    }
    // The only repeated work across shards is the shared n = 1
    // baselines, so the total sharded simulation count stays close to
    // the serial count (well under 3x).
    EXPECT_GE(sharded_sim_calls, serial.value().report.sim_calls);
    EXPECT_LT(sharded_sim_calls, 2 * serial.value().report.sim_calls);

    const auto stats = runner::Journal::mergeShards(
        {s0.path(), s1.path(), s2.path()}, merged_j.path());
    ASSERT_TRUE(stats.ok()) << stats.error().describe();
    EXPECT_EQ(stats.value().shards, 3u);
    EXPECT_EQ(stats.value().label, "fig3");
    EXPECT_GT(stats.value().entries, 0u);
    EXPECT_EQ(stats.value().corrupt, 0u);

    service::FigureOptions merged_opts;
    merged_opts.jobs = 1;
    merged_opts.scale = kScale;
    merged_opts.journal_path = merged_j.path();
    merged_opts.resume = true;
    const auto merged = service::renderFigure("fig3", merged_opts);
    ASSERT_TRUE(merged.ok()) << merged.error().describe();
    EXPECT_EQ(merged.value().output, serial.value().output);
    EXPECT_EQ(merged.value().report.sim_calls, 0u)
        << "merged journal should replay every point";
    EXPECT_EQ(merged.value().report.replayed, stats.value().entries);
}

/** The merged journal is canonical: merging the same shards in a
 *  different argument order writes byte-identical files. */
TEST(Sharding, MergedJournalIsOrderIndependent)
{
    const TempFile s0("ord0"), s1("ord1"), s2("ord2");
    const TempFile out_a("ord_a"), out_b("ord_b");
    for (int i = 0; i < 3; ++i) {
        service::FigureOptions opts;
        opts.jobs = 2;
        opts.scale = kScale;
        const TempFile* files[] = {&s0, &s1, &s2};
        opts.journal_path = files[i]->path();
        opts.shards = 3;
        opts.shard_index = i;
        const auto run = service::renderFigure("fig3", opts);
        ASSERT_TRUE(run.ok()) << run.error().describe();
    }
    ASSERT_TRUE(runner::Journal::mergeShards(
                    {s0.path(), s1.path(), s2.path()}, out_a.path())
                    .ok());
    ASSERT_TRUE(runner::Journal::mergeShards(
                    {s2.path(), s0.path(), s1.path()}, out_b.path())
                    .ok());
    std::ifstream a(out_a.path()), b(out_b.path());
    const std::string text_a((std::istreambuf_iterator<char>(a)),
                             std::istreambuf_iterator<char>());
    const std::string text_b((std::istreambuf_iterator<char>(b)),
                             std::istreambuf_iterator<char>());
    ASSERT_FALSE(text_a.empty());
    EXPECT_EQ(text_a, text_b);
}

} // namespace
