/**
 * @file
 * Tests for tlp_workloads: structural validity of every generator
 * (matched sync ops, same total work for any thread count, determinism)
 * plus per-application regime checks (compute vs memory intensity,
 * working-set sizes).
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/cmp.hpp"
#include "util/logging.hpp"
#include "workloads/common.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace tlp;
using sim::Op;
using sim::OpType;
using sim::Program;

constexpr double kTestScale = 0.08;

// --------------------------------------------------------------- registry

TEST(Registry, HasTwelveApplications)
{
    EXPECT_EQ(workloads::suite().size(), 12u);
}

TEST(Registry, NamesMatchPaperTable2)
{
    const char* expected[] = {"Barnes",    "Cholesky", "FFT",
                              "FMM",       "LU",       "Ocean",
                              "Radiosity", "Radix",    "Raytrace",
                              "Volrend",   "Water-Nsq", "Water-Sp"};
    const auto& suite = workloads::suite();
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(Registry, ByNameRoundTripsAndRejectsUnknown)
{
    EXPECT_EQ(workloads::byName("Ocean").name, "Ocean");
    EXPECT_THROW(workloads::byName("SPECjbb"), util::FatalError);
}

// ----------------------------------------------------------------- common

TEST(Common, ScaledRespectsFloor)
{
    EXPECT_EQ(workloads::scaled(1000, 0.5), 500u);
    EXPECT_EQ(workloads::scaled(10, 0.01, 4), 4u);
    EXPECT_THROW(workloads::scaled(10, 0.0), util::FatalError);
    EXPECT_THROW(workloads::scaled(10, 1.5), util::FatalError);
}

TEST(Common, LoadRegionTouchesEveryLine)
{
    sim::ThreadProgram tp;
    workloads::loadRegion(tp, 0x100, 130); // spans lines 0x100,0x140,0x180
    tp.finish();
    int loads = 0;
    for (const Op& op : tp.ops())
        loads += op.type == OpType::Load;
    EXPECT_EQ(loads, 3);
}

TEST(Common, WorkloadSeedVariesByNameAndThread)
{
    EXPECT_NE(workloads::workloadSeed("a", 0),
              workloads::workloadSeed("b", 0));
    EXPECT_NE(workloads::workloadSeed("a", 0),
              workloads::workloadSeed("a", 1));
    EXPECT_EQ(workloads::workloadSeed("a", 3),
              workloads::workloadSeed("a", 3));
}

// ------------------------------------------------- per-generator structure

struct SyncProfile
{
    std::map<std::uint64_t, int> barriers;  // id -> arrivals
    std::map<std::uint64_t, int> lock_depth; // id -> balance
    std::uint64_t loads = 0, stores = 0, int_ops = 0, fp_ops = 0;
};

SyncProfile
profile(const Program& prog)
{
    SyncProfile out;
    for (const auto& thread : prog.threads) {
        std::map<std::uint64_t, int> held;
        for (const Op& op : thread.ops()) {
            switch (op.type) {
              case OpType::Barrier:
                ++out.barriers[op.addr];
                break;
              case OpType::Lock:
                ++held[op.addr];
                EXPECT_EQ(held[op.addr], 1) << "recursive lock";
                break;
              case OpType::Unlock:
                --held[op.addr];
                EXPECT_GE(held[op.addr], 0) << "unlock without lock";
                break;
              case OpType::Load:
                ++out.loads;
                break;
              case OpType::Store:
                ++out.stores;
                break;
              case OpType::IntOps:
                out.int_ops += op.count;
                break;
              case OpType::FpOps:
                out.fp_ops += op.count;
                break;
              case OpType::End:
                break;
            }
        }
        for (const auto& [id, depth] : held)
            EXPECT_EQ(depth, 0) << "lock " << id << " left held";
    }
    return out;
}

class SuiteSweep : public ::testing::TestWithParam<const char*>
{
  protected:
    const workloads::WorkloadInfo&
    info() const
    {
        return workloads::byName(GetParam());
    }
};

TEST_P(SuiteSweep, EveryThreadStreamIsSealed)
{
    for (int threads : {1, 3, 16}) {
        const Program prog = info().make(threads, kTestScale);
        ASSERT_EQ(prog.nThreads(), threads);
        for (const auto& t : prog.threads)
            EXPECT_TRUE(t.finished());
        // At tiny test scales some threads may legitimately receive no
        // work (they still participate in barriers); the program as a
        // whole must not be empty.
        EXPECT_GT(prog.instructionCount(), 0u);
    }
}

TEST_P(SuiteSweep, BarriersAreReachedByAllThreads)
{
    for (int threads : {2, 5, 16}) {
        const Program prog = info().make(threads, kTestScale);
        const SyncProfile p = profile(prog);
        for (const auto& [id, arrivals] : p.barriers) {
            EXPECT_EQ(arrivals, threads)
                << info().name << " barrier " << id << " with "
                << threads << " threads";
        }
    }
}

TEST_P(SuiteSweep, DeterministicGeneration)
{
    const Program a = info().make(4, kTestScale);
    const Program b = info().make(4, kTestScale);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t t = 0; t < a.threads.size(); ++t) {
        const auto& oa = a.threads[t].ops();
        const auto& ob = b.threads[t].ops();
        ASSERT_EQ(oa.size(), ob.size());
        for (std::size_t i = 0; i < oa.size(); ++i) {
            ASSERT_EQ(static_cast<int>(oa[i].type),
                      static_cast<int>(ob[i].type));
            ASSERT_EQ(oa[i].addr, ob[i].addr);
            ASSERT_EQ(oa[i].count, ob[i].count);
        }
    }
}

TEST_P(SuiteSweep, TotalWorkIndependentOfThreadCount)
{
    // The problem size must not change with N (paper Table 2): total
    // instructions stay within a small tolerance of the 1-thread count
    // (task-queue grabs and replicated reads add a little).
    const auto total = [&](int threads) {
        return static_cast<double>(
            info().make(threads, kTestScale).instructionCount());
    };
    const double one = total(1);
    EXPECT_NEAR(total(4) / one, 1.0, 0.25) << info().name;
    EXPECT_NEAR(total(16) / one, 1.0, 0.35) << info().name;
}

TEST_P(SuiteSweep, RunsToCompletionOnTheCmp)
{
    const sim::Cmp cmp{sim::CmpConfig{}};
    for (int threads : {1, 4}) {
        const auto result =
            cmp.run(info().make(threads, kTestScale), 3.2e9);
        EXPECT_TRUE(result.coherent) << info().name;
        EXPECT_GT(result.ipc(), 0.0);
    }
}

TEST_P(SuiteSweep, ScaleShrinksTheProblem)
{
    const auto big = info().make(1, 0.5).instructionCount();
    const auto small = info().make(1, 0.05).instructionCount();
    EXPECT_LT(small, big) << info().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, SuiteSweep,
    ::testing::Values("Barnes", "Cholesky", "FFT", "FMM", "LU", "Ocean",
                      "Radiosity", "Radix", "Raytrace", "Volrend",
                      "Water-Nsq", "Water-Sp"));

// ------------------------------------------------------------ app regimes

TEST(Regimes, RadixIsIntegerAndMemoryBound)
{
    const SyncProfile p = profile(workloads::makeRadix(1, kTestScale));
    EXPECT_EQ(p.fp_ops, 0u);
    // Memory ops are a large share of the stream.
    const double mem_share = static_cast<double>(p.loads + p.stores) /
        (p.loads + p.stores + p.int_ops);
    EXPECT_GT(mem_share, 0.10);
}

TEST(Regimes, FmmIsTheMostComputeIntensive)
{
    const auto intensity = [&](const Program& prog) {
        const SyncProfile p = profile(prog);
        return static_cast<double>(p.fp_ops + p.int_ops) /
            (p.loads + p.stores);
    };
    const double fmm = intensity(workloads::makeFmm(1, kTestScale));
    const double cholesky =
        intensity(workloads::makeCholesky(1, kTestScale));
    const double radix = intensity(workloads::makeRadix(1, kTestScale));
    // Figure 4's ordering: FMM > Cholesky > Radix.
    EXPECT_GT(fmm, cholesky);
    EXPECT_GT(cholesky, radix);
}

TEST(Regimes, OceanWorkingSetExceedsL2)
{
    // 514x514 doubles, two grids: > 4 MB of distinct lines at full scale.
    const Program prog = workloads::makeOcean(1, 1.0);
    std::set<std::uint64_t> lines;
    for (const Op& op : prog.threads[0].ops()) {
        if (op.type == OpType::Load || op.type == OpType::Store)
            lines.insert(op.addr / 64);
    }
    EXPECT_GT(lines.size() * 64, 4u * 1024 * 1024);
}

TEST(Regimes, PowerVirusIsL1Resident)
{
    const Program prog = workloads::makePowerVirus(1, 0.2);
    std::set<std::uint64_t> lines;
    for (const Op& op : prog.threads[0].ops()) {
        if (op.type == OpType::Load || op.type == OpType::Store)
            lines.insert(op.addr / 64);
    }
    EXPECT_LE(lines.size() * 64, 64u * 1024);
}

TEST(Regimes, PowerVirusSustainsHighIpc)
{
    const sim::Cmp cmp{sim::CmpConfig{}};
    const auto result =
        cmp.run(workloads::makePowerVirus(1, 0.1), 3.2e9);
    EXPECT_GT(result.ipc(), 1.3);
}

TEST(Regimes, FmmOutscalesRadiosityAtSixteen)
{
    // Efficiency ordering at N=16 (paper Fig. 3 panel 1): FMM is near
    // the top, Radiosity near the bottom.
    const sim::Cmp cmp{sim::CmpConfig{}};
    const auto eff = [&](const workloads::WorkloadInfo& info) {
        const auto one = cmp.run(info.make(1, 0.2), 3.2e9);
        const auto sixteen = cmp.run(info.make(16, 0.2), 3.2e9);
        return static_cast<double>(one.cycles) / (16.0 * sixteen.cycles);
    };
    EXPECT_GT(eff(workloads::byName("FMM")),
              eff(workloads::byName("Radiosity")));
}

} // namespace
