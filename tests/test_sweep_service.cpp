/**
 * @file
 * SweepService tests: request parsing/validation, the queue protocol
 * (claim by rename, atomic responses, orphan re-delivery), admission
 * control and shedding, store-hit dedup, retry-with-backoff exhaustion,
 * and the stability of the service metrics schema.
 *
 * The figure mechanics use fig1/fig2 (analytic, milliseconds); the
 * simulation paths use fig3 at a tiny problem scale.
 */

#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "runner/fault_injection.hpp"
#include "service/figures.hpp"
#include "service/result_store.hpp"
#include "service/sweep_service.hpp"
#include "service/wire.hpp"
#include "util/crc32.hpp"
#include "util/fs.hpp"

namespace {

using namespace tlp;

/** Unique store directory per test; contents removed on destruction. */
class TempStoreDir
{
  public:
    explicit TempStoreDir(const std::string& tag)
        : path_(std::string(::testing::TempDir()) + "tlppm_svc_" + tag +
                "_" + std::to_string(::getpid()))
    {
        removeAll();
    }
    ~TempStoreDir() { removeAll(); }
    const std::string& path() const { return path_; }

  private:
    void removeAll()
    {
        for (const char* sub : {"/tables", "/queue", "/work", "/results"}) {
            const std::string dir = path_ + sub;
            for (const std::string& name : util::listDir(dir))
                util::removePath(dir + "/" + name);
            util::removePath(dir);
        }
        for (const std::string& name : util::listDir(path_))
            util::removePath(path_ + "/" + name);
        util::removePath(path_);
    }

    std::string path_;
};

service::SweepService
makeService(const std::string& dir,
            service::SweepService::Options options = {})
{
    auto store = service::ResultStore::open(dir);
    EXPECT_TRUE(store.ok())
        << (store.ok() ? std::string() : store.error().describe());
    if (options.jobs == 0)
        options.jobs = 1;
    return service::SweepService(std::move(store.value()), options);
}

void
enqueue(const std::string& dir, const std::string& id,
        const std::string& body)
{
    ASSERT_TRUE(
        util::atomicWriteFile(dir + "/queue/" + id + ".req", body).ok());
}

std::string
requestBody(const std::string& figure, double scale = 1.0, int jobs = 1)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", scale);
    return service::sealJsonLine("{\"tlppm_request\":1,\"figure\":\"" +
                                 figure + "\",\"scale\":" + buf +
                                 ",\"jobs\":" + std::to_string(jobs)) +
        "\n";
}

/** Read and integrity-check a response file; returns the header line. */
std::string
readResponse(const std::string& dir, const std::string& id,
             std::string* payload_out = nullptr)
{
    auto content = util::readFile(dir + "/results/" + id + ".resp");
    EXPECT_TRUE(content.ok()) << id;
    if (!content.ok())
        return "";
    const std::string& text = content.value();
    const std::size_t nl = text.find('\n');
    EXPECT_NE(nl, std::string::npos);
    const std::string header = text.substr(0, nl);
    const std::string payload = text.substr(nl + 1);
    EXPECT_TRUE(service::checkSealedJsonLine(header));
    std::uint64_t bytes = 0, crc = 0;
    EXPECT_TRUE(service::jsonFieldU64(header, "bytes", bytes));
    EXPECT_TRUE(service::jsonFieldU64(header, "payload_crc", crc));
    EXPECT_EQ(payload.size(), bytes);
    EXPECT_EQ(util::crc32(payload), static_cast<std::uint32_t>(crc));
    if (payload_out != nullptr)
        *payload_out = payload;
    return header;
}

TEST(SweepService, ParsesWellFormedRequestsAndRejectsGarbage)
{
    auto good = service::SweepService::parseRequest(
        "id1", requestBody("fig3", 0.25, 2));
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value().figure, "fig3");
    EXPECT_EQ(good.value().scale, 0.25);
    EXPECT_EQ(good.value().jobs, 2);
    EXPECT_EQ(good.value().id, "id1");

    for (const char* bad :
         {"", "not json", "{\"figure\":\"fig3\"}",
          "{\"tlppm_request\":1}",
          "{\"tlppm_request\":1,\"figure\":\"fig3\",\"jobs\":9999}"}) {
        auto parsed = service::SweepService::parseRequest("id", bad);
        EXPECT_FALSE(parsed.ok()) << bad;
        if (!parsed.ok())
            EXPECT_EQ(parsed.error().code, util::ErrorCode::ParseError);
    }
}

TEST(SweepService, ValidateRejectsUnknownFigureBadScaleAndBadId)
{
    const TempStoreDir dir("validate");
    auto svc = makeService(dir.path());

    service::Request request;
    request.id = "ok-id";
    request.figure = "fig9";
    EXPECT_FALSE(svc.validate(request).ok());

    request.figure = "fig1";
    EXPECT_TRUE(svc.validate(request).ok());

    request.scale = 0.0;
    EXPECT_FALSE(svc.validate(request).ok());
    request.scale = 2.0;
    EXPECT_FALSE(svc.validate(request).ok());
    request.scale = 1.0;

    request.id = "../escape";
    EXPECT_FALSE(svc.validate(request).ok());
}

TEST(SweepService, PointBudgetShedsSimulatedFiguresOnly)
{
    const TempStoreDir dir("budget");
    service::SweepService::Options options;
    options.max_points = 10; // far below any fig3/fig4 estimate
    auto svc = makeService(dir.path(), options);

    service::Request request;
    request.id = "r1";
    request.figure = "fig3";
    auto rejected = svc.validate(request);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().code, util::ErrorCode::Overloaded);

    // Analytic figures run zero simulations and always fit the budget.
    request.figure = "fig1";
    EXPECT_TRUE(svc.validate(request).ok());
}

TEST(SweepService, ServesAnalyticFigureThenRepeatsFromStore)
{
    const TempStoreDir dir("fig1");
    auto svc = makeService(dir.path());

    service::Request request;
    request.id = "first";
    request.figure = "fig1";
    const service::ServeOutcome fresh = svc.serve(request);
    ASSERT_TRUE(fresh.ok) << fresh.error.describe();
    EXPECT_FALSE(fresh.from_store);
    EXPECT_EQ(fresh.sim_calls, 0u);
    EXPECT_FALSE(fresh.payload.empty());

    // The payload equals the batch renderer's output by construction.
    service::FigureOptions fopts;
    fopts.jobs = 1;
    auto batch = service::renderFigure("fig1", fopts);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(fresh.payload, batch.value().output);

    request.id = "second";
    const service::ServeOutcome repeat = svc.serve(request);
    ASSERT_TRUE(repeat.ok);
    EXPECT_TRUE(repeat.from_store);
    EXPECT_EQ(repeat.sim_calls, 0u);
    EXPECT_EQ(repeat.payload, fresh.payload); // byte-identical
}

TEST(SweepService, QueueProtocolClaimsAnswersAndCleansUp)
{
    const TempStoreDir dir("queue");
    auto svc = makeService(dir.path());
    enqueue(dir.path(), "req-a", requestBody("fig1"));
    enqueue(dir.path(), "req-b", requestBody("fig2"));

    auto answered = svc.pollOnce();
    ASSERT_TRUE(answered.ok());
    EXPECT_EQ(answered.value(), 2u);
    EXPECT_TRUE(util::listDir(dir.path() + "/queue", ".req").empty());
    EXPECT_TRUE(util::listDir(dir.path() + "/work", ".req").empty());

    for (const char* id : {"req-a", "req-b"}) {
        std::string payload;
        const std::string header = readResponse(dir.path(), id, &payload);
        std::string status;
        EXPECT_TRUE(service::jsonFieldString(header, "status", status));
        EXPECT_EQ(status, "ok") << id;
        EXPECT_FALSE(payload.empty());
    }
    EXPECT_EQ(svc.stats().served_ok, 2u);

    // An idle poll answers nothing.
    auto idle = svc.pollOnce();
    ASSERT_TRUE(idle.ok());
    EXPECT_EQ(idle.value(), 0u);
}

TEST(SweepService, MalformedRequestGetsTypedErrorResponse)
{
    const TempStoreDir dir("malformed");
    auto svc = makeService(dir.path());
    enqueue(dir.path(), "broken", "this is not a request\n");

    auto answered = svc.pollOnce();
    ASSERT_TRUE(answered.ok());
    EXPECT_EQ(answered.value(), 1u);
    const std::string header = readResponse(dir.path(), "broken");
    std::string status, code;
    EXPECT_TRUE(service::jsonFieldString(header, "status", status));
    EXPECT_EQ(status, "error");
    EXPECT_TRUE(service::jsonFieldString(header, "code", code));
    EXPECT_EQ(code, "parse-error");
    EXPECT_EQ(svc.stats().invalid, 1u);
}

TEST(SweepService, AdmissionControlShedsTheExcessWithOverloaded)
{
    const TempStoreDir dir("shed");
    service::SweepService::Options options;
    options.max_queue = 1;
    auto svc = makeService(dir.path(), options);
    enqueue(dir.path(), "a", requestBody("fig1"));
    enqueue(dir.path(), "b", requestBody("fig1"));
    enqueue(dir.path(), "c", requestBody("fig2"));

    auto answered = svc.pollOnce();
    ASSERT_TRUE(answered.ok());
    EXPECT_EQ(answered.value(), 3u); // every request gets an answer
    EXPECT_EQ(svc.stats().served_ok, 1u);
    EXPECT_EQ(svc.stats().shed, 2u);

    // Names are served in order: "a" is admitted, "b"/"c" shed.
    std::string status, code;
    EXPECT_TRUE(service::jsonFieldString(
        readResponse(dir.path(), "a"), "status", status));
    EXPECT_EQ(status, "ok");
    for (const char* id : {"b", "c"}) {
        const std::string header = readResponse(dir.path(), id);
        EXPECT_TRUE(service::jsonFieldString(header, "status", status));
        EXPECT_EQ(status, "error") << id;
        EXPECT_TRUE(service::jsonFieldString(header, "code", code));
        EXPECT_EQ(code, "overloaded") << id;
    }

    // Shedding is not starvation: re-enqueued, the next poll serves it
    // (from the store now — the table was already priced).
    enqueue(dir.path(), "b2", requestBody("fig1"));
    ASSERT_TRUE(svc.pollOnce().ok());
    std::string payload_a, payload_b2;
    readResponse(dir.path(), "a", &payload_a);
    const std::string header = readResponse(dir.path(), "b2", &payload_b2);
    EXPECT_TRUE(service::jsonFieldString(header, "status", status));
    EXPECT_EQ(status, "ok");
    EXPECT_EQ(payload_b2, payload_a); // store hit, byte-identical
    std::uint64_t from_store = 0;
    EXPECT_TRUE(
        service::jsonFieldU64(header, "from_store", from_store));
    EXPECT_EQ(from_store, 1u);
}

TEST(SweepService, OrphanedClaimsAreRedeliveredOnFirstPoll)
{
    const TempStoreDir dir("orphan");
    {
        auto svc = makeService(dir.path());
        // Plant the state a daemon killed mid-request leaves: claimed
        // into work/, never answered.
        ASSERT_TRUE(util::atomicWriteFile(
                        dir.path() + "/work/lost.req",
                        requestBody("fig1"))
                        .ok());
        auto answered = svc.pollOnce();
        ASSERT_TRUE(answered.ok());
        EXPECT_EQ(answered.value(), 1u);
    }
    std::string status;
    EXPECT_TRUE(service::jsonFieldString(
        readResponse(dir.path(), "lost"), "status", status));
    EXPECT_EQ(status, "ok");
}

TEST(SweepService, UnsafeRequestIdsAreDroppedWithoutAResponse)
{
    const TempStoreDir dir("unsafe");
    auto svc = makeService(dir.path());
    ASSERT_TRUE(util::atomicWriteFile(
                    dir.path() + "/queue/ev il.req", requestBody("fig1"))
                    .ok());

    auto answered = svc.pollOnce();
    ASSERT_TRUE(answered.ok());
    EXPECT_EQ(svc.stats().invalid, 1u);
    EXPECT_TRUE(util::listDir(dir.path() + "/queue", ".req").empty());
    EXPECT_TRUE(util::listDir(dir.path() + "/results", ".resp").empty());
}

TEST(SweepService, RetriesExhaustOnPersistentFaultAndStoreStaysClean)
{
    const TempStoreDir dir("retries");
    service::SweepService::Options options;
    options.max_retries = 2;
    options.backoff_s = 0.0; // no need to sleep in tests
    auto svc = makeService(dir.path(), options);

    // Every measurement of FFT throws: a persistent fault containment
    // reports as failed points, which the service retries and finally
    // answers with a typed error.
    runner::FaultPlan plan;
    plan.kind = runner::FaultKind::Throw;
    plan.workload = "FFT";
    runner::ScopedFaultPlan scoped(plan);

    service::Request request;
    request.id = "doomed";
    request.figure = "fig3";
    request.scale = 0.001;
    const service::ServeOutcome outcome = svc.serve(request);
    EXPECT_FALSE(outcome.ok);
    EXPECT_EQ(outcome.attempts, 3); // 1 + max_retries
    EXPECT_EQ(svc.stats().retries, 2u);

    // A partially failed table must never be persisted.
    auto table = svc.store().loadTable(
        service::tableKey("fig3", request.scale));
    ASSERT_TRUE(table.ok());
    EXPECT_FALSE(table.value().has_value());

    // Once the fault clears, the same request succeeds — and the points
    // that did complete during the failed attempts replay from the
    // store's journal instead of re-simulating.
    runner::FaultInjector::instance().clearPlan();
    request.id = "recovered";
    const service::ServeOutcome healed = svc.serve(request);
    ASSERT_TRUE(healed.ok) << healed.error.describe();
    std::uint64_t replayed = 0;
    EXPECT_TRUE(
        service::jsonFieldU64(healed.metrics_json, "replayed", replayed));
    EXPECT_GT(replayed, 0u);
}

TEST(SweepService, MetricsJsonCarriesServiceAndStoreCounters)
{
    const TempStoreDir dir("metrics");
    auto svc = makeService(dir.path());
    enqueue(dir.path(), "m1", requestBody("fig1"));
    ASSERT_TRUE(svc.pollOnce().ok());

    const std::string json = svc.metricsJson();
    for (const char* key :
         {"\"requests\"", "\"served_ok\"", "\"served_from_store\"",
          "\"deduped\"", "\"shed\"", "\"retries\"", "\"failed\"",
          "\"invalid\"", "\"sim_calls_total\"", "\"store_generation\"",
          "\"store_table_hits\"", "\"store_table_misses\"",
          "\"store_quarantined\"", "\"store_compactions\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

} // namespace
