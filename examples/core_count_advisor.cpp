/**
 * @file
 * Core-count advisor: given an Amdahl serial fraction (argv[1], default
 * 0.05), compare the optimal core count and operating point across
 * process technologies for both of the paper's objectives.
 *
 * Usage: ./examples/core_count_advisor [serial_fraction]
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "model/efficiency.hpp"
#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "tech/technology.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace tlp;

    double serial = 0.05;
    if (argc > 1) {
        const auto parsed =
            util::parseNumber(argv[1], "serial fraction", 0.0, 1.0);
        if (!parsed) {
            std::fprintf(stderr, "%s\n",
                         parsed.error().describe().c_str());
            return 1;
        }
        serial = parsed.value();
    }
    const model::AmdahlEfficiency app(serial);
    std::printf("Amdahl serial fraction: %.3f\n\n", serial);

    util::Table table(
        "Best configurations per node",
        {"Node", "Objective", "best N", "V [V]", "f [GHz]", "result"});

    for (const auto& tech : {tech::tech130nm(), tech::tech65nm()}) {
        const model::AnalyticCmp chip(tech, 32);

        // Objective 1: minimum power at single-core performance.
        const model::Scenario1 s1(chip);
        double best_power = 1e18;
        model::Scenario1Result best1;
        for (int n = 1; n <= 32; ++n) {
            const auto r = s1.solve(n, app);
            if (r.feasible && !r.power.runaway &&
                r.power.total_w < best_power) {
                best_power = r.power.total_w;
                best1 = r;
            }
        }
        table.addRow({tech.name(), "min power @ 1-core perf",
                      util::Table::num(best1.n),
                      util::Table::num(best1.vdd, 2),
                      util::Table::num(best1.freq / 1e9, 2),
                      util::Table::num(100.0 * best1.normalized_power, 0) +
                          "% of P1"});

        // Objective 2: maximum speedup within the single-core budget.
        const model::Scenario2 s2(chip);
        model::Scenario2Result best2;
        for (int n = 1; n <= 32; ++n) {
            const auto r = s2.solve(n, app);
            if (r.speedup > best2.speedup)
                best2 = r;
        }
        table.addRow({tech.name(), "max speedup @ budget",
                      util::Table::num(best2.n),
                      util::Table::num(best2.vdd, 2),
                      util::Table::num(best2.freq / 1e9, 2),
                      util::Table::num(best2.speedup, 2) + "x"});
    }
    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    std::printf("Note how neither objective is optimized by simply using "
                "all available cores (the paper's central observation).\n");
    return 0;
}
