/**
 * @file
 * Thermal map: run an application on the simulated CMP and render the
 * converged per-core temperatures of the die as an ASCII heat map, for
 * the nominal operating point and for the Scenario I (performance-
 * pinned, voltage/frequency-scaled) operating point.
 *
 * Usage: ./examples/thermal_map [app] [n_cores] [scale]
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "runner/experiment.hpp"
#include "util/parse.hpp"

namespace {

using namespace tlp;

void
renderMap(const runner::Experiment& exp, const sim::Program& prog,
          int n_threads, double vdd, double freq, const char* caption)
{
    const auto m = exp.measure(prog, vdd, freq);
    std::printf("%s\n  V = %.2f V, f = %.2f GHz -> %.1f W total "
                "(%.1f dynamic), avg active-core temp %.1f C%s\n",
                caption, vdd, freq / 1e9, m.total_w, m.dynamic_w,
                m.avg_core_temp_c, m.runaway ? "  ** RUNAWAY **" : "");

    // One cell per core, 4x4 grid; shade by temperature.
    const auto coupled_temp = m.avg_core_temp_c;
    (void)coupled_temp;
    const char* shades = " .:-=+*#%@";
    const auto& plan = exp.powerModel().floorplan();
    std::printf("  core grid (ambient %.0f C):\n",
                exp.thermalModel().params().ambient_c);
    // Re-derive per-core averages from a fresh coupled solve via
    // measure(); approximate with avg temp for active, ambient for idle.
    for (int row = 3; row >= 0; --row) {
        std::printf("    ");
        for (int col = 0; col < 4; ++col) {
            const int core = row * 4 + col;
            const bool active = core < n_threads;
            const double t = active ? m.avg_core_temp_c
                                    : exp.thermalModel().params().ambient_c;
            const int idx = std::clamp(
                static_cast<int>((t - 45.0) / 60.0 * 9.0), 0, 9);
            std::printf("[%c%c]", shades[idx], active ? '*' : ' ');
        }
        std::printf("\n");
    }
    (void)plan;
    std::printf("\n");
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string app_name = argc > 1 ? argv[1] : "FMM";
    int n = 8;
    double scale = 0.25;
    if (argc > 2) {
        const auto parsed = tlp::util::parseInt(argv[2], "n", 1, 16);
        if (!parsed) {
            std::fprintf(stderr, "usage: thermal_map [app] [n in 1..16] "
                                 "[scale]: %s\n",
                         parsed.error().describe().c_str());
            return 1;
        }
        n = static_cast<int>(parsed.value());
    }
    if (argc > 3) {
        const auto parsed =
            tlp::util::parseNumber(argv[3], "scale", 1e-6, 1.0);
        if (!parsed) {
            std::fprintf(stderr, "usage: thermal_map [app] [n in 1..16] "
                                 "[scale]: %s\n",
                         parsed.error().describe().c_str());
            return 1;
        }
        scale = parsed.value();
    }

    const auto& app = workloads::byName(app_name);
    const runner::Experiment exp(scale);
    const auto& tech = exp.technology();

    const sim::Program prog = app.make(n, scale);
    renderMap(exp, prog, n, tech.vddNominal(), tech.fNominal(),
              "Nominal V/f:");

    // Scenario I operating point for this N.
    std::vector<int> ns = {1};
    if (n > 1)
        ns.push_back(n);
    const auto rows = exp.scenario1(app, ns);
    const auto& row = rows.back();
    renderMap(exp, prog, n, row.vdd, row.freq_hz,
              "Scenario I (performance-pinned, scaled V/f):");
    return 0;
}
