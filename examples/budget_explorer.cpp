/**
 * @file
 * Budget explorer: run a SPLASH-2-like application on the simulated
 * 16-way CMP and sweep the power budget, reporting the best achievable
 * speedup and its core count at each budget level — the "how much
 * performance does each watt buy" view of Scenario II.
 *
 * Usage: ./examples/budget_explorer [app] [scale]
 *   app   one of the Table 2 names (default Cholesky)
 *   scale problem-size scale in (0, 1] (default 0.25 for a quick run)
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "runner/experiment.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

int
main(int argc, char** argv)
{
    using namespace tlp;

    const std::string app_name = argc > 1 ? argv[1] : "Cholesky";
    double scale = 0.25;
    if (argc > 2) {
        const auto parsed =
            util::parseNumber(argv[2], "scale", 1e-6, 1.0);
        if (!parsed) {
            std::fprintf(stderr, "%s\n",
                         parsed.error().describe().c_str());
            return 1;
        }
        scale = parsed.value();
    }

    const auto& app = workloads::byName(app_name);
    std::printf("Calibrating the testbed (microbenchmark + thermal "
                "anchor)...\n");
    const runner::Experiment exp(scale);
    const double reference = exp.maxSingleCorePower();
    std::printf("Single-core maximum power: %.1f W\n\n", reference);

    util::Table table(app_name + ": best configuration per power budget",
                      {"budget [W]", "best N", "speedup", "f [GHz]",
                       "V [V]", "power [W]"});

    const std::vector<int> ns = {1, 2, 4, 8, 16};
    for (double fraction : {0.5, 0.75, 1.0, 1.5, 2.0}) {
        const double budget = fraction * reference;
        const auto rows = exp.scenario2(app, ns, {}, budget);
        const runner::Scenario2Row* best = &rows.front();
        for (const auto& row : rows) {
            if (row.actual_speedup > best->actual_speedup)
                best = &row;
        }
        table.addRow({util::Table::num(budget, 1),
                      util::Table::num(best->n),
                      util::Table::num(best->actual_speedup, 2),
                      util::Table::num(best->freq_hz / 1e9, 2),
                      util::Table::num(best->vdd, 2),
                      util::Table::num(best->power_w, 1)});
    }

    std::ostringstream os;
    table.print(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
