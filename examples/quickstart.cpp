/**
 * @file
 * Quickstart: the library in ~40 lines.
 *
 * Question: my parallel application has a known efficiency curve — if I
 * spread it over N cores of a 65 nm CMP and scale voltage/frequency so
 * that performance stays at the single-core level, how much power do I
 * save? And what is the best N under a fixed power budget?
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "model/efficiency.hpp"
#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "tech/technology.hpp"

int
main()
{
    using namespace tlp;

    // A 32-core chip in the 65 nm node, calibrated so one core at full
    // throttle runs at 100 C.
    const model::AnalyticCmp chip(tech::tech65nm(), 32);

    // An application that loses 3% efficiency per extra core.
    const model::OverheadEfficiency app(0.03);

    // Scenario I: same performance as one full-throttle core, minimum
    // power.
    std::printf("Scenario I - power at single-core performance:\n");
    const model::Scenario1 s1(chip);
    for (int n : {2, 4, 8, 16, 32}) {
        const auto r = s1.solve(n, app);
        if (r.power.runaway) {
            std::printf("  N=%2d: eps=%.2f -> thermally unsustainable "
                        "(too many cores for this efficiency)\n",
                        n, r.eps_n);
            continue;
        }
        std::printf("  N=%2d: eps=%.2f -> f=%.2f GHz, V=%.2f V, "
                    "power = %.0f%% of single core, die %.0f C\n",
                    n, r.eps_n, r.freq / 1e9, r.vdd,
                    100.0 * r.normalized_power,
                    r.power.avg_active_temp_c);
    }

    // Scenario II: best speedup within the single-core power budget.
    std::printf("\nScenario II - speedup under the single-core power "
                "budget (%.0f W):\n",
                chip.singleCorePower());
    const model::Scenario2 s2(chip);
    double best = 0.0;
    int best_n = 1;
    for (int n = 1; n <= 32; ++n) {
        const auto r = s2.solve(n, app);
        if (r.speedup > best) {
            best = r.speedup;
            best_n = n;
        }
    }
    const auto r = s2.solve(best_n, app);
    std::printf("  best: N=%d at f=%.2f GHz, V=%.2f V -> %.2fx speedup "
                "(%.1f W)\n",
                best_n, r.freq / 1e9, r.vdd, r.speedup, r.power.total_w);
    std::printf("  (using all 32 cores would yield only %.2fx)\n",
                s2.solve(32, app).speedup);
    return 0;
}
