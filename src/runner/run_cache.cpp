#include "runner/run_cache.hpp"

namespace tlp::runner {

std::optional<Measurement>
RunCache::find(const RunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

void
RunCache::insert(const RunKey& key, const Measurement& m)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, m);
}

std::size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
RunCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

} // namespace tlp::runner
