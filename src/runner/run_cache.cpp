#include "runner/run_cache.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::runner {

bool
RunCache::admissible(const Measurement& m)
{
    return std::isfinite(m.seconds) && std::isfinite(m.freq_hz) &&
           std::isfinite(m.vdd) && std::isfinite(m.dynamic_w) &&
           std::isfinite(m.static_w) && std::isfinite(m.total_w) &&
           std::isfinite(m.avg_core_temp_c) &&
           std::isfinite(m.core_power_density_w_m2);
}

std::optional<Measurement>
RunCache::find(const RunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

bool
RunCache::contains(const RunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(key) != entries_.end();
}

bool
RunCache::insert(const RunKey& key, const Measurement& m)
{
    if (!admissible(m)) {
        util::warn(util::strcatMsg(
            "RunCache: rejecting non-finite Measurement for ",
            key.workload, " n=", key.n, " vdd=", key.vdd,
            " f=", key.freq_hz, "; the point will be recomputed"));
        return false;
    }
    InsertObserver observer;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto [it, inserted] = entries_.emplace(key, m);
        (void)it;
        if (!inserted)
            return false;
        observer = observer_;
    }
    // Observer runs outside the lock: it may do slow I/O (journaling) and
    // must not serialize concurrent cache lookups.
    if (observer)
        observer(key, m);
    return true;
}

void
RunCache::setInsertObserver(InsertObserver observer)
{
    std::lock_guard<std::mutex> lock(mutex_);
    observer_ = std::move(observer);
}

std::size_t
RunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
RunCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

void
RunCache::forEach(const std::function<void(const RunKey&,
                                           const Measurement&)>& fn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, m] : entries_)
        fn(key, m);
}

} // namespace tlp::runner
