/**
 * @file
 * SweepReport — the containment ledger of one sweep.
 *
 * A fault-tolerant sweep never silently drops work: every point that
 * could not be measured is recorded as a FailedPoint carrying the
 * operating point, the structured error, the wall time burned, and the
 * retry count; rows that depend on a failed point are counted as skipped
 * and marked in the output. The figure harnesses print the summary and
 * the failed list so a partially failed overnight sweep is still a
 * usable (and auditable) result.
 */

#ifndef TLP_RUNNER_SWEEP_REPORT_HPP
#define TLP_RUNNER_SWEEP_REPORT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/cmp.hpp"
#include "util/error.hpp"

namespace tlp::runner {

/** One operating point the sweep could not measure. */
struct FailedPoint
{
    std::string workload;
    int n = 0;
    double vdd = 0.0;
    double freq_hz = 0.0;
    /** Which stage failed: "profile" (nominal pass), "row" (scenario
     *  row assembly), or "measure" (measureAll point). */
    std::string phase;
    util::Error error;
    double wall_seconds = 0.0; ///< total time across all attempts
    int attempts = 1;          ///< 1 + retries actually taken
    std::size_t order = 0;     ///< submission order (stable across jobs)
};

/** Outcome counts of one sweep (scenario1Sweep / scenario2Sweep /
 *  measureAll call). */
struct SweepReport
{
    std::size_t ok = 0;       ///< points / rows completed
    std::size_t retried = 0;  ///< points that needed >= 1 retry to pass
    std::size_t skipped = 0;  ///< rows dropped because a dependency failed
    std::size_t replayed = 0; ///< cache entries restored from a journal
    /** Rows that belong to another shard of a sharded sweep — not work
     *  this process was asked to do, and not failures. */
    std::size_t out_of_shard = 0;
    int shards = 1;      ///< shard count of the sweep (1: unsharded)
    int shard_index = 0; ///< this process's shard
    /** Journal lines quarantined during replay: CRC/parse failures and
     *  records the cache refused (non-finite). Both degrade to "one more
     *  point to re-simulate", but a nonzero count means the journal took
     *  damage and deserves an eye. */
    std::size_t replay_corrupt = 0;
    std::size_t replay_inadmissible = 0;
    std::vector<FailedPoint> failed; ///< sorted by submission order

    /** Two-level cache accounting over this sweep (deltas between sweep
     *  start and end, summed over all worker Experiments): how many
     *  cycle-level simulations and pricing passes actually ran, and how
     *  each cache level performed. The perf counters that make the
     *  redundant-simulation elimination auditable. */
    std::uint64_t sim_calls = 0;    ///< cycle-level simulations executed
    std::uint64_t sim_events = 0;   ///< kernel events those runs executed
    std::uint64_t price_calls = 0;  ///< power/thermal pricing passes
    std::uint64_t raw_hits = 0;     ///< RawRunCache hits (sim elided)
    std::uint64_t raw_misses = 0;   ///< RawRunCache misses
    std::uint64_t priced_hits = 0;  ///< RunCache hits (pricing elided)
    std::uint64_t priced_misses = 0; ///< RunCache misses

    /** Thermal fixed-point rung accounting over this sweep: pricing
     *  passes resolved by the rung-1 damped solve, rescued by the
     *  Anderson-accelerated rung, and fallen through to the
     *  heavy-damping tail (the expensive last resort). */
    std::uint64_t thermal_damped_solves = 0;
    std::uint64_t thermal_accelerated_solves = 0;
    std::uint64_t thermal_fallback_solves = 0;

    /** Thermal linear-solver accounting over this sweep: right-hand
     *  sides solved, the factor traversals that carried them (a batched
     *  multi-RHS pass carries many sides in one traversal — the gap
     *  between the two numbers is the amortization batching bought),
     *  and numeric factorizations paid. */
    std::uint64_t thermal_solves = 0;
    std::uint64_t thermal_solve_passes = 0;
    std::uint64_t thermal_factorizations = 0;

    /** Largest right-hand-side batch any worker's thermal model carried
     *  in one pass (lifetime maximum, like queue_high_water). */
    std::uint64_t thermal_max_batch_rhs = 0;

    /** Largest event-queue high-water mark any worker's simulator saw
     *  (lifetime maximum, not a per-sweep delta — it is a peak). */
    std::uint64_t queue_high_water = 0;

    /** Work-stealing pool accounting over this sweep (all zero on a
     *  serial, jobs == 1, sweep — no pool exists): tasks the pool ran,
     *  tasks an idle worker stole from another worker's deque, and
     *  steal sweeps that found every victim empty. A healthy uneven
     *  sweep shows steals > 0; a steal count near pool_tasks means the
     *  round-robin split was badly uneven (expected after a resume,
     *  when cache-hit tasks are near-free). */
    std::uint64_t pool_tasks = 0;
    std::uint64_t pool_steals = 0;
    std::uint64_t pool_failed_steal_sweeps = 0;
    /** Workers pinned to a CPU (TLPPM_AFFINITY; 0 when off). */
    std::uint64_t pool_workers_pinned = 0;

    /** Cost-aware seeding split: tasks the scheduler classified (by
     *  probing the two cache levels before submission) as expensive
     *  (cache-cold, submitted first so stealing balances the tail)
     *  vs cheap (cache-warm, submitted last). */
    std::uint64_t sched_expensive = 0;
    std::uint64_t sched_cheap = 0;

    /** Persistent raw-run store accounting (all zero without
     *  --raw-store). hits/misses/appends are per-sweep deltas of the
     *  store's counters; the load/maintenance numbers are absolute for
     *  the store handle (loading happens at runner construction,
     *  before any sweep), so a quarantine or stale-fingerprint
     *  rejection during the warm load is never invisible. */
    bool store_attached = false;
    std::uint64_t store_hits = 0;    ///< raw misses served from disk
    std::uint64_t store_misses = 0;  ///< missed memory AND disk
    std::uint64_t store_appends = 0; ///< runs written behind this sweep
    std::uint64_t store_loaded = 0;  ///< records adopted at open
    std::uint64_t store_quarantined = 0;    ///< corrupt records/files
    std::uint64_t store_fp_rejected = 0;    ///< stale-model records
    std::uint64_t store_load_micros = 0;    ///< open()-time load wall

    /** Trace front-end accounting (absolute for the process, like the
     *  store load numbers: traces parse once in the workload registry,
     *  usually before the sweep starts): trace files read+parsed and
     *  the wall time that cost. Zero without trace:<path> workloads. */
    std::uint64_t trace_loads = 0;
    std::uint64_t trace_load_micros = 0;

    /** Per-core busy/stall/sync cycle totals summed over every
     *  simulation this sweep executed, all workers combined; entry i is
     *  core i. Cache hits contribute nothing. */
    std::vector<sim::CoreCycleBreakdown> core_cycles;

    bool allOk() const { return failed.empty() && skipped == 0; }

    /** "ok=12 failed=1 retried=0 skipped=3 replayed=0 sim_calls=…
     *  sim_events=… price_calls=… raw=h/m priced=h/m" */
    std::string summary() const;

    /** The full metrics snapshot as a JSON object (see RunMetrics) —
     *  what the figure benches write behind --metrics. */
    std::string metricsJson() const;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_SWEEP_REPORT_HPP
