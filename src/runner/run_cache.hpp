/**
 * @file
 * RunCache — memoization of priced simulation runs.
 *
 * The figure harnesses and the test-suite pipelines repeatedly price the
 * same operating point: Scenario I and Scenario II both start from the
 * identical nominal-V/f profiling pass, the Scenario II frequency sweep
 * re-visits the nominal point, and back-to-back figure benches share whole
 * sweeps. A simulation is a pure function of (workload, thread count,
 * problem scale, Vdd, frequency), so its Measurement can be cached on that
 * key and replayed instead of re-simulated.
 *
 * The cache is thread-safe: the sweep runner shares one RunCache across
 * all worker Experiments. Lookups and insertions take a mutex; the
 * simulation itself runs outside the lock, so two workers may race to
 * compute the same point — both produce bit-identical Measurements (the
 * simulator is deterministic), and whichever inserts first wins.
 *
 * The cache is also the integrity choke point of the fault-tolerance
 * layer: only admissible (all-finite) Measurements are ever stored, so a
 * poisoned result can neither be replayed to later sweep points nor
 * persisted to a journal. An optional insert observer is notified of each
 * first insertion (outside the lock) — the sweep journal hangs off it.
 */

#ifndef TLP_RUNNER_RUN_CACHE_HPP
#define TLP_RUNNER_RUN_CACHE_HPP

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <tuple>

#include "runner/experiment.hpp"

namespace tlp::runner {

/**
 * Canonical integer grid for the floating-point cache-key fields.
 *
 * Bisection midpoints and budget-search frequencies are *recomputed* on
 * resume and on different worker interleavings; a last-ulp difference in
 * `lo + (hi - lo) / 2` must not turn a cache hit into a fresh simulation.
 * Quantizing to physically meaningless resolutions (1 uV, 1 Hz, 1e-9 of
 * problem scale) before comparison makes the key identity robust to such
 * drift while keeping every deliberately distinct operating point
 * distinct.
 */
inline std::int64_t quantizeVdd(double vdd)
{
    return std::llround(vdd * 1e6); // 1 uV grid
}

inline std::int64_t quantizeFreq(double freq_hz)
{
    return std::llround(freq_hz); // 1 Hz grid
}

inline std::int64_t quantizeScale(double scale)
{
    return std::llround(scale * 1e9); // 1e-9 grid
}

/** Identity of a simulation run: everything its Measurement depends on. */
struct RunKey
{
    std::string workload; ///< workload name (workloads::WorkloadInfo::name)
    int n = 0;            ///< thread / core count
    double scale = 0.0;   ///< problem-size scale
    double vdd = 0.0;     ///< supply voltage [V]
    double freq_hz = 0.0; ///< chip frequency [Hz]

    /** Ordering compares the quantized FP fields, so keys differing only
     *  in the last ulps of vdd/freq/scale are the *same* cache entry. */
    friend bool operator<(const RunKey& a, const RunKey& b)
    {
        if (a.workload != b.workload)
            return a.workload < b.workload;
        return std::make_tuple(a.n, quantizeScale(a.scale),
                               quantizeVdd(a.vdd),
                               quantizeFreq(a.freq_hz)) <
               std::make_tuple(b.n, quantizeScale(b.scale),
                               quantizeVdd(b.vdd),
                               quantizeFreq(b.freq_hz));
    }
};

/** Thread-safe Measurement memoization keyed on RunKey. */
class RunCache
{
  public:
    /** Called after each first insertion, outside the cache lock. */
    using InsertObserver =
        std::function<void(const RunKey&, const Measurement&)>;

    /** True when every double field of @p m is finite: the only
     *  Measurements the cache will store or a journal will persist. */
    static bool admissible(const Measurement& m);

    /** The cached Measurement for @p key, or nullopt. Counts hit/miss. */
    std::optional<Measurement> find(const RunKey& key) const;

    /** True when @p key is cached. Unlike find(), does NOT count a hit
     *  or miss — this is the scheduler's cost probe (cheap vs expensive
     *  task classification), and a probe must not distort the cache
     *  accounting the perf guard enforces. */
    bool contains(const RunKey& key) const;

    /**
     * Record @p m for @p key (first writer wins on a race). Returns true
     * when @p m was newly stored; inadmissible Measurements are rejected
     * with a warning so a poisoned value is recomputed, never replayed.
     */
    bool insert(const RunKey& key, const Measurement& m);

    /** Observe first insertions (e.g. to journal them). Pass an empty
     *  function to detach. Not synchronized against concurrent insert();
     *  set it before handing the cache to workers. */
    void setInsertObserver(InsertObserver observer);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;
    void clear();

    /**
     * Visit every entry in key order (the map's canonical quantized
     * ordering), under the cache lock — @p fn must not call back into
     * the cache. Compaction uses this to rewrite a store generation as
     * the deduplicated, sorted image of the replayed journal.
     */
    void forEach(const std::function<void(const RunKey&,
                                          const Measurement&)>& fn) const;

  private:
    mutable std::mutex mutex_;
    std::map<RunKey, Measurement> entries_;
    InsertObserver observer_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace tlp::runner

#endif // TLP_RUNNER_RUN_CACHE_HPP
