#include "runner/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "runner/fault_injection.hpp"
#include "runner/raw_run_cache.hpp"
#include "runner/run_cache.hpp"
#include "thermal/rc_model.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"
#include "util/units.hpp"
#include "util/watchdog.hpp"

namespace tlp::runner {

namespace {

power::CmpGeometry
geometryFrom(const sim::CmpConfig& config)
{
    power::CmpGeometry g;
    g.n_cores = config.n_cores;
    g.l1i = {config.l1_size_bytes, config.l1_line_bytes, config.l1_assoc,
             1};
    g.l1d = {config.l1_size_bytes, config.l1_line_bytes, config.l1_assoc,
             2};
    g.l2 = {config.l2_size_bytes, config.l2_line_bytes, config.l2_assoc,
            1};
    return g;
}

/** Validate @p config before any simulator state is built from it. */
const sim::CmpConfig&
validated(const sim::CmpConfig& config)
{
    config.validate();
    return config;
}

/** "vdd=1.1 V f=3.2e+09 Hz" — the operating-point frame every
 *  measurement error carries in its context chain. */
std::string
operatingPoint(double vdd, double freq_hz)
{
    return util::strcatMsg("vdd=", vdd, " V f=", freq_hz, " Hz");
}

/**
 * Reject a Measurement with any non-finite field: a NaN admitted here
 * would silently propagate through speedup/power normalizations into the
 * figure tables. Names the first offending field.
 */
util::Expected<Measurement>
checkFinite(const Measurement& m)
{
    const std::pair<const char*, double> fields[] = {
        {"seconds", m.seconds},
        {"freq_hz", m.freq_hz},
        {"vdd", m.vdd},
        {"dynamic_w", m.dynamic_w},
        {"static_w", m.static_w},
        {"total_w", m.total_w},
        {"avg_core_temp_c", m.avg_core_temp_c},
        {"core_power_density_w_m2", m.core_power_density_w_m2},
    };
    for (const auto& [name, value] : fields) {
        if (!std::isfinite(value)) {
            return util::Error{
                util::ErrorCode::NonFinite,
                util::strcatMsg("Measurement field '", name,
                                "' is non-finite (", value, ")")};
        }
    }
    return m;
}

/** Busy-wait (politely) until the per-point watchdog fires — the stall
 *  fault. A safety valve aborts after ~5 s when no deadline is armed, so
 *  a misconfigured stall fault cannot hang a sweep forever. */
[[noreturn]] void
stallUntilWatchdog()
{
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        util::checkPointDeadline("injected stall fault");
        if (!util::pointDeadlineArmed() &&
            std::chrono::steady_clock::now() - start >
                std::chrono::seconds(5)) {
            util::fatal("injected stall fault ran 5 s with no point "
                        "deadline armed; set --point-timeout when using "
                        "stall faults");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

} // namespace

Experiment::Experiment(double scale, sim::CmpConfig config,
                       RawRunCache* raw_cache)
    : scale_(scale), tech_(tech::tech65nm()), cmp_(validated(config)),
      power_model_(tech_, geometryFrom(config)),
      vf_(tech::pentiumMLike(tech_)),
      thermal_(power_model_.floorplan(), thermal::RCParams{}),
      raw_cache_(raw_cache)
{
    if (!std::isfinite(scale_) || !(scale_ > 0.0) || scale_ > 1.0) {
        util::fatal(util::strcatMsg(
            "Experiment: workload scale must be in (0, 1], got ", scale_));
    }
    validateVfTable();

    // §3.3 calibration. Step 1: microbenchmark at nominal V/f on one core.
    // A shared raw cache dedupes this across a fleet of worker
    // Experiments: every worker runs the same deterministic virus, so
    // the first one to simulate it pays for all.
    const RawRunKey virus_key{"__power_virus", 1, scale_,
                              tech_.fNominal()};
    std::shared_ptr<const sim::RunResult> run_ptr;
    if (raw_cache_)
        run_ptr = raw_cache_->find(virus_key);
    if (!run_ptr) {
        TLPPM_TRACE_SCOPE("sim", "calibrate:power-virus scale=", scale_);
        const sim::Program virus = workloads::makePowerVirus(1, scale_);
        sim_calls_.fetch_add(1, std::memory_order_relaxed);
        run_ptr = std::make_shared<const sim::RunResult>(
            cmp_.run(virus, tech_.fNominal()));
        sim_events_.fetch_add(run_ptr->events, std::memory_order_relaxed);
        recordRunTelemetry(*run_ptr);
        if (raw_cache_)
            run_ptr = raw_cache_->insert(virus_key, run_ptr);
    }
    const sim::RunResult& run = *run_ptr;
    const std::vector<double> raw = power_model_.rawDynamicPower(
        run.stats, run.cycles, 1, tech_.vddNominal(), tech_.fNominal());

    const auto& plan = power_model_.floorplan();
    double raw_core0 = 0.0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (plan.blocks()[i].core_id == 0)
            raw_core0 += raw[i];
    }
    // Step 2: renormalize the activity model against the maximum
    // operational dynamic power.
    power_model_.calibrate(raw_core0);

    // Step 3: anchor the thermal package: the fully loaded core 0
    // (dynamic + hot static) sits at 100 C on average.
    std::vector<double> hot_map =
        power_model_.dynamicPower(run.stats, run.cycles, 1,
                                  tech_.vddNominal(), tech_.fNominal());
    const std::vector<double> temps_hot(plan.size(), tech_.tHotC());
    const std::vector<double> static_hot = power_model_.staticPower(
        temps_hot, hot_map, 1, tech_.vddNominal(), tech_.fNominal());
    for (std::size_t i = 0; i < hot_map.size(); ++i)
        hot_map[i] += static_hot[i];

    thermal::calibratePackage(
        thermal_, hot_map,
        [&plan](const thermal::ThermalSolution& sol) {
            double area = 0.0;
            double temp_area = 0.0;
            for (std::size_t i = 0; i < plan.size(); ++i) {
                if (plan.blocks()[i].core_id == 0) {
                    area += plan.blocks()[i].area();
                    temp_area += sol.block_temps_c[i] *
                        plan.blocks()[i].area();
                }
            }
            return temp_area / area;
        },
        tech_.tHotC());

    // The Scenario II budget: total chip power of the maxed single core.
    max_core_power_w_ =
        priceRun(run, tech_.vddNominal()).total_w;
}

void
Experiment::validateVfTable() const
{
    const auto& points = vf_.points();
    if (points.empty())
        util::fatal("Experiment: V/f table has no operating points");
    const double v_lo = tech_.vMin() - 1e-6;
    const double v_hi = tech_.vddNominal() + 1e-6;
    for (const auto& [f, v] : points) {
        if (!std::isfinite(f) || !(f > 0.0)) {
            util::fatal(util::strcatMsg(
                "Experiment: V/f table frequency must be positive and "
                "finite, got ", f, " Hz"));
        }
        if (!std::isfinite(v) || v < v_lo || v > v_hi) {
            util::fatal(util::strcatMsg(
                "Experiment: V/f table voltage ", v, " V at ", f,
                " Hz is outside the technology envelope [", tech_.vMin(),
                ", ", tech_.vddNominal(), "] V"));
        }
    }
    if (vf_.fMax() > tech_.fNominal() * (1.0 + 1e-9)) {
        util::fatal(util::strcatMsg(
            "Experiment: V/f table fMax ", vf_.fMax(),
            " Hz exceeds the nominal frequency ", tech_.fNominal(),
            " Hz (overclocked entries are not modeled)"));
    }
}

void
Experiment::recordRunTelemetry(const sim::RunResult& run) const
{
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    if (core_cycle_totals_.size() < run.core_cycles.size())
        core_cycle_totals_.resize(run.core_cycles.size());
    for (std::size_t i = 0; i < run.core_cycles.size(); ++i) {
        core_cycle_totals_[i].busy += run.core_cycles[i].busy;
        core_cycle_totals_[i].stall_mem += run.core_cycles[i].stall_mem;
        core_cycle_totals_[i].stall_sync += run.core_cycles[i].stall_sync;
    }
    queue_high_water_ = std::max(queue_high_water_, run.queue_high_water);
}

std::vector<sim::CoreCycleBreakdown>
Experiment::coreCycleTotals() const
{
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    return core_cycle_totals_;
}

std::uint64_t
Experiment::queueHighWater() const
{
    std::lock_guard<std::mutex> lock(telemetry_mutex_);
    return queue_high_water_;
}

namespace {

/** Fixed-point tolerance of the pricing ladder [K]. */
constexpr double kPriceTolC = 0.01;

/** Heavy-damping tail rungs of the pricing retry ladder. */
struct PriceRung
{
    int max_iter;
    double damping;
};
constexpr PriceRung kDampedTail[] = {
    {300, 0.4},
    {1000, 0.2},
};

} // namespace

util::Expected<Measurement>
Experiment::tryPriceRun(const sim::RunResult& run, double vdd) const
{
    price_calls_.fetch_add(1, std::memory_order_relaxed);
    TLPPM_TRACE_SCOPE("thermal", "price n=", run.n_threads,
                      " vdd=", vdd, " f=", run.freq_hz * 1e-9, "GHz");
    const int n_active = run.n_threads;

    const std::vector<double> dynamic = power_model_.dynamicPower(
        run.stats, run.cycles, n_active, vdd, run.freq_hz);

    const auto power_of_temp = [&](const std::vector<double>& temps) {
        std::vector<double> total = power_model_.staticPower(
            temps, dynamic, n_active, vdd, run.freq_hz);
        for (std::size_t i = 0; i < total.size(); ++i)
            total[i] += dynamic[i];
        return total;
    };

    // Rung 1 of the retry ladder: the historical damped default.
    // Converging points must take the exact same iteration trajectory
    // as before, keeping the figure tables byte-identical; the rescue
    // rungs live in finishPricing().
    thermal::CoupledResult coupled = thermal::solveCoupled(
        thermal_, power_of_temp, coupled_scratch_, kPriceTolC, 100, 0.7);
    return finishPricing(run, vdd, dynamic, std::move(coupled));
}

std::vector<util::Expected<Measurement>>
Experiment::tryPriceBatch(const sim::RunResult& run,
                          const std::vector<double>& vdds) const
{
    const std::size_t n_points = vdds.size();
    std::vector<util::Expected<Measurement>> out;
    out.reserve(n_points);
    if (n_points == 0)
        return out;
    price_calls_.fetch_add(n_points, std::memory_order_relaxed);
    TLPPM_TRACE_SCOPE("thermal", "priceBatch n=", run.n_threads,
                      " points=", n_points,
                      " f=", run.freq_hz * 1e-9, "GHz");
    const int n_active = run.n_threads;

    // SoA pricing state: per-point dynamic maps computed once, the
    // leakage kernel below re-evaluated per fixed-point iteration as a
    // contiguous pass over the blocks.
    std::vector<std::vector<double>> dynamic(n_points);
    for (std::size_t p = 0; p < n_points; ++p) {
        dynamic[p] = power_model_.dynamicPower(
            run.stats, run.cycles, n_active, vdds[p], run.freq_hz);
    }
    const thermal::BatchPowerFn power_of_temp =
        [&](std::size_t p, const std::vector<double>& temps,
            std::vector<double>& power) {
            power_model_.staticPowerInto(temps, dynamic[p], n_active,
                                         vdds[p], run.freq_hz, power);
            const std::vector<double>& dyn = dynamic[p];
            for (std::size_t i = 0; i < power.size(); ++i)
                power[i] += dyn[i];
        };

    // Lockstep rung 1 across the grid: one multi-RHS thermal solve per
    // iteration, per-point arithmetic identical to the scalar rung.
    std::vector<thermal::CoupledResult> coupled =
        thermal::solveCoupledBatch(thermal_, n_points, power_of_temp,
                                   batch_scratch_, kPriceTolC, 100, 0.7);
    for (std::size_t p = 0; p < n_points; ++p) {
        out.push_back(finishPricing(run, vdds[p], dynamic[p],
                                    std::move(coupled[p])));
    }
    return out;
}

std::vector<Measurement>
Experiment::priceBatch(const sim::RunResult& run,
                       const std::vector<double>& vdds) const
{
    auto priced = tryPriceBatch(run, vdds);
    std::vector<Measurement> out;
    out.reserve(priced.size());
    for (auto& m : priced) {
        if (!m)
            util::fatal(m.error().describe());
        out.push_back(std::move(m.value()));
    }
    return out;
}

util::Expected<Measurement>
Experiment::finishPricing(const sim::RunResult& run, double vdd,
                          const std::vector<double>& dynamic,
                          thermal::CoupledResult coupled) const
{
    const int n_active = run.n_threads;
    const auto& plan = power_model_.floorplan();

    const auto power_of_temp = [&](const std::vector<double>& temps) {
        std::vector<double> total = power_model_.staticPower(
            temps, dynamic, n_active, vdd, run.freq_hz);
        for (std::size_t i = 0; i < total.size(); ++i)
            total[i] += dynamic[i];
        return total;
    };

    // Fixed-point retry ladder, rungs 2+. Rung 2 is the Anderson-
    // accelerated variant, which rescues most oscillating points near
    // the leakage knee in far fewer iterations than heavy damping. The
    // remaining damped rungs trade iterations for stability as the last
    // resort. Runaway points exit the ladder — their clamped result is
    // the answer.
    int attempts = 1;
    if (!coupled.converged && !coupled.runaway) {
        ++attempts;
        coupled = thermal::solveCoupledAccelerated(thermal_, power_of_temp,
                                                   kPriceTolC, 100);
    }
    for (const PriceRung& rung : kDampedTail) {
        if (coupled.converged || coupled.runaway)
            break;
        ++attempts;
        coupled = thermal::solveCoupled(thermal_, power_of_temp,
                                        coupled_scratch_, kPriceTolC,
                                        rung.max_iter, rung.damping);
    }
    // Rung accounting for the observability layer: which rung this
    // pricing pass ended on (a non-converged pass still charged the
    // heavy-damping tail, so it counts as a fallback).
    if (attempts == 1) {
        thermal_damped_.fetch_add(1, std::memory_order_relaxed);
    } else if (attempts == 2) {
        thermal_accelerated_.fetch_add(1, std::memory_order_relaxed);
        util::traceInstant("thermal", "accelerated-rescue vdd=", vdd,
                           " f=", run.freq_hz * 1e-9, "GHz");
    } else {
        thermal_fallback_.fetch_add(1, std::memory_order_relaxed);
        util::traceInstant("thermal", "fallback-rescue attempts=",
                           attempts, " vdd=", vdd, " f=",
                           run.freq_hz * 1e-9, "GHz");
    }
    if (!coupled.converged && !coupled.runaway) {
        return util::Error{
            util::ErrorCode::NoConvergence,
            util::strcatMsg(
                "thermal fixed point did not converge after ", attempts,
                " attempts (last: ", coupled.iterations,
                " iterations, residual ", coupled.residual_c,
                " C > tol ", kPriceTolC, " C)")}
            .withContext(operatingPoint(vdd, run.freq_hz));
    }

    Measurement m;
    m.cycles = run.cycles;
    m.seconds = run.seconds;
    m.freq_hz = run.freq_hz;
    m.vdd = vdd;
    m.instructions = run.instructions;

    double dyn_total = 0.0;
    for (double w : dynamic)
        dyn_total += w;
    m.dynamic_w = dyn_total;
    m.total_w = coupled.total_power;
    m.static_w = m.total_w - m.dynamic_w;

    double core_area = 0.0;
    double core_power = 0.0;
    double temp_area = 0.0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const thermal::Block& b = plan.blocks()[i];
        if (b.core_id < 0 || b.core_id >= n_active)
            continue;
        core_area += b.area();
        core_power += coupled.block_power[i];
        temp_area += coupled.thermal.block_temps_c[i] * b.area();
    }
    m.avg_core_temp_c =
        core_area > 0.0 ? temp_area / core_area : 0.0;
    m.core_power_density_w_m2 =
        core_area > 0.0 ? core_power / core_area : 0.0;
    m.runaway = coupled.runaway;
    return checkFinite(m);
}

Measurement
Experiment::priceRun(const sim::RunResult& run, double vdd) const
{
    auto priced = tryPriceRun(run, vdd);
    if (!priced)
        util::fatal(priced.error().describe());
    return priced.value();
}

util::Expected<Measurement>
Experiment::tryMeasure(const sim::Program& program, double vdd,
                       double freq_hz) const
{
    try {
        sim_calls_.fetch_add(1, std::memory_order_relaxed);
        const sim::RunResult run = cmp_.run(program, freq_hz);
        sim_events_.fetch_add(run.events, std::memory_order_relaxed);
        recordRunTelemetry(run);
        auto priced = tryPriceRun(run, vdd);
        if (!priced) {
            return std::move(priced.error())
                .withContext("Experiment::tryMeasure");
        }
        return priced;
    } catch (const util::TimeoutError& e) {
        return util::Error{util::ErrorCode::Timeout, e.what()}
            .withContext(operatingPoint(vdd, freq_hz))
            .withContext("Experiment::tryMeasure");
    } catch (const util::FatalError& e) {
        return util::Error{util::ErrorCode::SimulationError, e.what()}
            .withContext(operatingPoint(vdd, freq_hz))
            .withContext("Experiment::tryMeasure");
    }
}

Measurement
Experiment::measure(const sim::Program& program, double vdd,
                    double freq_hz) const
{
    auto m = tryMeasure(program, vdd, freq_hz);
    if (!m)
        util::fatal(m.error().describe());
    return m.value();
}

util::Expected<std::shared_ptr<const sim::RunResult>>
Experiment::trySimulateApp(const workloads::WorkloadInfo& app, int n,
                           double freq_hz) const
{
    // key(), not name: a trace-backed workload caches under its
    // content-CRC identity so an edited trace can never hit stale runs.
    const RawRunKey key{app.key(), n, scale_, freq_hz};
    if (raw_cache_) {
        if (std::shared_ptr<const sim::RunResult> cached =
                raw_cache_->find(key)) {
            util::traceInstant("cache", "raw-hit:", app.name, " n=", n,
                               " f=", freq_hz * 1e-9, "GHz");
            return cached;
        }
    }
    try {
        TLPPM_TRACE_SCOPE("runner", "simulate:", app.name, " n=", n,
                          " f=", freq_hz * 1e-9, "GHz");
        sim_calls_.fetch_add(1, std::memory_order_relaxed);
        std::shared_ptr<const sim::RunResult> run =
            std::make_shared<const sim::RunResult>(
                cmp_.run(app.make(n, scale_), freq_hz));
        sim_events_.fetch_add(run->events, std::memory_order_relaxed);
        recordRunTelemetry(*run);
        if (raw_cache_)
            run = raw_cache_->insert(key, std::move(run));
        return run;
    } catch (const util::TimeoutError& e) {
        return util::Error{util::ErrorCode::Timeout, e.what()}
            .withContext(util::strcatMsg("f=", freq_hz, " Hz"))
            .withContext("Experiment::trySimulateApp");
    } catch (const util::FatalError& e) {
        return util::Error{util::ErrorCode::SimulationError, e.what()}
            .withContext(util::strcatMsg("f=", freq_hz, " Hz"))
            .withContext("Experiment::trySimulateApp");
    }
}

util::Expected<Measurement>
Experiment::tryMeasureApp(const workloads::WorkloadInfo& app, int n,
                          double vdd, double freq_hz) const
{
    TLPPM_TRACE_SCOPE("runner", "measure:", app.name, " n=", n,
                      " vdd=", vdd, " f=", freq_hz * 1e-9, "GHz");
    const RunKey key{app.key(), n, scale_, vdd, freq_hz};
    if (cache_) {
        if (std::optional<Measurement> cached = cache_->find(key)) {
            util::traceInstant("cache", "priced-hit:", app.name, " n=", n,
                               " vdd=", vdd);
            return *cached;
        }
    }

    // A priced-cache miss is a real measurement: the fault-injection hook
    // counts it and may turn it into a deliberate failure. The hook fires
    // before the raw-cache lookup so the fault plans of the test suite
    // keep their measurement ordinals regardless of how many simulations
    // the raw level elides.
    FaultInjector& injector = FaultInjector::instance();
    injector.installFromEnv();
    bool poison = false;
    switch (injector.onMeasure(app.name, n)) {
    case FaultKind::None:
        break;
    case FaultKind::Nan:
        poison = true; // price the run, then corrupt it (guard path)
        break;
    case FaultKind::Throw:
        throw util::FatalError(util::strcatMsg(
            "injected fault: throw at ", app.name, " n=", n));
    case FaultKind::Stall:
        stallUntilWatchdog();
    case FaultKind::Kill:
        throw FaultKillError(util::strcatMsg(
            "injected fault: kill at ", app.name, " n=", n));
    }

    // Split pipeline: the voltage-independent simulation (raw-cache
    // aware), then the cheap pricing pass at this vdd.
    auto run = trySimulateApp(app, n, freq_hz);
    if (!run) {
        return std::move(run.error())
            .withContext(operatingPoint(vdd, freq_hz))
            .withContext(util::strcatMsg(app.name, " n=", n));
    }
    // Pricing goes through the batched kernel (a batch of one is
    // bit-identical to the scalar path), so every scenario row and
    // binary-search probe exercises the same code the grid scans do.
    auto priced_batch = tryPriceBatch(*run.value(), {vdd});
    auto& measured = priced_batch.front();
    if (!measured) {
        return std::move(measured.error())
            .withContext(util::strcatMsg(app.name, " n=", n));
    }
    if (poison) {
        Measurement bad = measured.value();
        bad.total_w = std::numeric_limits<double>::quiet_NaN();
        auto guarded = checkFinite(bad);
        return std::move(guarded.error())
            .withContext(util::strcatMsg("injected fault: nan at ",
                                         app.name, " n=", n));
    }
    if (cache_)
        cache_->insert(key, measured.value());
    return measured;
}

Measurement
Experiment::measureApp(const workloads::WorkloadInfo& app, int n,
                       double vdd, double freq_hz) const
{
    auto m = tryMeasureApp(app, n, vdd, freq_hz);
    if (!m)
        util::fatal(m.error().describe());
    return m.value();
}

std::vector<double>
Experiment::defaultFrequencyGrid() const
{
    // Paper grid: 200 MHz .. 3.0 GHz in steps (we use 400 MHz steps to
    // bound simulation time) plus the nominal point.
    const double f1 = tech_.fNominal();
    std::vector<double> freqs_hz;
    for (double f = util::mhz(200); f < f1; f += util::mhz(400))
        freqs_hz.push_back(f);
    freqs_hz.push_back(f1);
    return freqs_hz;
}

Scenario1Row
Experiment::scenario1Row(const workloads::WorkloadInfo& app, int n,
                         const Measurement& base,
                         const Measurement& nominal_n) const
{
    const double f1 = tech_.fNominal();
    const double v1 = tech_.vddNominal();

    Scenario1Row row;
    row.n = n;
    row.eps_n = static_cast<double>(base.cycles) /
        (static_cast<double>(n) * nominal_n.cycles);

    if (n == 1) {
        row.freq_hz = f1;
        row.vdd = v1;
        row.measurement = base;
        row.actual_speedup = 1.0;
        row.normalized_power = 1.0;
        row.normalized_density = 1.0;
        row.avg_temp_c = base.avg_core_temp_c;
        return row;
    }

    // Eq. 7 frequency target; overclocking beyond f1 is not allowed,
    // and the V/f table bounds the lowest reachable frequency.
    double f_target = f1 / (n * row.eps_n);
    f_target = std::clamp(f_target, vf_.fMin(), f1);
    const double vdd = vf_.voltageFor(f_target);

    row.freq_hz = f_target;
    row.vdd = vdd;
    row.measurement = measureApp(app, n, vdd, f_target);
    row.actual_speedup = base.seconds / row.measurement.seconds;
    row.normalized_power = row.measurement.total_w / base.total_w;
    row.normalized_density =
        row.measurement.core_power_density_w_m2 /
        base.core_power_density_w_m2;
    row.avg_temp_c = row.measurement.avg_core_temp_c;
    return row;
}

std::vector<Scenario1Row>
Experiment::scenario1(const workloads::WorkloadInfo& app,
                      const std::vector<int>& ns) const
{
    const double f1 = tech_.fNominal();
    const double v1 = tech_.vddNominal();

    // Profiling pass: nominal V/f for every N.
    std::vector<Measurement> nominal;
    nominal.reserve(ns.size());
    for (int n : ns)
        nominal.push_back(measureApp(app, n, v1, f1));
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario1: core-count list must start at 1");
    const Measurement& base = nominal.front();

    std::vector<Scenario1Row> rows;
    rows.reserve(ns.size());
    for (std::size_t i = 0; i < ns.size(); ++i)
        rows.push_back(scenario1Row(app, ns[i], base, nominal[i]));
    return rows;
}

Scenario2Row
Experiment::scenario2Row(const workloads::WorkloadInfo& app, int n,
                         const Measurement& base,
                         const Measurement& nominal_n,
                         const std::vector<double>& freqs_hz,
                         double budget_w) const
{
    if (budget_w <= 0.0)
        util::fatal("scenario2Row: budget must be resolved and positive");
    const double f1 = tech_.fNominal();
    const double budget = budget_w;

    Scenario2Row row;
    row.n = n;
    row.nominal_speedup = base.seconds / nominal_n.seconds;

    if (freqs_hz.empty()) {
        // No operating points to try: infeasible row, as the (empty)
        // ascending sweep always reported.
        row.actual_speedup = 0.0;
        return row;
    }

    const auto probe = [&](double f) {
        return f == f1 ? nominal_n
                       : measureApp(app, n, vf_.voltageFor(f), f);
    };
    const auto withinBudget = [&](const Measurement& m) {
        return m.total_w <= budget && !m.runaway;
    };

    // Total power grows monotonically with frequency (the V/f table
    // raises Vdd alongside f), so the feasible prefix of the ascending
    // grid ends at a single frontier. Probe the top first — the common
    // unconstrained case costs zero intermediate measurements — else
    // binary-search the grid for the frontier pair (largest feasible
    // point, first infeasible point). This lands on the exact bracket
    // the historical linear scan refined, so the interpolation below is
    // unchanged, with O(log grid) instead of O(grid) measurements.
    double best_f = 0.0;
    bool blown = false;
    const std::size_t last = freqs_hz.size() - 1;
    const Measurement top = probe(freqs_hz[last]);
    if (withinBudget(top)) {
        best_f = freqs_hz[last];
    } else {
        blown = true;
        std::size_t hi = last;
        Measurement hi_m = top;
        std::size_t lo = 0;
        Measurement lo_m;
        bool has_lo = false;
        while (hi > (has_lo ? lo + 1 : 0)) {
            const std::size_t mid = has_lo ? lo + (hi - lo) / 2 : hi / 2;
            const Measurement mm = probe(freqs_hz[mid]);
            if (withinBudget(mm)) {
                lo = mid;
                lo_m = mm;
                has_lo = true;
            } else {
                hi = mid;
                hi_m = mm;
            }
        }
        if (has_lo) {
            // Refine the budget frontier inside [lo_f, hi_f]. The
            // paper interpolates linearly between the two profiled
            // points; with the leakage-thermal feedback the upper
            // point can be a runaway, so bisect with real
            // measurements first and interpolate within the final
            // bracket.
            double lo_f = freqs_hz[lo], lo_p = lo_m.total_w;
            double hi_f = freqs_hz[hi], hi_p = hi_m.total_w;
            bool hi_runaway = hi_m.runaway;
            for (int step = 0; step < 3; ++step) {
                const double mid = 0.5 * (lo_f + hi_f);
                const Measurement mm =
                    measureApp(app, n, vf_.voltageFor(mid), mid);
                if (withinBudget(mm)) {
                    lo_f = mid;
                    lo_p = mm.total_w;
                } else {
                    hi_f = mid;
                    hi_p = mm.total_w;
                    hi_runaway = mm.runaway;
                }
            }
            best_f = lo_f;
            if (!hi_runaway && hi_p > lo_p) {
                best_f = lo_f +
                    (budget - lo_p) / (hi_p - lo_p) * (hi_f - lo_f);
            }
        }
        // else: even the lowest grid point blows the budget — best_f
        // stays 0 and the row reports infeasible below.
    }

    if (best_f <= 0.0) {
        // Even the lowest operating point exceeds the budget.
        row.actual_speedup = 0.0;
        return row;
    }

    row.at_nominal = !blown && best_f >= f1;
    row.freq_hz = best_f;
    row.vdd = vf_.voltageFor(best_f);

    // Validation run at the chosen operating point.
    const Measurement final_m = best_f == f1
        ? nominal_n
        : measureApp(app, n, row.vdd, best_f);
    row.power_w = final_m.total_w;
    row.actual_speedup = base.seconds / final_m.seconds;
    return row;
}

std::vector<Scenario2Row>
Experiment::scenario2(const workloads::WorkloadInfo& app,
                      const std::vector<int>& ns,
                      std::vector<double> freqs_hz, double budget_w) const
{
    const double f1 = tech_.fNominal();
    const double v1 = tech_.vddNominal();
    const double budget =
        budget_w > 0.0 ? budget_w : max_core_power_w_;

    if (freqs_hz.empty())
        freqs_hz = defaultFrequencyGrid();
    std::sort(freqs_hz.begin(), freqs_hz.end());

    // Nominal profiling for the nominal-speedup curve.
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario2: core-count list must start at 1");
    std::vector<Measurement> nominal;
    nominal.reserve(ns.size());
    for (int n : ns)
        nominal.push_back(measureApp(app, n, v1, f1));
    const Measurement& base = nominal.front();

    std::vector<Scenario2Row> rows;
    rows.reserve(ns.size());
    for (std::size_t i = 0; i < ns.size(); ++i)
        rows.push_back(
            scenario2Row(app, ns[i], base, nominal[i], freqs_hz, budget));
    return rows;
}

} // namespace tlp::runner
