/**
 * @file
 * Append-only sweep journal: crash-safe checkpoint/resume for sweeps.
 *
 * Every first-inserted cache entry — i.e. every completed simulation — is
 * appended as one self-contained JSONL record keyed by the full RunKey
 * (workload, n, scale, vdd, freq_hz). On resume, the journal is replayed
 * into the RunCache before any simulation starts, so an interrupted sweep
 * re-simulates only the points it never finished; the rows it then emits
 * are byte-identical to an uninterrupted run because doubles are written
 * with %.17g (exact IEEE-754 round trip).
 *
 * Durability and integrity:
 *  - appends are flushed AND fsync'd every `flush_every` records, so a
 *    SIGKILL loses at most the current batch;
 *  - each line carries a CRC32 of its payload; replay skips (with a
 *    warning) any line that fails the CRC or does not parse — a torn
 *    final write after a crash degrades to "one more point to re-run",
 *    never to a poisoned cache;
 *  - only admissible Measurements reach the journal (the RunCache
 *    rejects non-finite ones before the observer fires).
 *
 * Line format (one record, no spaces in practice):
 *   {"k":{"w":"FFT","n":4,"s":…,"v":…,"f":…},
 *    "m":{"cyc":…,"sec":…,"fhz":…,"vdd":…,"dyn":…,"sta":…,"tot":…,
 *         "tmp":…,"den":…,"ins":…,"run":0},"crc":3735928559}
 * The CRC covers everything before `,"crc":`.
 */

#ifndef TLP_RUNNER_JOURNAL_HPP
#define TLP_RUNNER_JOURNAL_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "runner/run_cache.hpp"

namespace tlp::runner {

/** Outcome of replaying a journal file into a RunCache. */
struct ReplayStats
{
    std::size_t entries = 0;      ///< records restored into the cache
    std::size_t corrupt = 0;      ///< lines dropped (CRC/parse failure)
    std::size_t inadmissible = 0; ///< records the cache refused
};

/** Append-only, fsync'd, CRC-protected record of completed runs. */
class Journal
{
  public:
    /**
     * Open @p path for appending, creating it (with a header line) when
     * new or empty. @p flush_every batches the flush+fsync: 1 = maximum
     * durability (default), larger values trade loss-window for speed.
     * Throws FatalError when the file cannot be opened.
     */
    explicit Journal(std::string path, int flush_every = 1);
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /**
     * Append one completed run. Thread-safe. A short write (ENOSPC, or
     * the injected short-write store fault) is contained, not fatal: the
     * torn tail is newline-terminated before the next record so exactly
     * one record is lost (CRC-quarantined on replay), and writeErrors()
     * counts the event — the sweep re-runs that point on resume instead
     * of trusting a damaged journal.
     */
    void append(const RunKey& key, const Measurement& m);

    /** Force the current batch to disk (flush + fsync). */
    void flush();

    /** Records appended through this handle. */
    std::uint64_t appended() const;

    /** Appends that failed to reach the file intact (short writes). */
    std::uint64_t writeErrors() const;

    const std::string& path() const { return path_; }

    /**
     * Replay @p path into @p cache: parse each line, verify its CRC, and
     * insert the record. Missing file → zero stats (a fresh run with
     * --resume is not an error). Corrupt lines are skipped with a
     * warning.
     */
    static ReplayStats replayInto(const std::string& path,
                                  RunCache& cache);

    /** Serialize one record to its journal line (without newline);
     *  exposed for tests. */
    static std::string formatLine(const RunKey& key, const Measurement& m);

    /** The header line every journal file starts with (no newline);
     *  exposed so the result store's compaction can write a replayable
     *  journal-format generation file of its own. */
    static std::string headerLine();

  private:
    std::string path_;
    int flush_every_ = 1;
    std::FILE* file_ = nullptr;
    mutable std::mutex mutex_;
    std::uint64_t appended_ = 0;
    std::uint64_t write_errors_ = 0;
    bool tail_torn_ = false; ///< last append left an unterminated line
    int unflushed_ = 0;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_JOURNAL_HPP
