/**
 * @file
 * Append-only sweep journal: crash-safe checkpoint/resume for sweeps.
 *
 * Every first-inserted cache entry — i.e. every completed simulation — is
 * appended as one self-contained JSONL record keyed by the full RunKey
 * (workload, n, scale, vdd, freq_hz). On resume, the journal is replayed
 * into the RunCache before any simulation starts, so an interrupted sweep
 * re-simulates only the points it never finished; the rows it then emits
 * are byte-identical to an uninterrupted run because doubles are written
 * with %.17g (exact IEEE-754 round trip).
 *
 * Durability and integrity:
 *  - appends are flushed AND fsync'd every `flush_every` records, so a
 *    SIGKILL loses at most the current batch;
 *  - each line carries a CRC32 of its payload; replay skips (with a
 *    warning) any line that fails the CRC or does not parse — a torn
 *    final write after a crash degrades to "one more point to re-run",
 *    never to a poisoned cache;
 *  - only admissible Measurements reach the journal (the RunCache
 *    rejects non-finite ones before the observer fires).
 *
 * Line format (one record, no spaces in practice):
 *   {"k":{"w":"FFT","n":4,"s":…,"v":…,"f":…},
 *    "m":{"cyc":…,"sec":…,"fhz":…,"vdd":…,"dyn":…,"sta":…,"tot":…,
 *         "tmp":…,"den":…,"ins":…,"run":0},"crc":3735928559}
 * The CRC covers everything before `,"crc":`.
 */

#ifndef TLP_RUNNER_JOURNAL_HPP
#define TLP_RUNNER_JOURNAL_HPP

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runner/run_cache.hpp"
#include "util/error.hpp"

namespace tlp::runner {

/** Outcome of replaying a journal file into a RunCache. */
struct ReplayStats
{
    std::size_t entries = 0;      ///< records restored into the cache
    std::size_t corrupt = 0;      ///< lines dropped (CRC/parse failure)
    std::size_t inadmissible = 0; ///< records the cache refused
};

/**
 * Identity of one shard journal of a sharded sweep, written as a
 * CRC-protected metadata line right after the header. The merge tool
 * refuses to combine journals whose identities disagree (different
 * figure, scale, or shard count) or whose index set is not exactly
 * {0, …, shards-1} — a silent partial merge would render a table that
 * *looks* complete but is missing rows.
 */
struct ShardInfo
{
    std::string label;   ///< sweep/figure name ("fig3", "fig4", …)
    double scale = 0.0;  ///< problem-size scale the shard ran at
    int shards = 1;      ///< total shard count K
    int shard_index = 0; ///< this journal's shard in [0, K)
    /**
     * Comma-joined workload spec list the sweep ran over, empty for the
     * figure's default suite. Carried so a merged journal of a
     * trace-replay sweep can be re-rendered against the same workload
     * set (tlppm_merge forwards it to the renderer), and so shards of
     * sweeps over different workload sets refuse to merge. Specs must
     * not contain '"' or ',' (trace paths never do in practice).
     */
    std::string workloads = {};
};

/** Outcome of merging shard journals into one unsharded journal. */
struct MergeStats
{
    std::size_t shards = 0;     ///< shard journals combined
    std::size_t entries = 0;    ///< distinct records in the output
    std::size_t duplicates = 0; ///< cross-shard duplicates deduplicated
    std::size_t corrupt = 0;      ///< lines quarantined across shards
    std::size_t inadmissible = 0; ///< records the cache refused
    std::string label;  ///< the common sweep label from the metadata
    double scale = 0.0; ///< the common problem-size scale
    /** The common workload spec list (empty: figure default suite). */
    std::string workloads;
};

/** Append-only, fsync'd, CRC-protected record of completed runs. */
class Journal
{
  public:
    /**
     * Open @p path for appending, creating it (with a header line) when
     * new or empty. @p flush_every batches the flush+fsync: 1 = maximum
     * durability (default), larger values trade loss-window for speed.
     * Throws FatalError when the file cannot be opened.
     */
    explicit Journal(std::string path, int flush_every = 1);
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /**
     * Append one completed run. Thread-safe. A short write (ENOSPC, or
     * the injected short-write store fault) is contained, not fatal: the
     * torn tail is newline-terminated before the next record so exactly
     * one record is lost (CRC-quarantined on replay), and writeErrors()
     * counts the event — the sweep re-runs that point on resume instead
     * of trusting a damaged journal.
     */
    void append(const RunKey& key, const Measurement& m);

    /** Force the current batch to disk (flush + fsync). */
    void flush();

    /** Records appended through this handle. */
    std::uint64_t appended() const;

    /** Appends that failed to reach the file intact (short writes). */
    std::uint64_t writeErrors() const;

    const std::string& path() const { return path_; }

    /**
     * Replay @p path into @p cache: parse each line, verify its CRC, and
     * insert the record. Missing file → zero stats (a fresh run with
     * --resume is not an error). Corrupt lines are skipped with a
     * warning.
     */
    static ReplayStats replayInto(const std::string& path,
                                  RunCache& cache);

    /** Serialize one record to its journal line (without newline);
     *  exposed for tests. */
    static std::string formatLine(const RunKey& key, const Measurement& m);

    /** The header line every journal file starts with (no newline);
     *  exposed so the result store's compaction can write a replayable
     *  journal-format generation file of its own. */
    static std::string headerLine();

    /** True when the constructor found the file new/empty and wrote the
     *  header (vs reopening an existing journal to append). */
    bool createdEmpty() const { return created_empty_; }

    /**
     * Stamp this journal as shard @p info of a sharded sweep. Writes the
     * CRC-protected metadata line on a freshly created journal; a no-op
     * on a reopened one (whose existing metadata the caller must have
     * verified via readShardInfo() before reopening).
     */
    void appendShardMeta(const ShardInfo& info);

    /** Serialize a shard metadata line (without newline); exposed for
     *  tests. */
    static std::string formatShardMetaLine(const ShardInfo& info);

    /**
     * Read the shard metadata of the journal at @p path. A missing file
     * or a journal with no metadata line (an unsharded journal) yields
     * nullopt; a metadata line that fails its CRC or does not parse is a
     * CorruptData error.
     */
    static util::Expected<std::optional<ShardInfo>>
    readShardInfo(const std::string& path);

    /**
     * Merge the shard journals @p shard_paths into one unsharded journal
     * at @p out_path: validate that every input carries shard metadata
     * agreeing on (label, scale, shards) and that the shard indices are
     * exactly {0, …, shards-1} (a missing, repeated, or foreign shard is
     * a typed error, not a silently incomplete merge), then replay all
     * records into one cache (cross-shard duplicates — the shared n = 1
     * baselines — are bit-identical and deduplicate) and rewrite them in
     * canonical key order. Re-rendering the figure from the merged
     * journal with --resume reproduces the unsharded tables
     * byte-for-byte.
     */
    static util::Expected<MergeStats>
    mergeShards(const std::vector<std::string>& shard_paths,
                const std::string& out_path);

  private:
    std::string path_;
    int flush_every_ = 1;
    std::FILE* file_ = nullptr;
    mutable std::mutex mutex_;
    std::uint64_t appended_ = 0;
    std::uint64_t write_errors_ = 0;
    bool tail_torn_ = false; ///< last append left an unterminated line
    bool created_empty_ = false; ///< header written by this handle
    int unflushed_ = 0;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_JOURNAL_HPP
