#include "runner/persistent_raw_store.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string_view>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "runner/fault_injection.hpp"
#include "sim/run_result_io.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/sealed_json.hpp"
#include "util/trace.hpp"
#include "workloads/workload.hpp"

namespace tlp::runner {

namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kLockName = "LOCK";
constexpr std::string_view kRunsPrefix = "runs.g";
constexpr std::string_view kRunsSuffix = ".jsonl";

void
appendDouble(std::string& out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

/** Generation number of a `runs.g<G>.jsonl` name, or nullopt. */
std::optional<std::uint64_t>
runsGeneration(const std::string& name)
{
    if (name.rfind(kRunsPrefix, 0) != 0)
        return std::nullopt;
    if (name.size() <= kRunsPrefix.size() + kRunsSuffix.size())
        return std::nullopt;
    if (name.compare(name.size() - kRunsSuffix.size(), kRunsSuffix.size(),
                     kRunsSuffix) != 0)
        return std::nullopt;
    const std::string digits =
        name.substr(kRunsPrefix.size(),
                    name.size() - kRunsPrefix.size() - kRunsSuffix.size());
    char* end = nullptr;
    errno = 0;
    const unsigned long long g = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::uint64_t>(g);
}

std::string
runsName(std::uint64_t generation)
{
    return util::strcatMsg(std::string(kRunsPrefix), generation,
                           std::string(kRunsSuffix));
}

/** One sealed record line (no trailing newline). */
std::string
formatRecord(std::uint32_t fingerprint, const RawRunKey& key,
             const sim::RunResult& run)
{
    std::string body = "{\"tlppm_run\":1,\"fp\":";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%" PRIu32, fingerprint);
    body += buf;
    body += ",\"w\":\"";
    body += key.workload;
    body += "\",\"n\":";
    std::snprintf(buf, sizeof(buf), "%d", key.n);
    body += buf;
    body += ",\"s\":";
    appendDouble(body, key.scale);
    body += ",\"f\":";
    appendDouble(body, key.freq_hz);
    body += ",\"run\":";
    body += sim::formatRunResult(run);
    return util::sealJsonLine(std::move(body));
}

/** Parse one record line (already CRC-checked) into key + run. */
bool
parseRecord(const std::string& line, std::uint32_t& fingerprint,
            RawRunKey& key, sim::RunResult& run)
{
    std::uint64_t fp = 0, n = 0;
    if (!util::jsonFieldU64(line, "fp", fp) || fp > 0xFFFFFFFFull ||
        !util::jsonFieldString(line, "w", key.workload) ||
        !util::jsonFieldU64(line, "n", n) ||
        !util::jsonFieldDouble(line, "s", key.scale) ||
        !util::jsonFieldDouble(line, "f", key.freq_hz))
        return false;
    fingerprint = static_cast<std::uint32_t>(fp);
    key.n = static_cast<int>(n);
    const std::size_t run_pos = line.find(",\"run\":");
    const std::size_t crc_pos = line.rfind(",\"crc\":");
    if (run_pos == std::string::npos || crc_pos == std::string::npos ||
        crc_pos <= run_pos)
        return false;
    const std::size_t start = run_pos + std::strlen(",\"run\":");
    auto parsed = sim::parseRunResult(line.substr(start, crc_pos - start));
    if (!parsed)
        return false;
    run = std::move(parsed.value());
    return true;
}

} // namespace

std::uint32_t
modelFingerprint(const sim::CmpConfig& config, const tech::Technology& tech)
{
    std::string canon = "tlppm-model-v1|cmp:";
    const auto u = [&canon](std::uint64_t v) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "|", v);
        canon += buf;
    };
    const auto d = [&canon](double v) {
        appendDouble(canon, v);
        canon += '|';
    };
    u(static_cast<std::uint64_t>(config.n_cores));
    d(config.ipc_int);
    d(config.ipc_fp);
    u(config.store_buffer_entries);
    u(config.l1_size_bytes);
    u(config.l1_line_bytes);
    u(config.l1_assoc);
    u(config.l1_hit_cycles);
    u(config.l2_size_bytes);
    u(config.l2_line_bytes);
    u(config.l2_assoc);
    u(config.l2_rt_cycles);
    u(config.bus_occupancy_data);
    u(config.bus_occupancy_ctrl);
    u(config.c2c_rt_cycles);
    u(config.upgrade_rt_cycles);
    d(config.memory_rt_ns);
    u(config.barrier_release_cycles);
    u(config.lock_acquire_cycles);
    u(config.lock_handoff_cycles);
    d(config.f_nominal_hz);
    u(config.scale_memory_with_chip ? 1 : 0);
    canon += "tech:";
    const tech::Technology::Params& p = tech.params();
    canon += p.name;
    canon += '|';
    d(p.feature_nm);
    d(p.vdd_nominal);
    d(p.vth);
    d(p.v_min);
    d(p.f_nominal);
    d(p.alpha);
    d(p.core_power_hot);
    d(p.static_fraction_hot);
    d(p.t_hot_c);
    d(p.core_area_m2);
    d(p.leakage_reference.vth);
    d(p.leakage_reference.v_nominal);
    d(p.leakage_reference.subthreshold_swing_n);
    d(p.leakage_reference.dibl_eta);
    d(p.leakage_reference.vth_tc);
    d(p.leakage_reference.gate_b);
    d(p.leakage_reference.gate_fraction_nominal);
    canon += "workloads:";
    for (const workloads::WorkloadInfo& info : workloads::suite()) {
        canon += info.name;
        canon += '|';
    }
    return util::crc32(canon);
}

util::Expected<std::unique_ptr<PersistentRawStore>>
PersistentRawStore::open(const std::string& dir, std::uint32_t fingerprint,
                         util::FileLock::Mode mode)
{
    TLPPM_TRACE_SCOPE("runner", "raw-store-open:", dir);
    std::unique_ptr<PersistentRawStore> store(new PersistentRawStore());
    store->dir_ = dir;
    store->fingerprint_ = fingerprint;
    store->mode_ = mode;

    if (auto made = util::ensureDir(dir); !made)
        return made.error().withContext("PersistentRawStore::open");

    // Always bid for the exclusive lock first: holding it proves no
    // other process is mid-write, which is what makes the
    // crash-leftover GC below safe — a concurrent opener's in-flight
    // MANIFEST.tmp must never be swept as a "stray". A shared opener
    // that loses the bid (another holder is live) skips the GC and
    // retries the shared acquire briefly (the winner may be holding
    // the lock exclusively for a few milliseconds of GC before
    // downgrading).
    const std::string lock_path = dir + "/" + std::string(kLockName);
    bool gc_safe = false;
    if (auto excl = store->lock_.acquire(lock_path,
                                         util::FileLock::Mode::Exclusive);
        excl.ok()) {
        gc_safe = true;
    } else if (mode == util::FileLock::Mode::Exclusive) {
        return excl.error().withContext("PersistentRawStore::open");
    } else {
        util::Expected<bool> shared = util::Error{};
        for (int attempt = 0; attempt < 200; ++attempt) {
            shared = store->lock_.acquire(lock_path, mode);
            if (shared.ok() ||
                shared.error().code != util::ErrorCode::Overloaded)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!shared)
            return shared.error().withContext("PersistentRawStore::open");
    }

    if (auto recovered = store->recoverManifest(); !recovered)
        return recovered.error().withContext("PersistentRawStore::open");

    if (gc_safe) {
        // Garbage-collect crash leftovers: stray tmp files from
        // interrupted atomic writes and orphan generations from a kill
        // inside the compaction window.
        store->tmp_swept_ = util::sweepTmpFiles(dir);
        for (const std::string& name : util::listDir(dir)) {
            const auto g = runsGeneration(name);
            if (g && *g != store->generation_) {
                util::removePath(dir + "/" + name);
                ++store->orphans_swept_;
            }
        }
        if (store->tmp_swept_ > 0 || store->orphans_swept_ > 0) {
            util::warn(util::strcatMsg(
                "raw-store: recovered '", dir, "': removed ",
                store->tmp_swept_, " stray tmp file(s) and ",
                store->orphans_swept_, " orphan generation file(s)"));
        }
        if (mode == util::FileLock::Mode::Shared) {
            if (auto down = store->lock_.downgradeToShared(); !down) {
                return down.error().withContext(
                    "PersistentRawStore::open");
            }
        }
    }

    store->load();
    util::traceInstant("runner", "raw-store-open: generation ",
                       store->generation_, ", ", store->index_.size(),
                       " record(s)");
    return store;
}

PersistentRawStore::~PersistentRawStore()
{
    if (append_fd_ >= 0)
        ::close(append_fd_);
}

std::string
PersistentRawStore::runsPath() const
{
    return dir_ + "/" + runsName(generation_);
}

util::Expected<bool>
PersistentRawStore::recoverManifest()
{
    const std::string path = dir_ + "/" + std::string(kManifestName);
    auto content = util::readFileIfExists(path);
    if (!content)
        return content.error().withContext("recoverManifest");

    if (content.value().has_value()) {
        std::string line = *content.value();
        if (!line.empty() && line.back() == '\n')
            line.pop_back();
        std::uint64_t generation = 0;
        if (util::checkSealedJsonLine(line) &&
            line.rfind("{\"tlppm_raw_store\":1", 0) == 0 &&
            util::jsonFieldU64(line, "generation", generation)) {
            generation_ = generation;
            return true;
        }
        quarantineFile(path, "manifest failed CRC/parse");
    }

    // Rebuild from the on-disk evidence: the highest generation present
    // becomes live (replay tolerates a torn tail, so the worst case is
    // re-simulating records a newer lost manifest had compacted away).
    std::uint64_t best = 0;
    for (const std::string& name : util::listDir(dir_)) {
        if (const auto g = runsGeneration(name))
            best = std::max(best, *g);
    }
    generation_ = best;
    return writeManifest(best);
}

util::Expected<bool>
PersistentRawStore::writeManifest(std::uint64_t generation)
{
    const std::string line = util::sealJsonLine(util::strcatMsg(
        "{\"tlppm_raw_store\":1,\"generation\":", generation));
    auto written = util::atomicWriteFile(
        dir_ + "/" + std::string(kManifestName), line + "\n");
    if (!written)
        return written.error().withContext("writeManifest");
    generation_ = generation;
    return true;
}

void
PersistentRawStore::quarantineFile(const std::string& path, const char* why)
{
    ++quarantined_;
    util::traceInstant("runner", "raw-store-quarantined:", path, " (", why,
                       ")");
    util::warn(util::strcatMsg("raw-store: quarantining '", path, "': ",
                               why));
    if (auto renamed = util::renamePath(path, path + ".quarantined");
        !renamed) {
        util::removePath(path);
    }
}

void
PersistentRawStore::load()
{
    const auto t0 = std::chrono::steady_clock::now();
    auto content = util::readFileIfExists(runsPath());
    if (!content) {
        util::warn(util::strcatMsg("raw-store: cannot read '", runsPath(),
                                   "': ", content.error().message,
                                   "; starting empty"));
        return;
    }
    if (!content.value().has_value())
        return; // fresh store

    std::string text = std::move(*content.value());
    // Deterministic read-path fault: flip one byte in the middle of the
    // last record's payload — inside the CRC-sealed region — exactly
    // the bit-rot the per-line CRC must catch.
    if (StoreFaultInjector::instance().shouldFault(
            StoreFaultKind::CorruptRead, "raw-load") &&
        text.size() >= 2) {
        std::size_t line_start = text.rfind('\n', text.size() - 2);
        line_start = line_start == std::string::npos ? 0 : line_start + 1;
        const std::size_t mid = line_start + (text.size() - line_start) / 2;
        text[mid] = static_cast<char>(text[mid] ^ 0x20);
    }

    std::size_t pos = 0;
    std::uint64_t corrupt = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        const bool torn = nl == std::string::npos;
        if (torn)
            nl = text.size(); // torn tail: validate what is there
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        if (!util::checkSealedJsonLine(line) ||
            line.rfind("{\"tlppm_run\":1", 0) != 0) {
            ++corrupt;
            continue;
        }
        std::uint32_t fp = 0;
        RawRunKey key;
        sim::RunResult run;
        if (!parseRecord(line, fp, key, run)) {
            ++corrupt;
            continue;
        }
        if (fp != fingerprint_) {
            ++fingerprint_rejected_;
            continue;
        }
        if (!RawRunCache::admissible(run)) {
            ++corrupt;
            continue;
        }
        // First record wins: replayed appends from racing writers are
        // identical (the simulator is deterministic), so any choice is
        // consistent; first-wins matches the journal's rule.
        auto stored =
            std::make_shared<const sim::RunResult>(std::move(run));
        if (index_.emplace(key, std::move(stored)).second)
            ++loaded_;
    }
    quarantined_ += corrupt;
    if (corrupt > 0) {
        util::warn(util::strcatMsg(
            "raw-store: skipped ", corrupt,
            " corrupt/torn record(s) in '", runsPath(),
            "'; the affected keys will recompute (compaction drops the "
            "bad lines)"));
    }
    if (fingerprint_rejected_ > 0) {
        util::warn(util::strcatMsg(
            "raw-store: ignored ", fingerprint_rejected_,
            " record(s) with a stale model fingerprint in '", runsPath(),
            "'"));
    }
    load_micros_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

std::shared_ptr<const sim::RunResult>
PersistentRawStore::fetch(const RawRunKey& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++misses_;
        return nullptr;
    }
    ++hits_;
    return it->second;
}

bool
PersistentRawStore::contains(const RawRunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(key) != index_.end();
}

bool
PersistentRawStore::ensureAppendFd()
{
    if (append_fd_ >= 0)
        return true;
    append_fd_ = ::open(runsPath().c_str(),
                        O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0664);
    if (append_fd_ < 0) {
        util::warn(util::strcatMsg("raw-store: cannot open '", runsPath(),
                                   "' for append: ",
                                   std::strerror(errno)));
        return false;
    }
    return true;
}

void
PersistentRawStore::append(const RawRunKey& key,
                           const std::shared_ptr<const sim::RunResult>& run)
{
    if (!run || !RawRunCache::admissible(*run))
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!index_.emplace(key, run).second)
        return; // already stored (loaded or appended earlier)
    if (!ensureAppendFd())
        return;
    std::string line = formatRecord(fingerprint_, key, *run);
    line += '\n';
    std::size_t to_write = line.size();
    // ENOSPC-style fault: the record tears mid-line; the next load
    // must skip it and recompute the key.
    if (StoreFaultInjector::instance().shouldFault(
            StoreFaultKind::ShortWrite, "raw-append"))
        to_write /= 2;
    // One whole-line write on an O_APPEND fd: concurrent shard
    // appenders cannot interleave bytes, and the per-line CRC catches
    // any tear a crash leaves.
    const ssize_t wrote = ::write(append_fd_, line.data(), to_write);
    if (wrote < 0 || static_cast<std::size_t>(wrote) != line.size()) {
        util::warn(util::strcatMsg(
            "raw-store: short append to '", runsPath(), "' for ",
            key.workload, " n=", key.n,
            "; the torn record will be quarantined on the next load"));
        return;
    }
    ++appends_;
}

util::Expected<RawCompactionResult>
PersistentRawStore::compact()
{
    TLPPM_TRACE_SCOPE("runner", "raw-store-compact");
    if (mode_ != util::FileLock::Mode::Exclusive) {
        return util::Error{
            util::ErrorCode::InvalidArgument,
            "raw-store compaction requires the exclusive lock mode"};
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t next = generation_ + 1;
    std::string body;
    for (const auto& [key, run] : index_) {
        body += formatRecord(fingerprint_, key, *run);
        body += '\n';
    }
    const std::string old_path = runsPath();
    auto written =
        util::atomicWriteFile(dir_ + "/" + runsName(next), body);
    if (!written)
        return written.error().withContext("compact");

    // The publish window the recovery protocol must tolerate: the new
    // generation exists on disk but the manifest still names the old
    // one. A kill here leaves an orphan that open() collects.
    if (StoreFaultInjector::instance().shouldFault(
            StoreFaultKind::KillCompaction, "raw-compaction-publish")) {
        throw FaultKillError(
            "injected kill between raw generation write and manifest "
            "publish");
    }

    if (auto flipped = writeManifest(next); !flipped)
        return flipped.error().withContext("compact");
    if (append_fd_ >= 0) {
        ::close(append_fd_);
        append_fd_ = -1; // reopens against the new generation
    }
    util::removePath(old_path);
    ++compactions_;

    RawCompactionResult result;
    result.generation = next;
    result.kept = index_.size();
    util::traceInstant("runner", "raw-store-compact: generation ", next,
                       ", kept ", result.kept);
    return result;
}

RawStoreStats
PersistentRawStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    RawStoreStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.appends = appends_;
    s.loaded = loaded_;
    s.quarantined = quarantined_;
    s.fingerprint_rejected = fingerprint_rejected_;
    s.orphans_swept = orphans_swept_;
    s.tmp_swept = tmp_swept_;
    s.compactions = compactions_;
    s.load_micros = load_micros_;
    return s;
}

std::size_t
PersistentRawStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

std::size_t
sweepRawStoreOrphans(const std::string& dir)
{
    if (!util::pathExists(dir))
        return 0;
    std::size_t removed = util::sweepTmpFiles(dir);
    const std::string manifest_path =
        dir + "/" + std::string(kManifestName);
    auto content = util::readFileIfExists(manifest_path);
    std::optional<std::uint64_t> live;
    if (content && content.value().has_value()) {
        std::string line = *content.value();
        if (!line.empty() && line.back() == '\n')
            line.pop_back();
        std::uint64_t generation = 0;
        if (util::checkSealedJsonLine(line) &&
            line.rfind("{\"tlppm_raw_store\":1", 0) == 0 &&
            util::jsonFieldU64(line, "generation", generation))
            live = generation;
    }
    if (!live)
        return removed; // no readable manifest: nothing is provably dead
    for (const std::string& name : util::listDir(dir)) {
        const auto g = runsGeneration(name);
        if (g && *g != *live && util::removePath(dir + "/" + name))
            ++removed;
    }
    return removed;
}

} // namespace tlp::runner
