/**
 * @file
 * ProgressReporter — the lightweight heartbeat of a long sweep.
 *
 * Prints "points done/total, percent, ETA, last finished point" lines to
 * stderr, throttled so even a many-thousand-point overnight sweep emits
 * a bounded trickle of lines (CI logs stay readable, terminals stay
 * responsive). Strictly an observer: it sees task keys only after the
 * task finished, never touches results, and is disabled by default —
 * enabling it cannot change a single byte of the figure tables.
 *
 * Thread-safe: worker threads report completions concurrently; one
 * mutex serializes the counter update and the (rare) print.
 */

#ifndef TLP_RUNNER_PROGRESS_HPP
#define TLP_RUNNER_PROGRESS_HPP

#include <chrono>
#include <cstddef>
#include <mutex>
#include <string>

namespace tlp::runner {

/** Heartbeat printer for sweep execution (see the file comment). */
class ProgressReporter
{
  public:
    /**
     * @param total       expected task count (ETA denominator); a sweep
     *                    that cannot know it exactly passes its upper
     *                    bound — skipped rows count as done
     * @param label       line prefix, e.g. the sweep name ("fig3")
     * @param min_period_s minimum seconds between printed lines (the
     *                    final line always prints)
     * @param replayed    tasks expected to complete near-instantly from
     *                    a journal replay (--resume). They count toward
     *                    done/total but are excluded from the ETA: the
     *                    rate is measured from the first post-replay
     *                    completion, so a resumed sweep's ETA reflects
     *                    the work actually left, not the replay blur
     */
    explicit ProgressReporter(std::size_t total,
                              std::string label = "sweep",
                              double min_period_s = 1.0,
                              std::size_t replayed = 0);

    /** Record one finished task; prints a heartbeat line when due.
     *  @p key names the point just finished ("profile FFT n=8"). */
    void taskDone(const std::string& key);

    /** ETA estimate [s] as of now (0 when unknowable or done); exposed
     *  for tests — taskDone() prints the same value. */
    double etaSeconds() const;

    /** Completed-task count so far. */
    std::size_t done() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** ETA with mutex_ already held. */
    double etaSecondsLocked(Clock::time_point now) const;

    std::string label_;
    double min_period_s_;
    mutable std::mutex mutex_;
    std::size_t total_;
    std::size_t replayed_; ///< leading completions excluded from the ETA
    std::size_t done_ = 0;
    Clock::time_point start_;
    Clock::time_point last_print_;
    /** First completion past the replayed prefix — the ETA epoch. Equal
     *  to start_ until that completion happens. */
    Clock::time_point fresh_start_;
    bool fresh_started_ = false;
    bool printed_ = false;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_PROGRESS_HPP
