/**
 * @file
 * Experiment — the end-to-end experimental pipeline of §3/§4: the
 * simulated 16-way CMP, the Wattch-style power model with microbenchmark
 * renormalization, the HotSpot-style thermal model with its 100 C anchor,
 * the Pentium-M-style V/f table, and the two evaluation scenarios.
 *
 * Construction performs the paper's calibration sequence (§3.3):
 *  1. run the compute-bound microbenchmark on one core at nominal V/f;
 *  2. renormalize the raw activity-power model so that this quasi-maximum
 *     scenario matches the technology's maximum operational dynamic power;
 *  3. calibrate the thermal package so the fully loaded single core sits
 *     at exactly 100 C (with temperature-dependent static power included).
 *
 * measure() then prices any finished simulation run: dynamic power from
 * activity counters, static power and die temperature from the coupled
 * power/temperature fixed point.
 */

#ifndef TLP_RUNNER_EXPERIMENT_HPP
#define TLP_RUNNER_EXPERIMENT_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "power/chip_power.hpp"
#include "sim/cmp.hpp"
#include "tech/technology.hpp"
#include "tech/vf_table.hpp"
#include "thermal/rc_model.hpp"
#include "util/error.hpp"
#include "workloads/workload.hpp"

namespace tlp::runner {

class RunCache;
class RawRunCache;

/** Power/thermal pricing of one simulation run. */
struct Measurement
{
    std::uint64_t cycles = 0;
    double seconds = 0.0;
    double freq_hz = 0.0;
    double vdd = 0.0;
    double dynamic_w = 0.0;       ///< renormalized chip dynamic power
    double static_w = 0.0;        ///< converged chip static power
    double total_w = 0.0;         ///< dynamic + static (includes L2)
    double avg_core_temp_c = 0.0; ///< area-weighted over active cores
    double core_power_density_w_m2 = 0.0; ///< active cores only, L2 excl.
    std::uint64_t instructions = 0;
    /** Leakage-thermal runaway: the operating point is not sustainable
     *  (temperatures clamped at the runaway cap). */
    bool runaway = false;
};

/** One row of the Scenario I evaluation (Figure 3). */
struct Scenario1Row
{
    int n = 1;
    double eps_n = 1.0;            ///< nominal parallel efficiency
    double freq_hz = 0.0;          ///< Eq. 7 target frequency
    double vdd = 0.0;              ///< from the V/f table
    double actual_speedup = 1.0;   ///< wall-clock vs sequential nominal
    double normalized_power = 1.0; ///< P_N / P_1
    double normalized_density = 1.0;
    double avg_temp_c = 0.0;
    Measurement measurement;
    /** The point could not be measured (see SweepReport::failed); every
     *  numeric field above is a placeholder. */
    bool failed = false;
    /** The row belongs to another shard of a sharded sweep and was
     *  deliberately not computed here (not a failure). */
    bool out_of_shard = false;
};

/** One row of the Scenario II evaluation (Figure 4). */
struct Scenario2Row
{
    int n = 1;
    double nominal_speedup = 1.0; ///< N * eps_n(N), no power constraint
    double actual_speedup = 1.0;  ///< best speedup within the budget
    double freq_hz = 0.0;         ///< chosen operating frequency
    double vdd = 0.0;
    double power_w = 0.0;         ///< chip power at the chosen point
    bool at_nominal = false;      ///< ran at full V/f within budget
    /** The point could not be measured (see SweepReport::failed); every
     *  numeric field above is a placeholder. */
    bool failed = false;
    /** The row belongs to another shard of a sharded sweep and was
     *  deliberately not computed here (not a failure). */
    bool out_of_shard = false;
};

/** The experimental testbed. */
class Experiment
{
  public:
    /**
     * @param scale  workload problem-size scale in (0, 1] (tests use small
     *               values; figures use 1.0)
     * @param config machine configuration (defaults to Table 1); validated
     *               up front — a bad field is a FatalError naming it and
     *               the accepted range, before any simulation runs
     */
    /**
     * @param raw_cache optional voltage-independent run cache, consulted
     *        already for the construction-time calibration microbenchmark
     *        (so a fleet of worker Experiments pays for the power-virus
     *        simulation once); also attached as by setRawRunCache()
     */
    explicit Experiment(double scale = 1.0,
                        sim::CmpConfig config = sim::CmpConfig{},
                        RawRunCache* raw_cache = nullptr);

    /** Simulate @p program on @p n_threads cores at (vdd, freq) and price
     *  the run. */
    Measurement measure(const sim::Program& program, double vdd,
                        double freq_hz) const;

    /**
     * Error-returning measure(): instead of throwing, simulation failures
     * (deadlock / event-budget FatalError), watchdog timeouts,
     * thermal-fixed-point non-convergence (after a damped retry ladder),
     * and non-finite results come back as a structured util::Error with
     * the operating point in its context chain. The sweep containment
     * layer is built on this entry point.
     */
    util::Expected<Measurement> tryMeasure(const sim::Program& program,
                                           double vdd,
                                           double freq_hz) const;

    /** Cache- and fault-injection-aware tryMeasure() for a workload
     *  operating point — the Expected counterpart of measureApp(). */
    util::Expected<Measurement>
    tryMeasureApp(const workloads::WorkloadInfo& app, int n, double vdd,
                  double freq_hz) const;

    /**
     * Cache-aware measure(): price @p app at @p n threads and (vdd, freq).
     * With a RunCache attached (setRunCache()) a previously priced
     * identical point is replayed instead of re-simulated; without one
     * this is exactly measure(app.make(n, scale), vdd, freq).
     */
    Measurement measureApp(const workloads::WorkloadInfo& app, int n,
                           double vdd, double freq_hz) const;

    /**
     * Attach (or detach, with nullptr) a Measurement memoization cache.
     * The cache may be shared across Experiments — it is thread-safe —
     * and must outlive every attached Experiment's use of measureApp().
     */
    void setRunCache(RunCache* cache) { cache_ = cache; }
    RunCache* runCache() const { return cache_; }

    /**
     * Attach (or detach) the first-level cache of voltage-independent
     * sim::RunResults. With both caches attached, re-pricing a cached run
     * at a new Vdd costs one priceRun() + thermal fixed point instead of
     * a cycle-level simulation. Same sharing/lifetime rules as the
     * RunCache.
     */
    void setRawRunCache(RawRunCache* cache) { raw_cache_ = cache; }
    RawRunCache* rawRunCache() const { return raw_cache_; }

    /**
     * The voltage-independent simulation phase of a measurement: the
     * cycle-level run of @p app at @p n threads and @p freq_hz, served
     * from the RawRunCache when one is attached. Simulation failures
     * (deadlock / event budget / watchdog timeout) come back as
     * structured errors, exactly as in tryMeasure().
     */
    util::Expected<std::shared_ptr<const sim::RunResult>>
    trySimulateApp(const workloads::WorkloadInfo& app, int n,
                   double freq_hz) const;

    /** Cycle-level simulations actually executed by this Experiment
     *  (cache hits excluded). Thread-safe, relaxed. */
    std::uint64_t simCalls() const
    {
        return sim_calls_.load(std::memory_order_relaxed);
    }

    /** Pricing passes (power + coupled thermal solve) performed by this
     *  Experiment. Thread-safe, relaxed. */
    std::uint64_t priceCalls() const
    {
        return price_calls_.load(std::memory_order_relaxed);
    }

    /** Kernel events executed across this Experiment's simulations (sum
     *  of RunResult.events over simCalls(); cache hits contribute
     *  nothing). Thread-safe, relaxed. */
    std::uint64_t simEvents() const
    {
        return sim_events_.load(std::memory_order_relaxed);
    }

    /** Pricing passes resolved by the rung-1 damped fixed point (the
     *  historical default trajectory). Thread-safe, relaxed. */
    std::uint64_t thermalDampedSolves() const
    {
        return thermal_damped_.load(std::memory_order_relaxed);
    }

    /** Pricing passes rescued by the Anderson-accelerated rung. */
    std::uint64_t thermalAcceleratedSolves() const
    {
        return thermal_accelerated_.load(std::memory_order_relaxed);
    }

    /** Pricing passes that fell through to the heavy-damping tail — the
     *  expensive last resort the perf guard keeps an eye on. */
    std::uint64_t thermalFallbackSolves() const
    {
        return thermal_fallback_.load(std::memory_order_relaxed);
    }

    /** Per-core busy/stall/sync cycle totals summed over every simulation
     *  this Experiment executed (cache hits contribute nothing); entry i
     *  is core i. Thread-safe snapshot. */
    std::vector<sim::CoreCycleBreakdown> coreCycleTotals() const;

    /** Largest event-queue high-water mark across this Experiment's
     *  simulations. Thread-safe. */
    std::uint64_t queueHighWater() const;

    /** Price an already-simulated run at supply voltage @p vdd: Wattch
     *  dynamic power from the activity counters, static power and die
     *  temperature from the coupled power/temperature fixed point. The
     *  cheap phase of the split measure() pipeline. */
    Measurement priceRun(const sim::RunResult& run, double vdd) const;

    /** Error-returning priceRun(): thermal non-convergence (after the
     *  acceleration/damping ladder) and non-finite fields come back as
     *  structured errors. */
    util::Expected<Measurement> tryPriceRun(const sim::RunResult& run,
                                            double vdd) const;

    /**
     * Batched pricing: one cached run priced at a whole voltage grid in
     * a single pass. The per-point leakage/power maps evaluate as
     * contiguous kernels sharing one thermal fixed-point workspace, and
     * each fixed-point iteration gathers every unconverged point into
     * one multi-RHS thermal solve. Point p's arithmetic is exactly
     * priceRun(run, vdds[p])'s — batching amortizes factor traversals,
     * never changes values — so entry p is byte-identical to the scalar
     * result (regression-tested at %.17g).
     *
     * Points that the lockstep rung-1 iteration cannot converge fall
     * back to the scalar rescue ladder individually, exactly as
     * priceRun() would.
     */
    std::vector<Measurement> priceBatch(const sim::RunResult& run,
                                        const std::vector<double>& vdds)
        const;

    /** Error-returning priceBatch(): entry p carries point p's error,
     *  with its operating point in the context chain. */
    std::vector<util::Expected<Measurement>>
    tryPriceBatch(const sim::RunResult& run,
                  const std::vector<double>& vdds) const;

    /**
     * Scenario I (§4.1): profile nominal efficiency, then re-run each
     * configuration at the Eq. 7 frequency and the table voltage.
     *
     * @param app workload descriptor
     * @param ns  core counts (the paper uses {1, 2, 4, 8, 16})
     */
    std::vector<Scenario1Row> scenario1(const workloads::WorkloadInfo& app,
                                        const std::vector<int>& ns) const;

    /**
     * Scenario II (§4.2): frequency-sweep profiling, linear interpolation
     * to the budget-limited operating point, and a final validation run.
     *
     * @param app       workload descriptor
     * @param ns        core counts (the paper uses 1..16)
     * @param freqs_hz  profiling grid (default: 200 MHz .. 3.2 GHz)
     * @param budget_w  power budget; <= 0 selects the paper's default,
     *                  the microbenchmark-derived single-core maximum
     */
    std::vector<Scenario2Row> scenario2(
        const workloads::WorkloadInfo& app, const std::vector<int>& ns,
        std::vector<double> freqs_hz = {}, double budget_w = 0.0) const;

    /**
     * One Scenario I row for core count @p n: Eq. 7 frequency from the
     * profiled efficiency, table voltage, re-simulation, normalization
     * against the sequential baseline. @p base is the (n = 1) nominal
     * measurement, @p nominal_n the nominal measurement at @p n. The
     * scenario1() loop is exactly a fold of this function; the sweep
     * runner fans the same calls across threads, so both paths produce
     * bit-identical rows.
     */
    Scenario1Row scenario1Row(const workloads::WorkloadInfo& app, int n,
                              const Measurement& base,
                              const Measurement& nominal_n) const;

    /**
     * One Scenario II row for core count @p n: ascending frequency sweep
     * within @p budget_w, bisection + linear interpolation at the budget
     * frontier, validation run. @p freqs_hz must be sorted ascending and
     * contain the nominal frequency; @p budget_w must be positive
     * (resolve a defaulted budget with maxSingleCorePower() first).
     */
    Scenario2Row scenario2Row(const workloads::WorkloadInfo& app, int n,
                              const Measurement& base,
                              const Measurement& nominal_n,
                              const std::vector<double>& freqs_hz,
                              double budget_w) const;

    /** The default Scenario II profiling grid (200 MHz .. nominal). */
    std::vector<double> defaultFrequencyGrid() const;

    /** Single-core maximum operational power (the Scenario II budget). */
    double maxSingleCorePower() const { return max_core_power_w_; }

    /** The Wattch->budget renormalization factor (§3.3). */
    double renormFactor() const { return power_model_.renormFactor(); }

    const tech::Technology& technology() const { return tech_; }
    const sim::Cmp& cmp() const { return cmp_; }
    const power::ChipPowerModel& powerModel() const { return power_model_; }
    const thermal::RCModel& thermalModel() const { return thermal_; }
    const tech::VfTable& vfTable() const { return vf_; }
    double workloadScale() const { return scale_; }

  private:
    void validateVfTable() const;

    /** Shared pricing epilogue: run the scalar rescue ladder on a
     *  non-converged rung-1 result, account the rung counters, and build
     *  the Measurement. @p coupled is the rung-1 fixed point's output
     *  (scalar and batched rung 1 are bit-identical per point, so both
     *  entry points share this tail verbatim). */
    util::Expected<Measurement>
    finishPricing(const sim::RunResult& run, double vdd,
                  const std::vector<double>& dynamic,
                  thermal::CoupledResult coupled) const;

    /** Fold one executed run's kernel telemetry (per-core cycle
     *  breakdown, queue high-water) into the lifetime totals. Called
     *  only on the simulate path — cache hits never double-count. */
    void recordRunTelemetry(const sim::RunResult& run) const;

    double scale_;
    tech::Technology tech_;
    sim::Cmp cmp_;
    power::ChipPowerModel power_model_;
    tech::VfTable vf_;
    thermal::RCModel thermal_;
    double max_core_power_w_ = 0.0;
    RunCache* cache_ = nullptr;        ///< optional, not owned
    RawRunCache* raw_cache_ = nullptr; ///< optional, not owned
    /** Reusable fixed-point buffers. Like the simulator's run arena, an
     *  Experiment is thread-confined (the sweep runner gives each worker
     *  its own), so a single scratch per Experiment is race-free. */
    mutable thermal::CoupledScratch coupled_scratch_;
    /** Batched fixed-point buffers for priceBatch(); thread-confined
     *  like coupled_scratch_. */
    mutable thermal::CoupledBatchScratch batch_scratch_;
    mutable std::atomic<std::uint64_t> sim_calls_{0};
    mutable std::atomic<std::uint64_t> price_calls_{0};
    mutable std::atomic<std::uint64_t> sim_events_{0};
    mutable std::atomic<std::uint64_t> thermal_damped_{0};
    mutable std::atomic<std::uint64_t> thermal_accelerated_{0};
    mutable std::atomic<std::uint64_t> thermal_fallback_{0};
    /** Guards the non-atomic telemetry aggregates below; essentially
     *  uncontended (an Experiment is thread-confined) but gives the
     *  sweep-side readers a clean happens-before edge. */
    mutable std::mutex telemetry_mutex_;
    mutable std::vector<sim::CoreCycleBreakdown> core_cycle_totals_;
    mutable std::uint64_t queue_high_water_ = 0;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_EXPERIMENT_HPP
