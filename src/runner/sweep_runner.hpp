/**
 * @file
 * SweepRunner — parallel execution of the figure-harness sweeps.
 *
 * The figure benches iterate (application x core count x operating point)
 * grids whose individual simulations are completely independent, so the
 * runner fans them across a util::ThreadPool. Each worker thread owns its
 * own Experiment (the Cmp run arena is not safe for concurrent run()
 * calls on one simulator), and all workers share one RunCache, so points
 * common to several rows — above all the nominal-V/f profiling pass that
 * both scenarios need — are simulated exactly once.
 *
 * Determinism: the simulator is single-threaded and deterministic, so a
 * given (workload, n, scale, vdd, freq) point yields bit-identical
 * Measurements on every worker. Rows are assembled by the same
 * Experiment::scenario1Row / scenario2Row functions the serial path folds
 * over, and results are collected in submission order — the output is
 * byte-for-byte identical to a serial sweep, at any job count.
 *
 * Job-count selection: Options.jobs <= 0 defers to
 * util::ThreadPool::defaultJobs() (the TLPPM_JOBS environment variable,
 * else the hardware concurrency). jobs == 1 runs the legacy serial path
 * on the calling thread with no pool at all.
 */

#ifndef TLP_RUNNER_SWEEP_RUNNER_HPP
#define TLP_RUNNER_SWEEP_RUNNER_HPP

#include <memory>
#include <vector>

#include "runner/experiment.hpp"
#include "runner/run_cache.hpp"
#include "util/thread_pool.hpp"

namespace tlp::runner {

/** One independent simulation point for SweepRunner::measureAll(). */
struct MeasureSpec
{
    const workloads::WorkloadInfo* app = nullptr;
    int n = 1;
    double vdd = 0.0;
    double freq_hz = 0.0;
};

/** Fans scenario sweeps over a thread pool, one Experiment per worker. */
class SweepRunner
{
  public:
    struct Options
    {
        /** Worker count; <= 0 selects ThreadPool::defaultJobs(). 1 runs
         *  serially on the calling thread (no pool). */
        int jobs = 0;
        double scale = 1.0;            ///< workload problem-size scale
        sim::CmpConfig config{};       ///< machine configuration
        bool share_cache = true;       ///< attach the shared RunCache
    };

    SweepRunner() : SweepRunner(Options{}) {}
    explicit SweepRunner(Options options);
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /** The Measurement cache shared by all workers. */
    RunCache& cache() { return cache_; }
    const RunCache& cache() const { return cache_; }

    /** The calling thread's Experiment (calibrated testbed). */
    Experiment& experiment() { return *experiments_.front(); }
    const Experiment& experiment() const { return *experiments_.front(); }

    /**
     * Scenario I (Figure 3) for every application in @p apps: result[a]
     * equals experiments' scenario1(*apps[a], ns), byte-identically, for
     * any job count.
     */
    std::vector<std::vector<Scenario1Row>> scenario1Sweep(
        const std::vector<const workloads::WorkloadInfo*>& apps,
        const std::vector<int>& ns);

    /**
     * Scenario II (Figure 4) for every application in @p apps: result[a]
     * equals scenario2(*apps[a], ns, freqs_hz, budget_w). An empty grid
     * selects the default profiling grid; budget_w <= 0 selects the
     * microbenchmark-derived single-core maximum.
     */
    std::vector<std::vector<Scenario2Row>> scenario2Sweep(
        const std::vector<const workloads::WorkloadInfo*>& apps,
        const std::vector<int>& ns, std::vector<double> freqs_hz = {},
        double budget_w = 0.0);

    /** Price every spec (in order); specs may repeat (cache hits). */
    std::vector<Measurement> measureAll(
        const std::vector<MeasureSpec>& specs);

  private:
    /** The calling/worker thread's lazily constructed Experiment. */
    Experiment& workerExperiment();

    Options options_;
    int jobs_ = 1;
    RunCache cache_;
    std::unique_ptr<util::ThreadPool> pool_; ///< null when jobs_ == 1
    /** Slot 0: calling thread; slot 1 + w: pool worker w. Each slot is
     *  only ever touched by its own thread. */
    std::vector<std::unique_ptr<Experiment>> experiments_;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_SWEEP_RUNNER_HPP
