/**
 * @file
 * SweepRunner — fault-tolerant (and parallel) execution of the figure
 * sweeps.
 *
 * The figure benches iterate (application x core count x operating point)
 * grids whose individual simulations are completely independent, so the
 * runner fans them across a util::ThreadPool. Each worker thread owns its
 * own Experiment (the Cmp run arena is not safe for concurrent run()
 * calls on one simulator), and all workers share one RunCache, so points
 * common to several rows — above all the nominal-V/f profiling pass that
 * both scenarios need — are simulated exactly once.
 *
 * Determinism: the simulator is single-threaded and deterministic, so a
 * given (workload, n, scale, vdd, freq) point yields bit-identical
 * Measurements on every worker. Rows are assembled by the same
 * Experiment::scenario1Row / scenario2Row functions at every job count,
 * and results are collected in submission order — the output is
 * byte-for-byte identical to a serial sweep, at any job count.
 *
 * Fault tolerance: every task runs inside a containment boundary. A point
 * that throws (simulator deadlock, event-budget blowout, injected fault),
 * times out against the per-point watchdog (Options.point_timeout_s), or
 * returns a structured error (thermal non-convergence, non-finite result)
 * is optionally retried and otherwise recorded as a FailedPoint; rows
 * depending on it are marked `failed` and counted as skipped. The sweep
 * always completes and lastReport() says exactly what happened. The only
 * exceptions that escape a sweep are FaultKillError (a deliberate
 * simulated crash) and PanicError (an internal invariant break).
 *
 * Checkpoint/resume: with Options.journal_path set, every first-inserted
 * cache entry is appended (fsync'd) to an on-disk journal; with
 * Options.resume, the journal is replayed into the cache before the sweep
 * starts, so an interrupted sweep re-simulates only unfinished points and
 * reproduces the uninterrupted output byte-for-byte.
 *
 * Job-count selection: Options.jobs <= 0 defers to
 * util::ThreadPool::defaultJobs() (the TLPPM_JOBS environment variable,
 * else the hardware concurrency). jobs == 1 runs every task inline on the
 * calling thread, in submission order, with no pool at all — the same
 * code path, so serial output is the parallel reference by construction.
 */

#ifndef TLP_RUNNER_SWEEP_RUNNER_HPP
#define TLP_RUNNER_SWEEP_RUNNER_HPP

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/experiment.hpp"
#include "runner/journal.hpp"
#include "runner/progress.hpp"
#include "runner/raw_run_cache.hpp"
#include "runner/run_cache.hpp"
#include "runner/sweep_report.hpp"
#include "util/thread_pool.hpp"

namespace tlp::runner {

/** One independent simulation point for SweepRunner::measureAll(). */
struct MeasureSpec
{
    const workloads::WorkloadInfo* app = nullptr;
    int n = 1;
    double vdd = 0.0;
    double freq_hz = 0.0;
};

/** Fans scenario sweeps over a thread pool, one Experiment per worker. */
class SweepRunner
{
  public:
    struct Options
    {
        /** Worker count; <= 0 selects ThreadPool::defaultJobs(). 1 runs
         *  all tasks inline on the calling thread (no pool). */
        int jobs = 0;
        double scale = 1.0;            ///< workload problem-size scale
        sim::CmpConfig config{};       ///< machine configuration
        bool share_cache = true;       ///< attach the shared RunCache
        /** Max extra attempts for a failed point (0 disables retry). A
         *  retry re-prices the point from scratch; deterministic results
         *  make this safe — a success on retry is bit-identical to a
         *  first-attempt success. */
        int max_point_retries = 1;
        /** Per-task wall-clock watchdog [s]; <= 0 disables. A task that
         *  overruns is aborted cooperatively (TimeoutError at the next
         *  event-loop / fixed-point poll) and contained as a failure. */
        double point_timeout_s = 0.0;
        /** Append completed runs to this JSONL journal (empty: off).
         *  Implies share_cache. */
        std::string journal_path;
        /** Replay journal_path into the cache before sweeping. */
        bool resume = false;
        /** fsync the journal every K appends (1 = every record). */
        int journal_flush_every = 1;
        /** Print heartbeat lines (points done/total, ETA, last point)
         *  to stderr while sweeping. Purely an observer: enabling it
         *  cannot change a byte of the results. */
        bool progress = false;
        /** Heartbeat line prefix (the sweep/figure name). */
        std::string progress_label = "sweep";
        /**
         * Deterministic multi-process sharding. With shards > 1, each
         * (workload, n) row is owned by exactly one shard — a stable
         * CRC32 of the quantized row key, independent of job count,
         * host, or submission order — and this runner computes only the
         * rows of shard_index, emitting the rest as out_of_shard
         * placeholders. Every shard additionally computes the shared
         * n = 1 baseline of each application it owns a row of (the
         * baseline is deterministic, so the duplicates across shards
         * are bit-identical and deduplicate on journal merge). Merging
         * the shard journals and re-rendering with resume reproduces
         * the unsharded tables byte-for-byte.
         */
        int shards = 1;
        int shard_index = 0; ///< this process's shard in [0, shards)
        /**
         * Canonical comma-joined workload spec list the sweep runs over
         * (empty: the figure's default suite). Purely identity metadata:
         * it is stamped into sharded journals (and checked on reopen) so
         * tlppm_merge can re-render a trace-replay sweep against the
         * same workload set and refuses to mix shards of different
         * sweeps. Row ownership still hashes display names, so a trace
         * replay shards exactly like its generator original.
         */
        std::string workloads;
        /**
         * Directory of the persistent cross-process raw-run store
         * (empty: off). Implies share_cache. Opened in the shared lock
         * mode at construction and attached below the RawRunCache, so
         * every raw run any earlier process stored here — including
         * other shards appending concurrently — is reused instead of
         * re-simulated, and every run this sweep simulates is appended
         * for the next process. A store that cannot be opened degrades
         * (with a warning) to the in-memory cache only.
         */
        std::string raw_store;
    };

    /** The shard that owns row (workload, n) at problem scale @p scale:
     *  crc32 of the quantized row key mod @p shards. The static core of
     *  the ownership rule, shared with tlppm_merge and the tests. */
    static int shardOf(const std::string& workload, int n, double scale,
                       int shards);

    SweepRunner() : SweepRunner(Options{}) {}
    explicit SweepRunner(Options options);
    ~SweepRunner();

    SweepRunner(const SweepRunner&) = delete;
    SweepRunner& operator=(const SweepRunner&) = delete;

    /** Resolved worker count (>= 1). */
    int jobs() const { return jobs_; }

    /** The Measurement cache shared by all workers. */
    RunCache& cache() { return cache_; }
    const RunCache& cache() const { return cache_; }

    /** The voltage-independent sim::RunResult cache shared by all
     *  workers (the first level of the two-level cache). */
    RawRunCache& rawCache() { return raw_cache_; }
    const RawRunCache& rawCache() const { return raw_cache_; }

    /** The persistent raw-run store below the RawRunCache, or null
     *  (Options.raw_store empty or the open degraded). */
    const PersistentRawStore* rawStore() const { return raw_store_.get(); }

    /** The calling thread's Experiment (calibrated testbed). */
    Experiment& experiment() { return *experiments_.front(); }
    const Experiment& experiment() const { return *experiments_.front(); }

    /** Containment ledger of the most recent sweep call. */
    const SweepReport& lastReport() const { return report_; }

    /** The work-stealing pool fanning the sweeps, or null when
     *  jobs == 1 (serial mode runs inline with no pool). Exposed for
     *  per-worker load accounting (bench_sweep_throughput reports the
     *  max/mean executed-task imbalance). */
    const util::ThreadPool* pool() const { return pool_.get(); }

    /** Journal entries replayed into the cache at construction. */
    std::size_t replayedEntries() const { return replay_stats_.entries; }

    /** Full replay outcome (entries restored, corrupt lines quarantined,
     *  inadmissible records refused) of the construction-time resume. */
    const ReplayStats& replayStats() const { return replay_stats_; }

    /**
     * Scenario I (Figure 3) for every application in @p apps: result[a]
     * equals experiments' scenario1(*apps[a], ns), byte-identically, for
     * any job count. Failed rows come back with `failed == true` and are
     * itemized in lastReport().
     */
    std::vector<std::vector<Scenario1Row>> scenario1Sweep(
        const std::vector<const workloads::WorkloadInfo*>& apps,
        const std::vector<int>& ns);

    /**
     * Scenario II (Figure 4) for every application in @p apps: result[a]
     * equals scenario2(*apps[a], ns, freqs_hz, budget_w). An empty grid
     * selects the default profiling grid; budget_w <= 0 selects the
     * microbenchmark-derived single-core maximum.
     */
    std::vector<std::vector<Scenario2Row>> scenario2Sweep(
        const std::vector<const workloads::WorkloadInfo*>& apps,
        const std::vector<int>& ns, std::vector<double> freqs_hz = {},
        double budget_w = 0.0);

    /** Price every spec (in order); specs may repeat (cache hits). A
     *  failed spec yields a default Measurement and a FailedPoint. */
    std::vector<Measurement> measureAll(
        const std::vector<MeasureSpec>& specs);

  private:
    friend struct SweepTaskRunner;

    /** The calling/worker thread's lazily constructed Experiment. */
    Experiment& workerExperiment();

    /** True when this runner's shard owns row (workload, n). Always
     *  true when Options.shards <= 1. */
    bool ownsRow(const std::string& workload, int n) const;

    /** Count one row skipped because another shard owns it. */
    void noteOutOfShard();

    /** Record a cost classification (cache probe) for the seeding
     *  counters: @p expensive tasks are submitted ahead of cheap ones
     *  so work-stealing balances the long tail. */
    void noteScheduled(bool expensive);

    /** @p expected_tasks arms the progress reporter's ETA denominator
     *  (ignored when Options.progress is off). */
    void beginSweep(std::size_t expected_tasks);
    void finishSweep();

    /** Report one finished (or skipped) task to the progress heartbeat;
     *  no-op unless Options.progress armed a reporter. */
    void noteTaskDone(const std::string& key);

    /** Sum of sim/price counters over all constructed Experiments plus
     *  both caches' hit/miss counts — snapshotted at beginSweep() so
     *  finishSweep() can report per-sweep deltas. */
    struct CounterSnapshot
    {
        std::uint64_t sim_calls = 0;
        std::uint64_t sim_events = 0;
        std::uint64_t price_calls = 0;
        std::uint64_t raw_hits = 0;
        std::uint64_t raw_misses = 0;
        std::uint64_t priced_hits = 0;
        std::uint64_t priced_misses = 0;
        std::uint64_t thermal_damped = 0;
        std::uint64_t thermal_accelerated = 0;
        std::uint64_t thermal_fallback = 0;
        std::uint64_t thermal_solves = 0;
        std::uint64_t thermal_solve_passes = 0;
        std::uint64_t thermal_factorizations = 0;
        std::uint64_t thermal_max_batch_rhs = 0; ///< max, not a sum
        std::uint64_t queue_high_water = 0;      ///< max, not a sum
        std::uint64_t pool_executed = 0;
        std::uint64_t pool_steals = 0;
        std::uint64_t pool_failed_steal_sweeps = 0;
        std::uint64_t store_hits = 0;
        std::uint64_t store_misses = 0;
        std::uint64_t store_appends = 0;
        std::vector<sim::CoreCycleBreakdown> core_cycles;
    };
    CounterSnapshot counterTotals() const;

    Options options_;
    int jobs_ = 1;
    RunCache cache_;
    RawRunCache raw_cache_;
    /** Declared before pool_ so it outlives workers that write-behind
     *  through raw_cache_ during pool teardown. */
    std::unique_ptr<PersistentRawStore> raw_store_;
    /** Declared before pool_ so it outlives the workers that append to
     *  it through the cache observer during pool teardown. */
    std::unique_ptr<Journal> journal_;
    ReplayStats replay_stats_;
    SweepReport report_;
    std::mutex report_mutex_;
    CounterSnapshot sweep_start_counters_;
    std::unique_ptr<ProgressReporter> progress_; ///< armed per sweep
    std::unique_ptr<util::ThreadPool> pool_; ///< null when jobs_ == 1
    /** Slot 0: calling thread; slot 1 + w: pool worker w. Each slot is
     *  only ever touched by its own thread. */
    std::vector<std::unique_ptr<Experiment>> experiments_;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_SWEEP_RUNNER_HPP
