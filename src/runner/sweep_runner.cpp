#include "runner/sweep_runner.hpp"

#include <algorithm>
#include <future>

#include "util/logging.hpp"

namespace tlp::runner {

SweepRunner::SweepRunner(Options options) : options_(options)
{
    jobs_ = options_.jobs > 0
        ? options_.jobs
        : static_cast<int>(util::ThreadPool::defaultJobs());
    if (jobs_ < 1)
        jobs_ = 1;
    experiments_.resize(static_cast<std::size_t>(jobs_) + 1);
    if (jobs_ > 1)
        pool_ = std::make_unique<util::ThreadPool>(
            static_cast<unsigned>(jobs_));
    // The calling thread's testbed is built eagerly: sweeps need its
    // technology constants (and callers its calibration) up front.
    workerExperiment();
}

SweepRunner::~SweepRunner() = default;

Experiment&
SweepRunner::workerExperiment()
{
    const int slot = util::ThreadPool::currentWorkerIndex() + 1;
    std::unique_ptr<Experiment>& exp =
        experiments_[static_cast<std::size_t>(slot)];
    if (!exp) {
        exp = std::make_unique<Experiment>(options_.scale, options_.config);
        if (options_.share_cache)
            exp->setRunCache(&cache_);
    }
    return *exp;
}

std::vector<std::vector<Scenario1Row>>
SweepRunner::scenario1Sweep(
    const std::vector<const workloads::WorkloadInfo*>& apps,
    const std::vector<int>& ns)
{
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario1Sweep: core-count list must start at 1");

    std::vector<std::vector<Scenario1Row>> results(apps.size());
    if (jobs_ == 1) {
        for (std::size_t a = 0; a < apps.size(); ++a)
            results[a] = experiment().scenario1(*apps[a], ns);
        return results;
    }

    const tech::Technology& tech = experiment().technology();
    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();

    // Phase A: the nominal-V/f profiling pass, one task per (app, n).
    // Collecting the futures in submission order fills the cache and
    // gives every row task its baseline without re-simulation.
    std::vector<std::vector<std::future<Measurement>>> nominal_futures(
        apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int n : ns) {
            const workloads::WorkloadInfo* app = apps[a];
            nominal_futures[a].push_back(pool_->submit([this, app, n, v1,
                                                        f1] {
                return workerExperiment().measureApp(*app, n, v1, f1);
            }));
        }
    }
    std::vector<std::vector<Measurement>> nominal(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        nominal[a].reserve(ns.size());
        for (auto& future : nominal_futures[a])
            nominal[a].push_back(future.get());
    }

    // Phase B: one Eq. 7 row per (app, n), again in submission order.
    std::vector<std::vector<std::future<Scenario1Row>>> row_futures(
        apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const workloads::WorkloadInfo* app = apps[a];
            const int n = ns[i];
            const Measurement& base = nominal[a].front();
            const Measurement& nominal_n = nominal[a][i];
            row_futures[a].push_back(
                pool_->submit([this, app, n, &base, &nominal_n] {
                    return workerExperiment().scenario1Row(*app, n, base,
                                                           nominal_n);
                }));
        }
    }
    for (std::size_t a = 0; a < apps.size(); ++a) {
        results[a].reserve(ns.size());
        for (auto& future : row_futures[a])
            results[a].push_back(future.get());
    }
    return results;
}

std::vector<std::vector<Scenario2Row>>
SweepRunner::scenario2Sweep(
    const std::vector<const workloads::WorkloadInfo*>& apps,
    const std::vector<int>& ns, std::vector<double> freqs_hz,
    double budget_w)
{
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario2Sweep: core-count list must start at 1");

    std::vector<std::vector<Scenario2Row>> results(apps.size());
    if (jobs_ == 1) {
        for (std::size_t a = 0; a < apps.size(); ++a)
            results[a] = experiment().scenario2(*apps[a], ns, freqs_hz,
                                                budget_w);
        return results;
    }

    Experiment& caller = experiment();
    const tech::Technology& tech = caller.technology();
    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();
    const double budget =
        budget_w > 0.0 ? budget_w : caller.maxSingleCorePower();
    if (freqs_hz.empty())
        freqs_hz = caller.defaultFrequencyGrid();
    std::sort(freqs_hz.begin(), freqs_hz.end());

    // Phase A: nominal profiling pass (also the grid's top point).
    std::vector<std::vector<std::future<Measurement>>> nominal_futures(
        apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int n : ns) {
            const workloads::WorkloadInfo* app = apps[a];
            nominal_futures[a].push_back(pool_->submit([this, app, n, v1,
                                                        f1] {
                return workerExperiment().measureApp(*app, n, v1, f1);
            }));
        }
    }
    std::vector<std::vector<Measurement>> nominal(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        nominal[a].reserve(ns.size());
        for (auto& future : nominal_futures[a])
            nominal[a].push_back(future.get());
    }

    // Phase B: one budget-sweep row per (app, n). Each row runs its own
    // ascending frequency sweep; the shared cache deduplicates points
    // that several rows visit.
    std::vector<std::vector<std::future<Scenario2Row>>> row_futures(
        apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t i = 0; i < ns.size(); ++i) {
            const workloads::WorkloadInfo* app = apps[a];
            const int n = ns[i];
            const Measurement& base = nominal[a].front();
            const Measurement& nominal_n = nominal[a][i];
            row_futures[a].push_back(pool_->submit(
                [this, app, n, &base, &nominal_n, &freqs_hz, budget] {
                    return workerExperiment().scenario2Row(
                        *app, n, base, nominal_n, freqs_hz, budget);
                }));
        }
    }
    for (std::size_t a = 0; a < apps.size(); ++a) {
        results[a].reserve(ns.size());
        for (auto& future : row_futures[a])
            results[a].push_back(future.get());
    }
    return results;
}

std::vector<Measurement>
SweepRunner::measureAll(const std::vector<MeasureSpec>& specs)
{
    for (const MeasureSpec& spec : specs) {
        if (!spec.app)
            util::fatal("measureAll: null workload");
    }

    std::vector<Measurement> results;
    results.reserve(specs.size());
    if (jobs_ == 1) {
        for (const MeasureSpec& spec : specs)
            results.push_back(experiment().measureApp(
                *spec.app, spec.n, spec.vdd, spec.freq_hz));
        return results;
    }

    std::vector<std::future<Measurement>> futures;
    futures.reserve(specs.size());
    for (const MeasureSpec& spec : specs) {
        futures.push_back(pool_->submit([this, spec] {
            return workerExperiment().measureApp(*spec.app, spec.n,
                                                 spec.vdd, spec.freq_hz);
        }));
    }
    for (auto& future : futures)
        results.push_back(future.get());
    return results;
}

} // namespace tlp::runner
