#include "runner/sweep_runner.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <type_traits>
#include <utility>

#include "runner/fault_injection.hpp"
#include "runner/persistent_raw_store.hpp"
#include "tech/technology.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"
#include "workloads/trace.hpp"

namespace tlp::runner {

/**
 * Task-side helpers shared by the three sweep entry points. Lives on the
 * sweep call's stack; worker lambdas reference it, which is safe because
 * every sweep collects all its futures before returning.
 */
struct SweepTaskRunner
{
    SweepRunner& r;

    /** Run @p f on the pool, or inline (jobs == 1) on the calling
     *  thread — same code path, executed at submission, so serial
     *  results are the parallel reference by construction. */
    template <typename F>
    auto
    submit(F&& f) -> std::future<std::invoke_result_t<F&>>
    {
        if (r.pool_)
            return r.pool_->submit(std::forward<F>(f));
        using R = std::invoke_result_t<F&>;
        std::promise<R> promise;
        // Inline mode: contained errors are already inside the returned
        // Expected; anything thrown here (FaultKillError, PanicError) is
        // meant to abort the sweep and propagates immediately.
        promise.set_value(f());
        return promise.get_future();
    }

    /**
     * Containment boundary around one task body. @p body returns an
     * util::Expected; a thrown exception or error result is retried up
     * to Options.max_point_retries times (each attempt under a fresh
     * watchdog deadline) and finally recorded as a FailedPoint. Only
     * FaultKillError (simulated crash) and PanicError (internal bug)
     * escape.
     */
    template <typename Body>
    auto
    contain(const char* phase, const std::string& workload, int n,
            double vdd, double freq_hz, std::size_t order, Body&& body)
        -> decltype(body())
    {
        using Result = decltype(body());
        TLPPM_TRACE_SCOPE("sweep", phase, ":", workload, " n=", n);
        const auto start = std::chrono::steady_clock::now();
        const int max_attempts =
            1 + std::max(0, r.options_.max_point_retries);
        util::Error last;
        int attempts = 0;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            ++attempts;
            util::PointDeadlineGuard guard(r.options_.point_timeout_s);
            try {
                Result result = body();
                if (result.ok()) {
                    {
                        std::lock_guard<std::mutex> lock(r.report_mutex_);
                        ++r.report_.ok;
                        if (attempt > 0)
                            ++r.report_.retried;
                    }
                    r.noteTaskDone(util::strcatMsg(phase, " ", workload,
                                                   " n=", n));
                    return result;
                }
                last = std::move(result.error());
            } catch (FaultKillError&) {
                throw;
            } catch (util::PanicError&) {
                throw;
            } catch (const util::TimeoutError& e) {
                last = util::Error{util::ErrorCode::Timeout, e.what()};
            } catch (const std::exception& e) {
                last =
                    util::Error{util::ErrorCode::SimulationError, e.what()};
            }
        }
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        util::warn(util::strcatMsg("sweep: ", phase, " point ", workload,
                                   " n=", n, " failed after ", attempts,
                                   attempts == 1 ? " attempt: "
                                                 : " attempts: ",
                                   last.describe()));
        FailedPoint failure;
        failure.workload = workload;
        failure.n = n;
        failure.vdd = vdd;
        failure.freq_hz = freq_hz;
        failure.phase = phase;
        failure.error = last;
        failure.wall_seconds = wall;
        failure.attempts = attempts;
        failure.order = order;
        util::traceInstant("sweep", "point-failed:", workload, " n=", n,
                           " attempts=", attempts);
        {
            std::lock_guard<std::mutex> lock(r.report_mutex_);
            r.report_.failed.push_back(std::move(failure));
        }
        r.noteTaskDone(util::strcatMsg(phase, " ", workload, " n=", n,
                                       " [failed]"));
        return Result(std::move(last));
    }

    /** Count one row dropped because a dependency failed. */
    void
    skip()
    {
        {
            std::lock_guard<std::mutex> lock(r.report_mutex_);
            ++r.report_.skipped;
        }
        r.noteTaskDone("[skipped]");
    }
};

SweepRunner::SweepRunner(Options options) : options_(std::move(options))
{
    if (options_.shards < 1)
        util::fatal("SweepRunner: shards must be >= 1");
    if (options_.shard_index < 0 ||
        options_.shard_index >= options_.shards)
        util::fatal(util::strcatMsg("SweepRunner: shard-index ",
                                    options_.shard_index,
                                    " out of range [0, ", options_.shards,
                                    ")"));
    jobs_ = options_.jobs > 0
        ? options_.jobs
        : static_cast<int>(util::ThreadPool::defaultJobs());
    if (jobs_ < 1)
        jobs_ = 1;

    if (!options_.raw_store.empty()) {
        // The persistent level hangs below the shared RawRunCache, so
        // the workers must share it (the same forcing journaling does).
        options_.share_cache = true;
        // The fingerprint pins the model version this store's records
        // are valid for: the full machine configuration, the process
        // node the experiments calibrate against (tech65nm, the
        // paper's), and the workload-registry identity.
        auto store = PersistentRawStore::open(
            options_.raw_store,
            modelFingerprint(options_.config, tech::tech65nm()));
        if (store.ok()) {
            raw_store_ = std::move(store.value());
            raw_cache_.attachStore(raw_store_.get());
        } else {
            util::warn(util::strcatMsg(
                "raw-store: cannot open '", options_.raw_store, "': ",
                store.error().describe(),
                "; continuing with the in-memory cache only"));
        }
    }
    if (!options_.journal_path.empty()) {
        // Journaling observes the shared cache; without it no completed
        // point would ever reach the journal.
        options_.share_cache = true;
        if (options_.shards > 1) {
            // A reopened shard journal must be the same shard of the
            // same sweep — resuming shard 2's journal as shard 1 would
            // merge into a table with silently duplicated/missing rows.
            auto existing = Journal::readShardInfo(options_.journal_path);
            if (!existing.ok())
                util::fatal(existing.error().describe());
            if (existing.value().has_value()) {
                const ShardInfo& info = *existing.value();
                if (info.label != options_.progress_label ||
                    info.shards != options_.shards ||
                    info.shard_index != options_.shard_index ||
                    info.workloads != options_.workloads ||
                    quantizeScale(info.scale) !=
                        quantizeScale(options_.scale)) {
                    util::fatal(util::strcatMsg(
                        "journal '", options_.journal_path,
                        "' belongs to shard ", info.shard_index, "/",
                        info.shards, " of ", info.label, " (scale ",
                        info.scale, "), not shard ",
                        options_.shard_index, "/", options_.shards,
                        " of ", options_.progress_label, " (scale ",
                        options_.scale, ")"));
                }
            }
        }
        if (options_.resume) {
            const ReplayStats stats =
                Journal::replayInto(options_.journal_path, cache_);
            replay_stats_ = stats;
            if (stats.entries > 0 || stats.corrupt > 0 ||
                stats.inadmissible > 0) {
                util::warn(util::strcatMsg(
                    "journal resume: restored ", stats.entries,
                    " completed points from '", options_.journal_path,
                    "' (corrupt: ", stats.corrupt,
                    ", inadmissible: ", stats.inadmissible, ")"));
            }
        }
        journal_ = std::make_unique<Journal>(options_.journal_path,
                                             options_.journal_flush_every);
        if (options_.shards > 1) {
            journal_->appendShardMeta(ShardInfo{options_.progress_label,
                                                options_.scale,
                                                options_.shards,
                                                options_.shard_index,
                                                options_.workloads});
        }
        // Set the observer only after replay: replayed entries are
        // already on disk and must not be appended a second time.
        cache_.setInsertObserver(
            [journal = journal_.get()](const RunKey& key,
                                       const Measurement& m) {
                journal->append(key, m);
            });
    }

    experiments_.resize(static_cast<std::size_t>(jobs_) + 1);
    if (jobs_ > 1)
        pool_ = std::make_unique<util::ThreadPool>(
            static_cast<unsigned>(jobs_));
    // The calling thread's testbed is built eagerly: sweeps need its
    // technology constants (and callers its calibration) up front.
    workerExperiment();
}

SweepRunner::~SweepRunner() = default;

int
SweepRunner::shardOf(const std::string& workload, int n, double scale,
                     int shards)
{
    if (shards <= 1)
        return 0;
    // Hash the *quantized* row key (the same grid the cache keys use),
    // so the owner of a row is identical on every host, at every job
    // count, and across the last-ulp scale drift quantization absorbs.
    const std::string key =
        util::strcatMsg(workload, "|", n, "|", quantizeScale(scale));
    return static_cast<int>(util::crc32(key) %
                            static_cast<std::uint32_t>(shards));
}

bool
SweepRunner::ownsRow(const std::string& workload, int n) const
{
    if (options_.shards <= 1)
        return true;
    return shardOf(workload, n, options_.scale, options_.shards) ==
        options_.shard_index;
}

void
SweepRunner::noteOutOfShard()
{
    std::lock_guard<std::mutex> lock(report_mutex_);
    ++report_.out_of_shard;
}

void
SweepRunner::noteScheduled(bool expensive)
{
    std::lock_guard<std::mutex> lock(report_mutex_);
    if (expensive)
        ++report_.sched_expensive;
    else
        ++report_.sched_cheap;
}

Experiment&
SweepRunner::workerExperiment()
{
    const int slot = util::ThreadPool::currentWorkerIndex() + 1;
    std::unique_ptr<Experiment>& exp =
        experiments_[static_cast<std::size_t>(slot)];
    if (!exp) {
        // share_cache gates both levels together: a worker fleet either
        // shares the full two-level cache or runs fully isolated.
        exp = std::make_unique<Experiment>(
            options_.scale, options_.config,
            options_.share_cache ? &raw_cache_ : nullptr);
        if (options_.share_cache)
            exp->setRunCache(&cache_);
    }
    return *exp;
}

SweepRunner::CounterSnapshot
SweepRunner::counterTotals() const
{
    // Only called from the sweep-driving thread while no tasks are in
    // flight (beginSweep / finishSweep), so reading the lazily filled
    // experiment slots is race-free: every worker construction
    // happened-before the future collection that preceded this call.
    CounterSnapshot totals;
    for (const std::unique_ptr<Experiment>& exp : experiments_) {
        if (!exp)
            continue;
        totals.sim_calls += exp->simCalls();
        totals.sim_events += exp->simEvents();
        totals.price_calls += exp->priceCalls();
        totals.thermal_damped += exp->thermalDampedSolves();
        totals.thermal_accelerated += exp->thermalAcceleratedSolves();
        totals.thermal_fallback += exp->thermalFallbackSolves();
        const thermal::RCModel& model = exp->thermalModel();
        totals.thermal_solves += model.solveCount();
        totals.thermal_solve_passes += model.solvePassCount();
        totals.thermal_factorizations += model.factorizationCount();
        totals.thermal_max_batch_rhs =
            std::max(totals.thermal_max_batch_rhs, model.maxBatchRhs());
        totals.queue_high_water =
            std::max(totals.queue_high_water, exp->queueHighWater());
        const std::vector<sim::CoreCycleBreakdown> cores =
            exp->coreCycleTotals();
        if (totals.core_cycles.size() < cores.size())
            totals.core_cycles.resize(cores.size());
        for (std::size_t i = 0; i < cores.size(); ++i) {
            totals.core_cycles[i].busy += cores[i].busy;
            totals.core_cycles[i].stall_mem += cores[i].stall_mem;
            totals.core_cycles[i].stall_sync += cores[i].stall_sync;
        }
    }
    totals.raw_hits = raw_cache_.hits();
    totals.raw_misses = raw_cache_.misses();
    totals.priced_hits = cache_.hits();
    totals.priced_misses = cache_.misses();
    if (raw_store_) {
        const RawStoreStats stats = raw_store_->stats();
        totals.store_hits = stats.hits;
        totals.store_misses = stats.misses;
        totals.store_appends = stats.appends;
    }
    if (pool_) {
        const util::ThreadPool::Stats stats = pool_->stats();
        totals.pool_executed = stats.executed;
        totals.pool_steals = stats.steals;
        totals.pool_failed_steal_sweeps = stats.failed_steal_sweeps;
    }
    return totals;
}

void
SweepRunner::beginSweep(std::size_t expected_tasks)
{
    sweep_start_counters_ = counterTotals();
    progress_.reset();
    if (options_.progress) {
        // Tell the reporter how many tasks will be near-instant journal
        // replays, so the ETA is computed from real post-replay work
        // only (a resumed sweep otherwise advertises a fantasy ETA).
        progress_ = std::make_unique<ProgressReporter>(
            expected_tasks, options_.progress_label, 1.0,
            std::min(replay_stats_.entries, expected_tasks));
    }
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_ = SweepReport{};
    report_.replayed = replay_stats_.entries;
    report_.replay_corrupt = replay_stats_.corrupt;
    report_.replay_inadmissible = replay_stats_.inadmissible;
    report_.shards = options_.shards;
    report_.shard_index = options_.shard_index;
}

void
SweepRunner::noteTaskDone(const std::string& key)
{
    if (progress_)
        progress_->taskDone(key);
}

void
SweepRunner::finishSweep()
{
    const CounterSnapshot now = counterTotals();
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.sim_calls = now.sim_calls - sweep_start_counters_.sim_calls;
    report_.sim_events =
        now.sim_events - sweep_start_counters_.sim_events;
    report_.price_calls =
        now.price_calls - sweep_start_counters_.price_calls;
    report_.raw_hits = now.raw_hits - sweep_start_counters_.raw_hits;
    report_.raw_misses = now.raw_misses - sweep_start_counters_.raw_misses;
    report_.priced_hits =
        now.priced_hits - sweep_start_counters_.priced_hits;
    report_.priced_misses =
        now.priced_misses - sweep_start_counters_.priced_misses;
    report_.thermal_damped_solves =
        now.thermal_damped - sweep_start_counters_.thermal_damped;
    report_.thermal_accelerated_solves = now.thermal_accelerated -
        sweep_start_counters_.thermal_accelerated;
    report_.thermal_fallback_solves =
        now.thermal_fallback - sweep_start_counters_.thermal_fallback;
    report_.thermal_solves =
        now.thermal_solves - sweep_start_counters_.thermal_solves;
    report_.thermal_solve_passes = now.thermal_solve_passes -
        sweep_start_counters_.thermal_solve_passes;
    report_.thermal_factorizations = now.thermal_factorizations -
        sweep_start_counters_.thermal_factorizations;
    report_.pool_tasks =
        now.pool_executed - sweep_start_counters_.pool_executed;
    report_.pool_steals =
        now.pool_steals - sweep_start_counters_.pool_steals;
    report_.pool_failed_steal_sweeps = now.pool_failed_steal_sweeps -
        sweep_start_counters_.pool_failed_steal_sweeps;
    if (raw_store_) {
        report_.store_attached = true;
        report_.store_hits =
            now.store_hits - sweep_start_counters_.store_hits;
        report_.store_misses =
            now.store_misses - sweep_start_counters_.store_misses;
        report_.store_appends =
            now.store_appends - sweep_start_counters_.store_appends;
        // Load/maintenance numbers are absolute for this handle: the
        // load (and any quarantine it performed) happened at runner
        // construction, before the first beginSweep() snapshot.
        const RawStoreStats stats = raw_store_->stats();
        report_.store_loaded = stats.loaded;
        report_.store_quarantined = stats.quarantined;
        report_.store_fp_rejected = stats.fingerprint_rejected;
        report_.store_load_micros = stats.load_micros;
    }
    // Trace-front-end numbers are absolute for the process, like the
    // store load numbers: registry parses happen on first workload
    // resolution, before (or independent of) any sweep.
    const workloads::TraceLoadStats trace_stats =
        workloads::traceLoadStats();
    report_.trace_loads = trace_stats.loads;
    report_.trace_load_micros = trace_stats.load_micros;
    if (pool_) {
        report_.pool_workers_pinned = pool_->stats().workers_pinned;
        util::traceInstant("sweep", "pool: tasks=", report_.pool_tasks,
                           " steals=", report_.pool_steals,
                           " failed_sweeps=",
                           report_.pool_failed_steal_sweeps,
                           " pinned=", report_.pool_workers_pinned);
    }
    // The high-water marks are peaks, not flows: report the lifetime
    // maximum rather than a meaningless delta.
    report_.thermal_max_batch_rhs = now.thermal_max_batch_rhs;
    report_.queue_high_water = now.queue_high_water;
    report_.core_cycles = now.core_cycles;
    for (std::size_t i = 0;
         i < sweep_start_counters_.core_cycles.size() &&
         i < report_.core_cycles.size();
         ++i) {
        report_.core_cycles[i].busy -=
            sweep_start_counters_.core_cycles[i].busy;
        report_.core_cycles[i].stall_mem -=
            sweep_start_counters_.core_cycles[i].stall_mem;
        report_.core_cycles[i].stall_sync -=
            sweep_start_counters_.core_cycles[i].stall_sync;
    }
    std::sort(report_.failed.begin(), report_.failed.end(),
              [](const FailedPoint& a, const FailedPoint& b) {
                  return a.order < b.order;
              });
}

std::vector<std::vector<Scenario1Row>>
SweepRunner::scenario1Sweep(
    const std::vector<const workloads::WorkloadInfo*>& apps,
    const std::vector<int>& ns)
{
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario1Sweep: core-count list must start at 1");
    const std::size_t n_apps = apps.size();
    const std::size_t n_ns = ns.size();

    // Shard ownership, decided per (app, n) row up front. A shard that
    // owns any row of an application also profiles that application's
    // n = 1 baseline (every row's speedup/power reference) even when
    // the n = 1 *row* belongs elsewhere — the baseline is deterministic,
    // so the cross-shard duplicates are bit-identical and the merged
    // journals deduplicate cleanly.
    std::vector<std::vector<char>> owned(n_apps,
                                         std::vector<char>(n_ns, 1));
    std::vector<char> any_owned(n_apps, 1);
    if (options_.shards > 1) {
        for (std::size_t a = 0; a < n_apps; ++a) {
            any_owned[a] = 0;
            for (std::size_t i = 0; i < n_ns; ++i) {
                owned[a][i] = ownsRow(apps[a]->name, ns[i]) ? 1 : 0;
                if (owned[a][i])
                    any_owned[a] = 1;
            }
        }
    }
    const auto profileNeeded = [&](std::size_t a, std::size_t i) {
        return owned[a][i] || (i == 0 && any_owned[a]);
    };
    std::size_t expected = 0;
    for (std::size_t a = 0; a < n_apps; ++a)
        for (std::size_t i = 0; i < n_ns; ++i)
            expected += (profileNeeded(a, i) ? 1 : 0) +
                (owned[a][i] ? 1 : 0);
    beginSweep(expected);
    SweepTaskRunner tasks{*this};

    const tech::Technology& tech = experiment().technology();
    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();

    // Phase A: the nominal-V/f profiling pass, one task per (app, n).
    // Expensive points (no cached sim, no cached price: a full
    // simulation) are seeded first so the work-stealing pool balances
    // the costly tail instead of discovering it last; results are
    // assembled by (a, i) index, so the reorder cannot change a byte.
    struct ProfileTask
    {
        std::size_t a;
        std::size_t i;
        bool expensive;
    };
    std::vector<ProfileTask> profile_order;
    for (std::size_t a = 0; a < n_apps; ++a) {
        for (std::size_t i = 0; i < n_ns; ++i) {
            if (!profileNeeded(a, i))
                continue;
            const RunKey priced_key{apps[a]->key(), ns[i],
                                    options_.scale, v1, f1};
            const RawRunKey raw_key{apps[a]->key(), ns[i],
                                    options_.scale, f1};
            const bool expensive = !cache_.contains(priced_key) &&
                !raw_cache_.contains(raw_key);
            profile_order.push_back({a, i, expensive});
            noteScheduled(expensive);
        }
    }
    std::stable_partition(profile_order.begin(), profile_order.end(),
                          [](const ProfileTask& t) { return t.expensive; });
    std::vector<std::vector<std::future<util::Expected<Measurement>>>>
        nominal_futures(n_apps);
    for (auto& futures : nominal_futures)
        futures.resize(n_ns); // invalid future == not profiled here
    for (const ProfileTask& t : profile_order) {
        const workloads::WorkloadInfo* app = apps[t.a];
        const int n = ns[t.i];
        // Logical (a, i) enumeration order, stable across seeding
        // reorders and shard subsets — FailedPoint lists sort on it.
        const std::size_t task_order = t.a * n_ns + t.i;
        nominal_futures[t.a][t.i] =
            tasks.submit([this, &tasks, app, n, v1, f1, task_order] {
                return tasks.contain(
                    "profile", app->name, n, v1, f1, task_order, [&] {
                        return workerExperiment().tryMeasureApp(
                            *app, n, v1, f1);
                    });
            });
    }
    const util::Error not_profiled{
        util::ErrorCode::InvalidArgument,
        "row owned by another shard; not profiled here"};
    std::vector<std::vector<util::Expected<Measurement>>> nominal(n_apps);
    for (std::size_t a = 0; a < n_apps; ++a) {
        nominal[a].reserve(n_ns);
        for (std::size_t i = 0; i < n_ns; ++i) {
            nominal[a].push_back(
                nominal_futures[a][i].valid()
                    ? nominal_futures[a][i].get()
                    : util::Expected<Measurement>(not_profiled));
        }
    }

    // Phase B: one Eq. 7 row per owned (app, n), in submission order.
    // A row whose baseline or nominal profile failed cannot be assembled
    // and is emitted as a `failed` placeholder instead.
    std::vector<std::vector<Scenario1Row>> results(n_apps);
    struct Pending
    {
        std::size_t a;
        std::size_t i;
        std::future<util::Expected<Scenario1Row>> future;
    };
    std::vector<Pending> pending;
    for (std::size_t a = 0; a < n_apps; ++a) {
        results[a].resize(n_ns);
        for (std::size_t i = 0; i < n_ns; ++i) {
            results[a][i].n = ns[i];
            if (!owned[a][i]) {
                results[a][i].out_of_shard = true;
                noteOutOfShard();
                continue;
            }
            if (!nominal[a].front().ok() || !nominal[a][i].ok()) {
                results[a][i].failed = true;
                tasks.skip();
                continue;
            }
            const workloads::WorkloadInfo* app = apps[a];
            const int n = ns[i];
            const Measurement& base = nominal[a].front().value();
            const Measurement& nominal_n = nominal[a][i].value();
            const std::size_t task_order = n_apps * n_ns + a * n_ns + i;
            pending.push_back(
                {a, i,
                 tasks.submit([this, &tasks, app, n, &base, &nominal_n,
                               task_order] {
                     return tasks.contain(
                         "row", app->name, n, 0.0, 0.0, task_order,
                         [&]() -> util::Expected<Scenario1Row> {
                             return workerExperiment().scenario1Row(
                                 *app, n, base, nominal_n);
                         });
                 })});
        }
    }
    for (Pending& p : pending) {
        util::Expected<Scenario1Row> row = p.future.get();
        if (row.ok())
            results[p.a][p.i] = row.value();
        else
            results[p.a][p.i].failed = true;
    }
    finishSweep();
    return results;
}

std::vector<std::vector<Scenario2Row>>
SweepRunner::scenario2Sweep(
    const std::vector<const workloads::WorkloadInfo*>& apps,
    const std::vector<int>& ns, std::vector<double> freqs_hz,
    double budget_w)
{
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario2Sweep: core-count list must start at 1");
    const std::size_t n_apps = apps.size();
    const std::size_t n_ns = ns.size();

    // Shard ownership (see scenario1Sweep): per (app, n) row, with the
    // n = 1 baseline profiled by every shard that owns a row of the app.
    std::vector<std::vector<char>> owned(n_apps,
                                         std::vector<char>(n_ns, 1));
    std::vector<char> any_owned(n_apps, 1);
    if (options_.shards > 1) {
        for (std::size_t a = 0; a < n_apps; ++a) {
            any_owned[a] = 0;
            for (std::size_t i = 0; i < n_ns; ++i) {
                owned[a][i] = ownsRow(apps[a]->name, ns[i]) ? 1 : 0;
                if (owned[a][i])
                    any_owned[a] = 1;
            }
        }
    }
    const auto profileNeeded = [&](std::size_t a, std::size_t i) {
        return owned[a][i] || (i == 0 && any_owned[a]);
    };
    std::size_t expected = 0;
    for (std::size_t a = 0; a < n_apps; ++a)
        for (std::size_t i = 0; i < n_ns; ++i)
            expected += (profileNeeded(a, i) ? 1 : 0) +
                (owned[a][i] ? 1 : 0);
    beginSweep(expected);
    SweepTaskRunner tasks{*this};

    Experiment& caller = experiment();
    const tech::Technology& tech = caller.technology();
    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();
    const double budget =
        budget_w > 0.0 ? budget_w : caller.maxSingleCorePower();
    if (freqs_hz.empty())
        freqs_hz = caller.defaultFrequencyGrid();
    std::sort(freqs_hz.begin(), freqs_hz.end());

    // Phase A: nominal profiling pass (also the grid's top point),
    // expensive (cache-cold) points seeded first — see scenario1Sweep.
    struct ProfileTask
    {
        std::size_t a;
        std::size_t i;
        bool expensive;
    };
    std::vector<ProfileTask> profile_order;
    for (std::size_t a = 0; a < n_apps; ++a) {
        for (std::size_t i = 0; i < n_ns; ++i) {
            if (!profileNeeded(a, i))
                continue;
            const RunKey priced_key{apps[a]->key(), ns[i],
                                    options_.scale, v1, f1};
            const RawRunKey raw_key{apps[a]->key(), ns[i],
                                    options_.scale, f1};
            const bool expensive = !cache_.contains(priced_key) &&
                !raw_cache_.contains(raw_key);
            profile_order.push_back({a, i, expensive});
            noteScheduled(expensive);
        }
    }
    std::stable_partition(profile_order.begin(), profile_order.end(),
                          [](const ProfileTask& t) { return t.expensive; });
    std::vector<std::vector<std::future<util::Expected<Measurement>>>>
        nominal_futures(n_apps);
    for (auto& futures : nominal_futures)
        futures.resize(n_ns); // invalid future == not profiled here
    for (const ProfileTask& t : profile_order) {
        const workloads::WorkloadInfo* app = apps[t.a];
        const int n = ns[t.i];
        const std::size_t task_order = t.a * n_ns + t.i;
        nominal_futures[t.a][t.i] =
            tasks.submit([this, &tasks, app, n, v1, f1, task_order] {
                return tasks.contain(
                    "profile", app->name, n, v1, f1, task_order, [&] {
                        return workerExperiment().tryMeasureApp(
                            *app, n, v1, f1);
                    });
            });
    }
    const util::Error not_profiled{
        util::ErrorCode::InvalidArgument,
        "row owned by another shard; not profiled here"};
    std::vector<std::vector<util::Expected<Measurement>>> nominal(n_apps);
    for (std::size_t a = 0; a < n_apps; ++a) {
        nominal[a].reserve(n_ns);
        for (std::size_t i = 0; i < n_ns; ++i) {
            nominal[a].push_back(
                nominal_futures[a][i].valid()
                    ? nominal_futures[a][i].get()
                    : util::Expected<Measurement>(not_profiled));
        }
    }

    // Phase B: one budget-sweep row per owned (app, n). Each row runs
    // its own ascending frequency sweep; the shared cache deduplicates
    // points that several rows visit. Rows are seeded expensive-first
    // too: a row's candidate frequencies are known up front (the grid),
    // so a row with any cache-cold grid frequency is classified
    // expensive. After a full resume every row probes cheap and the
    // original order is preserved.
    std::vector<std::vector<Scenario2Row>> results(n_apps);
    struct Pending
    {
        std::size_t a;
        std::size_t i;
        std::future<util::Expected<Scenario2Row>> future;
    };
    struct RowTask
    {
        std::size_t a;
        std::size_t i;
        bool expensive;
    };
    std::vector<RowTask> row_order;
    for (std::size_t a = 0; a < n_apps; ++a) {
        results[a].resize(n_ns);
        for (std::size_t i = 0; i < n_ns; ++i) {
            results[a][i].n = ns[i];
            if (!owned[a][i]) {
                results[a][i].out_of_shard = true;
                noteOutOfShard();
                continue;
            }
            if (!nominal[a].front().ok() || !nominal[a][i].ok()) {
                results[a][i].failed = true;
                tasks.skip();
                continue;
            }
            bool expensive = false;
            for (double f : freqs_hz) {
                if (!raw_cache_.contains(RawRunKey{apps[a]->key(), ns[i],
                                                   options_.scale, f})) {
                    expensive = true;
                    break;
                }
            }
            row_order.push_back({a, i, expensive});
            noteScheduled(expensive);
        }
    }
    std::stable_partition(row_order.begin(), row_order.end(),
                          [](const RowTask& t) { return t.expensive; });
    std::vector<Pending> pending;
    for (const RowTask& t : row_order) {
        const std::size_t a = t.a;
        const std::size_t i = t.i;
        const workloads::WorkloadInfo* app = apps[a];
        const int n = ns[i];
        const Measurement& base = nominal[a].front().value();
        const Measurement& nominal_n = nominal[a][i].value();
        const std::size_t task_order = n_apps * n_ns + a * n_ns + i;
        pending.push_back(
            {a, i,
             tasks.submit([this, &tasks, app, n, &base, &nominal_n,
                           &freqs_hz, budget, task_order] {
                 return tasks.contain(
                     "row", app->name, n, 0.0, 0.0, task_order,
                     [&]() -> util::Expected<Scenario2Row> {
                         return workerExperiment().scenario2Row(
                             *app, n, base, nominal_n, freqs_hz,
                             budget);
                     });
             })});
    }
    for (Pending& p : pending) {
        util::Expected<Scenario2Row> row = p.future.get();
        if (row.ok())
            results[p.a][p.i] = row.value();
        else
            results[p.a][p.i].failed = true;
    }
    finishSweep();
    return results;
}

std::vector<Measurement>
SweepRunner::measureAll(const std::vector<MeasureSpec>& specs)
{
    for (const MeasureSpec& spec : specs) {
        if (!spec.app)
            util::fatal("measureAll: null workload");
    }
    beginSweep(specs.size());
    SweepTaskRunner tasks{*this};

    // Expensive (cache-cold) specs first — results are assembled by
    // spec index, so the submission reorder cannot change a byte.
    struct SpecTask
    {
        std::size_t i;
        bool expensive;
    };
    std::vector<SpecTask> spec_order;
    spec_order.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const MeasureSpec& spec = specs[i];
        const RunKey priced_key{spec.app->key(), spec.n, options_.scale,
                                spec.vdd, spec.freq_hz};
        const RawRunKey raw_key{spec.app->key(), spec.n, options_.scale,
                                spec.freq_hz};
        const bool expensive = !cache_.contains(priced_key) &&
            !raw_cache_.contains(raw_key);
        spec_order.push_back({i, expensive});
        noteScheduled(expensive);
    }
    std::stable_partition(spec_order.begin(), spec_order.end(),
                          [](const SpecTask& t) { return t.expensive; });
    std::vector<std::future<util::Expected<Measurement>>> futures(
        specs.size());
    for (const SpecTask& t : spec_order) {
        const std::size_t i = t.i;
        const MeasureSpec spec = specs[i];
        futures[i] = tasks.submit([this, &tasks, spec, i] {
            return tasks.contain(
                "measure", spec.app->name, spec.n, spec.vdd, spec.freq_hz,
                i, [&] {
                    return workerExperiment().tryMeasureApp(
                        *spec.app, spec.n, spec.vdd, spec.freq_hz);
                });
        });
    }
    std::vector<Measurement> results;
    results.reserve(specs.size());
    for (auto& future : futures)
        results.push_back(future.get().valueOr(Measurement{}));
    finishSweep();
    return results;
}

} // namespace tlp::runner
