#include "runner/sweep_runner.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <type_traits>
#include <utility>

#include "runner/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace tlp::runner {

/**
 * Task-side helpers shared by the three sweep entry points. Lives on the
 * sweep call's stack; worker lambdas reference it, which is safe because
 * every sweep collects all its futures before returning.
 */
struct SweepTaskRunner
{
    SweepRunner& r;

    /** Run @p f on the pool, or inline (jobs == 1) on the calling
     *  thread — same code path, executed at submission, so serial
     *  results are the parallel reference by construction. */
    template <typename F>
    auto
    submit(F&& f) -> std::future<std::invoke_result_t<F&>>
    {
        if (r.pool_)
            return r.pool_->submit(std::forward<F>(f));
        using R = std::invoke_result_t<F&>;
        std::promise<R> promise;
        // Inline mode: contained errors are already inside the returned
        // Expected; anything thrown here (FaultKillError, PanicError) is
        // meant to abort the sweep and propagates immediately.
        promise.set_value(f());
        return promise.get_future();
    }

    /**
     * Containment boundary around one task body. @p body returns an
     * util::Expected; a thrown exception or error result is retried up
     * to Options.max_point_retries times (each attempt under a fresh
     * watchdog deadline) and finally recorded as a FailedPoint. Only
     * FaultKillError (simulated crash) and PanicError (internal bug)
     * escape.
     */
    template <typename Body>
    auto
    contain(const char* phase, const std::string& workload, int n,
            double vdd, double freq_hz, std::size_t order, Body&& body)
        -> decltype(body())
    {
        using Result = decltype(body());
        TLPPM_TRACE_SCOPE("sweep", phase, ":", workload, " n=", n);
        const auto start = std::chrono::steady_clock::now();
        const int max_attempts =
            1 + std::max(0, r.options_.max_point_retries);
        util::Error last;
        int attempts = 0;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            ++attempts;
            util::PointDeadlineGuard guard(r.options_.point_timeout_s);
            try {
                Result result = body();
                if (result.ok()) {
                    {
                        std::lock_guard<std::mutex> lock(r.report_mutex_);
                        ++r.report_.ok;
                        if (attempt > 0)
                            ++r.report_.retried;
                    }
                    r.noteTaskDone(util::strcatMsg(phase, " ", workload,
                                                   " n=", n));
                    return result;
                }
                last = std::move(result.error());
            } catch (FaultKillError&) {
                throw;
            } catch (util::PanicError&) {
                throw;
            } catch (const util::TimeoutError& e) {
                last = util::Error{util::ErrorCode::Timeout, e.what()};
            } catch (const std::exception& e) {
                last =
                    util::Error{util::ErrorCode::SimulationError, e.what()};
            }
        }
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
        util::warn(util::strcatMsg("sweep: ", phase, " point ", workload,
                                   " n=", n, " failed after ", attempts,
                                   attempts == 1 ? " attempt: "
                                                 : " attempts: ",
                                   last.describe()));
        FailedPoint failure;
        failure.workload = workload;
        failure.n = n;
        failure.vdd = vdd;
        failure.freq_hz = freq_hz;
        failure.phase = phase;
        failure.error = last;
        failure.wall_seconds = wall;
        failure.attempts = attempts;
        failure.order = order;
        util::traceInstant("sweep", "point-failed:", workload, " n=", n,
                           " attempts=", attempts);
        {
            std::lock_guard<std::mutex> lock(r.report_mutex_);
            r.report_.failed.push_back(std::move(failure));
        }
        r.noteTaskDone(util::strcatMsg(phase, " ", workload, " n=", n,
                                       " [failed]"));
        return Result(std::move(last));
    }

    /** Count one row dropped because a dependency failed. */
    void
    skip()
    {
        {
            std::lock_guard<std::mutex> lock(r.report_mutex_);
            ++r.report_.skipped;
        }
        r.noteTaskDone("[skipped]");
    }
};

SweepRunner::SweepRunner(Options options) : options_(std::move(options))
{
    jobs_ = options_.jobs > 0
        ? options_.jobs
        : static_cast<int>(util::ThreadPool::defaultJobs());
    if (jobs_ < 1)
        jobs_ = 1;

    if (!options_.journal_path.empty()) {
        // Journaling observes the shared cache; without it no completed
        // point would ever reach the journal.
        options_.share_cache = true;
        if (options_.resume) {
            const ReplayStats stats =
                Journal::replayInto(options_.journal_path, cache_);
            replay_stats_ = stats;
            if (stats.entries > 0 || stats.corrupt > 0 ||
                stats.inadmissible > 0) {
                util::warn(util::strcatMsg(
                    "journal resume: restored ", stats.entries,
                    " completed points from '", options_.journal_path,
                    "' (corrupt: ", stats.corrupt,
                    ", inadmissible: ", stats.inadmissible, ")"));
            }
        }
        journal_ = std::make_unique<Journal>(options_.journal_path,
                                             options_.journal_flush_every);
        // Set the observer only after replay: replayed entries are
        // already on disk and must not be appended a second time.
        cache_.setInsertObserver(
            [journal = journal_.get()](const RunKey& key,
                                       const Measurement& m) {
                journal->append(key, m);
            });
    }

    experiments_.resize(static_cast<std::size_t>(jobs_) + 1);
    if (jobs_ > 1)
        pool_ = std::make_unique<util::ThreadPool>(
            static_cast<unsigned>(jobs_));
    // The calling thread's testbed is built eagerly: sweeps need its
    // technology constants (and callers its calibration) up front.
    workerExperiment();
}

SweepRunner::~SweepRunner() = default;

Experiment&
SweepRunner::workerExperiment()
{
    const int slot = util::ThreadPool::currentWorkerIndex() + 1;
    std::unique_ptr<Experiment>& exp =
        experiments_[static_cast<std::size_t>(slot)];
    if (!exp) {
        // share_cache gates both levels together: a worker fleet either
        // shares the full two-level cache or runs fully isolated.
        exp = std::make_unique<Experiment>(
            options_.scale, options_.config,
            options_.share_cache ? &raw_cache_ : nullptr);
        if (options_.share_cache)
            exp->setRunCache(&cache_);
    }
    return *exp;
}

SweepRunner::CounterSnapshot
SweepRunner::counterTotals() const
{
    // Only called from the sweep-driving thread while no tasks are in
    // flight (beginSweep / finishSweep), so reading the lazily filled
    // experiment slots is race-free: every worker construction
    // happened-before the future collection that preceded this call.
    CounterSnapshot totals;
    for (const std::unique_ptr<Experiment>& exp : experiments_) {
        if (!exp)
            continue;
        totals.sim_calls += exp->simCalls();
        totals.sim_events += exp->simEvents();
        totals.price_calls += exp->priceCalls();
        totals.thermal_damped += exp->thermalDampedSolves();
        totals.thermal_accelerated += exp->thermalAcceleratedSolves();
        totals.thermal_fallback += exp->thermalFallbackSolves();
        const thermal::RCModel& model = exp->thermalModel();
        totals.thermal_solves += model.solveCount();
        totals.thermal_solve_passes += model.solvePassCount();
        totals.thermal_factorizations += model.factorizationCount();
        totals.thermal_max_batch_rhs =
            std::max(totals.thermal_max_batch_rhs, model.maxBatchRhs());
        totals.queue_high_water =
            std::max(totals.queue_high_water, exp->queueHighWater());
        const std::vector<sim::CoreCycleBreakdown> cores =
            exp->coreCycleTotals();
        if (totals.core_cycles.size() < cores.size())
            totals.core_cycles.resize(cores.size());
        for (std::size_t i = 0; i < cores.size(); ++i) {
            totals.core_cycles[i].busy += cores[i].busy;
            totals.core_cycles[i].stall_mem += cores[i].stall_mem;
            totals.core_cycles[i].stall_sync += cores[i].stall_sync;
        }
    }
    totals.raw_hits = raw_cache_.hits();
    totals.raw_misses = raw_cache_.misses();
    totals.priced_hits = cache_.hits();
    totals.priced_misses = cache_.misses();
    return totals;
}

void
SweepRunner::beginSweep(std::size_t expected_tasks)
{
    sweep_start_counters_ = counterTotals();
    progress_.reset();
    if (options_.progress) {
        // Tell the reporter how many tasks will be near-instant journal
        // replays, so the ETA is computed from real post-replay work
        // only (a resumed sweep otherwise advertises a fantasy ETA).
        progress_ = std::make_unique<ProgressReporter>(
            expected_tasks, options_.progress_label, 1.0,
            std::min(replay_stats_.entries, expected_tasks));
    }
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_ = SweepReport{};
    report_.replayed = replay_stats_.entries;
    report_.replay_corrupt = replay_stats_.corrupt;
    report_.replay_inadmissible = replay_stats_.inadmissible;
}

void
SweepRunner::noteTaskDone(const std::string& key)
{
    if (progress_)
        progress_->taskDone(key);
}

void
SweepRunner::finishSweep()
{
    const CounterSnapshot now = counterTotals();
    std::lock_guard<std::mutex> lock(report_mutex_);
    report_.sim_calls = now.sim_calls - sweep_start_counters_.sim_calls;
    report_.sim_events =
        now.sim_events - sweep_start_counters_.sim_events;
    report_.price_calls =
        now.price_calls - sweep_start_counters_.price_calls;
    report_.raw_hits = now.raw_hits - sweep_start_counters_.raw_hits;
    report_.raw_misses = now.raw_misses - sweep_start_counters_.raw_misses;
    report_.priced_hits =
        now.priced_hits - sweep_start_counters_.priced_hits;
    report_.priced_misses =
        now.priced_misses - sweep_start_counters_.priced_misses;
    report_.thermal_damped_solves =
        now.thermal_damped - sweep_start_counters_.thermal_damped;
    report_.thermal_accelerated_solves = now.thermal_accelerated -
        sweep_start_counters_.thermal_accelerated;
    report_.thermal_fallback_solves =
        now.thermal_fallback - sweep_start_counters_.thermal_fallback;
    report_.thermal_solves =
        now.thermal_solves - sweep_start_counters_.thermal_solves;
    report_.thermal_solve_passes = now.thermal_solve_passes -
        sweep_start_counters_.thermal_solve_passes;
    report_.thermal_factorizations = now.thermal_factorizations -
        sweep_start_counters_.thermal_factorizations;
    // The high-water marks are peaks, not flows: report the lifetime
    // maximum rather than a meaningless delta.
    report_.thermal_max_batch_rhs = now.thermal_max_batch_rhs;
    report_.queue_high_water = now.queue_high_water;
    report_.core_cycles = now.core_cycles;
    for (std::size_t i = 0;
         i < sweep_start_counters_.core_cycles.size() &&
         i < report_.core_cycles.size();
         ++i) {
        report_.core_cycles[i].busy -=
            sweep_start_counters_.core_cycles[i].busy;
        report_.core_cycles[i].stall_mem -=
            sweep_start_counters_.core_cycles[i].stall_mem;
        report_.core_cycles[i].stall_sync -=
            sweep_start_counters_.core_cycles[i].stall_sync;
    }
    std::sort(report_.failed.begin(), report_.failed.end(),
              [](const FailedPoint& a, const FailedPoint& b) {
                  return a.order < b.order;
              });
}

std::vector<std::vector<Scenario1Row>>
SweepRunner::scenario1Sweep(
    const std::vector<const workloads::WorkloadInfo*>& apps,
    const std::vector<int>& ns)
{
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario1Sweep: core-count list must start at 1");
    // Phase A (profile) plus phase B (rows): one task per (app, n) each;
    // skipped rows report through the same progress channel.
    beginSweep(apps.size() * ns.size() * 2);
    SweepTaskRunner tasks{*this};

    const tech::Technology& tech = experiment().technology();
    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();
    std::size_t order = 0;

    // Phase A: the nominal-V/f profiling pass, one task per (app, n).
    // Collecting the futures in submission order fills the cache and
    // gives every row task its baseline without re-simulation.
    std::vector<std::vector<std::future<util::Expected<Measurement>>>>
        nominal_futures(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int n : ns) {
            const workloads::WorkloadInfo* app = apps[a];
            const std::size_t task_order = order++;
            nominal_futures[a].push_back(
                tasks.submit([this, &tasks, app, n, v1, f1, task_order] {
                    return tasks.contain(
                        "profile", app->name, n, v1, f1, task_order, [&] {
                            return workerExperiment().tryMeasureApp(
                                *app, n, v1, f1);
                        });
                }));
        }
    }
    std::vector<std::vector<util::Expected<Measurement>>> nominal(
        apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        nominal[a].reserve(ns.size());
        for (auto& future : nominal_futures[a])
            nominal[a].push_back(future.get());
    }

    // Phase B: one Eq. 7 row per (app, n), again in submission order.
    // A row whose baseline or nominal profile failed cannot be assembled
    // and is emitted as a `failed` placeholder instead.
    std::vector<std::vector<Scenario1Row>> results(apps.size());
    struct Pending
    {
        std::size_t a;
        std::size_t i;
        std::future<util::Expected<Scenario1Row>> future;
    };
    std::vector<Pending> pending;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        results[a].resize(ns.size());
        for (std::size_t i = 0; i < ns.size(); ++i) {
            results[a][i].n = ns[i];
            if (!nominal[a].front().ok() || !nominal[a][i].ok()) {
                results[a][i].failed = true;
                tasks.skip();
                continue;
            }
            const workloads::WorkloadInfo* app = apps[a];
            const int n = ns[i];
            const Measurement& base = nominal[a].front().value();
            const Measurement& nominal_n = nominal[a][i].value();
            const std::size_t task_order = order++;
            pending.push_back(
                {a, i,
                 tasks.submit([this, &tasks, app, n, &base, &nominal_n,
                               task_order] {
                     return tasks.contain(
                         "row", app->name, n, 0.0, 0.0, task_order,
                         [&]() -> util::Expected<Scenario1Row> {
                             return workerExperiment().scenario1Row(
                                 *app, n, base, nominal_n);
                         });
                 })});
        }
    }
    for (Pending& p : pending) {
        util::Expected<Scenario1Row> row = p.future.get();
        if (row.ok())
            results[p.a][p.i] = row.value();
        else
            results[p.a][p.i].failed = true;
    }
    finishSweep();
    return results;
}

std::vector<std::vector<Scenario2Row>>
SweepRunner::scenario2Sweep(
    const std::vector<const workloads::WorkloadInfo*>& apps,
    const std::vector<int>& ns, std::vector<double> freqs_hz,
    double budget_w)
{
    if (ns.empty() || ns.front() != 1)
        util::fatal("scenario2Sweep: core-count list must start at 1");
    beginSweep(apps.size() * ns.size() * 2);
    SweepTaskRunner tasks{*this};

    Experiment& caller = experiment();
    const tech::Technology& tech = caller.technology();
    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();
    const double budget =
        budget_w > 0.0 ? budget_w : caller.maxSingleCorePower();
    if (freqs_hz.empty())
        freqs_hz = caller.defaultFrequencyGrid();
    std::sort(freqs_hz.begin(), freqs_hz.end());
    std::size_t order = 0;

    // Phase A: nominal profiling pass (also the grid's top point).
    std::vector<std::vector<std::future<util::Expected<Measurement>>>>
        nominal_futures(apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (int n : ns) {
            const workloads::WorkloadInfo* app = apps[a];
            const std::size_t task_order = order++;
            nominal_futures[a].push_back(
                tasks.submit([this, &tasks, app, n, v1, f1, task_order] {
                    return tasks.contain(
                        "profile", app->name, n, v1, f1, task_order, [&] {
                            return workerExperiment().tryMeasureApp(
                                *app, n, v1, f1);
                        });
                }));
        }
    }
    std::vector<std::vector<util::Expected<Measurement>>> nominal(
        apps.size());
    for (std::size_t a = 0; a < apps.size(); ++a) {
        nominal[a].reserve(ns.size());
        for (auto& future : nominal_futures[a])
            nominal[a].push_back(future.get());
    }

    // Phase B: one budget-sweep row per (app, n). Each row runs its own
    // ascending frequency sweep; the shared cache deduplicates points
    // that several rows visit.
    std::vector<std::vector<Scenario2Row>> results(apps.size());
    struct Pending
    {
        std::size_t a;
        std::size_t i;
        std::future<util::Expected<Scenario2Row>> future;
    };
    std::vector<Pending> pending;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        results[a].resize(ns.size());
        for (std::size_t i = 0; i < ns.size(); ++i) {
            results[a][i].n = ns[i];
            if (!nominal[a].front().ok() || !nominal[a][i].ok()) {
                results[a][i].failed = true;
                tasks.skip();
                continue;
            }
            const workloads::WorkloadInfo* app = apps[a];
            const int n = ns[i];
            const Measurement& base = nominal[a].front().value();
            const Measurement& nominal_n = nominal[a][i].value();
            const std::size_t task_order = order++;
            pending.push_back(
                {a, i,
                 tasks.submit([this, &tasks, app, n, &base, &nominal_n,
                               &freqs_hz, budget, task_order] {
                     return tasks.contain(
                         "row", app->name, n, 0.0, 0.0, task_order,
                         [&]() -> util::Expected<Scenario2Row> {
                             return workerExperiment().scenario2Row(
                                 *app, n, base, nominal_n, freqs_hz,
                                 budget);
                         });
                 })});
        }
    }
    for (Pending& p : pending) {
        util::Expected<Scenario2Row> row = p.future.get();
        if (row.ok())
            results[p.a][p.i] = row.value();
        else
            results[p.a][p.i].failed = true;
    }
    finishSweep();
    return results;
}

std::vector<Measurement>
SweepRunner::measureAll(const std::vector<MeasureSpec>& specs)
{
    for (const MeasureSpec& spec : specs) {
        if (!spec.app)
            util::fatal("measureAll: null workload");
    }
    beginSweep(specs.size());
    SweepTaskRunner tasks{*this};

    std::vector<std::future<util::Expected<Measurement>>> futures;
    futures.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const MeasureSpec spec = specs[i];
        futures.push_back(tasks.submit([this, &tasks, spec, i] {
            return tasks.contain(
                "measure", spec.app->name, spec.n, spec.vdd, spec.freq_hz,
                i, [&] {
                    return workerExperiment().tryMeasureApp(
                        *spec.app, spec.n, spec.vdd, spec.freq_hz);
                });
        }));
    }
    std::vector<Measurement> results;
    results.reserve(specs.size());
    for (auto& future : futures)
        results.push_back(future.get().valueOr(Measurement{}));
    finishSweep();
    return results;
}

} // namespace tlp::runner
