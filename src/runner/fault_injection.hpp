/**
 * @file
 * Deterministic fault injection for the sweep fault-tolerance layer.
 *
 * Containment, retry, journaling, and resume are only trustworthy if they
 * can be exercised on demand, so the measurement hot path asks a global
 * FaultInjector before every *real* (cache-miss) simulation whether this
 * point should misbehave. A plan selects points either by ordinal (the
 * K-th real measurement process-wide, firing once — a transient fault the
 * retry ladder recovers from) or by key (every measurement of one
 * (workload, n) pair — a persistent fault the sweep must contain and
 * report).
 *
 * Kinds:
 *  - throw: the measurement throws FatalError (worker-exception path);
 *  - nan:   the priced Measurement is poisoned with NaN (non-finite-guard
 *           path);
 *  - stall: the measurement spins until the per-point watchdog fires
 *           (timeout path);
 *  - kill:  the measurement throws FaultKillError, which containment
 *           deliberately re-raises — simulating a killed process for
 *           journal/resume tests.
 *
 * The environment knob `TLPPM_FAULT` installs a plan at first use:
 *   TLPPM_FAULT=point:K        throw at the K-th measurement (1-based)
 *   TLPPM_FAULT=<kind>:K       kind in {throw, nan, stall, kill}
 *   TLPPM_FAULT=<kind>:<workload>:<n>  key-selected persistent fault
 *
 * The injector also counts real measurements unconditionally; tests use
 * the counter to prove a resumed sweep re-simulates zero completed
 * points.
 */

#ifndef TLP_RUNNER_FAULT_INJECTION_HPP
#define TLP_RUNNER_FAULT_INJECTION_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace tlp::runner {

/** What an injected fault does to its measurement. */
enum class FaultKind { None = 0, Throw, Nan, Stall, Kill };

/** Stable name of @p kind ("throw", "nan", ...). */
const char* faultKindName(FaultKind kind);

/** Which measurement(s) to hit, and how. */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    /** 1-based ordinal of the real measurement to hit (fires once);
     *  ignored when a workload key is set. */
    std::uint64_t point = 0;
    /** Key selection: every real measurement of this workload (and, when
     *  n != 0, this thread count) faults — persistent, any job count. */
    std::string workload;
    int n = 0;

    bool active() const { return kind != FaultKind::None; }
    bool byKey() const { return !workload.empty(); }
};

/** Parse a TLPPM_FAULT-style spec ("point:5", "nan:3", "stall:FMM:4"). */
util::Expected<FaultPlan> parseFaultPlan(std::string_view spec);

/** Thrown by kill faults; the containment layer re-raises it so a test
 *  can simulate a process death mid-sweep. */
class FaultKillError : public std::runtime_error
{
  public:
    explicit FaultKillError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Process-wide fault plan + real-measurement counter. */
class FaultInjector
{
  public:
    static FaultInjector& instance();

    /** Install @p plan (replacing any active one). */
    void setPlan(const FaultPlan& plan);

    /** Remove the active plan (the counter keeps running). */
    void clearPlan();

    /** Active plan (kind None when none installed). */
    FaultPlan plan() const;

    /**
     * Install a plan from the TLPPM_FAULT environment variable, once per
     * process. Returns true when a plan is (already) active. A malformed
     * spec is a fatal error: a mistyped fault knob silently doing nothing
     * would defeat the CI leg that relies on it.
     */
    bool installFromEnv();

    /**
     * Hot-path hook: count one real measurement of (@p workload, @p n)
     * and return the fault to apply to it (usually None).
     */
    FaultKind onMeasure(const std::string& workload, int n);

    /** Real (cache-miss) measurements counted since process start /
     *  resetCount(). */
    std::uint64_t measurements() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    void resetCount() { count_.store(0, std::memory_order_relaxed); }

  private:
    FaultInjector() = default;

    mutable std::mutex mutex_;
    FaultPlan plan_;
    bool env_checked_ = false;
    bool fired_ = false; ///< ordinal plans fire exactly once
    std::atomic<std::uint64_t> count_{0};
};

/**
 * Store-layer fault kinds, targeting the persistence paths of the
 * result store and the journal rather than the measurement hot path:
 *  - TornWrite:      an artifact write stops halfway and the atomic
 *                    rename never happens — the on-disk state a crash
 *                    mid-write leaves behind;
 *  - ShortWrite:     the write reports fewer bytes than requested
 *                    (ENOSPC-style) and the writer sees a typed IoError;
 *  - CorruptRead:    a stored artifact comes back with one byte flipped,
 *                    so the CRC check must quarantine it;
 *  - KillCompaction: the process "dies" (FaultKillError) between writing
 *                    the new store generation and publishing it in the
 *                    manifest — the window the recovery protocol must
 *                    tolerate.
 */
enum class StoreFaultKind {
    None = 0,
    TornWrite,
    ShortWrite,
    CorruptRead,
    KillCompaction,
};

/** Stable name of @p kind ("torn-write", ...). */
const char* storeFaultKindName(StoreFaultKind kind);

/** Which store operation to hit: the @p ordinal-th operation (1-based,
 *  process-wide per kind) fires once. */
struct StoreFaultPlan
{
    StoreFaultKind kind = StoreFaultKind::None;
    std::uint64_t ordinal = 1;

    bool active() const { return kind != StoreFaultKind::None; }
};

/** Parse a TLPPM_STORE_FAULT spec: "torn-write", "short-write:3",
 *  "corrupt-read", "kill-compaction". Ordinal defaults to 1. */
util::Expected<StoreFaultPlan> parseStoreFaultPlan(std::string_view spec);

/**
 * Process-wide store fault plan. Separate from FaultInjector because the
 * two planes compose: a crash-recovery test may arm a measurement fault
 * AND a store fault in one scenario.
 */
class StoreFaultInjector
{
  public:
    static StoreFaultInjector& instance();

    void setPlan(const StoreFaultPlan& plan);
    void clearPlan();
    StoreFaultPlan plan() const;

    /** Install a plan from TLPPM_STORE_FAULT, once per process; a
     *  malformed spec is fatal (see FaultInjector::installFromEnv). */
    bool installFromEnv();

    /**
     * Persistence-path hook: count one store operation that @p kind
     * faults could apply to, and return whether this one fires.
     * @p site names the operation for the trace/warning ("table-write",
     * "journal-append", "compaction").
     */
    bool shouldFault(StoreFaultKind kind, const char* site);

  private:
    StoreFaultInjector() = default;

    mutable std::mutex mutex_;
    StoreFaultPlan plan_;
    bool env_checked_ = false;
    bool fired_ = false;
    std::uint64_t count_ = 0; ///< operations seen for the armed kind
};

/** RAII plan installation for tests: installs on construction, clears
 *  (and resets the ordinal-fired latch) on destruction. */
class ScopedStoreFaultPlan
{
  public:
    explicit ScopedStoreFaultPlan(const StoreFaultPlan& plan)
    {
        StoreFaultInjector::instance().setPlan(plan);
    }
    ~ScopedStoreFaultPlan() { StoreFaultInjector::instance().clearPlan(); }
    ScopedStoreFaultPlan(const ScopedStoreFaultPlan&) = delete;
    ScopedStoreFaultPlan& operator=(const ScopedStoreFaultPlan&) = delete;
};

/** RAII plan installation for tests: installs on construction, clears
 *  (and resets the ordinal-fired latch) on destruction. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(const FaultPlan& plan)
    {
        FaultInjector::instance().setPlan(plan);
    }
    ~ScopedFaultPlan() { FaultInjector::instance().clearPlan(); }
    ScopedFaultPlan(const ScopedFaultPlan&) = delete;
    ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_FAULT_INJECTION_HPP
