/**
 * @file
 * PersistentRawStore — a crash-safe, on-disk, cross-process memoization
 * layer for sim::RunResult, the persistent level below RawRunCache.
 *
 * A raw run is a pure function of (workload, n, scale, f) under one
 * model version, so a result computed by ANY earlier process — a batch
 * bench, one shard of a sharded sweep, a service daemon — can be
 * reused by every later one. The store keeps those results as
 * CRC-sealed JSONL generation files (`runs.g<G>.jsonl`) governed by a
 * sealed one-line MANIFEST, the same generation/compaction protocol as
 * service::ResultStore:
 *
 *  - every record is one sealed line carrying the quantized key, a
 *    model-version fingerprint, and the lossless (%.17g)
 *    serialization of the RunResult (run_result_io);
 *  - the MANIFEST names the single live generation; it is rewritten
 *    atomically, so a kill inside the compaction window leaves at
 *    worst an orphan generation that open() garbage-collects;
 *  - a corrupt MANIFEST is quarantined and rebuilt from the highest
 *    generation on disk; a corrupt or torn record is skipped and
 *    counted (the key recomputes and re-appends), and compaction
 *    drops it for good;
 *  - records whose fingerprint does not match the opener's model
 *    version are invisible (counted as rejected): stale entries can
 *    never match after a CmpConfig/technology/workload change.
 *
 * Concurrency: appenders open the store with a SHARED advisory lock,
 * so K sweep shards (or a daemon plus a batch bench) can populate one
 * store concurrently; each append is a single whole-line O_APPEND
 * write and every line carries its own CRC, so interleaved writers
 * can at worst tear their own tail. Compaction and other
 * rewrite-in-place maintenance take the EXCLUSIVE mode and therefore
 * cannot run while any appender is live.
 */

#ifndef TLP_RUNNER_PERSISTENT_RAW_STORE_HPP
#define TLP_RUNNER_PERSISTENT_RAW_STORE_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "runner/raw_run_cache.hpp"
#include "sim/cmp.hpp"
#include "sim/config.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace tlp::runner {

/**
 * Model-version fingerprint: CRC32 over a canonical rendering of every
 * CmpConfig field, the technology's full parameter set, and the
 * workload-registry identity (suite names in registry order). Any
 * change to the simulated machine, the process node, or the workload
 * generators changes the fingerprint, so records written under the old
 * model can never satisfy a lookup under the new one.
 */
std::uint32_t modelFingerprint(const sim::CmpConfig& config,
                               const tech::Technology& tech);

/** Store counters (lifetime of this open handle). */
struct RawStoreStats
{
    std::uint64_t hits = 0;        ///< fetch() served from the index
    std::uint64_t misses = 0;      ///< fetch() found nothing
    std::uint64_t appends = 0;     ///< records written by this handle
    std::uint64_t loaded = 0;      ///< records adopted at open()
    std::uint64_t quarantined = 0; ///< corrupt/torn records + files
    std::uint64_t fingerprint_rejected = 0; ///< stale-model records
    std::uint64_t orphans_swept = 0; ///< orphan generations removed
    std::uint64_t tmp_swept = 0;     ///< stray tmp files removed
    std::uint64_t compactions = 0;
    std::uint64_t load_micros = 0; ///< wall time of the open() load
};

/** What compact() accomplished. */
struct RawCompactionResult
{
    std::uint64_t generation = 0; ///< the new live generation
    std::size_t kept = 0;         ///< records in the new generation
};

/** The on-disk raw-run memoization store (see the file comment). */
class PersistentRawStore
{
  public:
    /**
     * Open (creating if absent) the store at @p dir for the model
     * version @p fingerprint. Acquires the advisory lock in @p mode
     * (shared for appenders, exclusive for maintenance), recovers the
     * manifest, garbage-collects crash leftovers, and loads the live
     * generation into the in-memory index. Fails typed on lock
     * conflict (Overloaded when an exclusive holder is live) and on
     * I/O trouble.
     */
    static util::Expected<std::unique_ptr<PersistentRawStore>>
    open(const std::string& dir, std::uint32_t fingerprint,
         util::FileLock::Mode mode = util::FileLock::Mode::Shared);

    ~PersistentRawStore();

    PersistentRawStore(const PersistentRawStore&) = delete;
    PersistentRawStore& operator=(const PersistentRawStore&) = delete;

    /** The stored run for @p key, or nullptr. Counts hit/miss. */
    std::shared_ptr<const sim::RunResult> fetch(const RawRunKey& key);

    /** True when @p key is stored, without counting (the scheduler's
     *  cost probe; see RawRunCache::contains). */
    bool contains(const RawRunKey& key) const;

    /**
     * Write-behind one admissible run (no-op when the key is already
     * stored — cross-process duplicates are tolerated by replay, but
     * one handle never writes a key twice). A failed write warns and
     * degrades to memory-only; it never fails the sweep.
     */
    void append(const RawRunKey& key,
                const std::shared_ptr<const sim::RunResult>& run);

    /**
     * Rewrite the live generation from the index in canonical key
     * order, publish it in the manifest, and remove the old file.
     * Drops corrupt and stale-fingerprint records for good. Requires
     * the exclusive mode (InvalidArgument otherwise).
     */
    util::Expected<RawCompactionResult> compact();

    RawStoreStats stats() const;
    std::uint64_t generation() const { return generation_; }
    std::size_t size() const;
    const std::string& dir() const { return dir_; }
    std::uint32_t fingerprint() const { return fingerprint_; }

  private:
    PersistentRawStore() = default;

    std::string runsPath() const;
    util::Expected<bool> recoverManifest();
    util::Expected<bool> writeManifest(std::uint64_t generation);
    void quarantineFile(const std::string& path, const char* why);
    void load();
    bool ensureAppendFd();

    std::string dir_;
    std::uint32_t fingerprint_ = 0;
    util::FileLock::Mode mode_ = util::FileLock::Mode::Shared;
    util::FileLock lock_;
    std::uint64_t generation_ = 0;
    int append_fd_ = -1;

    mutable std::mutex mutex_;
    std::map<RawRunKey, std::shared_ptr<const sim::RunResult>> index_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t appends_ = 0;
    std::uint64_t loaded_ = 0;
    std::uint64_t quarantined_ = 0;
    std::uint64_t fingerprint_rejected_ = 0;
    std::uint64_t orphans_swept_ = 0;
    std::uint64_t tmp_swept_ = 0;
    std::uint64_t compactions_ = 0;
    std::uint64_t load_micros_ = 0;
};

/**
 * Maintenance sweep without opening a handle: remove stray `*.tmp.*`
 * files and orphan (non-live) generation files under @p dir, reading
 * the manifest read-only to learn the live generation. Used by
 * `tlppm_serve --compact` to clean a raw store it does not own.
 * Returns files removed; a missing or unreadable store sweeps nothing.
 */
std::size_t sweepRawStoreOrphans(const std::string& dir);

} // namespace tlp::runner

#endif // TLP_RUNNER_PERSISTENT_RAW_STORE_HPP
