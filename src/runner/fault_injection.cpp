#include "runner/fault_injection.hpp"

#include <cstdlib>

#include "util/logging.hpp"
#include "util/parse.hpp"

namespace tlp::runner {

namespace {

util::Expected<FaultKind>
parseKind(std::string_view word)
{
    if (word == "throw" || word == "point")
        return FaultKind::Throw;
    if (word == "nan")
        return FaultKind::Nan;
    if (word == "stall")
        return FaultKind::Stall;
    if (word == "kill")
        return FaultKind::Kill;
    return util::Error{util::ErrorCode::ParseError,
                       util::strcatMsg("unknown fault kind '",
                                       std::string(word),
                                       "' (expected point, throw, nan, "
                                       "stall, or kill)")};
}

} // namespace

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::None:
        return "none";
    case FaultKind::Throw:
        return "throw";
    case FaultKind::Nan:
        return "nan";
    case FaultKind::Stall:
        return "stall";
    case FaultKind::Kill:
        return "kill";
    }
    return "?";
}

util::Expected<FaultPlan>
parseFaultPlan(std::string_view spec)
{
    const auto fail = [&](const std::string& why) -> util::Error {
        return util::Error{
            util::ErrorCode::ParseError,
            util::strcatMsg("fault plan '", std::string(spec), "': ", why,
                            "; expected kind:K or kind:workload:n with "
                            "kind in {point, throw, nan, stall, kill}")};
    };

    const std::size_t first = spec.find(':');
    if (first == std::string_view::npos)
        return fail("missing ':' separator");

    auto kind = parseKind(spec.substr(0, first));
    if (!kind)
        return kind.error().withContext("parseFaultPlan");

    FaultPlan plan;
    plan.kind = kind.value();

    const std::string_view rest = spec.substr(first + 1);
    const std::size_t second = rest.find(':');
    if (second == std::string_view::npos) {
        // kind:K — ordinal selection.
        auto point = util::parseInt(rest, "fault point ordinal", 1);
        if (!point)
            return point.error().withContext("parseFaultPlan");
        plan.point = static_cast<std::uint64_t>(point.value());
        return plan;
    }

    // kind:workload:n — key selection.
    const std::string_view workload = rest.substr(0, second);
    if (workload.empty())
        return fail("empty workload name");
    auto n = util::parseInt(rest.substr(second + 1),
                            "fault plan thread count", 1, 1 << 20);
    if (!n)
        return n.error().withContext("parseFaultPlan");
    plan.workload = std::string(workload);
    plan.n = static_cast<int>(n.value());
    return plan;
}

const char*
storeFaultKindName(StoreFaultKind kind)
{
    switch (kind) {
    case StoreFaultKind::None:
        return "none";
    case StoreFaultKind::TornWrite:
        return "torn-write";
    case StoreFaultKind::ShortWrite:
        return "short-write";
    case StoreFaultKind::CorruptRead:
        return "corrupt-read";
    case StoreFaultKind::KillCompaction:
        return "kill-compaction";
    }
    return "?";
}

util::Expected<StoreFaultPlan>
parseStoreFaultPlan(std::string_view spec)
{
    const auto fail = [&](const std::string& why) -> util::Error {
        return util::Error{
            util::ErrorCode::ParseError,
            util::strcatMsg("store fault plan '", std::string(spec),
                            "': ", why,
                            "; expected kind[:K] with kind in "
                            "{torn-write, short-write, corrupt-read, "
                            "kill-compaction}")};
    };

    std::string_view word = spec;
    StoreFaultPlan plan;
    const std::size_t colon = spec.find(':');
    if (colon != std::string_view::npos) {
        word = spec.substr(0, colon);
        auto ordinal = util::parseInt(spec.substr(colon + 1),
                                      "store fault ordinal", 1);
        if (!ordinal)
            return ordinal.error().withContext("parseStoreFaultPlan");
        plan.ordinal = static_cast<std::uint64_t>(ordinal.value());
    }
    if (word == "torn-write")
        plan.kind = StoreFaultKind::TornWrite;
    else if (word == "short-write")
        plan.kind = StoreFaultKind::ShortWrite;
    else if (word == "corrupt-read")
        plan.kind = StoreFaultKind::CorruptRead;
    else if (word == "kill-compaction")
        plan.kind = StoreFaultKind::KillCompaction;
    else
        return fail(util::strcatMsg("unknown store fault kind '",
                                    std::string(word), "'"));
    return plan;
}

StoreFaultInjector&
StoreFaultInjector::instance()
{
    static StoreFaultInjector injector;
    return injector;
}

void
StoreFaultInjector::setPlan(const StoreFaultPlan& plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    fired_ = false;
    count_ = 0;
}

void
StoreFaultInjector::clearPlan()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = StoreFaultPlan{};
    fired_ = false;
    count_ = 0;
}

StoreFaultPlan
StoreFaultInjector::plan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plan_;
}

bool
StoreFaultInjector::installFromEnv()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!env_checked_) {
        env_checked_ = true;
        if (const char* spec = std::getenv("TLPPM_STORE_FAULT");
            spec != nullptr && *spec != '\0') {
            auto plan = parseStoreFaultPlan(spec);
            if (!plan) {
                util::fatal(util::strcatMsg("TLPPM_STORE_FAULT: ",
                                            plan.error().describe()));
            }
            plan_ = plan.value();
            fired_ = false;
            count_ = 0;
            util::warn(util::strcatMsg(
                "store fault injection armed: kind=",
                storeFaultKindName(plan_.kind),
                " ordinal=", plan_.ordinal));
        }
    }
    return plan_.active();
}

bool
StoreFaultInjector::shouldFault(StoreFaultKind kind, const char* site)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.active() || plan_.kind != kind || fired_)
        return false;
    if (++count_ != plan_.ordinal)
        return false;
    fired_ = true;
    util::warn(util::strcatMsg("store fault firing: ",
                               storeFaultKindName(kind), " at ", site));
    return true;
}

FaultInjector&
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::setPlan(const FaultPlan& plan)
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = plan;
    fired_ = false;
}

void
FaultInjector::clearPlan()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plan_ = FaultPlan{};
    fired_ = false;
}

FaultPlan
FaultInjector::plan() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plan_;
}

bool
FaultInjector::installFromEnv()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!env_checked_) {
        env_checked_ = true;
        if (const char* spec = std::getenv("TLPPM_FAULT");
            spec != nullptr && *spec != '\0') {
            auto plan = parseFaultPlan(spec);
            if (!plan) {
                util::fatal(util::strcatMsg("TLPPM_FAULT: ",
                                            plan.error().describe()));
            }
            plan_ = plan.value();
            fired_ = false;
            util::warn(util::strcatMsg(
                "fault injection armed: kind=", faultKindName(plan_.kind),
                plan_.byKey()
                    ? util::strcatMsg(" workload=", plan_.workload,
                                      " n=", plan_.n)
                    : util::strcatMsg(" point=", plan_.point)));
        }
    }
    return plan_.active();
}

FaultKind
FaultInjector::onMeasure(const std::string& workload, int n)
{
    const std::uint64_t ordinal =
        count_.fetch_add(1, std::memory_order_relaxed) + 1;

    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.active())
        return FaultKind::None;
    if (plan_.byKey()) {
        // Key plans are sticky: the point fails identically on every
        // attempt and at every job count.
        if (workload == plan_.workload && (plan_.n == 0 || n == plan_.n))
            return plan_.kind;
        return FaultKind::None;
    }
    // Ordinal plans fire exactly once — a transient fault.
    if (!fired_ && ordinal == plan_.point) {
        fired_ = true;
        return plan_.kind;
    }
    return FaultKind::None;
}

} // namespace tlp::runner
