/**
 * @file
 * RunMetrics — the per-sweep metrics snapshot of the observability
 * layer, serializable to one JSON object.
 *
 * A SweepReport already carries every counter the sweep runner
 * accumulates (outcome counts, two-level cache accounting, thermal rung
 * counts, kernel telemetry); RunMetrics is the export view of that
 * ledger: a flat value type with the derived rates precomputed and a
 * stable JSON schema that the CI observability leg and the perf guard
 * parse. Figure benches write it behind --metrics / TLPPM_METRICS.
 *
 * Schema stability: keys are only ever added, never renamed — CI
 * baselines (bench/perf_baseline.json ceilings) reference them by name.
 */

#ifndef TLP_RUNNER_RUN_METRICS_HPP
#define TLP_RUNNER_RUN_METRICS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/cmp.hpp"

namespace tlp::runner {

struct SweepReport;

/** Flat, exportable snapshot of one sweep's counters. */
struct RunMetrics
{
    // Outcome counts (SweepReport ledger).
    std::size_t ok = 0;
    std::size_t failed = 0;
    std::size_t retried = 0;
    std::size_t skipped = 0;
    std::size_t replayed = 0;
    std::size_t replay_corrupt = 0;      ///< journal lines CRC-quarantined
    std::size_t replay_inadmissible = 0; ///< replayed records cache refused
    std::size_t out_of_shard = 0;        ///< rows owned by another shard
    std::uint64_t shards = 1;            ///< shard count (1: unsharded)
    std::uint64_t shard_index = 0;       ///< this process's shard

    // Work actually executed.
    std::uint64_t sim_calls = 0;
    std::uint64_t sim_events = 0;
    std::uint64_t price_calls = 0;

    // Two-level cache accounting.
    std::uint64_t raw_hits = 0;
    std::uint64_t raw_misses = 0;
    std::uint64_t priced_hits = 0;
    std::uint64_t priced_misses = 0;

    // Thermal fixed-point rung accounting.
    std::uint64_t thermal_damped_solves = 0;
    std::uint64_t thermal_accelerated_solves = 0;
    std::uint64_t thermal_fallback_solves = 0;

    // Thermal linear-solver accounting: RHS solved vs factor traversals
    // that carried them (batching amortization), factorizations paid,
    // and the peak RHS batch width.
    std::uint64_t thermal_solves = 0;
    std::uint64_t thermal_solve_passes = 0;
    std::uint64_t thermal_factorizations = 0;
    std::uint64_t thermal_max_batch_rhs = 0;

    // Work-stealing pool accounting (all zero on a serial sweep) and
    // the cost-aware seeding split (cache-cold vs cache-warm tasks).
    std::uint64_t pool_tasks = 0;
    std::uint64_t pool_steals = 0;
    std::uint64_t pool_failed_steal_sweeps = 0;
    std::uint64_t pool_workers_pinned = 0;
    std::uint64_t sched_expensive = 0;
    std::uint64_t sched_cheap = 0;

    // Persistent raw-run store accounting (all zero without
    // --raw-store; store_attached distinguishes "off" from "cold").
    std::uint64_t store_attached = 0;
    std::uint64_t store_hits = 0;
    std::uint64_t store_misses = 0;
    std::uint64_t store_appends = 0;
    std::uint64_t store_loaded = 0;
    std::uint64_t store_quarantined = 0;
    std::uint64_t store_fp_rejected = 0;
    std::uint64_t store_load_micros = 0;

    // Trace front-end accounting (zero without trace:<path> workloads).
    std::uint64_t trace_loads = 0;
    std::uint64_t trace_load_micros = 0;

    // Kernel telemetry.
    std::uint64_t queue_high_water = 0;
    std::vector<sim::CoreCycleBreakdown> core_cycles;

    /** Copy every counter out of a finished sweep's report. */
    static RunMetrics fromReport(const SweepReport& report);

    /** hits / (hits + misses); 0 when the level was never consulted. */
    double rawHitRate() const;
    double pricedHitRate() const;
    double storeHitRate() const;

    /**
     * One JSON object with every counter above, the derived hit rates,
     * and a "per_core" array of {core, busy, stall_mem, stall_sync}
     * objects. Counters only, no timestamps: a serial (--jobs 1) sweep
     * serializes bit-reproducibly run over run. Parallel sweeps can
     * legitimately differ in the cache counters (two workers may race
     * to first-simulate the same point), never in the figure tables.
     */
    std::string toJson() const;
};

} // namespace tlp::runner

#endif // TLP_RUNNER_RUN_METRICS_HPP
