#include "runner/raw_run_cache.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::runner {

bool
RawRunCache::admissible(const sim::RunResult& run)
{
    return run.cycles > 0 && std::isfinite(run.seconds) &&
           std::isfinite(run.freq_hz) && run.freq_hz > 0.0;
}

std::shared_ptr<const sim::RunResult>
RawRunCache::find(const RawRunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
}

bool
RawRunCache::contains(const RawRunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(key) != entries_.end();
}

std::shared_ptr<const sim::RunResult>
RawRunCache::insert(const RawRunKey& key,
                    std::shared_ptr<const sim::RunResult> run)
{
    if (!run)
        return run;
    if (!admissible(*run)) {
        util::warn(util::strcatMsg(
            "RawRunCache: rejecting inadmissible run for ", key.workload,
            " n=", key.n, " f=", key.freq_hz,
            "; the point will be re-simulated"));
        return run;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(key, std::move(run));
    (void)inserted; // first writer wins; racers adopt the stored run
    return it->second;
}

std::size_t
RawRunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
RawRunCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

} // namespace tlp::runner
