#include "runner/raw_run_cache.hpp"

#include <cmath>

#include "runner/persistent_raw_store.hpp"
#include "util/logging.hpp"

namespace tlp::runner {

bool
RawRunCache::admissible(const sim::RunResult& run)
{
    return run.cycles > 0 && std::isfinite(run.seconds) &&
           std::isfinite(run.freq_hz) && run.freq_hz > 0.0;
}

std::shared_ptr<const sim::RunResult>
RawRunCache::find(const RawRunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    if (store_ != nullptr) {
        // Read-through: a disk hit is promoted into the map so later
        // lookups never touch the store again. The store keeps its own
        // hit/miss counters; ours keep meaning "memory hit" and
        // "missed both levels" (== a simulation happens).
        if (auto run = store_->fetch(key)) {
            entries_.emplace(key, run);
            return run;
        }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

bool
RawRunCache::contains(const RawRunKey& key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.find(key) != entries_.end())
        return true;
    // Non-counting store probe: the scheduler's cost classifier must
    // see disk-resident points as cheap without perturbing the
    // perf-guard counters.
    return store_ != nullptr && store_->contains(key);
}

void
RawRunCache::attachStore(PersistentRawStore* store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = store;
}

std::shared_ptr<const sim::RunResult>
RawRunCache::insert(const RawRunKey& key,
                    std::shared_ptr<const sim::RunResult> run)
{
    if (!run)
        return run;
    if (!admissible(*run)) {
        util::warn(util::strcatMsg(
            "RawRunCache: rejecting inadmissible run for ", key.workload,
            " n=", key.n, " f=", key.freq_hz,
            "; the point will be re-simulated"));
        return run;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] = entries_.emplace(key, std::move(run));
    // First writer wins; racers adopt the stored run. Only the winner
    // write-behinds to the persistent level (which also dedups against
    // records it loaded from disk).
    if (inserted && store_ != nullptr)
        store_->append(key, it->second);
    return it->second;
}

std::size_t
RawRunCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
RawRunCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_.store(0);
    misses_.store(0);
}

} // namespace tlp::runner
