#include "runner/run_metrics.hpp"

#include <cstdio>

#include "runner/sweep_report.hpp"

namespace tlp::runner {

RunMetrics
RunMetrics::fromReport(const SweepReport& report)
{
    RunMetrics m;
    m.ok = report.ok;
    m.failed = report.failed.size();
    m.retried = report.retried;
    m.skipped = report.skipped;
    m.replayed = report.replayed;
    m.replay_corrupt = report.replay_corrupt;
    m.replay_inadmissible = report.replay_inadmissible;
    m.out_of_shard = report.out_of_shard;
    m.shards = static_cast<std::uint64_t>(report.shards);
    m.shard_index = static_cast<std::uint64_t>(report.shard_index);
    m.sim_calls = report.sim_calls;
    m.sim_events = report.sim_events;
    m.price_calls = report.price_calls;
    m.raw_hits = report.raw_hits;
    m.raw_misses = report.raw_misses;
    m.priced_hits = report.priced_hits;
    m.priced_misses = report.priced_misses;
    m.thermal_damped_solves = report.thermal_damped_solves;
    m.thermal_accelerated_solves = report.thermal_accelerated_solves;
    m.thermal_fallback_solves = report.thermal_fallback_solves;
    m.thermal_solves = report.thermal_solves;
    m.thermal_solve_passes = report.thermal_solve_passes;
    m.thermal_factorizations = report.thermal_factorizations;
    m.thermal_max_batch_rhs = report.thermal_max_batch_rhs;
    m.pool_tasks = report.pool_tasks;
    m.pool_steals = report.pool_steals;
    m.pool_failed_steal_sweeps = report.pool_failed_steal_sweeps;
    m.pool_workers_pinned = report.pool_workers_pinned;
    m.sched_expensive = report.sched_expensive;
    m.sched_cheap = report.sched_cheap;
    m.store_attached = report.store_attached ? 1 : 0;
    m.store_hits = report.store_hits;
    m.store_misses = report.store_misses;
    m.store_appends = report.store_appends;
    m.store_loaded = report.store_loaded;
    m.store_quarantined = report.store_quarantined;
    m.store_fp_rejected = report.store_fp_rejected;
    m.store_load_micros = report.store_load_micros;
    m.trace_loads = report.trace_loads;
    m.trace_load_micros = report.trace_load_micros;
    m.queue_high_water = report.queue_high_water;
    m.core_cycles = report.core_cycles;
    return m;
}

namespace {

double
hitRate(std::uint64_t hits, std::uint64_t misses)
{
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
}

void
appendField(std::string& out, const char* key, std::uint64_t value,
            bool& first)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s  \"%s\": %llu", first ? "" : ",\n",
                  key, static_cast<unsigned long long>(value));
    out += buf;
    first = false;
}

void
appendField(std::string& out, const char* key, double value, bool& first)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s  \"%s\": %.6f", first ? "" : ",\n",
                  key, value);
    out += buf;
    first = false;
}

} // namespace

double
RunMetrics::rawHitRate() const
{
    return hitRate(raw_hits, raw_misses);
}

double
RunMetrics::pricedHitRate() const
{
    return hitRate(priced_hits, priced_misses);
}

double
RunMetrics::storeHitRate() const
{
    return hitRate(store_hits, store_misses);
}

std::string
RunMetrics::toJson() const
{
    std::string out = "{\n";
    bool first = true;
    appendField(out, "ok", static_cast<std::uint64_t>(ok), first);
    appendField(out, "failed", static_cast<std::uint64_t>(failed), first);
    appendField(out, "retried", static_cast<std::uint64_t>(retried), first);
    appendField(out, "skipped", static_cast<std::uint64_t>(skipped), first);
    appendField(out, "replayed", static_cast<std::uint64_t>(replayed),
                first);
    appendField(out, "replay_corrupt",
                static_cast<std::uint64_t>(replay_corrupt), first);
    appendField(out, "replay_inadmissible",
                static_cast<std::uint64_t>(replay_inadmissible), first);
    appendField(out, "out_of_shard",
                static_cast<std::uint64_t>(out_of_shard), first);
    appendField(out, "shards", shards, first);
    appendField(out, "shard_index", shard_index, first);
    appendField(out, "sim_calls", sim_calls, first);
    appendField(out, "sim_events", sim_events, first);
    appendField(out, "price_calls", price_calls, first);
    appendField(out, "raw_cache_hits", raw_hits, first);
    appendField(out, "raw_cache_misses", raw_misses, first);
    appendField(out, "raw_cache_hit_rate", rawHitRate(), first);
    appendField(out, "priced_cache_hits", priced_hits, first);
    appendField(out, "priced_cache_misses", priced_misses, first);
    appendField(out, "priced_cache_hit_rate", pricedHitRate(), first);
    appendField(out, "thermal_damped_solves", thermal_damped_solves,
                first);
    appendField(out, "thermal_accelerated_solves",
                thermal_accelerated_solves, first);
    appendField(out, "thermal_fallback_solves", thermal_fallback_solves,
                first);
    appendField(out, "thermal_solves", thermal_solves, first);
    appendField(out, "thermal_solve_passes", thermal_solve_passes, first);
    appendField(out, "thermal_factorizations", thermal_factorizations,
                first);
    appendField(out, "thermal_max_batch_rhs", thermal_max_batch_rhs,
                first);
    appendField(out, "pool_tasks", pool_tasks, first);
    appendField(out, "pool_steals", pool_steals, first);
    appendField(out, "pool_failed_steal_sweeps", pool_failed_steal_sweeps,
                first);
    appendField(out, "pool_workers_pinned", pool_workers_pinned, first);
    appendField(out, "sched_expensive", sched_expensive, first);
    appendField(out, "sched_cheap", sched_cheap, first);
    appendField(out, "store_attached", store_attached, first);
    appendField(out, "store_hits", store_hits, first);
    appendField(out, "store_misses", store_misses, first);
    appendField(out, "store_hit_rate", storeHitRate(), first);
    appendField(out, "store_appends", store_appends, first);
    appendField(out, "store_loaded", store_loaded, first);
    appendField(out, "store_quarantined", store_quarantined, first);
    appendField(out, "store_fp_rejected", store_fp_rejected, first);
    appendField(out, "store_load_micros", store_load_micros, first);
    appendField(out, "trace_loads", trace_loads, first);
    appendField(out, "trace_load_micros", trace_load_micros, first);
    appendField(out, "queue_high_water", queue_high_water, first);
    out += ",\n  \"per_core\": [";
    for (std::size_t i = 0; i < core_cycles.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "%s\n    {\"core\": %zu, \"busy\": %llu, "
                      "\"stall_mem\": %llu, \"stall_sync\": %llu}",
                      i == 0 ? "" : ",", i,
                      static_cast<unsigned long long>(core_cycles[i].busy),
                      static_cast<unsigned long long>(
                          core_cycles[i].stall_mem),
                      static_cast<unsigned long long>(
                          core_cycles[i].stall_sync));
        out += buf;
    }
    if (!core_cycles.empty())
        out += "\n  ";
    out += "]\n}\n";
    return out;
}

} // namespace tlp::runner
