#include "runner/journal.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <unistd.h>

#include "runner/fault_injection.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace tlp::runner {

namespace {

constexpr std::string_view kHeader = "{\"tlppm_journal\":1}";
constexpr std::string_view kShardMetaPrefix = "{\"tlppm_shard\":";

bool
isShardMetaLine(const std::string& line)
{
    return line.compare(0, kShardMetaPrefix.size(), kShardMetaPrefix) == 0;
}

/** Append @p value to @p out with %.17g: enough digits that strtod
 *  recovers the exact IEEE-754 bits, so resumed rows are byte-identical
 *  to never-interrupted ones. */
void
appendDouble(std::string& out, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out += buf;
}

void
appendU64(std::string& out, std::uint64_t value)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    out += buf;
}

/**
 * Locate `"<field>":` in @p line and return a pointer to the first
 * character of its value, or nullptr. Fields are short fixed tokens
 * written by formatLine(); workload names never contain quotes, so a
 * plain substring search is exact for this format.
 */
const char*
findField(const std::string& line, const char* field)
{
    const std::string token = util::strcatMsg("\"", field, "\":");
    const std::size_t pos = line.find(token);
    if (pos == std::string::npos)
        return nullptr;
    return line.c_str() + pos + token.size();
}

bool
parseDoubleField(const std::string& line, const char* field, double& out)
{
    const char* start = findField(line, field);
    if (start == nullptr)
        return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtod(start, &end);
    if (end == start)
        return false;
    // ERANGE underflow still yields the exact (sub)normal value — only
    // overflow (to +/-HUGE_VAL) means the text is not a double.
    return !(errno == ERANGE && (out >= HUGE_VAL || out <= -HUGE_VAL));
}

bool
parseU64Field(const std::string& line, const char* field,
              std::uint64_t& out)
{
    const char* start = findField(line, field);
    if (start == nullptr)
        return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtoull(start, &end, 10);
    return end != start && errno != ERANGE;
}

bool
parseStringField(const std::string& line, const char* field,
                 std::string& out)
{
    const char* start = findField(line, field);
    if (start == nullptr || *start != '"')
        return false;
    const char* close = std::strchr(start + 1, '"');
    if (close == nullptr)
        return false;
    out.assign(start + 1, close);
    return true;
}

/** Parse one journal line into (key, m). The CRC must already have been
 *  verified; this only extracts fields. */
bool
parseLine(const std::string& line, RunKey& key, Measurement& m)
{
    std::uint64_t n = 0;
    if (!parseStringField(line, "w", key.workload) ||
        !parseU64Field(line, "n", n) ||
        !parseDoubleField(line, "s", key.scale) ||
        !parseDoubleField(line, "v", key.vdd) ||
        !parseDoubleField(line, "f", key.freq_hz))
        return false;
    key.n = static_cast<int>(n);

    std::uint64_t runaway = 0;
    if (!parseU64Field(line, "cyc", m.cycles) ||
        !parseDoubleField(line, "sec", m.seconds) ||
        !parseDoubleField(line, "fhz", m.freq_hz) ||
        !parseDoubleField(line, "vdd", m.vdd) ||
        !parseDoubleField(line, "dyn", m.dynamic_w) ||
        !parseDoubleField(line, "sta", m.static_w) ||
        !parseDoubleField(line, "tot", m.total_w) ||
        !parseDoubleField(line, "tmp", m.avg_core_temp_c) ||
        !parseDoubleField(line, "den", m.core_power_density_w_m2) ||
        !parseU64Field(line, "ins", m.instructions) ||
        !parseU64Field(line, "run", runaway))
        return false;
    m.runaway = runaway != 0;
    return true;
}

/** Split @p line into payload and CRC; verify. */
bool
checkCrc(const std::string& line)
{
    static constexpr std::string_view kCrcToken = ",\"crc\":";
    const std::size_t pos = line.rfind(kCrcToken);
    if (pos == std::string::npos)
        return false;
    const char* start = line.c_str() + pos + kCrcToken.size();
    char* end = nullptr;
    errno = 0;
    const unsigned long long stored = std::strtoull(start, &end, 10);
    if (end == start || errno == ERANGE || stored > 0xFFFFFFFFull)
        return false;
    const std::uint32_t computed =
        util::crc32(std::string_view(line.data(), pos));
    return computed == static_cast<std::uint32_t>(stored);
}

} // namespace

std::string
Journal::formatLine(const RunKey& key, const Measurement& m)
{
    std::string line;
    line.reserve(384);
    line += "{\"k\":{\"w\":\"";
    line += key.workload;
    line += "\",\"n\":";
    appendU64(line, static_cast<std::uint64_t>(key.n));
    line += ",\"s\":";
    appendDouble(line, key.scale);
    line += ",\"v\":";
    appendDouble(line, key.vdd);
    line += ",\"f\":";
    appendDouble(line, key.freq_hz);
    line += "},\"m\":{\"cyc\":";
    appendU64(line, m.cycles);
    line += ",\"sec\":";
    appendDouble(line, m.seconds);
    line += ",\"fhz\":";
    appendDouble(line, m.freq_hz);
    line += ",\"vdd\":";
    appendDouble(line, m.vdd);
    line += ",\"dyn\":";
    appendDouble(line, m.dynamic_w);
    line += ",\"sta\":";
    appendDouble(line, m.static_w);
    line += ",\"tot\":";
    appendDouble(line, m.total_w);
    line += ",\"tmp\":";
    appendDouble(line, m.avg_core_temp_c);
    line += ",\"den\":";
    appendDouble(line, m.core_power_density_w_m2);
    line += ",\"ins\":";
    appendU64(line, m.instructions);
    line += ",\"run\":";
    line += m.runaway ? '1' : '0';
    line += "}";
    const std::uint32_t crc = util::crc32(line);
    line += ",\"crc\":";
    appendU64(line, crc);
    line += "}";
    return line;
}

std::string
Journal::headerLine()
{
    return std::string(kHeader);
}

Journal::Journal(std::string path, int flush_every)
    : path_(std::move(path)),
      flush_every_(flush_every < 1 ? 1 : flush_every)
{
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ == nullptr) {
        util::fatal(util::strcatMsg("journal: cannot open '", path_,
                                    "' for appending: ",
                                    std::strerror(errno)));
    }
    // Header only on a brand-new (or truncated-empty) file, so repeated
    // resume runs keep appending to one journal.
    if (std::ftell(file_) == 0) {
        created_empty_ = true;
        std::fwrite(kHeader.data(), 1, kHeader.size(), file_);
        std::fputc('\n', file_);
        std::fflush(file_);
        ::fsync(::fileno(file_));
    }
}

Journal::~Journal()
{
    if (file_ != nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        std::fflush(file_);
        ::fsync(::fileno(file_));
        std::fclose(file_);
    }
}

void
Journal::append(const RunKey& key, const Measurement& m)
{
    util::traceInstant("journal", "append:", key.workload, " n=", key.n,
                       " vdd=", key.vdd);
    const std::string line = formatLine(key, m);
    std::lock_guard<std::mutex> lock(mutex_);
    // A previous short write left an unterminated line; terminate it so
    // this record starts on a fresh line and only the torn record is
    // quarantined on replay — never two glued together.
    if (tail_torn_) {
        if (std::fputc('\n', file_) == EOF)
            return; // still out of space: drop this record entirely
        tail_torn_ = false;
    }
    std::size_t to_write = line.size();
    if (StoreFaultInjector::instance().shouldFault(
            StoreFaultKind::ShortWrite, "journal-append"))
        to_write = line.size() / 2;
    const std::size_t written =
        std::fwrite(line.data(), 1, to_write, file_);
    const bool intact = written == line.size() &&
        std::fputc('\n', file_) != EOF;
    if (!intact) {
        ++write_errors_;
        tail_torn_ = true;
        util::warn(util::strcatMsg(
            "journal: short write on '", path_, "' (", key.workload,
            " n=", key.n, "); the record is lost and the point will be "
            "re-run on resume"));
    } else {
        ++appended_;
    }
    if (++unflushed_ >= flush_every_) {
        std::fflush(file_);
        ::fsync(::fileno(file_));
        unflushed_ = 0;
    }
}

void
Journal::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::fflush(file_);
    ::fsync(::fileno(file_));
    unflushed_ = 0;
}

std::uint64_t
Journal::appended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_;
}

std::uint64_t
Journal::writeErrors() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return write_errors_;
}

ReplayStats
Journal::replayInto(const std::string& path, RunCache& cache)
{
    ReplayStats stats;
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return stats; // fresh run with --resume: nothing to replay

    std::string line;
    char buf[4096];
    std::size_t line_no = 0;
    const auto consume = [&](bool final_flush) {
        if (line.empty() && final_flush)
            return;
        ++line_no;
        if (line_no == 1 && line == kHeader) {
            line.clear();
            return;
        }
        // Shard metadata identifies the journal, it is not a record;
        // skip it (CRC-guarded: a damaged one is quarantined like any
        // other corrupt line).
        if (isShardMetaLine(line)) {
            if (!checkCrc(line)) {
                ++stats.corrupt;
                util::warn(util::strcatMsg(
                    "journal: skipping corrupt shard metadata at line ",
                    line_no, " of '", path, "'"));
            }
            line.clear();
            return;
        }
        RunKey key;
        Measurement m;
        if (!checkCrc(line) || !parseLine(line, key, m)) {
            ++stats.corrupt;
            util::traceInstant("journal", "quarantined:corrupt line ",
                               line_no);
            util::warn(util::strcatMsg("journal: skipping corrupt line ",
                                       line_no, " of '", path, "'"));
        } else if (!RunCache::admissible(m)) {
            ++stats.inadmissible;
            util::traceInstant("journal",
                               "quarantined:inadmissible line ", line_no,
                               " ", key.workload, " n=", key.n);
            util::warn(util::strcatMsg(
                "journal: dropping non-finite record at line ", line_no,
                " of '", path, "' (", key.workload, " n=", key.n,
                "); the point will be recomputed"));
        } else {
            cache.insert(key, m); // duplicate keys: first record wins
            ++stats.entries;
        }
        line.clear();
    };

    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            if (buf[i] == '\n')
                consume(false);
            else
                line += buf[i];
        }
    }
    consume(true); // torn final line (no newline): CRC-checked, dropped
    std::fclose(file);
    return stats;
}

std::string
Journal::formatShardMetaLine(const ShardInfo& info)
{
    std::string line;
    line.reserve(128);
    line += kShardMetaPrefix;
    line += "{\"label\":\"";
    line += info.label;
    line += "\",\"s\":";
    appendDouble(line, info.scale);
    line += ",\"k\":";
    appendU64(line, static_cast<std::uint64_t>(info.shards));
    line += ",\"i\":";
    appendU64(line, static_cast<std::uint64_t>(info.shard_index));
    // Only non-default workload sets are stamped, so journals of plain
    // suite sweeps keep the exact line format earlier releases wrote.
    if (!info.workloads.empty()) {
        line += ",\"apps\":\"";
        line += info.workloads;
        line += "\"";
    }
    line += "}";
    const std::uint32_t crc = util::crc32(line);
    line += ",\"crc\":";
    appendU64(line, crc);
    line += "}";
    return line;
}

void
Journal::appendShardMeta(const ShardInfo& info)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!created_empty_)
        return; // reopened journal: metadata already on disk
    const std::string line = formatShardMetaLine(info);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    std::fflush(file_);
    ::fsync(::fileno(file_));
}

util::Expected<std::optional<ShardInfo>>
Journal::readShardInfo(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return std::optional<ShardInfo>{}; // missing file: no metadata

    std::optional<ShardInfo> found;
    util::Error error;
    bool bad = false;
    std::string line;
    char buf[4096];
    std::size_t line_no = 0;
    const auto consume = [&]() {
        ++line_no;
        if (found || bad || !isShardMetaLine(line)) {
            line.clear();
            return;
        }
        ShardInfo info;
        std::uint64_t shards = 0;
        std::uint64_t index = 0;
        if (!checkCrc(line) ||
            !parseStringField(line, "label", info.label) ||
            !parseDoubleField(line, "s", info.scale) ||
            !parseU64Field(line, "k", shards) ||
            !parseU64Field(line, "i", index) || shards < 1 ||
            index >= shards) {
            bad = true;
            error = util::Error{
                util::ErrorCode::CorruptData,
                util::strcatMsg("journal '", path,
                                "': shard metadata at line ", line_no,
                                " is corrupt")};
        } else {
            info.shards = static_cast<int>(shards);
            info.shard_index = static_cast<int>(index);
            // Optional field (absent on plain suite sweeps and on
            // journals from before workload selection existed).
            parseStringField(line, "apps", info.workloads);
            found = info;
        }
        line.clear();
    };
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            if (buf[i] == '\n')
                consume();
            else
                line += buf[i];
        }
    }
    if (!line.empty())
        consume();
    std::fclose(file);
    if (bad)
        return error;
    return found;
}

util::Expected<MergeStats>
Journal::mergeShards(const std::vector<std::string>& shard_paths,
                     const std::string& out_path)
{
    if (shard_paths.empty())
        return util::Error{util::ErrorCode::InvalidArgument,
                           "mergeShards: no shard journals given"};

    // Identity pass: every input must be a shard journal, all agreeing
    // on (label, scale, shards), and the indices must tile {0, …, K-1}.
    std::vector<ShardInfo> infos;
    infos.reserve(shard_paths.size());
    for (const std::string& path : shard_paths) {
        auto info = readShardInfo(path);
        if (!info.ok())
            return std::move(info.error());
        if (!info.value().has_value())
            return util::Error{
                util::ErrorCode::CorruptData,
                util::strcatMsg("mergeShards: '", path,
                                "' has no shard metadata (missing file "
                                "or not a shard journal)")};
        infos.push_back(*info.value());
    }
    const ShardInfo& first = infos.front();
    if (static_cast<std::size_t>(first.shards) != shard_paths.size())
        return util::Error{
            util::ErrorCode::InvalidArgument,
            util::strcatMsg("mergeShards: sweep was sharded ",
                            first.shards, " ways but ",
                            shard_paths.size(),
                            " journal(s) were given")};
    std::vector<char> seen(static_cast<std::size_t>(first.shards), 0);
    for (std::size_t s = 0; s < infos.size(); ++s) {
        const ShardInfo& info = infos[s];
        if (info.label != first.label || info.shards != first.shards ||
            quantizeScale(info.scale) != quantizeScale(first.scale) ||
            info.workloads != first.workloads)
            return util::Error{
                util::ErrorCode::InvalidArgument,
                util::strcatMsg(
                    "mergeShards: '", shard_paths[s], "' is shard ",
                    info.shard_index, "/", info.shards, " of ",
                    info.label, " (scale ", info.scale,
                    ") — not the same sweep as '", shard_paths[0],
                    "' (", first.label, " ", first.shards,
                    "-way, scale ", first.scale, ")")};
        if (seen[static_cast<std::size_t>(info.shard_index)])
            return util::Error{
                util::ErrorCode::InvalidArgument,
                util::strcatMsg("mergeShards: shard index ",
                                info.shard_index,
                                " appears more than once ('",
                                shard_paths[s], "')")};
        seen[static_cast<std::size_t>(info.shard_index)] = 1;
    }
    // Count == K and no duplicates ⇒ every index present; the loop
    // above cannot leave a hole, but keep the check explicit.
    for (int i = 0; i < first.shards; ++i) {
        if (!seen[static_cast<std::size_t>(i)])
            return util::Error{
                util::ErrorCode::InvalidArgument,
                util::strcatMsg("mergeShards: shard index ", i,
                                " is missing")};
    }

    // Merge pass: replay every shard into one cache. Cross-shard
    // duplicates (the shared n = 1 baselines) are bit-identical, so
    // first-record-wins deduplication is exact.
    MergeStats stats;
    stats.shards = shard_paths.size();
    stats.label = first.label;
    stats.scale = first.scale;
    stats.workloads = first.workloads;
    RunCache cache;
    std::size_t replayed_total = 0;
    for (const std::string& path : shard_paths) {
        const ReplayStats rs = replayInto(path, cache);
        replayed_total += rs.entries;
        stats.corrupt += rs.corrupt;
        stats.inadmissible += rs.inadmissible;
    }
    stats.entries = cache.size();
    stats.duplicates = replayed_total - cache.size();

    // Rewrite in canonical key order: the merged journal is the
    // deduplicated, sorted image of the union — identical no matter
    // which shard ran where, or in what order the journals were given.
    std::FILE* out = std::fopen(out_path.c_str(), "wb");
    if (out == nullptr)
        return util::Error{
            util::ErrorCode::IoError,
            util::strcatMsg("mergeShards: cannot write '", out_path,
                            "': ", std::strerror(errno))};
    const std::string header = headerLine();
    bool intact = std::fwrite(header.data(), 1, header.size(), out) ==
            header.size() &&
        std::fputc('\n', out) != EOF;
    cache.forEach([&](const RunKey& key, const Measurement& m) {
        if (!intact)
            return;
        const std::string line = formatLine(key, m);
        intact = std::fwrite(line.data(), 1, line.size(), out) ==
                line.size() &&
            std::fputc('\n', out) != EOF;
    });
    intact = std::fflush(out) == 0 && intact;
    ::fsync(::fileno(out));
    std::fclose(out);
    if (!intact)
        return util::Error{
            util::ErrorCode::IoError,
            util::strcatMsg("mergeShards: short write on '", out_path,
                            "'")};
    return stats;
}

} // namespace tlp::runner
