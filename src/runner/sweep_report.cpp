#include "runner/sweep_report.hpp"

#include "runner/run_metrics.hpp"
#include "util/logging.hpp"

namespace tlp::runner {

std::string
SweepReport::summary() const
{
    std::string text =
        util::strcatMsg("ok=", ok, " failed=", failed.size(),
                        " retried=", retried, " skipped=", skipped,
                        " replayed=", replayed, " sim_calls=", sim_calls,
                        " sim_events=", sim_events,
                        " price_calls=", price_calls, " raw=", raw_hits,
                        "/", raw_misses, " priced=", priced_hits, "/",
                        priced_misses);
    if (store_attached) {
        text += util::strcatMsg(" store=", store_hits, "/", store_misses,
                                " store_appends=", store_appends);
    }
    return text;
}

std::string
SweepReport::metricsJson() const
{
    return RunMetrics::fromReport(*this).toJson();
}

} // namespace tlp::runner
