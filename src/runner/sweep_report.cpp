#include "runner/sweep_report.hpp"

#include "util/logging.hpp"

namespace tlp::runner {

std::string
SweepReport::summary() const
{
    return util::strcatMsg("ok=", ok, " failed=", failed.size(),
                           " retried=", retried, " skipped=", skipped,
                           " replayed=", replayed);
}

} // namespace tlp::runner
