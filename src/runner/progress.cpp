#include "runner/progress.hpp"

#include <cstdio>

namespace tlp::runner {

ProgressReporter::ProgressReporter(std::size_t total, std::string label,
                                   double min_period_s,
                                   std::size_t replayed)
    : label_(std::move(label)), min_period_s_(min_period_s),
      total_(total), replayed_(replayed > total ? total : replayed),
      start_(Clock::now()), last_print_(start_), fresh_start_(start_),
      fresh_started_(replayed_ == 0)
{
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

double
ProgressReporter::etaSecondsLocked(Clock::time_point now) const
{
    // Rate from post-replay completions only: replayed points finish in
    // microseconds and would otherwise collapse the projected rate.
    if (done_ <= replayed_ || total_ <= done_ || !fresh_started_)
        return 0.0;
    const std::size_t fresh_done = done_ - replayed_;
    const double fresh_elapsed =
        std::chrono::duration<double>(now - fresh_start_).count();
    return fresh_elapsed / static_cast<double>(fresh_done) *
        static_cast<double>(total_ - done_);
}

double
ProgressReporter::etaSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return etaSecondsLocked(Clock::now());
}

void
ProgressReporter::taskDone(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    const Clock::time_point now = Clock::now();
    // The completion that clears the replayed prefix starts the ETA
    // clock: everything after it is real work at the real rate.
    if (!fresh_started_ && done_ >= replayed_) {
        fresh_start_ = now;
        fresh_started_ = true;
    }
    const bool final = done_ >= total_;
    const double since_print =
        std::chrono::duration<double>(now - last_print_).count();
    if (!final && printed_ && since_print < min_period_s_)
        return;

    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double eta = etaSecondsLocked(now);
    const int percent = total_ > 0
        ? static_cast<int>(100.0 * static_cast<double>(done_) /
                           static_cast<double>(total_))
        : 100;
    if (replayed_ > 0) {
        std::fprintf(stderr,
                     "[%s] %zu/%zu (%d%%, %zu replayed) elapsed %.1fs "
                     "eta %.1fs - %s\n",
                     label_.c_str(), done_, total_, percent, replayed_,
                     elapsed, eta, key.c_str());
    } else {
        std::fprintf(stderr,
                     "[%s] %zu/%zu (%d%%) elapsed %.1fs eta %.1fs - %s\n",
                     label_.c_str(), done_, total_, percent, elapsed, eta,
                     key.c_str());
    }
    std::fflush(stderr);
    last_print_ = now;
    printed_ = true;
}

} // namespace tlp::runner
