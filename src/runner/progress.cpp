#include "runner/progress.hpp"

#include <cstdio>

namespace tlp::runner {

ProgressReporter::ProgressReporter(std::size_t total, std::string label,
                                   double min_period_s)
    : label_(std::move(label)), min_period_s_(min_period_s),
      total_(total), start_(Clock::now()), last_print_(start_)
{
}

std::size_t
ProgressReporter::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

void
ProgressReporter::taskDone(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    const Clock::time_point now = Clock::now();
    const bool final = done_ >= total_;
    const double since_print =
        std::chrono::duration<double>(now - last_print_).count();
    if (!final && printed_ && since_print < min_period_s_)
        return;

    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double eta = done_ > 0 && total_ > done_
        ? elapsed / static_cast<double>(done_) *
            static_cast<double>(total_ - done_)
        : 0.0;
    const int percent = total_ > 0
        ? static_cast<int>(100.0 * static_cast<double>(done_) /
                           static_cast<double>(total_))
        : 100;
    std::fprintf(stderr, "[%s] %zu/%zu (%d%%) elapsed %.1fs eta %.1fs - %s\n",
                 label_.c_str(), done_, total_, percent, elapsed, eta,
                 key.c_str());
    std::fflush(stderr);
    last_print_ = now;
    printed_ = true;
}

} // namespace tlp::runner
