/**
 * @file
 * RawRunCache — memoization of voltage-independent simulation results.
 *
 * A cycle-level run is a pure function of (workload, thread count, problem
 * scale, frequency): cycle counts and activity traces never depend on Vdd.
 * Pricing a run at a voltage (Wattch-style power from activity counts plus
 * the coupled thermal solve) is orders of magnitude cheaper than simulating
 * it, so the bisection searches of both paper scenarios — Scenario I over
 * Vdd at fixed frequency, Scenario II over frequency against a power
 * budget — should pay for at most one simulation per distinct frequency
 * and re-price the cached activity counts for every candidate voltage.
 *
 * This is the first level of the two-level cache: RawRunCache holds the
 * expensive sim::RunResult on the voltage-free key, while RunCache (the
 * second level) keeps fully priced Measurements on the full key including
 * Vdd. Entries are shared_ptr<const RunResult> so concurrent workers can
 * price the same run without copying its StatRegistry.
 *
 * Thread-safety and integrity mirror RunCache: a mutex guards the map, the
 * simulation runs outside the lock (first writer wins on a race; the
 * simulator is deterministic so both racers hold identical results), and
 * only admissible results are ever stored.
 *
 * An optional PersistentRawStore can be attached below the in-memory
 * map, making this a read-through/write-behind two-level cache: find()
 * falls through to the store on a memory miss (promoting disk hits
 * into memory), insert() write-behind-appends every first-seen run,
 * and contains() probes both levels without counting — so a warm sweep
 * against a populated store performs zero simulations and the
 * scheduler's cost-aware seeding classifies disk-resident points as
 * cheap. The miss counter then means "missed BOTH levels", preserving
 * the raw_misses == simulations-performed invariant the perf guards
 * rely on.
 */

#ifndef TLP_RUNNER_RAW_RUN_CACHE_HPP
#define TLP_RUNNER_RAW_RUN_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "runner/run_cache.hpp"
#include "sim/cmp.hpp"

namespace tlp::runner {

class PersistentRawStore;

/** Identity of a raw (unpriced) simulation run: RunKey minus vdd. */
struct RawRunKey
{
    std::string workload; ///< workload name (workloads::WorkloadInfo::name)
    int n = 0;            ///< thread / core count
    double scale = 0.0;   ///< problem-size scale
    double freq_hz = 0.0; ///< chip frequency [Hz]

    /** Same quantized comparison as RunKey, minus the vdd field. */
    friend bool operator<(const RawRunKey& a, const RawRunKey& b)
    {
        if (a.workload != b.workload)
            return a.workload < b.workload;
        return std::make_tuple(a.n, quantizeScale(a.scale),
                               quantizeFreq(a.freq_hz)) <
               std::make_tuple(b.n, quantizeScale(b.scale),
                               quantizeFreq(b.freq_hz));
    }
};

/** Thread-safe memoization of sim::RunResult keyed on RawRunKey. */
class RawRunCache
{
  public:
    /** True when the run is usable for pricing: finite timing fields and
     *  a non-zero cycle count. The gate that keeps a poisoned or
     *  degenerate run from being replayed to every voltage. */
    static bool admissible(const sim::RunResult& run);

    /** The cached run for @p key, or nullptr. Counts hit/miss. */
    std::shared_ptr<const sim::RunResult> find(const RawRunKey& key) const;

    /** True when @p key is cached, without counting a hit or miss (the
     *  scheduler's cost probe; see RunCache::contains). */
    bool contains(const RawRunKey& key) const;

    /**
     * Record @p run for @p key (first writer wins on a race) and return
     * the canonical stored pointer — the caller should continue with the
     * returned run so racing workers price the same object. Inadmissible
     * runs are not stored and are returned as-is.
     */
    std::shared_ptr<const sim::RunResult>
    insert(const RawRunKey& key, std::shared_ptr<const sim::RunResult> run);

    /** Attach (or detach with nullptr) the persistent second level.
     *  Not owned; must outlive this cache. */
    void attachStore(PersistentRawStore* store);

    /** The attached persistent level, or nullptr. */
    PersistentRawStore* store() const { return store_; }

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;
    void clear();

  private:
    mutable std::mutex mutex_;
    /** mutable: find() promotes persistent-store hits into the map. */
    mutable std::map<RawRunKey, std::shared_ptr<const sim::RunResult>>
        entries_;
    PersistentRawStore* store_ = nullptr;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace tlp::runner

#endif // TLP_RUNNER_RAW_RUN_CACHE_HPP
