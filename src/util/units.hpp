/**
 * @file
 * Physical constants and unit-conversion helpers used throughout the model.
 *
 * All model code keeps quantities in SI base units (volts, hertz, watts,
 * seconds, kelvins) unless a name says otherwise; these helpers exist so
 * conversions are explicit and greppable.
 */

#ifndef TLP_UTIL_UNITS_HPP
#define TLP_UTIL_UNITS_HPP

namespace tlp::util {

/** Boltzmann constant [J/K]. */
inline constexpr double kBoltzmann = 1.380649e-23;

/** Elementary charge [C]. */
inline constexpr double kElectronCharge = 1.602176634e-19;

/** Offset between Celsius and Kelvin scales. */
inline constexpr double kCelsiusToKelvinOffset = 273.15;

/** Room temperature used as the leakage normalization point [deg C]. */
inline constexpr double kRoomTemperatureC = 25.0;

/** Convert degrees Celsius to kelvins. */
constexpr double
celsiusToKelvin(double celsius)
{
    return celsius + kCelsiusToKelvinOffset;
}

/** Convert kelvins to degrees Celsius. */
constexpr double
kelvinToCelsius(double kelvin)
{
    return kelvin - kCelsiusToKelvinOffset;
}

/** Thermal voltage kT/q at a temperature in kelvins [V]. */
constexpr double
thermalVoltage(double kelvin)
{
    return kBoltzmann * kelvin / kElectronCharge;
}

/** Convenience multipliers. */
inline constexpr double kGiga = 1e9;
inline constexpr double kMega = 1e6;
inline constexpr double kKilo = 1e3;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;
inline constexpr double kPico = 1e-12;
inline constexpr double kFemto = 1e-15;

/** Convert gigahertz to hertz. */
constexpr double ghz(double value) { return value * kGiga; }

/** Convert megahertz to hertz. */
constexpr double mhz(double value) { return value * kMega; }

/** Convert nanoseconds to seconds. */
constexpr double ns(double value) { return value * kNano; }

/** Convert square millimetres to square metres. */
constexpr double mm2(double value) { return value * 1e-6; }

} // namespace tlp::util

#endif // TLP_UTIL_UNITS_HPP
