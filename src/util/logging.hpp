/**
 * @file
 * Lightweight logging and error-reporting helpers.
 *
 * Modeled after gem5's logging conventions:
 *  - inform(): normal status messages.
 *  - warn():   suspicious-but-survivable conditions.
 *  - fatal():  user error (bad configuration/arguments); throws FatalError so
 *              tests can assert on it and embedders can recover.
 *  - panic():  internal invariant violation (a library bug); throws
 *              PanicError.
 */

#ifndef TLP_UTIL_LOGGING_HPP
#define TLP_UTIL_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace tlp::util {

/** Error thrown by fatal(): the caller supplied an unusable configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/** Error thrown by panic(): an internal invariant of the library broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/** Verbosity levels for the global logger. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the process-wide log verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current process-wide log verbosity. */
LogLevel logLevel();

/** Print an informational message when verbosity >= Info. */
void inform(const std::string& msg);

/** Print a warning message when verbosity >= Warn. */
void warn(const std::string& msg);

/** Print a debug message when verbosity >= Debug. */
void debug(const std::string& msg);

/** Report a user/configuration error; always throws FatalError. */
[[noreturn]] void fatal(const std::string& msg);

/** Report an internal invariant violation; always throws PanicError. */
[[noreturn]] void panic(const std::string& msg);

/**
 * Build a message from stream-style pieces, e.g.
 * `strcat_msg("got ", n, " items")`.
 */
template <typename... Args>
std::string
strcatMsg(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace tlp::util

#endif // TLP_UTIL_LOGGING_HPP
