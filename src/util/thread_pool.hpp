/**
 * @file
 * ThreadPool — a fixed-size worker pool with futures-based task submission.
 *
 * The experiment layer (runner::SweepRunner) fans independent simulation
 * runs across hardware threads with this pool: submit() returns a
 * std::future carrying the task's result (or its exception), and
 * parallelFor() blocks until an index range has been fully processed.
 * Destruction drains the queue: every task submitted before the destructor
 * runs is executed before the destructor returns.
 *
 * Worker threads are identified by currentWorkerIndex(), which lets
 * callers maintain strictly per-worker state (e.g. one simulator instance
 * per worker) without locking.
 */

#ifndef TLP_UTIL_THREAD_POOL_HPP
#define TLP_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tlp::util {

/** Fixed worker-count task pool. */
class ThreadPool
{
  public:
    /** Spawn @p n_threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned n_threads);

    /** Drains: every submitted task completes before this returns. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p f; the returned future carries its result. An exception
     * thrown by the task propagates through future::get().
     */
    template <typename F>
    auto
    submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>&>>
    {
        using R = std::invoke_result_t<std::decay_t<F>&>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run body(i) for every i in [begin, end) across the pool and wait.
     * The first task exception (in index order) is rethrown. Must not be
     * called from a pool worker (the waiting would deadlock the pool).
     */
    template <typename F>
    void
    parallelFor(std::size_t begin, std::size_t end, F&& body)
    {
        std::vector<std::future<void>> futures;
        futures.reserve(end > begin ? end - begin : 0);
        for (std::size_t i = begin; i < end; ++i)
            futures.push_back(submit([&body, i] { body(i); }));
        for (auto& future : futures)
            future.get();
    }

    /**
     * Index of the calling thread within its owning pool, or -1 when the
     * caller is not a pool worker.
     */
    static int currentWorkerIndex();

    /**
     * Default parallelism: the TLPPM_JOBS environment variable when set to
     * a positive integer, otherwise std::thread::hardware_concurrency()
     * (at least 1).
     */
    static unsigned defaultJobs();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop(unsigned index);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_;
    bool stopping_ = false;
};

} // namespace tlp::util

#endif // TLP_UTIL_THREAD_POOL_HPP
