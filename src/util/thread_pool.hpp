/**
 * @file
 * ThreadPool — a work-stealing worker pool with futures-based task
 * submission.
 *
 * The experiment layer (runner::SweepRunner) fans independent simulation
 * runs across hardware threads with this pool. Post-caching, per-task
 * cost is wildly uneven — a cache-hit point is microseconds while a full
 * sim::Cmp run is seconds — so a single global queue leaves workers idle
 * behind one long task. Instead every worker owns a deque: it pushes and
 * pops its own work LIFO (cache-warm), and an idle worker steals FIFO
 * from a randomized sequence of victims, so the oldest (and, with the
 * sweep runner's expensive-first seeding, the costliest) tasks migrate to
 * idle workers and the tail balances itself. External submissions are
 * distributed round-robin across the worker deques.
 *
 * Execution *order* is therefore nondeterministic — every caller that
 * needs deterministic output must (and does) assemble results by task
 * index, never by completion order. submit() returns a std::future
 * carrying the task's result (or its exception), and parallelFor()
 * blocks until an index range has been fully processed. Destruction
 * drains: every task submitted before the destructor runs is executed
 * before the destructor returns.
 *
 * Worker threads are identified by currentWorkerIndex(), which lets
 * callers maintain strictly per-worker state (e.g. one simulator instance
 * per worker) without locking.
 *
 * Optional CPU pinning: when the TLPPM_AFFINITY environment variable is
 * set to 1/on/true, worker i pins itself to the i-th allowed CPU (round
 * robin over the process affinity mask) via pthread_setaffinity_np.
 * Off by default; a no-op on non-Linux platforms. Pinning can reorder
 * execution, never results — the determinism contract above is
 * unconditional.
 */

#ifndef TLP_UTIL_THREAD_POOL_HPP
#define TLP_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

namespace tlp::util {

/** Work-stealing task pool with a fixed worker count. */
class ThreadPool
{
  public:
    /** Lifetime counters of the pool's scheduler (monotone; read them
     *  only while no caller is blocked mid-submission for exactness). */
    struct Stats
    {
        std::uint64_t submitted = 0; ///< tasks accepted by submit()
        std::uint64_t executed = 0;  ///< tasks run to completion
        /** Tasks an idle worker took from another worker's deque. The
         *  balance signal: 0 means every worker lived off its own
         *  round-robin share; a large fraction of `executed` means the
         *  shares were uneven and stealing carried the load. */
        std::uint64_t steals = 0;
        /** Steal sweeps that found every victim deque empty (the thief
         *  then re-checks for shutdown and sleeps). */
        std::uint64_t failed_steal_sweeps = 0;
        /** Workers successfully pinned to a CPU (0 unless
         *  TLPPM_AFFINITY enabled pinning and the platform supports
         *  it). */
        std::uint64_t workers_pinned = 0;
    };

    /** Spawn @p n_threads workers (clamped to >= 1). */
    explicit ThreadPool(unsigned n_threads);

    /** Drains: every submitted task completes before this returns. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p f; the returned future carries its result. An exception
     * thrown by the task propagates through future::get(). Called from a
     * pool worker, the task goes to that worker's own deque (LIFO);
     * otherwise it is distributed round-robin.
     */
    template <typename F>
    auto
    submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>&>>
    {
        using R = std::invoke_result_t<std::decay_t<F>&>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(f));
        std::future<R> future = task->get_future();
        enqueue([task] { (*task)(); });
        return future;
    }

    /**
     * Run body(i) for every i in [begin, end) across the pool and wait.
     * The range is submitted as O(workers) contiguous chunks, not one
     * task per index; every index is attempted even when some throw, and
     * the exception with the smallest index is rethrown after the range
     * completes. Must not be called from a pool worker (the waiting
     * would deadlock the pool).
     */
    template <typename F>
    void
    parallelFor(std::size_t begin, std::size_t end, F&& body)
    {
        if (begin >= end)
            return;
        const std::size_t count = end - begin;
        // Several chunks per worker so a cheap chunk finishing early
        // frees its worker to steal a slice of a slow one.
        const std::size_t chunks =
            std::min<std::size_t>(count, std::size_t{size()} * 4);
        struct ChunkOutcome
        {
            std::size_t first_bad = 0;
            std::exception_ptr error;
        };
        std::vector<ChunkOutcome> outcomes(chunks);
        std::vector<std::future<void>> futures;
        futures.reserve(chunks);
        for (std::size_t c = 0; c < chunks; ++c) {
            const std::size_t lo = begin + count * c / chunks;
            const std::size_t hi = begin + count * (c + 1) / chunks;
            ChunkOutcome* outcome = &outcomes[c];
            futures.push_back(submit([&body, lo, hi, outcome] {
                for (std::size_t i = lo; i < hi; ++i) {
                    try {
                        body(i);
                    } catch (...) {
                        if (!outcome->error) {
                            outcome->first_bad = i;
                            outcome->error = std::current_exception();
                        }
                    }
                }
            }));
        }
        for (auto& future : futures)
            future.get(); // chunk bodies swallow exceptions; this waits
        const ChunkOutcome* worst = nullptr;
        for (const ChunkOutcome& outcome : outcomes) {
            if (outcome.error &&
                (!worst || outcome.first_bad < worst->first_bad))
                worst = &outcome;
        }
        if (worst)
            std::rethrow_exception(worst->error);
    }

    /** Scheduler counters (see Stats). */
    Stats stats() const;

    /** Tasks executed by worker @p w so far — the per-worker load split
     *  behind Stats::executed (bench_sweep_throughput reports the
     *  imbalance). */
    std::uint64_t workerExecuted(unsigned w) const;

    /**
     * Index of the calling thread within its owning pool, or -1 when the
     * caller is not a pool worker.
     */
    static int currentWorkerIndex();

    /**
     * Default parallelism: the TLPPM_JOBS environment variable when set
     * to a positive integer; otherwise the smallest of
     * std::thread::hardware_concurrency(), the cgroup v2/v1 CPU quota
     * (cpu.max / cpu.cfs_quota_us — containers routinely expose all host
     * CPUs while capping the quota, and oversubscribing the quota just
     * buys throttling), and the process CPU affinity mask. At least 1.
     */
    static unsigned defaultJobs();

    /**
     * CPUs granted by a cgroup v2 `cpu.max` line ("<quota> <period>" or
     * "max <period>"), rounded up; 0 when unlimited or unparseable.
     * Exposed for tests.
     */
    static unsigned parseCgroupCpuMax(std::string_view text);

    /** Same for cgroup v1 quota/period microsecond values ("-1" quota =
     *  unlimited). Exposed for tests. */
    static unsigned parseCgroupV1Quota(std::string_view quota_text,
                                       std::string_view period_text);

  private:
    /** One worker's deque. Owner pushes/pops at the back (LIFO);
     *  thieves pop at the front (FIFO) — the oldest task migrates. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void enqueue(std::function<void()> task);
    void workerLoop(unsigned index);
    bool popOwn(unsigned index, std::function<void()>& task);
    bool trySteal(unsigned thief, std::function<void()>& task);
    void pinWorker(unsigned index);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    /** Sleep/wake signaling only; the task deques have their own locks.
     *  pending_ is the number of enqueued-but-not-yet-popped tasks. */
    std::mutex sleep_mutex_;
    std::condition_variable sleep_cv_;
    std::atomic<std::size_t> pending_{0};
    std::atomic<bool> stopping_{false};

    std::atomic<std::size_t> next_queue_{0}; ///< round-robin cursor
    bool pin_workers_ = false;               ///< TLPPM_AFFINITY
    std::vector<int> pin_cpus_;              ///< allowed CPUs, in order

    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> steals_{0};
    std::atomic<std::uint64_t> failed_steal_sweeps_{0};
    std::atomic<std::uint64_t> workers_pinned_{0};
    std::vector<std::unique_ptr<std::atomic<std::uint64_t>>>
        worker_executed_;
};

} // namespace tlp::util

#endif // TLP_UTIL_THREAD_POOL_HPP
