#include "util/error.hpp"

namespace tlp::util {

const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Unknown:
        return "unknown";
    case ErrorCode::InvalidArgument:
        return "invalid-argument";
    case ErrorCode::ParseError:
        return "parse-error";
    case ErrorCode::NonFinite:
        return "non-finite";
    case ErrorCode::NoConvergence:
        return "no-convergence";
    case ErrorCode::Timeout:
        return "timeout";
    case ErrorCode::FaultInjected:
        return "fault-injected";
    case ErrorCode::SimulationError:
        return "simulation-error";
    case ErrorCode::IoError:
        return "io-error";
    case ErrorCode::CorruptData:
        return "corrupt-data";
    case ErrorCode::Overloaded:
        return "overloaded";
    }
    return "unknown";
}

std::string
Error::describe() const
{
    std::string out = "[";
    out += errorCodeName(code);
    out += "] ";
    out += message;
    if (!context.empty()) {
        out += " (in: ";
        for (std::size_t i = 0; i < context.size(); ++i) {
            if (i)
                out += " <- ";
            out += context[i];
        }
        out += ")";
    }
    return out;
}

} // namespace tlp::util
