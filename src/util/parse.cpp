#include "util/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace tlp::util {

namespace {

Error
parseError(std::string_view what, std::string_view text,
           const std::string& why)
{
    return Error(ErrorCode::ParseError,
                 strcatMsg(what, ": ", why, " (got '", text, "')"));
}

} // namespace

Expected<double>
parseNumber(std::string_view text, std::string_view what, double lo,
            double hi)
{
    if (text.empty())
        return parseError(what, text, "empty value, expected a number");

    const std::string buf(text);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str())
        return parseError(what, text, "not a number");
    if (*end != '\0') {
        return parseError(what, text,
                          strcatMsg("trailing garbage '", end, "'"));
    }
    if (errno == ERANGE || !std::isfinite(value)) {
        return parseError(what, text,
                          "value does not fit a finite double");
    }
    if (value < lo || value > hi) {
        return parseError(
            what, text,
            strcatMsg("value ", value, " outside [", lo, ", ", hi, "]"));
    }
    return value;
}

Expected<std::int64_t>
parseInt(std::string_view text, std::string_view what, std::int64_t lo,
         std::int64_t hi)
{
    if (text.empty())
        return parseError(what, text, "empty value, expected an integer");

    const std::string buf(text);
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(buf.c_str(), &end, 10);
    if (end == buf.c_str())
        return parseError(what, text, "not an integer");
    if (*end != '\0') {
        return parseError(what, text,
                          strcatMsg("trailing garbage '", end, "'"));
    }
    if (errno == ERANGE) {
        return parseError(what, text,
                          "value does not fit a 64-bit integer");
    }
    if (value < lo || value > hi) {
        return parseError(
            what, text,
            strcatMsg("value ", value, " outside [", lo, ", ", hi, "]"));
    }
    return static_cast<std::int64_t>(value);
}

} // namespace tlp::util
