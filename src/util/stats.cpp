#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

void
Accumulator::sample(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    if (!(hi > lo))
        fatal("Histogram: hi must exceed lo");
    if (buckets == 0)
        fatal("Histogram: need at least one bucket");
}

void
Histogram::sample(double value)
{
    const double span = hi_ - lo_;
    auto idx = static_cast<std::ptrdiff_t>(
        std::floor((value - lo_) / span * static_cast<double>(
            buckets_.size())));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(buckets_.size()) - 1);
    ++buckets_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
        static_cast<double>(buckets_.size());
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return bucketLow(i + 1);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
}

Counter&
StatRegistry::counter(std::string_view name)
{
    const auto it = counters_.find(name);
    if (it != counters_.end())
        return it->second;
    return counters_.emplace(std::string(name), Counter{}).first->second;
}

Accumulator&
StatRegistry::accumulator(std::string_view name)
{
    const auto it = accumulators_.find(name);
    if (it != accumulators_.end())
        return it->second;
    return accumulators_.emplace(std::string(name), Accumulator{})
        .first->second;
}

std::uint64_t
StatRegistry::counterValue(std::string_view name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

bool
StatRegistry::hasCounter(std::string_view name) const
{
    return counters_.find(name) != counters_.end();
}

std::uint64_t
StatRegistry::sumByPrefix(std::string_view prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters_.lower_bound(prefix); it != counters_.end();
         ++it) {
        if (std::string_view(it->first).substr(0, prefix.size()) != prefix)
            break;
        sum += it->second.value();
    }
    return sum;
}

std::uint64_t
StatRegistry::sumBySuffix(std::string_view suffix) const
{
    std::uint64_t sum = 0;
    for (const auto& [name, ctr] : counters_) {
        const std::string_view sv(name);
        if (sv.size() >= suffix.size() &&
            sv.substr(sv.size() - suffix.size()) == suffix) {
            sum += ctr.value();
        }
    }
    return sum;
}

void
StatRegistry::resetAll()
{
    for (auto& [name, ctr] : counters_)
        ctr.reset();
    for (auto& [name, acc] : accumulators_)
        acc.reset();
}

void
StatRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, ctr] : counters_)
        os << name << " " << ctr.value() << "\n";
    for (const auto& [name, acc] : accumulators_) {
        os << name << " mean=" << acc.mean() << " min=" << acc.min()
           << " max=" << acc.max() << " n=" << acc.count() << "\n";
    }
}

} // namespace tlp::util
