/**
 * @file
 * Piecewise-linear interpolation over tabulated (x, y) samples.
 *
 * Used for the discrete voltage/frequency operating-point table (the paper
 * extrapolates supply voltage for a target frequency from the Pentium-M
 * datasheet [18]) and for interpolating profiled power between the 200 MHz
 * frequency-sweep steps in Scenario II (paper §4.2: "values that fall between
 * any two profiled values are approximated by linearly scaling between the
 * two").
 */

#ifndef TLP_UTIL_INTERP_HPP
#define TLP_UTIL_INTERP_HPP

#include <cstddef>
#include <utility>
#include <vector>

namespace tlp::util {

/**
 * A piecewise-linear function defined by sorted sample points.
 *
 * Queries outside the sample range clamp to the first/last segment value
 * (clamped mode, the default) or extrapolate the end segments linearly.
 */
class PiecewiseLinear
{
  public:
    /** Extrapolation behaviour outside the sampled x-range. */
    enum class OutOfRange { Clamp, Extrapolate };

    PiecewiseLinear() = default;

    /**
     * Build from sample points.
     *
     * @param points (x, y) pairs; sorted internally by x. Duplicate x values
     *               are a fatal error. At least one point is required.
     * @param mode   out-of-range behaviour
     */
    explicit PiecewiseLinear(std::vector<std::pair<double, double>> points,
                             OutOfRange mode = OutOfRange::Clamp);

    /** Evaluate the function at @p x. */
    double operator()(double x) const;

    /** Inverse query: smallest x with f(x) = @p y, assuming y-monotone
     *  samples; throws FatalError when the table is not monotone in y. */
    double inverse(double y) const;

    /** True when the y samples are monotonically non-decreasing. */
    bool monotoneIncreasing() const;

    /** Number of sample points. */
    std::size_t size() const { return points_.size(); }

    /** Smallest sampled x. */
    double minX() const;

    /** Largest sampled x. */
    double maxX() const;

    /** Access sample points (sorted by x). */
    const std::vector<std::pair<double, double>>& points() const
    {
        return points_;
    }

  private:
    std::vector<std::pair<double, double>> points_;
    OutOfRange mode_ = OutOfRange::Clamp;
};

} // namespace tlp::util

#endif // TLP_UTIL_INTERP_HPP
