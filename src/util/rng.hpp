/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generators and property tests must be bit-for-bit reproducible
 * across platforms and standard-library versions, so we carry our own small
 * generator (xoshiro256** by Blackman & Vigna) instead of std::mt19937
 * distributions, whose results are implementation-defined for floating point.
 */

#ifndef TLP_UTIL_RNG_HPP
#define TLP_UTIL_RNG_HPP

#include <cstdint>

namespace tlp::util {

/** Deterministic xoshiro256** generator with SplitMix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; identical seeds yield identical
     *  sequences on every platform. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using Lemire's multiply-shift method;
     *  bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // 128-bit multiply keeps the distribution unbiased enough for
        // workload synthesis (bias < 2^-64).
        const unsigned __int128 product =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(product >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tlp::util

#endif // TLP_UTIL_RNG_HPP
