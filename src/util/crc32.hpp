/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial, reflected) for journal line integrity.
 *
 * The run-cache journal appends one checksummed JSONL record per priced
 * operating point; on resume, a torn or bit-rotted line must be detected
 * and skipped rather than replayed into the cache. Table-driven, header
 * only, no dependencies.
 */

#ifndef TLP_UTIL_CRC32_HPP
#define TLP_UTIL_CRC32_HPP

#include <array>
#include <cstdint>
#include <string_view>

namespace tlp::util {

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    makeCrc32Table();

} // namespace detail

/** CRC-32 of @p data (zlib-compatible). */
inline std::uint32_t
crc32(std::string_view data)
{
    std::uint32_t c = 0xFFFFFFFFu;
    for (const char ch : data) {
        c = detail::kCrc32Table[(c ^ static_cast<std::uint8_t>(ch)) &
                                0xFFu] ^
            (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

} // namespace tlp::util

#endif // TLP_UTIL_CRC32_HPP
