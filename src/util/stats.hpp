/**
 * @file
 * Simulation statistics: named counters, scalars, and histograms grouped in
 * a registry, in the spirit of gem5's stats package (much reduced).
 *
 * The CMP simulator registers one group per hardware unit; the power model
 * consumes the access counters after a run, and benches dump the registry
 * for inspection.
 */

#ifndef TLP_UTIL_STATS_HPP
#define TLP_UTIL_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tlp::util {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A running mean/min/max accumulator over double-valued samples. */
class Accumulator
{
  public:
    /** Record one sample. */
    void sample(double value);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

    /** Reinstate a serialized state verbatim (deserialization only —
     *  the four values must come from a prior accumulator's getters). */
    void restore(std::uint64_t count, double sum, double min, double max)
    {
        count_ = count;
        sum_ = sum;
        min_ = min;
        max_ = max;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
 *  end buckets. */
class Histogram
{
  public:
    Histogram() = default;

    /** @param lo lower bound, @param hi upper bound (hi > lo),
     *  @param buckets bucket count (>= 1). */
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double value);
    std::uint64_t total() const { return total_; }
    const std::vector<std::uint64_t>& buckets() const { return buckets_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;
    void reset();

  private:
    double lo_ = 0.0;
    double hi_ = 1.0;
    std::vector<std::uint64_t> buckets_{std::vector<std::uint64_t>(1, 0)};
    std::uint64_t total_ = 0;
};

/**
 * A flat registry of named statistics.
 *
 * Names are hierarchical by convention ("core3.l1d.misses"). Lookup creates
 * the statistic on first use, so units do not need registration boilerplate.
 *
 * All read paths take std::string_view and use heterogeneous map lookup,
 * so callers on the pricing hot path (power model aggregation after every
 * simulation run) never materialize temporary std::string keys.
 */
class StatRegistry
{
  public:
    /** Map type: ordered, with transparent (string_view) lookup. */
    template <typename T>
    using NameMap = std::map<std::string, T, std::less<>>;

    /** Counter named @p name, created zero-valued on first access. */
    Counter& counter(std::string_view name);

    /** Accumulator named @p name, created empty on first access. */
    Accumulator& accumulator(std::string_view name);

    /** Value of a counter, or 0 when absent (read-only). */
    std::uint64_t counterValue(std::string_view name) const;

    /** True when a counter of this name exists. */
    bool hasCounter(std::string_view name) const;

    /** All counters in name order. */
    const NameMap<Counter>& counters() const { return counters_; }

    /** All accumulators in name order. */
    const NameMap<Accumulator>& accumulators() const
    {
        return accumulators_;
    }

    /** Sum of all counters whose name matches "prefix*" (prefix match). */
    std::uint64_t sumByPrefix(std::string_view prefix) const;

    /** Sum of all counters whose name ends with @p suffix. */
    std::uint64_t sumBySuffix(std::string_view suffix) const;

    /** Zero every statistic but keep them registered. */
    void resetAll();

    /** Human-readable dump, one statistic per line. */
    void dump(std::ostream& os) const;

  private:
    NameMap<Counter> counters_;
    NameMap<Accumulator> accumulators_;
};

} // namespace tlp::util

#endif // TLP_UTIL_STATS_HPP
