#include "util/linalg.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

LuFactorization::LuFactorization(const Matrix& a)
{
    const std::size_t n = a.rows();
    if (a.cols() != n)
        fatal("LuFactorization: matrix must be square");
    lu_ = a;
    pivot_row_.resize(n);

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: bring the largest remaining entry to the
        // diagonal for numerical stability.
        std::size_t pivot = col;
        double best = std::fabs(lu_(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(lu_(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300)
            fatal("LuFactorization: singular matrix");
        pivot_row_[col] = pivot;
        if (pivot != col) {
            // Swap the full rows: the already-stored multipliers travel
            // with their rows, which is what lets solveInPlace() apply
            // all recorded swaps to b up front and still replay the
            // elimination's operations on identical values.
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu_(pivot, c), lu_(col, c));
        }

        const double inv_diag = 1.0 / lu_(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = lu_(r, col) * inv_diag;
            lu_(r, col) = factor;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col + 1; c < n; ++c)
                lu_(r, c) -= factor * lu_(col, c);
        }
    }
}

void
LuFactorization::solveInPlace(std::vector<double>& b) const
{
    const std::size_t n = lu_.rows();
    if (b.size() != n)
        fatal("LuFactorization::solve: rhs size mismatch");

    for (std::size_t col = 0; col < n; ++col) {
        if (pivot_row_[col] != col)
            std::swap(b[pivot_row_[col]], b[col]);
    }
    // Forward substitution in the elimination's column order; the
    // factor == 0 skip mirrors the elimination exactly.
    for (std::size_t col = 0; col < n; ++col) {
        const double b_col = b[col];
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = lu_(r, col);
            if (factor == 0.0)
                continue;
            b[r] -= factor * b_col;
        }
    }
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= lu_(ri, c) * b[c];
        b[ri] = acc / lu_(ri, ri);
    }
}

void
LuFactorization::solveInterleavedInPlace(double* b, std::size_t n_rhs,
                                         std::vector<double>& work) const
{
    const std::size_t n = lu_.rows();
    if (n_rhs == 0)
        return;

    for (std::size_t col = 0; col < n; ++col) {
        if (pivot_row_[col] != col) {
            double* a_row = b + pivot_row_[col] * n_rhs;
            double* b_row = b + col * n_rhs;
            for (std::size_t r = 0; r < n_rhs; ++r)
                std::swap(a_row[r], b_row[r]);
        }
    }
    for (std::size_t col = 0; col < n; ++col) {
        const double* b_col = b + col * n_rhs;
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = lu_(r, col);
            if (factor == 0.0)
                continue;
            double* b_r = b + r * n_rhs;
            for (std::size_t rh = 0; rh < n_rhs; ++rh)
                b_r[rh] -= factor * b_col[rh];
        }
    }
    work.resize(n_rhs);
    double* acc = work.data();
    for (std::size_t ri = n; ri-- > 0;) {
        double* b_ri = b + ri * n_rhs;
        for (std::size_t rh = 0; rh < n_rhs; ++rh)
            acc[rh] = b_ri[rh];
        for (std::size_t c = ri + 1; c < n; ++c) {
            const double u = lu_(ri, c);
            const double* b_c = b + c * n_rhs;
            for (std::size_t rh = 0; rh < n_rhs; ++rh)
                acc[rh] -= u * b_c[rh];
        }
        const double diag = lu_(ri, ri);
        for (std::size_t rh = 0; rh < n_rhs; ++rh)
            b_ri[rh] = acc[rh] / diag;
    }
}

std::vector<double>
solveDense(const Matrix& a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n)
        fatal("solveDense: matrix must be square");
    if (b.size() != n)
        fatal("solveDense: rhs size mismatch");
    LuFactorization lu(a);
    lu.solveInPlace(b);
    return b;
}

std::vector<double>
solveLeastSquares(const Matrix& a, const std::vector<double>& b)
{
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (b.size() != m)
        fatal("solveLeastSquares: rhs size mismatch");
    if (m < n)
        fatal("solveLeastSquares: underdetermined system");

    Matrix ata(n, n);
    std::vector<double> atb(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t r = 0; r < n; ++r) {
            const double air = a(i, r);
            if (air == 0.0)
                continue;
            atb[r] += air * b[i];
            for (std::size_t c = 0; c < n; ++c)
                ata(r, c) += air * a(i, c);
        }
    }
    return solveDense(ata, atb);
}

} // namespace tlp::util
