#include "util/linalg.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

std::vector<double>
solveDense(const Matrix& a, std::vector<double> b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n)
        fatal("solveDense: matrix must be square");
    if (b.size() != n)
        fatal("solveDense: rhs size mismatch");

    Matrix m = a;  // working copy

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivoting: bring the largest remaining entry to the
        // diagonal for numerical stability.
        std::size_t pivot = col;
        double best = std::fabs(m(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(m(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-300)
            fatal("solveDense: singular matrix");
        if (pivot != col) {
            for (std::size_t c = col; c < n; ++c)
                std::swap(m(pivot, c), m(col, c));
            std::swap(b[pivot], b[col]);
        }

        const double inv_diag = 1.0 / m(col, col);
        for (std::size_t r = col + 1; r < n; ++r) {
            const double factor = m(r, col) * inv_diag;
            if (factor == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                m(r, c) -= factor * m(col, c);
            b[r] -= factor * b[col];
        }
    }

    std::vector<double> x(n, 0.0);
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = b[ri];
        for (std::size_t c = ri + 1; c < n; ++c)
            acc -= m(ri, c) * x[c];
        x[ri] = acc / m(ri, ri);
    }
    return x;
}

std::vector<double>
solveLeastSquares(const Matrix& a, const std::vector<double>& b)
{
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (b.size() != m)
        fatal("solveLeastSquares: rhs size mismatch");
    if (m < n)
        fatal("solveLeastSquares: underdetermined system");

    Matrix ata(n, n);
    std::vector<double> atb(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t r = 0; r < n; ++r) {
            const double air = a(i, r);
            if (air == 0.0)
                continue;
            atb[r] += air * b[i];
            for (std::size_t c = 0; c < n; ++c)
                ata(r, c) += air * a(i, c);
        }
    }
    return solveDense(ata, atb);
}

} // namespace tlp::util
