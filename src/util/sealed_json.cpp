#include "util/sealed_json.hpp"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/crc32.hpp"
#include "util/logging.hpp"

namespace tlp::util {

namespace {

constexpr std::string_view kCrcToken = ",\"crc\":";

const char*
findField(const std::string& line, const char* field)
{
    const std::string token = util::strcatMsg("\"", field, "\":");
    const std::size_t pos = line.find(token);
    if (pos == std::string::npos)
        return nullptr;
    return line.c_str() + pos + token.size();
}

} // namespace

std::string
sealJsonLine(std::string payload)
{
    const std::uint32_t crc = util::crc32(payload);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",\"crc\":%" PRIu32 "}", crc);
    payload += buf;
    return payload;
}

bool
checkSealedJsonLine(const std::string& line)
{
    const std::size_t pos = line.rfind(kCrcToken);
    if (pos == std::string::npos)
        return false;
    const char* start = line.c_str() + pos + kCrcToken.size();
    char* end = nullptr;
    errno = 0;
    const unsigned long long stored = std::strtoull(start, &end, 10);
    if (end == start || errno == ERANGE || stored > 0xFFFFFFFFull)
        return false;
    return util::crc32(std::string_view(line.data(), pos)) ==
        static_cast<std::uint32_t>(stored);
}

bool
jsonFieldU64(const std::string& line, const char* field,
             std::uint64_t& out)
{
    const char* start = findField(line, field);
    if (start == nullptr)
        return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtoull(start, &end, 10);
    return end != start && errno != ERANGE;
}

bool
jsonFieldDouble(const std::string& line, const char* field, double& out)
{
    const char* start = findField(line, field);
    if (start == nullptr)
        return false;
    char* end = nullptr;
    errno = 0;
    out = std::strtod(start, &end);
    if (end == start)
        return false;
    return !(errno == ERANGE && (out >= HUGE_VAL || out <= -HUGE_VAL));
}

bool
jsonFieldString(const std::string& line, const char* field,
                std::string& out)
{
    const char* start = findField(line, field);
    if (start == nullptr || *start != '"')
        return false;
    const char* close = std::strchr(start + 1, '"');
    if (close == nullptr)
        return false;
    out.assign(start + 1, close);
    return true;
}

std::string
escapeForWire(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"')
            out += '\'';
        else if (c == '\\')
            out += '/';
        else if (static_cast<unsigned char>(c) < 0x20)
            out += ' ';
        else
            out += c;
    }
    return out;
}

} // namespace tlp::util
