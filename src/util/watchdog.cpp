#include "util/watchdog.hpp"

#include <chrono>

#include "util/logging.hpp"
#include "util/trace.hpp"

namespace tlp::util {

namespace {

using Clock = std::chrono::steady_clock;

thread_local bool g_armed = false;
thread_local Clock::time_point g_deadline{};

} // namespace

void
setPointDeadline(double seconds)
{
    if (seconds <= 0.0) {
        g_armed = false;
        return;
    }
    g_armed = true;
    g_deadline = Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(seconds));
}

void
clearPointDeadline()
{
    g_armed = false;
}

bool
pointDeadlineArmed()
{
    return g_armed;
}

bool
pointDeadlineExpired()
{
    return g_armed && Clock::now() >= g_deadline;
}

void
checkPointDeadline(const char* where)
{
    if (pointDeadlineExpired()) {
        traceInstant("watchdog", "timeout:", where);
        throw TimeoutError(
            strcatMsg(where, ": point wall-clock timeout exceeded"));
    }
}

} // namespace tlp::util
