/**
 * @file
 * Small filesystem helpers for the persistence layer: whole-file reads,
 * atomic (tmp + fsync + rename) writes, directory listing/creation, and
 * an advisory file lock.
 *
 * Everything here returns structured errors instead of throwing: the
 * service layer treats every filesystem failure as a recoverable event
 * (shed the request, quarantine the artifact, re-run the point), so the
 * failure must carry a code and context, not unwind the daemon.
 *
 * Atomicity contract of atomicWriteFile(): the destination either keeps
 * its old content (or stays absent) or holds the complete new content —
 * never a torn prefix. The payload is written to `<path>.tmp.<pid>`,
 * flushed and fsync'd, then renamed over the destination; a crash at any
 * point leaves at worst a stray tmp file, which sweepTmpFiles() removes.
 */

#ifndef TLP_UTIL_FS_HPP
#define TLP_UTIL_FS_HPP

#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace tlp::util {

/** Entire content of @p path, or IoError (missing file included). */
Expected<std::string> readFile(const std::string& path);

/** readFile() for callers that treat "absent" as a normal miss:
 *  nullopt when the file does not exist, IoError on real failures. */
Expected<std::optional<std::string>>
readFileIfExists(const std::string& path);

/** Atomically replace @p path with @p content (see the file comment
 *  for the crash contract). */
Expected<bool> atomicWriteFile(const std::string& path,
                               const std::string& content);

/**
 * Non-atomic write of @p content to @p path (truncate + write, no tmp,
 * no fsync). The store's fault-injection layer uses it to plant exactly
 * the torn/corrupt on-disk states the recovery paths must survive; real
 * writers use atomicWriteFile().
 */
Expected<bool> writeFileRaw(const std::string& path,
                            const std::string& content);

/** Create @p dir (one level; parents must exist). Existing dir is ok. */
Expected<bool> ensureDir(const std::string& dir);

/** Regular-file names (not paths) in @p dir with suffix @p suffix,
 *  sorted lexicographically — the queue's deterministic service order.
 *  A missing directory is an empty listing, not an error. */
std::vector<std::string> listDir(const std::string& dir,
                                 const std::string& suffix = "");

/** True when @p path names an existing file/directory. */
bool pathExists(const std::string& path);

/** Remove @p path; absent is success (idempotent teardown). */
bool removePath(const std::string& path);

/** Rename @p from to @p to (atomic within one filesystem). */
Expected<bool> renamePath(const std::string& from, const std::string& to);

/** Remove stray `*.tmp.*` files left by a crashed atomicWriteFile()
 *  under @p dir; returns how many were removed. */
std::size_t sweepTmpFiles(const std::string& dir);

/**
 * Advisory lock on @p path (flock). Non-blocking: if another process
 * holds a conflicting lock, acquire() fails with a typed error naming
 * the path, so two daemons can never interleave writes into one store.
 * The lock dies with the process (kill -9 included), which is exactly
 * the recovery semantics a crash-safe store wants.
 *
 * Shared mode lets many appenders coexist (the raw-run store's K
 * concurrent shards) while still excluding the compactor, which takes
 * the exclusive mode.
 */
class FileLock
{
  public:
    enum class Mode
    {
        Exclusive, ///< sole holder (writers that rewrite files)
        Shared     ///< many holders; conflicts only with Exclusive
    };

    FileLock() = default;
    ~FileLock();

    FileLock(const FileLock&) = delete;
    FileLock& operator=(const FileLock&) = delete;
    FileLock(FileLock&& other) noexcept;
    FileLock& operator=(FileLock&& other) noexcept;

    /** Take the lock; creates the file when absent. */
    Expected<bool> acquire(const std::string& path,
                           Mode mode = Mode::Exclusive);

    /**
     * Convert a held exclusive lock to shared, letting other shared
     * holders attach. POSIX makes the conversion non-atomic (the lock
     * is dropped, then re-taken shared), so this may block briefly
     * behind another exclusive holder that slips into the gap; it
     * cannot deadlock (nothing is held while waiting). Error when no
     * lock is held.
     */
    Expected<bool> downgradeToShared();

    /** Release (also closes the fd). Safe to call when not held. */
    void release();

    bool held() const { return fd_ >= 0; }
    const std::string& path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

} // namespace tlp::util

#endif // TLP_UTIL_FS_HPP
