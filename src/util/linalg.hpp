/**
 * @file
 * Small dense linear-algebra routines.
 *
 * Two consumers: the leakage curve fitter (normal equations of a linear
 * least-squares problem, a handful of unknowns) and the steady-state thermal
 * RC network (conductance matrix of a few hundred floorplan blocks). Both
 * are far below the size where a tuned BLAS would matter, so a plain
 * partial-pivoting Gaussian elimination keeps the library dependency-free.
 */

#ifndef TLP_UTIL_LINALG_HPP
#define TLP_UTIL_LINALG_HPP

#include <cstddef>
#include <vector>

namespace tlp::util {

/** A dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    double& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solve A x = b with Gaussian elimination and partial pivoting.
 *
 * @param a square system matrix (copied internally)
 * @param b right-hand side; size must equal a.rows()
 * @return solution vector
 *
 * Throws FatalError for non-square systems or (numerically) singular
 * matrices.
 */
std::vector<double> solveDense(const Matrix& a, std::vector<double> b);

/**
 * Solve the linear least-squares problem min ||A x - b||_2 via normal
 * equations (A^T A x = A^T b). Adequate for the well-conditioned few-unknown
 * fits used here.
 */
std::vector<double> solveLeastSquares(const Matrix& a,
                                      const std::vector<double>& b);

} // namespace tlp::util

#endif // TLP_UTIL_LINALG_HPP
