/**
 * @file
 * Small dense linear-algebra routines.
 *
 * Two consumers: the leakage curve fitter (normal equations of a linear
 * least-squares problem, a handful of unknowns) and the steady-state thermal
 * RC network (conductance matrix of a few hundred floorplan blocks). Both
 * are far below the size where a tuned BLAS would matter, so a plain
 * partial-pivoting Gaussian elimination keeps the library dependency-free.
 */

#ifndef TLP_UTIL_LINALG_HPP
#define TLP_UTIL_LINALG_HPP

#include <cstddef>
#include <vector>

namespace tlp::util {

/** A dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    double& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * LU factorization with partial pivoting of a square matrix.
 *
 * Factor once, then solve against any number of right-hand sides with
 * O(n^2) substitution instead of the O(n^3) elimination a fresh
 * solveDense() pays per call. The thermal RC network exploits this: its
 * conductance matrix is fixed per floorplan/package, while the coupled
 * power/temperature fixed point solves against it many times per
 * operating point.
 *
 * solve() is bit-for-bit identical to solveDense() on the same system:
 * the factorization performs the exact elimination operations of
 * solveDense (same pivot selection, same `factor == 0` skips, same
 * operation order), stores the multipliers in the lower triangle (rows
 * swapped along with their pivot rows), and solve() replays the
 * recorded row swaps and multiplier applications on b in the same
 * column order. Regression-tested against a reference elimination with
 * exact equality.
 */
class LuFactorization
{
  public:
    LuFactorization() = default;

    /** Factor @p a. Throws FatalError for non-square or (numerically)
     *  singular matrices. */
    explicit LuFactorization(const Matrix& a);

    /** Solve A x = b for the factored A. */
    std::vector<double> solve(std::vector<double> b) const
    {
        solveInPlace(b);
        return b;
    }

    /** Allocation-free solve: @p b is replaced by the solution. */
    void solveInPlace(std::vector<double>& b) const;

    /**
     * Multi-RHS solve in node-major interleaved layout: entry of
     * right-hand side p at row i lives at b[i * n_rhs + p]. Each column
     * performs exactly the operations of solveInPlace() in the same
     * order (same swaps, same factor == 0 skips), so a batch of one is
     * bit-identical to the single-RHS solve. @p work is resized to
     * n_rhs and reusable across calls.
     */
    void solveInterleavedInPlace(double* b, std::size_t n_rhs,
                                 std::vector<double>& work) const;

    /** Dimension of the factored system (0 when default-constructed). */
    std::size_t size() const { return lu_.rows(); }

  private:
    Matrix lu_; ///< U in the upper triangle, multipliers below
    std::vector<std::size_t> pivot_row_; ///< row swapped into each column
};

/**
 * Solve A x = b with Gaussian elimination and partial pivoting.
 *
 * @param a square system matrix (copied internally)
 * @param b right-hand side; size must equal a.rows()
 * @return solution vector
 *
 * Throws FatalError for non-square systems or (numerically) singular
 * matrices. Equivalent to LuFactorization(a).solve(b).
 */
std::vector<double> solveDense(const Matrix& a, std::vector<double> b);

/**
 * Solve the linear least-squares problem min ||A x - b||_2 via normal
 * equations (A^T A x = A^T b). Adequate for the well-conditioned few-unknown
 * fits used here.
 */
std::vector<double> solveLeastSquares(const Matrix& a,
                                      const std::vector<double>& b);

} // namespace tlp::util

#endif // TLP_UTIL_LINALG_HPP
