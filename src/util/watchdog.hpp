/**
 * @file
 * Per-point wall-clock watchdog.
 *
 * A sweep worker arms a thread-local deadline before pricing one
 * operating point; long-running inner loops (the event queue, the thermal
 * fixed point) poll it cheaply and throw TimeoutError once it passes, so
 * a runaway simulation is turned into one failed point instead of a hung
 * worker. The deadline is cooperative and strictly per-thread: arming it
 * on one worker never affects another, and an unarmed thread pays only a
 * thread-local bool read per poll.
 */

#ifndef TLP_UTIL_WATCHDOG_HPP
#define TLP_UTIL_WATCHDOG_HPP

#include <stdexcept>
#include <string>

namespace tlp::util {

/** Thrown by deadline polls once the armed point deadline has passed. */
class TimeoutError : public std::runtime_error
{
  public:
    explicit TimeoutError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Arm the calling thread's point deadline @p seconds from now;
 *  seconds <= 0 clears it. */
void setPointDeadline(double seconds);

/** Disarm the calling thread's point deadline. */
void clearPointDeadline();

/** True when a deadline is armed on the calling thread. */
bool pointDeadlineArmed();

/** True when a deadline is armed and has passed. */
bool pointDeadlineExpired();

/** Throw TimeoutError (naming @p where) if the armed deadline passed. */
void checkPointDeadline(const char* where);

/** RAII guard: arms on construction, disarms on destruction. */
class PointDeadlineGuard
{
  public:
    explicit PointDeadlineGuard(double seconds)
    {
        setPointDeadline(seconds);
    }
    ~PointDeadlineGuard() { clearPointDeadline(); }
    PointDeadlineGuard(const PointDeadlineGuard&) = delete;
    PointDeadlineGuard& operator=(const PointDeadlineGuard&) = delete;
};

} // namespace tlp::util

#endif // TLP_UTIL_WATCHDOG_HPP
