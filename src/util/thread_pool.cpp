#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/logging.hpp"

namespace tlp::util {

namespace {

thread_local int tl_worker_index = -1;
thread_local const ThreadPool* tl_worker_pool = nullptr;

bool
affinityRequested()
{
    const char* env = std::getenv("TLPPM_AFFINITY");
    if (env == nullptr)
        return false;
    return std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
           std::strcmp(env, "true") == 0;
}

/** First line of @p path, or empty when unreadable. */
std::string
readFirstLine(const char* path)
{
    std::FILE* file = std::fopen(path, "rb");
    if (file == nullptr)
        return {};
    char buf[128] = {};
    const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, file);
    std::fclose(file);
    std::string line(buf, got);
    const std::size_t nl = line.find('\n');
    if (nl != std::string::npos)
        line.resize(nl);
    return line;
}

/** Leading non-negative integer of @p text, or -1 ("max", garbage). */
long long
leadingInt(std::string_view text)
{
    while (!text.empty() && text.front() == ' ')
        text.remove_prefix(1);
    if (text.empty() || text.front() < '0' || text.front() > '9')
        return -1;
    long long value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            break;
        value = value * 10 + (c - '0');
        if (value > 1'000'000'000'000ll)
            return -1;
    }
    return value;
}

} // namespace

unsigned
ThreadPool::parseCgroupCpuMax(std::string_view text)
{
    // cgroup v2 format: "<quota> <period>" in microseconds, or
    // "max <period>" when unlimited.
    const std::size_t space = text.find(' ');
    if (space == std::string_view::npos)
        return 0;
    const long long quota = leadingInt(text.substr(0, space));
    const long long period = leadingInt(text.substr(space + 1));
    if (quota <= 0 || period <= 0)
        return 0; // "max", empty, or malformed: unlimited
    return static_cast<unsigned>((quota + period - 1) / period);
}

unsigned
ThreadPool::parseCgroupV1Quota(std::string_view quota_text,
                               std::string_view period_text)
{
    const long long quota = leadingInt(quota_text);
    const long long period = leadingInt(period_text);
    if (quota <= 0 || period <= 0)
        return 0; // quota -1 (unlimited) or malformed
    return static_cast<unsigned>((quota + period - 1) / period);
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char* env = std::getenv("TLPPM_JOBS")) {
        const long value = std::strtol(env, nullptr, 10);
        if (value >= 1)
            return static_cast<unsigned>(value);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    unsigned jobs = hw ? hw : 1;

    // Containerized CI and the service daemon typically see every host
    // CPU in hardware_concurrency() while the cgroup caps the quota;
    // spawning more workers than the quota just buys scheduler
    // throttling mid-simulation.
    const unsigned v2 =
        parseCgroupCpuMax(readFirstLine("/sys/fs/cgroup/cpu.max"));
    if (v2 > 0)
        jobs = std::min(jobs, v2);
    const unsigned v1 = parseCgroupV1Quota(
        readFirstLine("/sys/fs/cgroup/cpu/cpu.cfs_quota_us"),
        readFirstLine("/sys/fs/cgroup/cpu/cpu.cfs_period_us"));
    if (v1 > 0)
        jobs = std::min(jobs, v1);

#ifdef __linux__
    cpu_set_t allowed;
    CPU_ZERO(&allowed);
    if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0) {
        const int count = CPU_COUNT(&allowed);
        if (count > 0)
            jobs = std::min(jobs, static_cast<unsigned>(count));
    }
#endif
    return jobs ? jobs : 1;
}

ThreadPool::ThreadPool(unsigned n_threads)
{
    if (n_threads == 0)
        n_threads = 1;
    pin_workers_ = affinityRequested();
#ifdef __linux__
    if (pin_workers_) {
        cpu_set_t allowed;
        CPU_ZERO(&allowed);
        if (sched_getaffinity(0, sizeof(allowed), &allowed) == 0) {
            for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
                if (CPU_ISSET(cpu, &allowed))
                    pin_cpus_.push_back(cpu);
            }
        }
    }
#endif
    queues_.reserve(n_threads);
    worker_executed_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i) {
        queues_.push_back(std::make_unique<WorkerQueue>());
        worker_executed_.push_back(
            std::make_unique<std::atomic<std::uint64_t>>(0));
    }
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    stopping_.store(true);
    {
        // Empty critical section: a worker between its wait predicate
        // and blocking must observe the store before we notify.
        std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    sleep_cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    if (stopping_.load())
        fatal("ThreadPool: submit after shutdown began");
    // A worker submitting to its own pool keeps the task local (LIFO,
    // cache-warm); external submitters spread round-robin so stealing
    // starts from an even split.
    std::size_t target;
    if (tl_worker_pool == this && tl_worker_index >= 0) {
        target = static_cast<std::size_t>(tl_worker_index);
    } else {
        target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                 queues_.size();
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    pending_.fetch_add(1);
    {
        // Empty critical section (see destructor): no lost wakeup.
        std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    sleep_cv_.notify_one();
}

bool
ThreadPool::popOwn(unsigned index, std::function<void()>& task)
{
    WorkerQueue& queue = *queues_[index];
    std::lock_guard<std::mutex> lock(queue.mutex);
    if (queue.tasks.empty())
        return false;
    task = std::move(queue.tasks.back());
    queue.tasks.pop_back();
    pending_.fetch_sub(1);
    return true;
}

bool
ThreadPool::trySteal(unsigned thief, std::function<void()>& task)
{
    const std::size_t n = queues_.size();
    if (n <= 1)
        return false;
    // Per-thread xorshift for victim order: cheap, and uncorrelated
    // thieves don't convoy on the same victim's lock. Randomness only
    // reorders execution; results are assembled by index upstream.
    thread_local std::uint64_t rng_state = 0;
    if (rng_state == 0)
        rng_state = 0x9E3779B97F4A7C15ull ^ (thief + 1);
    rng_state ^= rng_state << 13;
    rng_state ^= rng_state >> 7;
    rng_state ^= rng_state << 17;
    const std::size_t start = rng_state % n;
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t victim = (start + k) % n;
        if (victim == thief)
            continue;
        WorkerQueue& queue = *queues_[victim];
        std::lock_guard<std::mutex> lock(queue.mutex);
        if (queue.tasks.empty())
            continue;
        task = std::move(queue.tasks.front()); // FIFO: the oldest task
        queue.tasks.pop_front();
        pending_.fetch_sub(1);
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    failed_steal_sweeps_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
ThreadPool::pinWorker(unsigned index)
{
#ifdef __linux__
    if (pin_cpus_.empty())
        return;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(pin_cpus_[index % pin_cpus_.size()], &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0)
        workers_pinned_.fetch_add(1, std::memory_order_relaxed);
#else
    (void)index;
#endif
}

void
ThreadPool::workerLoop(unsigned index)
{
    tl_worker_index = static_cast<int>(index);
    tl_worker_pool = this;
    if (pin_workers_)
        pinWorker(index);
    std::function<void()> task;
    while (true) {
        if (popOwn(index, task) || trySteal(index, task)) {
            task(); // packaged_task captures any exception in its future
            task = nullptr;
            executed_.fetch_add(1, std::memory_order_relaxed);
            worker_executed_[index]->fetch_add(
                1, std::memory_order_relaxed);
            continue;
        }
        std::unique_lock<std::mutex> lock(sleep_mutex_);
        sleep_cv_.wait(lock, [this] {
            return stopping_.load() || pending_.load() > 0;
        });
        if (pending_.load() == 0 && stopping_.load())
            return; // stopping and drained
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats stats;
    stats.submitted = submitted_.load(std::memory_order_relaxed);
    stats.executed = executed_.load(std::memory_order_relaxed);
    stats.steals = steals_.load(std::memory_order_relaxed);
    stats.failed_steal_sweeps =
        failed_steal_sweeps_.load(std::memory_order_relaxed);
    stats.workers_pinned =
        workers_pinned_.load(std::memory_order_relaxed);
    return stats;
}

std::uint64_t
ThreadPool::workerExecuted(unsigned w) const
{
    if (w >= worker_executed_.size())
        return 0;
    return worker_executed_[w]->load(std::memory_order_relaxed);
}

int
ThreadPool::currentWorkerIndex()
{
    return tl_worker_index;
}

} // namespace tlp::util
