#include "util/thread_pool.hpp"

#include <cstdlib>

#include "util/logging.hpp"

namespace tlp::util {

namespace {

thread_local int tl_worker_index = -1;

} // namespace

ThreadPool::ThreadPool(unsigned n_threads)
{
    if (n_threads == 0)
        n_threads = 1;
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            fatal("ThreadPool: submit after shutdown began");
        tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop(unsigned index)
{
    tl_worker_index = static_cast<int>(index);
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping_ and drained
            task = std::move(tasks_.front());
            tasks_.pop_front();
        }
        task(); // packaged_task captures any exception in its future
    }
}

int
ThreadPool::currentWorkerIndex()
{
    return tl_worker_index;
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char* env = std::getenv("TLPPM_JOBS")) {
        const long value = std::strtol(env, nullptr, 10);
        if (value >= 1)
            return static_cast<unsigned>(value);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // namespace tlp::util
