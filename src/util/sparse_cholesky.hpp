/**
 * @file
 * Sparse Cholesky factorization for symmetric positive-definite systems.
 *
 * The thermal RC conductance matrix is SPD and floorplan-sparse: a block
 * couples only to its abutting neighbours and the shared heat-sink node.
 * Dense LU pays O(n^2) per back-substitution regardless; the sparse factor
 * pays O(nnz(L)), which for tiled floorplans grows roughly linearly in the
 * block count. Three structural facts are exploited:
 *
 *  - the *pattern* is fixed per floorplan, so the fill-reducing ordering
 *    and the symbolic factorization are computed once and reused across
 *    every numeric refactorization (package calibration bisects on a
 *    resistance parameter, changing values but never structure);
 *  - a greedy minimum-degree ordering keeps fill low and, as a natural
 *    consequence, eliminates the heat-sink node (degree n: it couples to
 *    every block) last instead of letting it densify the factor;
 *  - the coupled power/temperature fixed point prices many operating
 *    points against the same factor, so the solve supports multiple
 *    right-hand sides in one factor traversal with the inner loop over
 *    the RHS dimension contiguous in memory.
 *
 * Determinism contract: for a fixed pattern, the ordering, the symbolic
 * pattern, and every numeric operation sequence are fully deterministic,
 * so repeated factorizations and solves of the same system are
 * bit-identical run to run. The single-RHS solve is the multi-RHS solve
 * with one column — per-column arithmetic is identical by construction.
 */

#ifndef TLP_UTIL_SPARSE_CHOLESKY_HPP
#define TLP_UTIL_SPARSE_CHOLESKY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tlp::util {

/**
 * Triplet-assembled symmetric matrix, stored as the lower triangle in
 * compressed sparse column (CSC) form after compress().
 *
 * add() accepts entries in either triangle and accumulates duplicates in
 * insertion order (stable sort at compression), so an assembly loop that
 * mirrors the dense builder's accumulation order produces bitwise the
 * same values on the shared entries.
 */
class SparseSpdMatrix
{
  public:
    explicit SparseSpdMatrix(std::size_t n);

    /** Accumulate A(i, j) += v (symmetric: only the lower-triangle image
     *  of the entry is stored). */
    void add(std::size_t i, std::size_t j, double v);

    /** Build the CSC lower triangle from the accumulated triplets.
     *  Further add() calls are rejected. */
    void compress();

    std::size_t size() const { return n_; }
    bool compressed() const { return compressed_; }

    /** Structural nonzeros of the lower triangle (after compress()). */
    std::size_t nnzLower() const { return row_idx_.size(); }

    /** CSC column pointers of the lower triangle, size n + 1. */
    const std::vector<std::size_t>& colPtr() const { return col_ptr_; }
    /** CSC row indices (ascending within each column, diagonal first). */
    const std::vector<std::size_t>& rowIdx() const { return row_idx_; }
    /** CSC values, parallel to rowIdx(). */
    const std::vector<double>& values() const { return values_; }

  private:
    struct Triplet
    {
        std::size_t row;
        std::size_t col;
        double value;
    };

    std::size_t n_;
    bool compressed_ = false;
    std::vector<Triplet> triplets_;
    std::vector<std::size_t> col_ptr_;
    std::vector<std::size_t> row_idx_;
    std::vector<double> values_;
};

/**
 * Cached sparse Cholesky factorization A = L D^(1/2) ... specifically
 * A = L L^T with L lower-triangular (diagonal stored separately).
 *
 * factorize() runs the symbolic analysis (minimum-degree ordering +
 * elimination pattern) only when the pattern differs from the cached one;
 * refactorizing after a value-only change reuses the symbolic result and
 * performs numeric work alone. Throws FatalError when the matrix is not
 * positive definite.
 */
class SparseCholesky
{
  public:
    SparseCholesky() = default;

    /** Factor @p a (must be compress()ed). Reuses the cached symbolic
     *  analysis when a's pattern matches the previous factorization. */
    void factorize(const SparseSpdMatrix& a);

    /** Dimension of the factored system (0 before any factorize()). */
    std::size_t size() const { return n_; }

    /** Nonzeros of L including the diagonal. */
    std::size_t nnzL() const { return l_row_.size() + n_; }

    /** Fill-in: structural nonzeros of L (incl. diagonal) minus those of
     *  the assembled lower triangle. */
    std::size_t fillIn() const { return nnzL() - nnz_a_lower_; }

    /** Symbolic analyses performed over this object's lifetime — stays at
     *  1 across any number of value-only refactorizations. */
    std::uint64_t symbolicAnalyses() const { return symbolic_analyses_; }

    /**
     * Solve A x = b in place. @p work is resized as needed and reusable
     * across calls; the overload without it allocates per call.
     */
    void solveInPlace(std::vector<double>& b, std::vector<double>& work)
        const;
    void solveInPlace(std::vector<double>& b) const;

    /**
     * Multi-RHS solve in node-major interleaved layout: column r of
     * right-hand side p lives at b[node * n_rhs + p]. One traversal of
     * the factor serves all columns; per-column arithmetic is identical
     * to the single-RHS solve (same operations in the same order), so a
     * batch of one is bit-identical to solveInPlace().
     */
    void solveInterleavedInPlace(double* b, std::size_t n_rhs,
                                 std::vector<double>& work) const;

  private:
    void analyze(const SparseSpdMatrix& a);
    bool patternMatches(const SparseSpdMatrix& a) const;

    std::size_t n_ = 0;
    std::size_t nnz_a_lower_ = 0;
    std::uint64_t symbolic_analyses_ = 0;

    // Cached pattern of the assembled matrix (for reuse detection).
    std::vector<std::size_t> a_col_ptr_;
    std::vector<std::size_t> a_row_idx_;

    // Fill-reducing ordering: perm_[k] = original node at elimination
    // position k; iperm_ is its inverse.
    std::vector<std::size_t> perm_;
    std::vector<std::size_t> iperm_;

    // Symbolic pattern of L in permuted coordinates: strictly-below-
    // diagonal entries in CSC (rows ascending per column); the diagonal
    // lives in l_diag_.
    std::vector<std::size_t> l_col_ptr_;
    std::vector<std::size_t> l_row_;
    std::vector<double> l_val_;
    std::vector<double> l_diag_;

    // A's lower-triangle entries re-addressed to permuted coordinates,
    // grouped by permuted column: source index into a.values() plus the
    // permuted row, for the numeric scatter.
    std::vector<std::size_t> a_perm_col_ptr_;
    std::vector<std::size_t> a_perm_row_;
    std::vector<std::size_t> a_perm_src_;
};

} // namespace tlp::util

#endif // TLP_UTIL_SPARSE_CHOLESKY_HPP
