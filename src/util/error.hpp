/**
 * @file
 * Structured error taxonomy for the measurement/solve hot paths.
 *
 * The figure sweeps price thousands of operating points, several of which
 * sit right at the edge of model validity (the Vdd lower bound, the
 * ambient floor, the thermal fixed point's convergence envelope). A
 * failure there must carry enough context to be reported, retried, or
 * journaled — not crash the whole multi-minute sweep. Error is a small
 * (code, message, context-chain) record; Expected<T> is the result type
 * the converted hot paths return instead of throwing or silently handing
 * back garbage.
 */

#ifndef TLP_UTIL_ERROR_HPP
#define TLP_UTIL_ERROR_HPP

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "util/logging.hpp"

namespace tlp::util {

/** Coarse classification of a recoverable failure. */
enum class ErrorCode {
    Unknown = 0,
    InvalidArgument, ///< caller supplied an unusable value
    ParseError,      ///< malformed textual input (CLI, env, journal)
    NonFinite,       ///< a computed quantity came out NaN/inf
    NoConvergence,   ///< an iterative solve hit its budget unconverged
    Timeout,         ///< the per-point watchdog fired
    FaultInjected,   ///< a deliberate test fault (TLPPM_FAULT / FaultPlan)
    SimulationError, ///< the simulator refused the run (deadlock, budget)
    IoError,         ///< filesystem failure (journal open/append)
    CorruptData,     ///< CRC/format mismatch while replaying a journal
    Overloaded,      ///< admission control shed the request (retry later)
};

/** Stable lowercase name of @p code, e.g. "no-convergence". */
const char* errorCodeName(ErrorCode code);

/** A failure with its classification and the chain of call-site context
 *  frames it bubbled through (innermost first). */
struct Error
{
    ErrorCode code = ErrorCode::Unknown;
    std::string message;
    std::vector<std::string> context;

    Error() = default;
    Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

    /** Append a context frame (outer call sites push after inner ones). */
    Error&
    withContext(std::string frame) &
    {
        context.push_back(std::move(frame));
        return *this;
    }

    Error
    withContext(std::string frame) &&
    {
        context.push_back(std::move(frame));
        return std::move(*this);
    }

    /** One-line rendering: "[code] message (in: inner <- outer)". */
    std::string describe() const;
};

/**
 * Value-or-Error result of a fallible operation. Minimal by design: the
 * hot paths only need construction, ok(), value(), and error().
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(Error error) : v_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T&
    value()
    {
        if (!ok())
            panic("Expected::value() on error: " + error().describe());
        return std::get<T>(v_);
    }

    const T&
    value() const
    {
        if (!ok())
            panic("Expected::value() on error: " + error().describe());
        return std::get<T>(v_);
    }

    Error&
    error()
    {
        if (ok())
            panic("Expected::error() on value");
        return std::get<Error>(v_);
    }

    const Error&
    error() const
    {
        if (ok())
            panic("Expected::error() on value");
        return std::get<Error>(v_);
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? std::get<T>(v_) : std::move(fallback);
    }

  private:
    std::variant<T, Error> v_;
};

} // namespace tlp::util

#endif // TLP_UTIL_ERROR_HPP
