#include "util/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace tlp::util {

/**
 * Per-thread event storage. Spans are appended by their *end* (scope
 * destruction) in strict RAII order, so a buffer holds a postorder
 * traversal of the thread's span forest; the recorded nesting depth is
 * enough to reconstruct the exact begin/end sequence at serialization
 * time (see emitThread below). The mutex is per-buffer and essentially
 * uncontended — the owning thread appends, and readers only run after
 * the recording threads have quiesced — but it gives snapshot()/json() a
 * clean happens-before edge under TSan.
 */
struct Tracer::Buffer
{
    std::uint32_t tid = 0;
    std::uint32_t depth = 0; ///< open recorded spans on this thread
    std::mutex mutex;
    std::vector<TraceRecord> records;
};

Tracer&
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

namespace {

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

Tracer::Buffer&
Tracer::localBuffer()
{
    static thread_local Buffer* t_buffer = nullptr;
    if (t_buffer == nullptr) {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        buffers_.push_back(std::make_unique<Buffer>());
        buffers_.back()->tid =
            static_cast<std::uint32_t>(buffers_.size());
        t_buffer = buffers_.back().get();
    }
    return *t_buffer;
}

void
Tracer::enable(std::string path)
{
    clear();
    path_ = std::move(path);
    epoch_ns_ = steadyNowNs();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::enableFromEnv()
{
    const char* env = std::getenv("TLPPM_TRACE");
    if (env != nullptr && *env != '\0' && !enabled())
        enable(env);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

double
Tracer::nowUs() const
{
    return static_cast<double>(steadyNowNs() - epoch_ns_) * 1e-3;
}

std::uint32_t
Tracer::beginDepth()
{
    return localBuffer().depth++;
}

void
Tracer::endDepth()
{
    --localBuffer().depth;
}

void
Tracer::span(const char* cat, std::string name, double ts_us,
             double dur_us, std::uint32_t depth)
{
    Buffer& buffer = localBuffer();
    TraceRecord record;
    record.ts_us = ts_us;
    record.dur_us = dur_us;
    record.cat = cat;
    record.name = std::move(name);
    record.tid = buffer.tid;
    record.depth = depth;
    record.instant = false;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.records.push_back(std::move(record));
}

void
Tracer::instant(const char* cat, std::string name)
{
    Buffer& buffer = localBuffer();
    TraceRecord record;
    record.ts_us = nowUs();
    record.cat = cat;
    record.name = std::move(name);
    record.tid = buffer.tid;
    // An instant inside an open span must serialize inside that span's
    // B/E pair: give it child depth, so the forest reconstruction files
    // it as a (zero-width) leaf of the enclosing span.
    record.depth = buffer.depth;
    record.instant = true;
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.records.push_back(std::move(record));
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const std::unique_ptr<Buffer>& buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        buffer->records.clear();
    }
}

std::vector<TraceRecord>
Tracer::snapshot() const
{
    std::vector<TraceRecord> merged;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const std::unique_ptr<Buffer>& buffer : buffers_) {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        merged.insert(merged.end(), buffer->records.begin(),
                      buffer->records.end());
    }
    return merged;
}

namespace {

/** Escape @p text for a JSON string literal (quotes, backslashes, and
 *  control characters; names here are ASCII by construction). */
void
appendEscaped(std::string& out, const std::string& text)
{
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendEvent(std::string& out, const TraceRecord& record, char phase,
            double ts_us, bool& first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"name\":\"";
    appendEscaped(out, record.name);
    out += "\",\"cat\":\"";
    appendEscaped(out, record.cat);
    out += "\",\"ph\":\"";
    out += phase;
    out += '"';
    if (phase == 'i')
        out += ",\"s\":\"t\""; // instant scope: thread
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"pid\":1,\"tid\":%u}",
                  ts_us, record.tid);
    out += buf;
}

/** A span (or instant leaf) with its chronologically ordered children —
 *  one node of the reconstructed per-thread forest. */
struct SpanNode
{
    const TraceRecord* record;
    std::vector<SpanNode> children;
};

void
emitNode(std::string& out, const SpanNode& node, bool& first)
{
    const TraceRecord& record = *node.record;
    if (record.instant) {
        appendEvent(out, record, 'i', record.ts_us, first);
        return;
    }
    appendEvent(out, record, 'B', record.ts_us, first);
    for (const SpanNode& child : node.children)
        emitNode(out, child, first);
    appendEvent(out, record, 'E', record.ts_us + record.dur_us, first);
}

/**
 * Rebuild one thread's begin/end sequence from its postorder record
 * stream. Scopes are strictly nested per thread (RAII), so a record's
 * children are exactly the maximal run of deeper records immediately
 * preceding it; a stack reconstruction recovers the forest, and a
 * preorder walk with closing events recovers the chronological B/E
 * sequence — robust even when adjacent spans share a microsecond
 * timestamp, where a plain timestamp sort could interleave the pairs.
 */
void
emitThread(std::string& out, const std::vector<const TraceRecord*>& records,
           bool& first)
{
    std::vector<SpanNode> pending;
    for (const TraceRecord* record : records) {
        SpanNode node{record, {}};
        while (!pending.empty() &&
               pending.back().record->depth > record->depth) {
            node.children.push_back(std::move(pending.back()));
            pending.pop_back();
        }
        std::reverse(node.children.begin(), node.children.end());
        pending.push_back(std::move(node));
    }
    for (const SpanNode& root : pending)
        emitNode(out, root, first);
}

} // namespace

std::string
Tracer::json() const
{
    const std::vector<TraceRecord> records = snapshot();

    // Group by thread, preserving each thread's append order.
    std::uint32_t max_tid = 0;
    for (const TraceRecord& record : records)
        max_tid = std::max(max_tid, record.tid);
    std::vector<std::vector<const TraceRecord*>> by_tid(max_tid + 1);
    for (const TraceRecord& record : records)
        by_tid[record.tid].push_back(&record);

    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    for (const std::vector<const TraceRecord*>& thread_records : by_tid) {
        if (!thread_records.empty())
            emitThread(out, thread_records, first);
    }
    out += "\n]}\n";
    return out;
}

void
Tracer::writeFile() const
{
    if (path_.empty())
        return;
    const std::string text = json();
    std::FILE* file = std::fopen(path_.c_str(), "w");
    if (file == nullptr)
        fatal(strcatMsg("Tracer: cannot open trace output '", path_, "'"));
    const std::size_t written =
        std::fwrite(text.data(), 1, text.size(), file);
    const bool ok = written == text.size() && std::fclose(file) == 0;
    if (!ok)
        fatal(strcatMsg("Tracer: short write to trace output '", path_,
                        "'"));
}

} // namespace tlp::util
