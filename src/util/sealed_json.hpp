/**
 * @file
 * Sealed one-line JSON records: JSON objects with a trailing CRC32
 * seal, shared by the service store's manifest and table headers, the
 * request/response wire format, and the persistent raw-run store.
 *
 * Convention (the journal's): a sealed line is a JSON object whose
 * last member is `"crc"`, and the stored CRC32 covers every byte of
 * the line before the `,"crc":` token. Field extraction is the same
 * fixed-token scan the journal uses — every producer in this codebase
 * writes short known keys and quote-free string values, so a substring
 * search is exact for this format (values never embed quotes: see
 * escapeForWire).
 */

#ifndef TLP_UTIL_SEALED_JSON_HPP
#define TLP_UTIL_SEALED_JSON_HPP

#include <cstdint>
#include <string>

namespace tlp::util {

/** Seal @p payload (a JSON object text WITHOUT its closing brace) by
 *  appending `,"crc":<crc32>}`. */
std::string sealJsonLine(std::string payload);

/** Verify a sealed line's CRC. */
bool checkSealedJsonLine(const std::string& line);

/** Extract `"<field>":<uint>`; false when absent/malformed. */
bool jsonFieldU64(const std::string& line, const char* field,
                  std::uint64_t& out);

/** Extract `"<field>":<double>`; false when absent/malformed. */
bool jsonFieldDouble(const std::string& line, const char* field,
                     double& out);

/** Extract `"<field>":"<text>"`; false when absent/malformed. */
bool jsonFieldString(const std::string& line, const char* field,
                     std::string& out);

/** Make @p text safe to embed as a wire string value: double quotes
 *  become single quotes, control characters become spaces. Lossy by
 *  design — wire strings are diagnostics, not payload. */
std::string escapeForWire(const std::string& text);

} // namespace tlp::util

#endif // TLP_UTIL_SEALED_JSON_HPP
