#include "util/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

RootResult
bisect(const std::function<double(double)>& f, double lo, double hi,
       double x_tol, int max_iter)
{
    if (!(lo <= hi))
        fatal(strcatMsg("bisect: invalid bracket [", lo, ", ", hi, "]"));

    double flo = f(lo);
    double fhi = f(hi);
    RootResult result;

    if (flo == 0.0) {
        result = {lo, 0.0, 0, true};
        return result;
    }
    if (fhi == 0.0) {
        result = {hi, 0.0, 0, true};
        return result;
    }
    if (std::signbit(flo) == std::signbit(fhi)) {
        fatal(strcatMsg("bisect: f does not change sign on [", lo, ", ", hi,
                        "] (f(lo)=", flo, ", f(hi)=", fhi, ")"));
    }

    double a = lo, b = hi, fa = flo;
    int it = 0;
    while (it < max_iter && (b - a) > x_tol) {
        const double mid = 0.5 * (a + b);
        const double fm = f(mid);
        ++it;
        if (fm == 0.0) {
            result = {mid, 0.0, it, true};
            return result;
        }
        if (std::signbit(fm) == std::signbit(fa)) {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    const double x = 0.5 * (a + b);
    result = {x, f(x), it, (b - a) <= x_tol};
    return result;
}

MaxResult
goldenMax(const std::function<double(double)>& f, double lo, double hi,
          double x_tol, int max_iter)
{
    if (!(lo <= hi))
        fatal(strcatMsg("goldenMax: invalid bracket [", lo, ", ", hi, "]"));

    constexpr double inv_phi = 0.6180339887498949;  // 1/phi
    double a = lo, b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    int it = 0;
    while (it < max_iter && (b - a) > x_tol) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
        ++it;
    }
    const double x = 0.5 * (a + b);
    return {x, f(x), it};
}

MaxResult
maximizeScan(const std::function<double(double)>& f, double lo, double hi,
             int samples, double x_tol)
{
    if (samples < 2)
        fatal("maximizeScan: need at least 2 samples");
    if (!(lo <= hi))
        fatal(strcatMsg("maximizeScan: invalid bracket [", lo, ", ", hi, "]"));

    double best_x = lo;
    double best_f = f(lo);
    int best_i = 0;
    for (int i = 1; i < samples; ++i) {
        const double x = lo + (hi - lo) * i / (samples - 1);
        const double fx = f(x);
        if (fx > best_f) {
            best_f = fx;
            best_x = x;
            best_i = i;
        }
    }
    // Refine within the neighbouring grid cells of the best sample.
    const double step = (hi - lo) / (samples - 1);
    const double a = std::max(lo, lo + (best_i - 1) * step);
    const double b = std::min(hi, lo + (best_i + 1) * step);
    MaxResult refined = goldenMax(f, a, b, x_tol);
    if (refined.fx >= best_f)
        return refined;
    return {best_x, best_f, refined.iterations};
}

} // namespace tlp::util
