#include "util/solver.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

const char*
rootFailureName(RootFailure failure)
{
    switch (failure) {
    case RootFailure::None:
        return "none";
    case RootFailure::InvalidBracket:
        return "invalid-bracket";
    case RootFailure::NoSignChange:
        return "no-sign-change";
    case RootFailure::NanObjective:
        return "nan-objective";
    case RootFailure::MaxIterations:
        return "max-iterations";
    }
    return "none";
}

RootResult
tryBisect(const std::function<double(double)>& f, double lo, double hi,
          double x_tol, int max_iter)
{
    RootResult result;
    if (!(lo <= hi)) {
        result.failure = RootFailure::InvalidBracket;
        result.x = lo;
        return result;
    }

    const double flo = f(lo);
    const double fhi = f(hi);
    result.f_lo = flo;
    result.f_hi = fhi;
    if (std::isnan(flo) || std::isnan(fhi)) {
        result.failure = RootFailure::NanObjective;
        result.x = std::isnan(flo) ? lo : hi;
        result.fx = std::isnan(flo) ? flo : fhi;
        return result;
    }

    if (flo == 0.0) {
        result.x = lo;
        result.converged = true;
        return result;
    }
    if (fhi == 0.0) {
        result.x = hi;
        result.converged = true;
        return result;
    }
    if (std::signbit(flo) == std::signbit(fhi)) {
        result.failure = RootFailure::NoSignChange;
        result.x = 0.5 * (lo + hi);
        result.fx = flo;
        return result;
    }

    double a = lo, b = hi, fa = flo;
    int it = 0;
    while (it < max_iter && (b - a) > x_tol) {
        const double mid = 0.5 * (a + b);
        const double fm = f(mid);
        ++it;
        if (std::isnan(fm)) {
            result.failure = RootFailure::NanObjective;
            result.x = mid;
            result.fx = fm;
            result.iterations = it;
            return result;
        }
        if (fm == 0.0) {
            result.x = mid;
            result.iterations = it;
            result.converged = true;
            return result;
        }
        if (std::signbit(fm) == std::signbit(fa)) {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    result.x = 0.5 * (a + b);
    result.fx = f(result.x);
    result.iterations = it;
    result.converged = (b - a) <= x_tol;
    if (!result.converged)
        result.failure = RootFailure::MaxIterations;
    return result;
}

RootResult
bisect(const std::function<double(double)>& f, double lo, double hi,
       double x_tol, int max_iter)
{
    RootResult result = tryBisect(f, lo, hi, x_tol, max_iter);
    switch (result.failure) {
    case RootFailure::InvalidBracket:
        fatal(strcatMsg("bisect: invalid bracket [", lo, ", ", hi, "]"));
    case RootFailure::NoSignChange:
    case RootFailure::NanObjective:
        fatal(strcatMsg("bisect: f does not change sign on [", lo, ", ", hi,
                        "] (f(lo)=", result.f_lo, ", f(hi)=", result.f_hi,
                        ")"));
    case RootFailure::None:
    case RootFailure::MaxIterations:
        break; // max-iter keeps the legacy converged=false return
    }
    return result;
}

MaxResult
goldenMax(const std::function<double(double)>& f, double lo, double hi,
          double x_tol, int max_iter)
{
    if (!(lo <= hi))
        fatal(strcatMsg("goldenMax: invalid bracket [", lo, ", ", hi, "]"));

    constexpr double inv_phi = 0.6180339887498949;  // 1/phi
    double a = lo, b = hi;
    double c = b - inv_phi * (b - a);
    double d = a + inv_phi * (b - a);
    double fc = f(c);
    double fd = f(d);
    int it = 0;
    while (it < max_iter && (b - a) > x_tol) {
        if (fc > fd) {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
        ++it;
    }
    const double x = 0.5 * (a + b);
    return {x, f(x), it};
}

MaxResult
maximizeScan(const std::function<double(double)>& f, double lo, double hi,
             int samples, double x_tol)
{
    if (samples < 2)
        fatal("maximizeScan: need at least 2 samples");
    if (!(lo <= hi))
        fatal(strcatMsg("maximizeScan: invalid bracket [", lo, ", ", hi, "]"));

    double best_x = lo;
    double best_f = f(lo);
    int best_i = 0;
    for (int i = 1; i < samples; ++i) {
        const double x = lo + (hi - lo) * i / (samples - 1);
        const double fx = f(x);
        if (fx > best_f) {
            best_f = fx;
            best_x = x;
            best_i = i;
        }
    }
    // Refine within the neighbouring grid cells of the best sample.
    const double step = (hi - lo) / (samples - 1);
    const double a = std::max(lo, lo + (best_i - 1) * step);
    const double b = std::min(hi, lo + (best_i + 1) * step);
    MaxResult refined = goldenMax(f, a, b, x_tol);
    if (refined.fx >= best_f)
        return refined;
    return {best_x, best_f, refined.iterations};
}

} // namespace tlp::util
