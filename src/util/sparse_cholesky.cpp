#include "util/sparse_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

SparseSpdMatrix::SparseSpdMatrix(std::size_t n) : n_(n)
{
    if (n == 0)
        fatal("SparseSpdMatrix: empty matrix");
}

void
SparseSpdMatrix::add(std::size_t i, std::size_t j, double v)
{
    if (compressed_)
        fatal("SparseSpdMatrix::add: matrix already compressed");
    if (i >= n_ || j >= n_)
        fatal("SparseSpdMatrix::add: index out of range");
    if (i < j)
        std::swap(i, j); // keep the lower-triangle image
    triplets_.push_back({i, j, v});
}

void
SparseSpdMatrix::compress()
{
    if (compressed_)
        fatal("SparseSpdMatrix::compress: already compressed");
    compressed_ = true;

    // Stable sort keeps duplicate entries in insertion order, so their
    // accumulation below sums in exactly the order the assembly loop
    // added them (the dense builder's accumulation order).
    std::stable_sort(triplets_.begin(), triplets_.end(),
                     [](const Triplet& a, const Triplet& b) {
                         if (a.col != b.col)
                             return a.col < b.col;
                         return a.row < b.row;
                     });

    col_ptr_.assign(n_ + 1, 0);
    row_idx_.clear();
    values_.clear();
    std::size_t k = 0;
    for (std::size_t col = 0; col < n_; ++col) {
        col_ptr_[col] = row_idx_.size();
        while (k < triplets_.size() && triplets_[k].col == col) {
            const std::size_t row = triplets_[k].row;
            double v = triplets_[k].value;
            ++k;
            while (k < triplets_.size() && triplets_[k].col == col &&
                   triplets_[k].row == row) {
                v += triplets_[k].value;
                ++k;
            }
            row_idx_.push_back(row);
            values_.push_back(v);
        }
    }
    col_ptr_[n_] = row_idx_.size();
    triplets_.clear();
    triplets_.shrink_to_fit();
}

bool
SparseCholesky::patternMatches(const SparseSpdMatrix& a) const
{
    return n_ == a.size() && a_col_ptr_ == a.colPtr() &&
        a_row_idx_ == a.rowIdx();
}

void
SparseCholesky::analyze(const SparseSpdMatrix& a)
{
    ++symbolic_analyses_;
    n_ = a.size();
    a_col_ptr_ = a.colPtr();
    a_row_idx_ = a.rowIdx();
    nnz_a_lower_ = a.nnzLower();

    // Undirected adjacency (strict off-diagonal) as sorted vectors.
    std::vector<std::vector<std::size_t>> adj(n_);
    for (std::size_t col = 0; col < n_; ++col) {
        for (std::size_t t = a_col_ptr_[col]; t < a_col_ptr_[col + 1];
             ++t) {
            const std::size_t row = a_row_idx_[t];
            if (row == col)
                continue;
            adj[col].push_back(row);
            adj[row].push_back(col);
        }
    }
    for (auto& neighbours : adj)
        std::sort(neighbours.begin(), neighbours.end());

    // Greedy minimum-degree on the elimination graph; ties break on the
    // smallest node index, so the ordering is deterministic. The column
    // pattern of L falls out for free: the eliminated node's remaining
    // neighbours ARE its factor column (the classic elimination game).
    perm_.assign(n_, 0);
    iperm_.assign(n_, 0);
    std::vector<char> alive(n_, 1);
    std::vector<std::vector<std::size_t>> col_nodes(n_);
    const auto insertSorted = [](std::vector<std::size_t>& v,
                                 std::size_t x) {
        const auto it = std::lower_bound(v.begin(), v.end(), x);
        if (it == v.end() || *it != x)
            v.insert(it, x);
    };
    const auto eraseSorted = [](std::vector<std::size_t>& v,
                                std::size_t x) {
        const auto it = std::lower_bound(v.begin(), v.end(), x);
        if (it != v.end() && *it == x)
            v.erase(it);
    };
    for (std::size_t step = 0; step < n_; ++step) {
        std::size_t best = n_;
        std::size_t best_deg = n_ + 1;
        for (std::size_t v = 0; v < n_; ++v) {
            if (alive[v] && adj[v].size() < best_deg) {
                best_deg = adj[v].size();
                best = v;
            }
        }
        perm_[step] = best;
        iperm_[best] = step;
        alive[best] = 0;
        col_nodes[step] = adj[best];
        // Form the clique among the eliminated node's neighbours and
        // detach it from the graph.
        const std::vector<std::size_t>& nb = col_nodes[step];
        for (std::size_t u : nb) {
            eraseSorted(adj[u], best);
            for (std::size_t w : nb) {
                if (w != u)
                    insertSorted(adj[u], w);
            }
        }
        adj[best].clear();
    }

    // Symbolic L in permuted coordinates: rows ascending per column.
    l_col_ptr_.assign(n_ + 1, 0);
    l_row_.clear();
    for (std::size_t j = 0; j < n_; ++j) {
        l_col_ptr_[j] = l_row_.size();
        std::vector<std::size_t> rows;
        rows.reserve(col_nodes[j].size());
        for (std::size_t node : col_nodes[j])
            rows.push_back(iperm_[node]);
        std::sort(rows.begin(), rows.end());
        l_row_.insert(l_row_.end(), rows.begin(), rows.end());
    }
    l_col_ptr_[n_] = l_row_.size();
    l_val_.assign(l_row_.size(), 0.0);
    l_diag_.assign(n_, 0.0);

    // Re-address A's lower-triangle entries to permuted coordinates for
    // the numeric scatter: entry (i, j) lands in permuted column
    // min(iperm) with permuted row max(iperm).
    struct PermEntry
    {
        std::size_t col;
        std::size_t row;
        std::size_t src;
    };
    std::vector<PermEntry> entries;
    entries.reserve(nnz_a_lower_);
    for (std::size_t col = 0; col < n_; ++col) {
        for (std::size_t t = a_col_ptr_[col]; t < a_col_ptr_[col + 1];
             ++t) {
            const std::size_t pi = iperm_[a_row_idx_[t]];
            const std::size_t pj = iperm_[col];
            entries.push_back(
                {std::min(pi, pj), std::max(pi, pj), t});
        }
    }
    std::stable_sort(entries.begin(), entries.end(),
                     [](const PermEntry& x, const PermEntry& y) {
                         if (x.col != y.col)
                             return x.col < y.col;
                         return x.row < y.row;
                     });
    a_perm_col_ptr_.assign(n_ + 1, 0);
    a_perm_row_.resize(entries.size());
    a_perm_src_.resize(entries.size());
    std::size_t k = 0;
    for (std::size_t j = 0; j < n_; ++j) {
        a_perm_col_ptr_[j] = k;
        while (k < entries.size() && entries[k].col == j) {
            a_perm_row_[k] = entries[k].row;
            a_perm_src_[k] = entries[k].src;
            ++k;
        }
    }
    a_perm_col_ptr_[n_] = k;
}

void
SparseCholesky::factorize(const SparseSpdMatrix& a)
{
    if (!a.compressed())
        fatal("SparseCholesky::factorize: matrix not compressed");
    if (!patternMatches(a))
        analyze(a);

    const std::vector<double>& avals = a.values();

    // Left-looking numeric factorization with the symbolic pattern fixed.
    // pending[j] chains the columns k < j whose next unconsumed entry
    // sits at row j (the standard cursor/linked-list technique); the
    // chain order is deterministic, so repeated factorizations of the
    // same values are bit-identical.
    std::vector<double> w(n_, 0.0);
    std::vector<std::ptrdiff_t> head(n_, -1);
    std::vector<std::ptrdiff_t> next(n_, -1);
    std::vector<std::size_t> cursor(n_, 0);

    for (std::size_t j = 0; j < n_; ++j) {
        // Clear + scatter A's column j (diagonal and structural rows).
        w[j] = 0.0;
        for (std::size_t t = l_col_ptr_[j]; t < l_col_ptr_[j + 1]; ++t)
            w[l_row_[t]] = 0.0;
        for (std::size_t t = a_perm_col_ptr_[j]; t < a_perm_col_ptr_[j + 1];
             ++t)
            w[a_perm_row_[t]] += avals[a_perm_src_[t]];

        // Apply the updates of every finished column with an entry at
        // row j: w -= L(j:, k) * L(j, k).
        std::ptrdiff_t k = head[j];
        head[j] = -1;
        while (k >= 0) {
            const std::ptrdiff_t k_next = next[k];
            const std::size_t kk = static_cast<std::size_t>(k);
            const std::size_t pos = cursor[kk];
            const double ljk = l_val_[pos];
            for (std::size_t t = pos; t < l_col_ptr_[kk + 1]; ++t)
                w[l_row_[t]] -= l_val_[t] * ljk;
            cursor[kk] = pos + 1;
            if (cursor[kk] < l_col_ptr_[kk + 1]) {
                const std::size_t r = l_row_[cursor[kk]];
                next[k] = head[r];
                head[r] = k;
            }
            k = k_next;
        }

        if (!(w[j] > 0.0) || !std::isfinite(w[j])) {
            fatal(strcatMsg("SparseCholesky: matrix not positive definite "
                            "(pivot ",
                            w[j], " at permuted column ", j, ")"));
        }
        const double d = std::sqrt(w[j]);
        l_diag_[j] = d;
        const double inv_d = 1.0 / d;
        for (std::size_t t = l_col_ptr_[j]; t < l_col_ptr_[j + 1]; ++t)
            l_val_[t] = w[l_row_[t]] * inv_d;
        cursor[j] = l_col_ptr_[j];
        if (l_col_ptr_[j] < l_col_ptr_[j + 1]) {
            const std::size_t r = l_row_[l_col_ptr_[j]];
            next[static_cast<std::ptrdiff_t>(j)] = head[r];
            head[r] = static_cast<std::ptrdiff_t>(j);
        }
    }
}

void
SparseCholesky::solveInterleavedInPlace(double* b, std::size_t n_rhs,
                                        std::vector<double>& work) const
{
    if (n_ == 0)
        fatal("SparseCholesky::solve: not factorized");
    if (n_rhs == 0)
        return;
    work.resize(n_ * n_rhs);
    double* x = work.data();

    // Permute into elimination order.
    for (std::size_t j = 0; j < n_; ++j) {
        const double* src = b + perm_[j] * n_rhs;
        double* dst = x + j * n_rhs;
        for (std::size_t r = 0; r < n_rhs; ++r)
            dst[r] = src[r];
    }
    // Forward solve L y = b: per column, divide by the diagonal, then
    // subtract the column's contribution from the rows below. The inner
    // loops run over the contiguous RHS dimension.
    for (std::size_t j = 0; j < n_; ++j) {
        double* xj = x + j * n_rhs;
        const double inv_d = 1.0 / l_diag_[j];
        for (std::size_t r = 0; r < n_rhs; ++r)
            xj[r] *= inv_d;
        for (std::size_t t = l_col_ptr_[j]; t < l_col_ptr_[j + 1]; ++t) {
            const double l = l_val_[t];
            double* xr = x + l_row_[t] * n_rhs;
            for (std::size_t r = 0; r < n_rhs; ++r)
                xr[r] -= l * xj[r];
        }
    }
    // Backward solve L^T x = y.
    for (std::size_t j = n_; j-- > 0;) {
        double* xj = x + j * n_rhs;
        for (std::size_t t = l_col_ptr_[j]; t < l_col_ptr_[j + 1]; ++t) {
            const double l = l_val_[t];
            const double* xr = x + l_row_[t] * n_rhs;
            for (std::size_t r = 0; r < n_rhs; ++r)
                xj[r] -= l * xr[r];
        }
        const double inv_d = 1.0 / l_diag_[j];
        for (std::size_t r = 0; r < n_rhs; ++r)
            xj[r] *= inv_d;
    }
    // Un-permute.
    for (std::size_t j = 0; j < n_; ++j) {
        const double* src = x + j * n_rhs;
        double* dst = b + perm_[j] * n_rhs;
        for (std::size_t r = 0; r < n_rhs; ++r)
            dst[r] = src[r];
    }
}

void
SparseCholesky::solveInPlace(std::vector<double>& b,
                             std::vector<double>& work) const
{
    if (b.size() != n_)
        fatal("SparseCholesky::solve: rhs size mismatch");
    solveInterleavedInPlace(b.data(), 1, work);
}

void
SparseCholesky::solveInPlace(std::vector<double>& b) const
{
    std::vector<double> work;
    solveInPlace(b, work);
}

} // namespace tlp::util
