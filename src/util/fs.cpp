#include "util/fs.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/logging.hpp"

namespace tlp::util {

namespace {

Error
ioError(const std::string& what, const std::string& path)
{
    return Error{ErrorCode::IoError,
                 strcatMsg(what, " '", path, "': ", std::strerror(errno))};
}

} // namespace

Expected<std::string>
readFile(const std::string& path)
{
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return ioError("cannot open", path);
    std::string content;
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof(buf), file)) > 0)
        content.append(buf, got);
    const bool failed = std::ferror(file) != 0;
    std::fclose(file);
    if (failed)
        return ioError("read failed on", path);
    return content;
}

Expected<std::optional<std::string>>
readFileIfExists(const std::string& path)
{
    if (!pathExists(path))
        return std::optional<std::string>{};
    auto content = readFile(path);
    if (!content)
        return content.error();
    return std::optional<std::string>{std::move(content.value())};
}

Expected<bool>
atomicWriteFile(const std::string& path, const std::string& content)
{
    const std::string tmp =
        strcatMsg(path, ".tmp.", static_cast<long>(::getpid()));
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr)
        return ioError("cannot create", tmp);
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), file);
    if (written != content.size() || std::fflush(file) != 0 ||
        ::fsync(::fileno(file)) != 0) {
        std::fclose(file);
        std::remove(tmp.c_str());
        return ioError("short write to", tmp);
    }
    if (std::fclose(file) != 0) {
        std::remove(tmp.c_str());
        return ioError("close failed on", tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return ioError("rename failed onto", path);
    }
    return true;
}

Expected<bool>
writeFileRaw(const std::string& path, const std::string& content)
{
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        return ioError("cannot create", path);
    const std::size_t written =
        std::fwrite(content.data(), 1, content.size(), file);
    const bool short_write = written != content.size();
    std::fclose(file);
    if (short_write)
        return ioError("short write to", path);
    return true;
}

Expected<bool>
ensureDir(const std::string& dir)
{
    if (::mkdir(dir.c_str(), 0775) == 0 || errno == EEXIST)
        return true;
    return ioError("cannot create directory", dir);
}

std::vector<std::string>
listDir(const std::string& dir, const std::string& suffix)
{
    std::vector<std::string> names;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr)
        return names;
    while (const dirent* entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        if (!suffix.empty() &&
            (name.size() < suffix.size() ||
             name.compare(name.size() - suffix.size(), suffix.size(),
                          suffix) != 0))
            continue;
        names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

bool
pathExists(const std::string& path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

bool
removePath(const std::string& path)
{
    return std::remove(path.c_str()) == 0 || errno == ENOENT;
}

Expected<bool>
renamePath(const std::string& from, const std::string& to)
{
    if (std::rename(from.c_str(), to.c_str()) != 0)
        return ioError(strcatMsg("cannot rename '", from, "' onto"), to);
    return true;
}

std::size_t
sweepTmpFiles(const std::string& dir)
{
    std::size_t removed = 0;
    for (const std::string& name : listDir(dir)) {
        if (name.find(".tmp.") == std::string::npos)
            continue;
        if (removePath(dir + "/" + name))
            ++removed;
    }
    return removed;
}

FileLock::~FileLock()
{
    release();
}

FileLock::FileLock(FileLock&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_))
{
    other.fd_ = -1;
}

FileLock&
FileLock::operator=(FileLock&& other) noexcept
{
    if (this != &other) {
        release();
        fd_ = other.fd_;
        path_ = std::move(other.path_);
        other.fd_ = -1;
    }
    return *this;
}

Expected<bool>
FileLock::acquire(const std::string& path, Mode mode)
{
    release();
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0664);
    if (fd < 0)
        return ioError("cannot open lock file", path);
    const int op = mode == Mode::Shared ? LOCK_SH : LOCK_EX;
    if (::flock(fd, op | LOCK_NB) != 0) {
        const Error error =
            errno == EWOULDBLOCK
                ? Error{ErrorCode::Overloaded,
                        strcatMsg("store lock '", path,
                                  "' is held by another process")}
                : ioError("cannot lock", path);
        ::close(fd);
        return error;
    }
    fd_ = fd;
    path_ = path;
    return true;
}

Expected<bool>
FileLock::downgradeToShared()
{
    if (fd_ < 0) {
        return Error{ErrorCode::InvalidArgument,
                     "downgradeToShared: no lock held"};
    }
    // Blocking on purpose: the conversion drops the exclusive lock
    // first, and another exclusive holder slipping into the gap (an
    // opener doing its crash-leftover GC) finishes quickly.
    if (::flock(fd_, LOCK_SH) != 0)
        return ioError("cannot downgrade lock", path_);
    return true;
}

void
FileLock::release()
{
    if (fd_ >= 0) {
        ::flock(fd_, LOCK_UN);
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace tlp::util
