#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "util/logging.hpp"

namespace tlp::util {

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header))
{
    if (header_.empty())
        fatal("Table: header must not be empty");
}

void
Table::addRow(std::vector<std::string> row)
{
    if (row.size() != header_.size()) {
        fatal(strcatMsg("Table '", title_, "': row width ", row.size(),
                        " != header width ", header_.size()));
    }
    rows_.push_back(std::move(row));
}

std::string
Table::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
Table::num(std::uint64_t value)
{
    return std::to_string(value);
}

std::string
Table::num(int value)
{
    return std::to_string(value);
}

const std::string&
Table::cell(std::size_t row, std::size_t col) const
{
    if (row >= rows_.size() || col >= header_.size())
        fatal(strcatMsg("Table '", title_, "': cell (", row, ",", col,
                        ") out of range"));
    return rows_[row][col];
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    os << "== " << title_ << " ==\n";
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            if (c + 1 < row.size())
                os << "  ";
        }
        os << "\n";
    };
    print_row(header_);
    std::size_t rule_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule_width, '-') << "\n";
    for (const auto& row : rows_)
        print_row(row);
    os << "\n";
}

void
Table::printCsv(std::ostream& os) const
{
    auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    print_row(header_);
    for (const auto& row : rows_)
        print_row(row);
}

} // namespace tlp::util
