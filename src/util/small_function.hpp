/**
 * @file
 * SmallFunction — a move-only, small-buffer-optimized `void()` callable.
 *
 * The discrete-event simulator schedules tens of millions of continuation
 * closures per figure sweep; wrapping each one in std::function costs a
 * heap allocation whenever the capture outgrows the (implementation
 * defined, typically 16-byte) inline buffer. SmallFunction guarantees a
 * caller-chosen inline capacity, so every closure the simulator creates
 * stays on the stack/heap-array of the event queue itself. Callables that
 * do exceed the buffer fall back to a single heap allocation, preserving
 * generality.
 */

#ifndef TLP_UTIL_SMALL_FUNCTION_HPP
#define TLP_UTIL_SMALL_FUNCTION_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tlp::util {

/** Move-only `void()` callable with @p InlineBytes of inline storage. */
template <std::size_t InlineBytes = 64>
class SmallFunction
{
  public:
    SmallFunction() noexcept = default;
    SmallFunction(std::nullptr_t) noexcept {}

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunction> &&
                  std::is_invocable_r_v<void, D&>>>
    SmallFunction(F&& f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>();
        } else {
            ::new (static_cast<void*>(storage_)) D*(
                new D(std::forward<F>(f)));
            ops_ = &heapOps<D>();
        }
    }

    SmallFunction(SmallFunction&& other) noexcept
    {
        if (other.ops_) {
            other.ops_->relocate(storage_, other.storage_);
            ops_ = other.ops_;
            other.ops_ = nullptr;
        }
    }

    SmallFunction&
    operator=(SmallFunction&& other) noexcept
    {
        if (this != &other) {
            destroy();
            if (other.ops_) {
                other.ops_->relocate(storage_, other.storage_);
                ops_ = other.ops_;
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    SmallFunction(const SmallFunction&) = delete;
    SmallFunction& operator=(const SmallFunction&) = delete;

    ~SmallFunction() { destroy(); }

    void
    operator()()
    {
        ops_->invoke(storage_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

  private:
    struct Ops
    {
        void (*invoke)(void*);
        /** Move-construct into @p dst from @p src and destroy @p src. */
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= InlineBytes &&
            alignof(D) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static const Ops&
    inlineOps()
    {
        struct H
        {
            static void
            invoke(void* p)
            {
                (*std::launder(static_cast<D*>(p)))();
            }
            static void
            relocate(void* dst, void* src) noexcept
            {
                D* s = std::launder(static_cast<D*>(src));
                ::new (dst) D(std::move(*s));
                s->~D();
            }
            static void
            destroy(void* p) noexcept
            {
                std::launder(static_cast<D*>(p))->~D();
            }
        };
        static constexpr Ops ops = {&H::invoke, &H::relocate, &H::destroy};
        return ops;
    }

    template <typename D>
    static const Ops&
    heapOps()
    {
        struct H
        {
            static D*&
            slot(void* p)
            {
                return *std::launder(static_cast<D**>(p));
            }
            static void
            invoke(void* p)
            {
                (*slot(p))();
            }
            static void
            relocate(void* dst, void* src) noexcept
            {
                ::new (dst) D*(slot(src));
            }
            static void
            destroy(void* p) noexcept
            {
                delete slot(p);
            }
        };
        static constexpr Ops ops = {&H::invoke, &H::relocate, &H::destroy};
        return ops;
    }

    void
    destroy() noexcept
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage_[InlineBytes];
    const Ops* ops_ = nullptr;
};

} // namespace tlp::util

#endif // TLP_UTIL_SMALL_FUNCTION_HPP
