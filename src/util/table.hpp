/**
 * @file
 * Result tables: aligned ASCII rendering for terminals and CSV export.
 *
 * Every bench binary regenerates a paper figure/table as one of these so the
 * harness output is both human-readable and machine-parsable.
 */

#ifndef TLP_UTIL_TABLE_HPP
#define TLP_UTIL_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace tlp::util {

/** A rectangular table of stringized cells with a header row. */
class Table
{
  public:
    /** @param title caption printed above the table,
     *  @param header column names. */
    Table(std::string title, std::vector<std::string> header);

    /** Append a pre-stringized row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Format a double with @p precision significant decimal digits. */
    static std::string num(double value, int precision = 4);

    /** Format an integer. */
    static std::string num(std::uint64_t value);
    static std::string num(int value);

    /** Render with aligned columns. */
    void print(std::ostream& os) const;

    /** Render as RFC-4180-ish CSV (no quoting of commas; callers keep cells
     *  comma-free). */
    void printCsv(std::ostream& os) const;

    const std::string& title() const { return title_; }
    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

    /** Cell accessor (row-major, excluding the header). */
    const std::string& cell(std::size_t row, std::size_t col) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tlp::util

#endif // TLP_UTIL_TABLE_HPP
