/**
 * @file
 * Tracer — zero-overhead-when-off structured tracing in the Chrome trace
 * event format (chrome://tracing / Perfetto "traceEvents" JSON).
 *
 * Design constraints, in order:
 *
 *  1. Off is free. Tracing is gated by one process-global atomic flag;
 *     every instrumentation site (the TLPPM_TRACE_SCOPE macro) costs a
 *     relaxed load and a predicted branch when tracing is disabled, and
 *     the span-name string is never even built. The figure sweeps keep
 *     their hot-path timing to well under measurement noise.
 *
 *  2. Recording cannot perturb determinism. A span records wall-clock
 *     timestamps only; it never touches simulator or solver state, and
 *     each thread appends to its own buffer, so enabling the tracer
 *     introduces no cross-thread synchronization on the sweep's task
 *     ordering. The figure tables are byte-identical with tracing on or
 *     off, at any job count (test_observability proves it).
 *
 *  3. Workers buffer locally, spans merge at the end. Buffers are
 *     registered once per thread (one mutex acquisition for the whole
 *     thread lifetime) and owned by the Tracer singleton, so they
 *     outlive pool teardown; serialization merges and orders them only
 *     when the trace is written.
 *
 * Span events are emitted as matched "B"/"E" pairs (begin/end) plus "i"
 * instant events, the subset of the trace-event spec that both
 * chrome://tracing and Perfetto load directly.
 */

#ifndef TLP_UTIL_TRACE_HPP
#define TLP_UTIL_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/logging.hpp"

namespace tlp::util {

/** One recorded trace event (a completed span or an instant marker). */
struct TraceRecord
{
    double ts_us = 0.0;  ///< start (span) or occurrence (instant) [us]
    double dur_us = 0.0; ///< span duration [us]; ignored for instants
    const char* cat = "";///< static category string ("sim", "thermal", ...)
    std::string name;    ///< event name ("simulate:FFT n=4 ...")
    std::uint32_t tid = 0; ///< tracer-assigned thread id (1-based)
    std::uint32_t depth = 0; ///< span nesting depth at begin (0 = root)
    bool instant = false;  ///< true: "i" event, false: "B"/"E" span
};

/** Process-wide trace recorder. Access through instance(). */
class Tracer
{
  public:
    static Tracer& instance();

    /**
     * Start recording. @p path is where writeFile() will put the JSON
     * (empty: buffer only, for tests). Clears previously recorded
     * events. Not thread-safe against concurrent recording — enable
     * before the sweep starts.
     */
    void enable(std::string path);

    /** Enable from the TLPPM_TRACE environment variable (a file path);
     *  no-op when unset or empty. */
    void enableFromEnv();

    /** Stop recording. Already-buffered events are kept. */
    void disable();

    /** True while recording. The one flag every site checks. */
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Microseconds since the epoch set by enable(). */
    double nowUs() const;

    /** Record a completed span. Called by TraceScope's destructor. */
    void span(const char* cat, std::string name, double ts_us,
              double dur_us, std::uint32_t depth);

    /** Record an instant event at the current time. */
    void instant(const char* cat, std::string name);

    /** Nesting depth bookkeeping for the calling thread's spans. */
    std::uint32_t beginDepth();
    void endDepth();

    /**
     * All recorded events, merged across threads and ordered exactly as
     * json() serializes them. Call after the recording threads have
     * quiesced (futures collected / pool drained).
     */
    std::vector<TraceRecord> snapshot() const;

    /** The merged trace as Chrome trace-event JSON:
     *  {"traceEvents":[...]} with one event object per line. */
    std::string json() const;

    /** Write json() to the path given to enable(); no-op when the path
     *  is empty. Throws FatalError when the file cannot be written. */
    void writeFile() const;

    /** The output path armed by enable(). */
    const std::string& path() const { return path_; }

    /** Drop all buffered events (buffers stay registered). Only valid
     *  while disabled. */
    void clear();

  private:
    struct Buffer;

    Tracer() = default;
    Buffer& localBuffer();

    std::atomic<bool> enabled_{false};
    std::string path_;
    std::int64_t epoch_ns_ = 0;
    mutable std::mutex registry_mutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

/**
 * RAII span: begin() stamps the start, the destructor records the span.
 * Default-constructed scopes are inert; the TLPPM_TRACE_SCOPE macro only
 * calls begin() (and thus only builds the name string) when tracing is
 * enabled.
 */
class TraceScope
{
  public:
    TraceScope() = default;
    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

    template <typename... Args>
    void
    begin(const char* cat, Args&&... args)
    {
        Tracer& tracer = Tracer::instance();
        cat_ = cat;
        name_ = strcatMsg(std::forward<Args>(args)...);
        depth_ = tracer.beginDepth();
        start_us_ = tracer.nowUs();
        active_ = true;
    }

    ~TraceScope()
    {
        if (!active_)
            return;
        Tracer& tracer = Tracer::instance();
        tracer.endDepth();
        tracer.span(cat_, std::move(name_), start_us_,
                    tracer.nowUs() - start_us_, depth_);
    }

  private:
    bool active_ = false;
    const char* cat_ = "";
    std::string name_;
    double start_us_ = 0.0;
    std::uint32_t depth_ = 0;
};

/** Record an instant event; the name pieces are only stringified when
 *  tracing is enabled. */
template <typename... Args>
inline void
traceInstant(const char* cat, Args&&... args)
{
    Tracer& tracer = Tracer::instance();
    if (tracer.enabled())
        tracer.instant(cat, strcatMsg(std::forward<Args>(args)...));
}

} // namespace tlp::util

#define TLPPM_TRACE_CONCAT2(a, b) a##b
#define TLPPM_TRACE_CONCAT(a, b) TLPPM_TRACE_CONCAT2(a, b)

/**
 * Open a trace span covering the rest of the enclosing scope.
 * Usage: TLPPM_TRACE_SCOPE("sim", "simulate:", app.name, " n=", n);
 * When tracing is disabled this is one relaxed atomic load.
 */
#define TLPPM_TRACE_SCOPE(cat, ...)                                        \
    ::tlp::util::TraceScope TLPPM_TRACE_CONCAT(tlppm_trace_scope_,         \
                                               __LINE__);                  \
    if (::tlp::util::Tracer::instance().enabled())                         \
        TLPPM_TRACE_CONCAT(tlppm_trace_scope_, __LINE__)                   \
            .begin(cat, __VA_ARGS__)

#endif // TLP_UTIL_TRACE_HPP
