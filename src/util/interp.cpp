#include "util/interp.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::util {

PiecewiseLinear::PiecewiseLinear(
    std::vector<std::pair<double, double>> points, OutOfRange mode)
    : points_(std::move(points)), mode_(mode)
{
    if (points_.empty())
        fatal("PiecewiseLinear: need at least one sample point");
    std::sort(points_.begin(), points_.end());
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].first == points_[i - 1].first) {
            fatal(strcatMsg("PiecewiseLinear: duplicate x sample ",
                            points_[i].first));
        }
    }
}

double
PiecewiseLinear::operator()(double x) const
{
    if (points_.size() == 1)
        return points_.front().second;

    if (x <= points_.front().first) {
        if (mode_ == OutOfRange::Clamp)
            return points_.front().second;
        const auto& [x0, y0] = points_[0];
        const auto& [x1, y1] = points_[1];
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    }
    if (x >= points_.back().first) {
        if (mode_ == OutOfRange::Clamp)
            return points_.back().second;
        const auto& [x0, y0] = points_[points_.size() - 2];
        const auto& [x1, y1] = points_.back();
        return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    }

    const auto it = std::upper_bound(
        points_.begin(), points_.end(), x,
        [](double value, const auto& p) { return value < p.first; });
    const auto& [x1, y1] = *it;
    const auto& [x0, y0] = *(it - 1);
    const double t = (x - x0) / (x1 - x0);
    return y0 + t * (y1 - y0);
}

bool
PiecewiseLinear::monotoneIncreasing() const
{
    for (std::size_t i = 1; i < points_.size(); ++i) {
        if (points_[i].second < points_[i - 1].second)
            return false;
    }
    return true;
}

double
PiecewiseLinear::inverse(double y) const
{
    if (!monotoneIncreasing())
        fatal("PiecewiseLinear::inverse: samples not monotone in y");
    if (points_.size() == 1 || y <= points_.front().second)
        return points_.front().first;
    if (y >= points_.back().second)
        return points_.back().first;

    for (std::size_t i = 1; i < points_.size(); ++i) {
        const auto& [x0, y0] = points_[i - 1];
        const auto& [x1, y1] = points_[i];
        if (y <= y1) {
            if (y1 == y0)
                return x0;
            const double t = (y - y0) / (y1 - y0);
            return x0 + t * (x1 - x0);
        }
    }
    return points_.back().first;  // unreachable; keeps the compiler happy
}

double
PiecewiseLinear::minX() const
{
    return points_.front().first;
}

double
PiecewiseLinear::maxX() const
{
    return points_.back().first;
}

} // namespace tlp::util
