/**
 * @file
 * Scalar root finding and 1-D optimization.
 *
 * The analytical model needs to invert the alpha-power frequency law
 * (tech::AlphaPowerLaw), solve the Scenario II power-budget equality
 * (Eq. 11 of the paper), and maximize speedup over the supply voltage.
 * Bisection and golden-section search are robust for the smooth monotone /
 * unimodal functions involved.
 */

#ifndef TLP_UTIL_SOLVER_HPP
#define TLP_UTIL_SOLVER_HPP

#include <functional>

namespace tlp::util {

/** Why a root search gave up (diagnostics for non-convergence paths). */
enum class RootFailure {
    None = 0,      ///< converged (or still iterable)
    InvalidBracket, ///< lo > hi
    NoSignChange,  ///< f(lo) and f(hi) share a sign: no bracketed root
    NanObjective,  ///< f evaluated to NaN inside the bracket
    MaxIterations, ///< iteration budget exhausted above tolerance
};

/** Stable name of @p failure, e.g. "no-sign-change". */
const char* rootFailureName(RootFailure failure);

/** Result of a root search. */
struct RootResult
{
    double x = 0.0;        ///< abscissa of the root (best estimate)
    double fx = 0.0;       ///< residual f(x)
    int iterations = 0;    ///< iterations used
    bool converged = false; ///< true when |interval| or |f| met tolerance
    RootFailure failure = RootFailure::None; ///< why it gave up
    double f_lo = 0.0;     ///< f at the lower bracket (diagnostic)
    double f_hi = 0.0;     ///< f at the upper bracket (diagnostic)
};

/**
 * Find x in [lo, hi] with f(x) = 0 by bisection.
 *
 * Requires f(lo) and f(hi) to bracket a root (opposite signs or one of them
 * zero); throws FatalError otherwise.
 *
 * @param f        continuous function
 * @param lo       lower bracket
 * @param hi       upper bracket
 * @param x_tol    absolute tolerance on the interval width
 * @param max_iter iteration cap
 */
RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double x_tol = 1e-10, int max_iter = 200);

/**
 * Non-throwing bisection: identical search, but a bad bracket, a NaN
 * objective, or an exhausted iteration budget comes back as a RootResult
 * with converged = false and the failure/f_lo/f_hi/iterations diagnostics
 * populated instead of a FatalError. The sweep containment layer prefers
 * this form: a boundary operating point that cannot be solved is a
 * reportable per-point failure, not a crash.
 */
RootResult tryBisect(const std::function<double(double)>& f, double lo,
                     double hi, double x_tol = 1e-10, int max_iter = 200);

/** Result of a scalar maximization. */
struct MaxResult
{
    double x = 0.0;  ///< argmax
    double fx = 0.0; ///< maximum value
    int iterations = 0;
};

/**
 * Maximize a unimodal function on [lo, hi] by golden-section search.
 *
 * For functions that are not strictly unimodal the search still returns a
 * local maximum within the bracket; callers that need the global maximum of
 * a rough function should pre-scan (see maximizeScan).
 */
MaxResult goldenMax(const std::function<double(double)>& f, double lo,
                    double hi, double x_tol = 1e-8, int max_iter = 200);

/**
 * Globalized maximization: evaluate on a uniform grid of @p samples points,
 * then refine around the best sample with golden-section search.
 */
MaxResult maximizeScan(const std::function<double(double)>& f, double lo,
                       double hi, int samples = 64, double x_tol = 1e-8);

} // namespace tlp::util

#endif // TLP_UTIL_SOLVER_HPP
