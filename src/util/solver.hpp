/**
 * @file
 * Scalar root finding and 1-D optimization.
 *
 * The analytical model needs to invert the alpha-power frequency law
 * (tech::AlphaPowerLaw), solve the Scenario II power-budget equality
 * (Eq. 11 of the paper), and maximize speedup over the supply voltage.
 * Bisection and golden-section search are robust for the smooth monotone /
 * unimodal functions involved.
 */

#ifndef TLP_UTIL_SOLVER_HPP
#define TLP_UTIL_SOLVER_HPP

#include <functional>

namespace tlp::util {

/** Result of a root search. */
struct RootResult
{
    double x = 0.0;        ///< abscissa of the root
    double fx = 0.0;       ///< residual f(x)
    int iterations = 0;    ///< iterations used
    bool converged = false; ///< true when |interval| or |f| met tolerance
};

/**
 * Find x in [lo, hi] with f(x) = 0 by bisection.
 *
 * Requires f(lo) and f(hi) to bracket a root (opposite signs or one of them
 * zero); throws FatalError otherwise.
 *
 * @param f        continuous function
 * @param lo       lower bracket
 * @param hi       upper bracket
 * @param x_tol    absolute tolerance on the interval width
 * @param max_iter iteration cap
 */
RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double x_tol = 1e-10, int max_iter = 200);

/** Result of a scalar maximization. */
struct MaxResult
{
    double x = 0.0;  ///< argmax
    double fx = 0.0; ///< maximum value
    int iterations = 0;
};

/**
 * Maximize a unimodal function on [lo, hi] by golden-section search.
 *
 * For functions that are not strictly unimodal the search still returns a
 * local maximum within the bracket; callers that need the global maximum of
 * a rough function should pre-scan (see maximizeScan).
 */
MaxResult goldenMax(const std::function<double(double)>& f, double lo,
                    double hi, double x_tol = 1e-8, int max_iter = 200);

/**
 * Globalized maximization: evaluate on a uniform grid of @p samples points,
 * then refine around the best sample with golden-section search.
 */
MaxResult maximizeScan(const std::function<double(double)>& f, double lo,
                       double hi, int samples = 64, double x_tol = 1e-8);

} // namespace tlp::util

#endif // TLP_UTIL_SOLVER_HPP
