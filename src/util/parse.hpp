/**
 * @file
 * Checked numeric parsing for CLI arguments and environment variables.
 *
 * std::atof/std::atoi silently return 0 on garbage and ignore trailing
 * junk, so a typo like `--jobs 4x` or `TLPPM_SCALE=0.3.5` used to pass
 * unnoticed. These helpers reject empty input, trailing characters,
 * non-finite values, and out-of-range values, and say exactly what was
 * wrong with which input.
 */

#ifndef TLP_UTIL_PARSE_HPP
#define TLP_UTIL_PARSE_HPP

#include <cstdint>
#include <limits>
#include <string_view>

#include "util/error.hpp"

namespace tlp::util {

/**
 * Parse @p text as a finite double in [lo, hi]. @p what names the input
 * in error messages (e.g. "TLPPM_SCALE"). Leading/trailing whitespace and
 * trailing garbage are rejected.
 */
Expected<double> parseNumber(
    std::string_view text, std::string_view what,
    double lo = std::numeric_limits<double>::lowest(),
    double hi = std::numeric_limits<double>::max());

/** Parse @p text as an integer in [lo, hi]; same strictness. */
Expected<std::int64_t> parseInt(
    std::string_view text, std::string_view what,
    std::int64_t lo = std::numeric_limits<std::int64_t>::min(),
    std::int64_t hi = std::numeric_limits<std::int64_t>::max());

} // namespace tlp::util

#endif // TLP_UTIL_PARSE_HPP
