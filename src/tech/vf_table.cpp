#include "tech/vf_table.hpp"

#include "tech/technology.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace tlp::tech {

VfTable::VfTable(std::vector<std::pair<double, double>> points)
    : curve_(std::move(points))
{
    if (!curve_.monotoneIncreasing())
        util::fatal("VfTable: voltage must be non-decreasing in frequency");
    if (curve_.size() < 2)
        util::fatal("VfTable: need at least two operating points");
    for (const auto& [f, v] : curve_.points()) {
        if (f <= 0.0 || v <= 0.0)
            util::fatal("VfTable: operating points must be positive");
    }
}

double
VfTable::voltageFor(double f) const
{
    return curve_(f);
}

VfTable
pentiumMLike(const Technology& tech)
{
    // Intel Pentium-M 755 (90 nm) published operating points, expressed
    // relative to its top point (2.0 GHz / 1.340 V in the "performance"
    // column of the June 2004 datasheet):
    //   f/fmax : 1.0   0.9    0.8    0.7    0.6    0.3
    //   V/Vmax : 1.0   0.963  0.925  0.896  0.866  0.731
    struct RelPoint { double f; double v; };
    constexpr RelPoint rel[] = {
        {0.30, 0.731}, {0.60, 0.866}, {0.70, 0.896},
        {0.80, 0.925}, {0.90, 0.963}, {1.00, 1.000},
    };

    const double f1 = tech.fNominal();
    const double v1 = tech.vddNominal();
    const double f_floor = util::mhz(200);

    std::vector<std::pair<double, double>> points;
    // Extend the curve's low end to the 200 MHz sweep floor at the
    // technology's noise-margin voltage (the datasheet stops at 600 MHz;
    // the paper sweeps down to 200 MHz).
    points.emplace_back(f_floor, tech.vMin());
    for (const RelPoint& rp : rel) {
        const double f = rp.f * f1;
        const double v = rp.v * v1;
        if (f > f_floor && v > tech.vMin())
            points.emplace_back(f, v);
    }
    return VfTable(std::move(points));
}

} // namespace tlp::tech
