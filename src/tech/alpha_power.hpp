/**
 * @file
 * Alpha-power-law relationship between supply voltage and maximum operating
 * frequency (Eq. 1 of the paper):
 *
 *     f_max(V) = k * (V - Vth)^alpha / V
 *
 * with alpha = 1.3 for modern short-channel devices (Mudge, IEEE Computer
 * 2001 — reference [31] of the paper). The scale constant k is calibrated so
 * that f_max(V_nominal) = f_nominal.
 */

#ifndef TLP_TECH_ALPHA_POWER_HPP
#define TLP_TECH_ALPHA_POWER_HPP

namespace tlp::tech {

/** Calibrated alpha-power frequency law for one process technology. */
class AlphaPowerLaw
{
  public:
    /**
     * @param vdd_nominal nominal supply voltage [V]
     * @param vth         threshold voltage [V]; must be < vdd_nominal
     * @param f_nominal   frequency delivered at the nominal voltage [Hz]
     * @param alpha       velocity-saturation exponent (default 1.3)
     */
    AlphaPowerLaw(double vdd_nominal, double vth, double f_nominal,
                  double alpha = 1.3);

    /** Maximum operating frequency at supply voltage @p vdd [Hz].
     *  Zero at or below the threshold voltage. */
    double maxFrequency(double vdd) const;

    /**
     * Smallest supply voltage able to sustain frequency @p f [V].
     *
     * Inverts maxFrequency numerically (bisection). @p f must lie in
     * (0, maxFrequency(vdd_nominal_upper)] where the search bracket tops
     * out at 2x nominal Vdd; throws FatalError beyond that.
     */
    double voltageFor(double f) const;

    double vth() const { return vth_; }
    double vddNominal() const { return vdd_nominal_; }
    double fNominal() const { return f_nominal_; }
    double alpha() const { return alpha_; }
    double scaleConstant() const { return k_; }

  private:
    double vdd_nominal_;
    double vth_;
    double f_nominal_;
    double alpha_;
    double k_;
};

} // namespace tlp::tech

#endif // TLP_TECH_ALPHA_POWER_HPP
