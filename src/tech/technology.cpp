#include "tech/technology.hpp"

#include "util/logging.hpp"
#include "util/units.hpp"

namespace tlp::tech {

Technology::Technology(Params params)
    : params_(std::move(params)),
      law_(params_.vdd_nominal, params_.vth, params_.f_nominal,
           params_.alpha),
      reference_(params_.leakage_reference),
      fit_report_(fitLeakageScale(reference_, params_.v_min,
                                  params_.vdd_nominal, 40.0, 110.0))
{
    if (params_.v_min < params_.vth) {
        util::fatal(util::strcatMsg(
            "Technology ", params_.name, ": v_min (", params_.v_min,
            ") below Vth (", params_.vth, ") leaves no noise margin"));
    }
    if (params_.core_power_hot <= 0.0)
        util::fatal("Technology: core_power_hot must be positive");
    if (params_.static_fraction_hot < 0.0 ||
        params_.static_fraction_hot >= 1.0) {
        util::fatal("Technology: static_fraction_hot must be in [0, 1)");
    }
}

double
Technology::dynamicPowerNominal() const
{
    return params_.core_power_hot * (1.0 - params_.static_fraction_hot);
}

double
Technology::staticPowerHot() const
{
    return params_.core_power_hot * params_.static_fraction_hot;
}

double
Technology::staticPowerStd() const
{
    // The hot split is defined at (V1, t_hot); refer it back to
    // (V1, 25 C) through the fitted scale factor.
    const double s_hot =
        fit_report_.fit.scale(params_.vdd_nominal, params_.t_hot_c);
    return staticPowerHot() / s_hot;
}

double
Technology::staticPower(double vdd, double t_celsius) const
{
    // P_S = V * I_leak(V, T) = P_S1,std * (V/V1) * s(V, T)   (Eq. 4/9)
    return staticPowerStd() * (vdd / params_.vdd_nominal) *
        fit_report_.fit.scale(vdd, t_celsius);
}

double
Technology::dynamicPower(double vdd, double f) const
{
    const double kappa = vdd / params_.vdd_nominal;
    return dynamicPowerNominal() * kappa * kappa * (f / params_.f_nominal);
}

Technology
tech130nm()
{
    // Tuned so that the Scenario I/II shapes of the paper's Figures 1-2
    // emerge from the coupled leakage/thermal model; see DESIGN.md and
    // EXPERIMENTS.md for the calibration rationale of each constant.
    Technology::Params p;
    p.name = "130nm";
    p.feature_nm = 130.0;
    p.vdd_nominal = 1.3;
    p.vth = 0.26;
    p.v_min = 2.2 * p.vth;   // noise-margin floor (see DESIGN.md)
    p.f_nominal = 1.6e9;     // EV6 scaled to 130 nm
    p.alpha = 1.3;           // strongly velocity-saturated f(V) exponent
    p.core_power_hot = 55.0;
    p.static_fraction_hot = 0.13;
    p.t_hot_c = 100.0;
    p.core_area_m2 = 4.0e-5; // EV6 (~314 mm^2 at 350 nm) scaled to 130 nm

    LeakageReferenceParams lr;
    lr.vth = p.vth;
    lr.v_nominal = p.vdd_nominal;
    lr.subthreshold_swing_n = 1.6;
    lr.dibl_eta = 0.02;          // weak DIBL at the longer channel
    lr.vth_tc = 0.0008;          // Vth falls ~0.8 mV/K
    lr.gate_b = 4.5;             // thicker oxide: steeper tunnelling knee
    lr.gate_fraction_nominal = 0.05;
    p.leakage_reference = lr;

    return Technology(std::move(p));
}

Technology
tech65nm()
{
    Technology::Params p;
    p.name = "65nm";
    p.feature_nm = 65.0;
    p.vdd_nominal = 1.1;     // paper Table 1
    p.vth = 0.18;            // paper Table 1
    p.v_min = 2.0 * p.vth;   // noise-margin floor (see DESIGN.md)
    p.f_nominal = 3.2e9;     // paper Table 1
    // Effective exponent fitted to the narrower usable DVFS window of
    // 65 nm-class shipping parts (supply headroom shrank faster than
    // frequency); see EXPERIMENTS.md.
    p.alpha = 2.0;
    p.core_power_hot = 65.0;
    p.static_fraction_hot = 0.26;  // ITRS: leakage-heavy node
    p.t_hot_c = 100.0;
    p.core_area_m2 = 1.0e-5; // 16 cores + 4 MB L2 fill the 244.5 mm^2 die

    LeakageReferenceParams lr;
    lr.vth = p.vth;
    lr.v_nominal = p.vdd_nominal;
    lr.subthreshold_swing_n = 1.3;
    lr.dibl_eta = 0.015;
    lr.vth_tc = 0.0011;          // Vth falls ~1.1 mV/K
    lr.gate_b = 3.0;
    lr.gate_fraction_nominal = 0.10;
    p.leakage_reference = lr;

    return Technology(std::move(p));
}

} // namespace tlp::tech
