/**
 * @file
 * Process-technology parameter sets for the analytical model.
 *
 * The paper draws V1, Vth, f1, and the dynamic/static power split of the
 * single-core full-throttle configuration from the ITRS roadmap for two
 * nodes, 130 nm and 65 nm; the key property carried by the presets is that
 * the 65 nm node attributes a much larger share of total power to static
 * (leakage) power, which drives the Figure 1/2 differences between nodes.
 *
 * A preset bundles:
 *  - the alpha-power frequency law (Eq. 1),
 *  - the curve-fitted leakage scale factor (Eq. 3), regressed at
 *    construction against the BSIM-flavoured reference model, and
 *  - the nominal power split at the hot reference point
 *    (V1, f1, T = 100 C).
 */

#ifndef TLP_TECH_TECHNOLOGY_HPP
#define TLP_TECH_TECHNOLOGY_HPP

#include <string>

#include "tech/alpha_power.hpp"
#include "tech/leakage.hpp"

namespace tlp::tech {

/** All per-node constants consumed by the analytical and simulated models. */
class Technology
{
  public:
    /** Raw constants of a node; see tech130nm()/tech65nm() for the
     *  ITRS-era values used in the reproduction. */
    struct Params
    {
        std::string name;             ///< e.g. "65nm"
        double feature_nm = 65.0;     ///< drawn feature size [nm]
        double vdd_nominal = 1.1;     ///< V1 [V]
        double vth = 0.18;            ///< threshold voltage [V]
        double v_min = 0.36;          ///< voltage floor (noise margin) [V]
        double f_nominal = 3.2e9;     ///< f1 [Hz]
        double alpha = 1.3;           ///< alpha-power exponent
        double core_power_hot = 0.0;  ///< P1 per core at (V1,f1,100C) [W]
        double static_fraction_hot = 0.0; ///< static share of P1 at 100 C
        double t_hot_c = 100.0;       ///< temperature anchoring the split
        double core_area_m2 = 1.0e-5; ///< EV6-class core tile area [m^2]
        LeakageReferenceParams leakage_reference; ///< physical constants
    };

    explicit Technology(Params params);

    const std::string& name() const { return params_.name; }
    double featureNm() const { return params_.feature_nm; }
    double vddNominal() const { return params_.vdd_nominal; }
    double vth() const { return params_.vth; }
    double vMin() const { return params_.v_min; }
    double fNominal() const { return params_.f_nominal; }
    double tHotC() const { return params_.t_hot_c; }
    double coreAreaM2() const { return params_.core_area_m2; }

    /** The calibrated alpha-power frequency law. */
    const AlphaPowerLaw& frequencyLaw() const { return law_; }

    /** Curve-fitted leakage scale s(V, T) relative to (Vn, 25 C). */
    const LeakageScaleFit& leakageFit() const { return fit_report_.fit; }

    /** Fit-quality report (the paper's HSpice-validation analogue). */
    const LeakageFitReport& leakageFitReport() const { return fit_report_; }

    /** The physical reference leakage model the fit was regressed on. */
    const LeakageReference& leakageReference() const { return reference_; }

    /** Single-core total power at (V1, f1, 100 C) [W]. */
    double corePowerHot() const { return params_.core_power_hot; }

    /** Single-core dynamic power at (V1, f1) [W]; temperature
     *  independent. */
    double dynamicPowerNominal() const;

    /** Single-core static power at (V1, T = 100 C) [W]. */
    double staticPowerHot() const;

    /** Single-core static power referred to (V1, Tstd = 25 C) [W]; the
     *  P_S1,std of Eq. 9. */
    double staticPowerStd() const;

    /** Static power at arbitrary (V, T): staticPowerStd scaled by the
     *  leakage fit and the voltage ratio (Eq. 4: P_S = V * I_leak). */
    double staticPower(double vdd, double t_celsius) const;

    /** Dynamic power at (V, f) for activity matching the nominal point:
     *  P_D1 * (V/V1)^2 * (f/f1) (Eq. 2 with constant a*C). */
    double dynamicPower(double vdd, double f) const;

    const Params& params() const { return params_; }

  private:
    Params params_;
    AlphaPowerLaw law_;
    LeakageReference reference_;
    LeakageFitReport fit_report_;
};

/**
 * 130 nm high-performance node (ITRS 2001 era): V1 = 1.3 V, Vth = 0.26 V,
 * f1 = 1.6 GHz (EV6 scaled), static share ~12 % of hot total power.
 */
Technology tech130nm();

/**
 * 65 nm high-performance node (ITRS 2003 era, also used by the paper's
 * experimental CMP): V1 = 1.1 V, Vth = 0.18 V, f1 = 3.2 GHz, static share
 * ~35 % of hot total power.
 */
Technology tech65nm();

} // namespace tlp::tech

#endif // TLP_TECH_TECHNOLOGY_HPP
