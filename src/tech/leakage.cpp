#include "tech/leakage.hpp"

#include <cmath>

#include "util/linalg.hpp"
#include "util/logging.hpp"
#include "util/units.hpp"

namespace tlp::tech {

namespace {

/** Unnormalized subthreshold current shape. */
double
subShape(const LeakageReferenceParams& p, double vdd, double t_celsius)
{
    const double t_k = util::celsiusToKelvin(t_celsius);
    const double vt = util::thermalVoltage(t_k);
    const double vth_eff =
        p.vth - p.vth_tc * (t_celsius - util::kRoomTemperatureC);
    return vt * vt *
        std::exp((-vth_eff + p.dibl_eta * vdd) /
                 (p.subthreshold_swing_n * vt));
}

/** Unnormalized gate-oxide tunnelling current shape. */
double
oxShape(const LeakageReferenceParams& p, double vdd)
{
    if (vdd <= 0.0)
        return 0.0;
    return vdd * vdd * std::exp(-p.gate_b / vdd);
}

} // namespace

LeakageReference::LeakageReference(const LeakageReferenceParams& params)
    : params_(params)
{
    if (params_.vth <= 0.0 || params_.v_nominal <= params_.vth)
        util::fatal("LeakageReference: invalid Vth / Vdd");
    if (params_.gate_fraction_nominal < 0.0 ||
        params_.gate_fraction_nominal >= 1.0) {
        util::fatal("LeakageReference: gate fraction must be in [0, 1)");
    }

    // Calibrate the prefactors so that the total at (Vn, 25 C) is exactly 1
    // and the gate-oxide component contributes gate_fraction_nominal of it.
    const double sub_nom =
        subShape(params_, params_.v_nominal, util::kRoomTemperatureC);
    const double ox_nom = oxShape(params_, params_.v_nominal);
    k_sub_ = (1.0 - params_.gate_fraction_nominal) / sub_nom;
    k_ox_ = ox_nom > 0.0 ? params_.gate_fraction_nominal / ox_nom : 0.0;
}

double
LeakageReference::subthreshold(double vdd, double t_celsius) const
{
    return k_sub_ * subShape(params_, vdd, t_celsius);
}

double
LeakageReference::gateOxide(double vdd) const
{
    return k_ox_ * oxShape(params_, vdd);
}

double
LeakageReference::current(double vdd, double t_celsius) const
{
    return subthreshold(vdd, t_celsius) + gateOxide(vdd);
}

double
LeakageScaleFit::scale(double vdd, double t_celsius) const
{
    const double t_k = util::celsiusToKelvin(t_celsius);
    const double t_std_k = util::celsiusToKelvin(t_std_c);
    const double dv = vdd - v_nominal;
    const double dti = 1.0 / t_std_k - 1.0 / t_k;
    return std::pow(vdd / v_nominal, mu) * (t_k / t_std_k) *
        (t_k / t_std_k) *
        std::exp(b1 * dv + b2 * dti + b3 * dv * dti);
}

LeakageFitReport
fitLeakageScale(const LeakageReference& reference, double v_min,
                double v_max, double t_min_c, double t_max_c, int grid)
{
    if (grid < 3)
        util::fatal("fitLeakageScale: grid too small");
    if (!(v_min < v_max) || !(t_min_c < t_max_c))
        util::fatal("fitLeakageScale: empty fitting window");

    const double vn = reference.params().v_nominal;
    const double t_std_c = util::kRoomTemperatureC;
    const double t_std_k = util::celsiusToKelvin(t_std_c);
    const double ref_nominal = reference.current(vn, t_std_c);

    // Regress ln s = mu*ln(V/Vn) + 2*ln(T/Tstd) + b1*dv + b2*dti
    //               + b3*dv*dti
    // The 2*ln(T/Tstd) term is fixed by the model form and moves to the
    // left-hand side.
    const int n_points = grid * grid;
    util::Matrix a(static_cast<std::size_t>(n_points), 4);
    std::vector<double> rhs(static_cast<std::size_t>(n_points), 0.0);

    std::size_t row = 0;
    for (int i = 0; i < grid; ++i) {
        const double v = v_min + (v_max - v_min) * i / (grid - 1);
        for (int j = 0; j < grid; ++j, ++row) {
            const double t_c = t_min_c + (t_max_c - t_min_c) * j /
                (grid - 1);
            const double t_k = util::celsiusToKelvin(t_c);
            const double s = reference.current(v, t_c) / ref_nominal;
            const double dv = v - vn;
            const double dti = 1.0 / t_std_k - 1.0 / t_k;
            a(row, 0) = std::log(v / vn);
            a(row, 1) = dv;
            a(row, 2) = dti;
            a(row, 3) = dv * dti;
            rhs[row] = std::log(s) - 2.0 * std::log(t_k / t_std_k);
        }
    }

    const std::vector<double> x = util::solveLeastSquares(a, rhs);

    LeakageFitReport report;
    report.fit.v_nominal = vn;
    report.fit.t_std_c = t_std_c;
    report.fit.mu = x[0];
    report.fit.b1 = x[1];
    report.fit.b2 = x[2];
    report.fit.b3 = x[3];
    report.grid_points = n_points;

    double err_sum = 0.0;
    double err_max = 0.0;
    for (int i = 0; i < grid; ++i) {
        const double v = v_min + (v_max - v_min) * i / (grid - 1);
        for (int j = 0; j < grid; ++j) {
            const double t_c = t_min_c + (t_max_c - t_min_c) * j /
                (grid - 1);
            const double ref = reference.current(v, t_c) / ref_nominal;
            const double fit = report.fit.scale(v, t_c);
            const double err = std::fabs(fit - ref) / ref;
            err_sum += err;
            if (err > err_max)
                err_max = err;
        }
    }
    report.avg_rel_error = err_sum / n_points;
    report.max_rel_error = err_max;
    return report;
}

} // namespace tlp::tech
