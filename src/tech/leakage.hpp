/**
 * @file
 * Leakage-current modelling (Eq. 3/4 of the paper).
 *
 * The paper approximates the voltage/temperature dependence of leakage with
 * a curve-fitted formula, validated against HSpice simulations of an
 * inverter chain (max error 9.5 % / 7.5 % for 130 nm / 65 nm). We have no
 * HSpice, so the same structure is reproduced with two models:
 *
 *  - LeakageReference: a BSIM-flavoured physical evaluator,
 *        I_leak(V,T) = I_sub(V,T) + I_ox(V)
 *        I_sub = k_sub * vT(T)^2 * exp((-Vth + eta*V) / (n * vT(T)))
 *        I_ox  = k_ox  * V^2 * exp(-B / V)
 *    (subthreshold conduction with DIBL, plus gate-oxide tunnelling).
 *    This plays the role of the paper's HSpice runs.
 *
 *  - LeakageScaleFit: the curve-fitted scale factor s(V,T) relative to the
 *    nominal voltage / room temperature point,
 *        s(V,T) = (V/Vn)^mu * (T/Tstd)^2
 *                 * exp(b1*(V-Vn))
 *                 * exp(b2*(1/Tstd - 1/T))
 *                 * exp(b3*(V-Vn)*(1/Tstd - 1/T))
 *    (temperatures in kelvin). The b3 cross term captures the DIBL-vs-
 *    thermal-voltage coupling of the subthreshold component; ln s is linear
 *    in (mu, b1, b2, b3), so the fit is an ordinary linear least squares.
 *
 * fitLeakageScale() regresses a LeakageScaleFit against a LeakageReference
 * over the operating window and reports the max/average relative error, the
 * analogue of the paper's HSpice validation numbers.
 */

#ifndef TLP_TECH_LEAKAGE_HPP
#define TLP_TECH_LEAKAGE_HPP

namespace tlp::tech {

/** Physical constants of the reference leakage evaluator. */
struct LeakageReferenceParams
{
    double vth = 0.18;          ///< threshold voltage at 25 C [V]
    double v_nominal = 1.1;     ///< nominal supply [V]
    double subthreshold_swing_n = 1.5; ///< subthreshold slope factor n
    double dibl_eta = 0.10;     ///< DIBL coefficient [V/V]
    /** Threshold-voltage temperature coefficient [V/K]: Vth(T) =
     *  vth - vth_tc * (T - 25 C). The dominant reason leakage grows so
     *  steeply with die temperature; its log-contribution is proportional
     *  to (1/Tstd - 1/T), so the curve fit absorbs it exactly in b2. */
    double vth_tc = 0.0;
    double gate_b = 3.0;        ///< gate-tunnelling exponent constant [V]
    /** Fraction of total leakage contributed by gate-oxide tunnelling at
     *  the (v_nominal, 25 C) normalization point. */
    double gate_fraction_nominal = 0.3;
};

/** BSIM-flavoured physical leakage model (the "HSpice stand-in"). */
class LeakageReference
{
  public:
    explicit LeakageReference(const LeakageReferenceParams& params);

    /** Leakage current at supply @p vdd [V] and temperature @p t_celsius,
     *  normalized so that current(v_nominal, 25 C) = 1. */
    double current(double vdd, double t_celsius) const;

    /** Subthreshold component only (same normalization). */
    double subthreshold(double vdd, double t_celsius) const;

    /** Gate-oxide component only (same normalization). */
    double gateOxide(double vdd) const;

    const LeakageReferenceParams& params() const { return params_; }

  private:
    LeakageReferenceParams params_;
    double k_sub_ = 1.0; ///< subthreshold prefactor (calibrated)
    double k_ox_ = 0.0;  ///< gate prefactor (calibrated)
};

/** Curve-fitted leakage scale factor s(V, T) relative to (Vn, Tstd). */
struct LeakageScaleFit
{
    double v_nominal = 1.1;  ///< normalization voltage Vn [V]
    double t_std_c = 25.0;   ///< normalization temperature Tstd [deg C]
    double mu = 0.0;         ///< power-law exponent on V/Vn
    double b1 = 0.0;         ///< linear-in-V exponent [1/V]
    double b2 = 0.0;         ///< Arrhenius temperature exponent [K]
    double b3 = 0.0;         ///< V-T cross-term exponent [K/V]

    /** Evaluate s(V, T); equals 1 at (v_nominal, t_std_c). */
    double scale(double vdd, double t_celsius) const;
};

/** Quality report of a leakage fit (paper: "max error within 9.5 % and
 *  7.5 % ... 0.25 % and 0.05 % average error"). */
struct LeakageFitReport
{
    LeakageScaleFit fit;
    double max_rel_error = 0.0; ///< max |fit - ref| / ref over the grid
    double avg_rel_error = 0.0; ///< mean relative error over the grid
    int grid_points = 0;
};

/**
 * Fit a LeakageScaleFit to @p reference by linear least squares on
 * ln s over a uniform (V, T) grid.
 *
 * @param reference  physical model to regress against
 * @param v_min      lower end of the supply range [V]
 * @param v_max      upper end (typically the nominal voltage) [V]
 * @param t_min_c    lower temperature [deg C]
 * @param t_max_c    upper temperature [deg C]
 * @param grid       samples per axis (grid x grid total)
 */
LeakageFitReport fitLeakageScale(const LeakageReference& reference,
                                 double v_min, double v_max, double t_min_c,
                                 double t_max_c, int grid = 25);

} // namespace tlp::tech

#endif // TLP_TECH_LEAKAGE_HPP
