/**
 * @file
 * Discrete voltage/frequency operating-point table.
 *
 * The paper's experimental CMP extrapolates supply voltage for a target
 * frequency from the Intel Pentium-M datasheet (reference [18]) rather than
 * from the analytic alpha-power law: shipping parts publish a short list of
 * (f, V) points and anything in between is obtained by linear scaling. The
 * factory pentiumMLike() re-anchors the published Pentium-M 90 nm curve to
 * an arbitrary technology's (f_nominal, Vdd_nominal) and extends it down to
 * the 200 MHz floor used in the paper's frequency sweeps.
 */

#ifndef TLP_TECH_VF_TABLE_HPP
#define TLP_TECH_VF_TABLE_HPP

#include <utility>
#include <vector>

#include "util/interp.hpp"

namespace tlp::tech {

class Technology;

/** A monotone table of discrete (frequency, voltage) operating points with
 *  linear interpolation between them. */
class VfTable
{
  public:
    /**
     * @param points (frequency [Hz], voltage [V]) pairs; voltage must be
     *               non-decreasing in frequency (fatal otherwise).
     */
    explicit VfTable(std::vector<std::pair<double, double>> points);

    /** Supply voltage required for frequency @p f; clamps to the table's
     *  end points outside the covered range. */
    double voltageFor(double f) const;

    /** Lowest tabulated frequency [Hz]. */
    double fMin() const { return curve_.minX(); }

    /** Highest tabulated frequency [Hz]. */
    double fMax() const { return curve_.maxX(); }

    /** The tabulated operating points, sorted by frequency. */
    const std::vector<std::pair<double, double>>& points() const
    {
        return curve_.points();
    }

  private:
    util::PiecewiseLinear curve_;
};

/**
 * Build a Pentium-M-shaped V/f table for a technology: the published
 * 90 nm relative (f/fmax, V/Vmax) curve re-anchored to
 * (tech.fNominal(), tech.vddNominal()), with a low end extended linearly to
 * (200 MHz, tech.vMin()).
 */
VfTable pentiumMLike(const Technology& tech);

} // namespace tlp::tech

#endif // TLP_TECH_VF_TABLE_HPP
