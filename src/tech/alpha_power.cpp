#include "tech/alpha_power.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/solver.hpp"

namespace tlp::tech {

AlphaPowerLaw::AlphaPowerLaw(double vdd_nominal, double vth,
                             double f_nominal, double alpha)
    : vdd_nominal_(vdd_nominal), vth_(vth), f_nominal_(f_nominal),
      alpha_(alpha)
{
    if (vdd_nominal <= vth) {
        util::fatal(util::strcatMsg("AlphaPowerLaw: Vdd (", vdd_nominal,
                                    ") must exceed Vth (", vth, ")"));
    }
    if (f_nominal <= 0.0)
        util::fatal("AlphaPowerLaw: nominal frequency must be positive");
    if (alpha <= 0.0)
        util::fatal("AlphaPowerLaw: alpha must be positive");
    k_ = f_nominal * vdd_nominal / std::pow(vdd_nominal - vth, alpha);
}

double
AlphaPowerLaw::maxFrequency(double vdd) const
{
    if (vdd <= vth_)
        return 0.0;
    return k_ * std::pow(vdd - vth_, alpha_) / vdd;
}

double
AlphaPowerLaw::voltageFor(double f) const
{
    if (f <= 0.0)
        util::fatal("AlphaPowerLaw::voltageFor: frequency must be positive");

    const double hi = 2.0 * vdd_nominal_;
    if (f > maxFrequency(hi)) {
        util::fatal(util::strcatMsg(
            "AlphaPowerLaw::voltageFor: frequency ", f,
            " Hz unreachable below ", hi, " V"));
    }
    // maxFrequency is strictly increasing in Vdd for Vdd > Vth (the
    // (V - Vth)^alpha numerator dominates the 1/V factor for alpha >= 1),
    // so a sign change is guaranteed on (vth, hi].
    const auto residual = [&](double v) { return maxFrequency(v) - f; };
    const double lo = vth_ + 1e-9;
    return util::bisect(residual, lo, hi, 1e-9).x;
}

} // namespace tlp::tech
