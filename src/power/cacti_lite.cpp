#include "power/cacti_lite.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/units.hpp"

namespace tlp::power {

namespace {

// Reference constants quoted at a 100 nm feature size and unit supply.
// Energies scale linearly with feature size (capacitance ~ F) and
// quadratically with supply voltage.
constexpr double kRefFeatureNm = 100.0;
constexpr double kDecoderPj = 0.05;      // per log2(rows)
constexpr double kWordlinePj = 0.01;     // per column
constexpr double kBitlinePj = 0.0005;    // per column*row
constexpr double kSenseAmpPj = 0.002;    // per column
constexpr double kOutputPj = 0.005;      // per output bit
constexpr double kRoutePj = 50.0;        // inter-bank routing, per hop
constexpr double kCellAreaF2 = 200.0;    // effective SRAM cell area [F^2]
constexpr double kArrayEfficiency = 0.7; // cell share of array area
constexpr std::uint64_t kMaxBankBytes = 65536;

} // namespace

CactiLite::CactiLite(double feature_nm, double vdd_nominal)
    : feature_nm_(feature_nm), vdd_nominal_(vdd_nominal),
      lambda_(feature_nm / kRefFeatureNm)
{
    if (feature_nm <= 0.0 || vdd_nominal <= 0.0)
        util::fatal("CactiLite: invalid feature size or supply");
}

ArrayEstimate
CactiLite::estimate(const ArrayConfig& config) const
{
    if (config.size_bytes == 0 || config.line_bytes == 0 ||
        config.assoc == 0 || config.ports == 0) {
        util::fatal("CactiLite::estimate: degenerate array config");
    }
    if (config.size_bytes < config.line_bytes * config.assoc)
        util::fatal("CactiLite::estimate: array smaller than one set");

    // Large arrays are banked; energy is one bank access plus routing.
    const std::uint64_t n_banks =
        std::max<std::uint64_t>(1, config.size_bytes / kMaxBankBytes);
    const std::uint64_t bank_bytes = config.size_bytes / n_banks;

    const double bits = 8.0 * static_cast<double>(bank_bytes);
    const double cols =
        static_cast<double>(config.line_bytes) * 8.0 * config.assoc;
    const double rows = std::max(1.0, bits / cols);
    const double line_bits = config.line_bytes * 8.0;

    const double v2 = vdd_nominal_ * vdd_nominal_;
    const double scale = lambda_ * v2 * config.ports;

    double read_pj = kDecoderPj * std::log2(std::max(2.0, rows)) +
        kWordlinePj * cols + kBitlinePj * cols * rows +
        kSenseAmpPj * cols + kOutputPj * line_bits;
    read_pj += kRoutePj * std::sqrt(static_cast<double>(n_banks) - 1.0);
    read_pj *= scale;

    ArrayEstimate out;
    out.read_energy_j = read_pj * util::kPico;
    out.write_energy_j = 1.1 * out.read_energy_j;

    const double f_m = feature_nm_ * 1e-9;
    const double total_bits = 8.0 * static_cast<double>(config.size_bytes);
    out.area_m2 = total_bits * kCellAreaF2 * f_m * f_m / kArrayEfficiency *
        (1.0 + 0.05 * (config.assoc - 1)) *
        (1.0 + 0.5 * (config.ports - 1));
    out.leakage_rel = out.area_m2;

    out.access_time_s =
        (0.25 + 0.08 * std::log2(std::max(2.0, rows)) +
         0.35 * std::sqrt(static_cast<double>(n_banks))) *
        lambda_ * util::kNano;
    return out;
}

double
CactiLite::aluEnergy(bool floating_point) const
{
    const double pj = floating_point ? 50.0 : 20.0;
    return pj * lambda_ * vdd_nominal_ * vdd_nominal_ * util::kPico;
}

double
CactiLite::regfileEnergy() const
{
    return 10.0 * lambda_ * vdd_nominal_ * vdd_nominal_ * util::kPico;
}

double
CactiLite::busEnergyPerMm() const
{
    return 5.0 * lambda_ * vdd_nominal_ * vdd_nominal_ * util::kPico;
}

double
CactiLite::clockEnergyPerMm2() const
{
    return 20.0 * lambda_ * vdd_nominal_ * vdd_nominal_ * util::kPico;
}

} // namespace tlp::power
