/**
 * @file
 * ChipPowerModel — Wattch-style activity-based power accounting for the
 * simulated CMP (§3.3 of the paper).
 *
 * Dynamic power: each hardware event recorded by the simulator (cache
 * access, ALU operation, bus transaction, ...) is charged a CactiLite
 * per-access energy and attributed to an EV6 floorplan block; the clock
 * tree is charged per active cycle with conditional clock gating (idle
 * cores consume nothing, partially idle cores a gated fraction). Energies
 * scale with (V/Vn)^2; power follows from the run's cycle count and clock
 * frequency.
 *
 * Renormalization: Wattch-class models are only relatively accurate, so —
 * exactly as the paper does — the absolute scale is set by a
 * microbenchmark: a compute-bound kernel is run at nominal V/f, its raw
 * model wattage is compared against the technology's maximum operational
 * dynamic power (the one that yields 100 C in the thermal model), and the
 * resulting ratio renormalizes all subsequent measurements
 * (calibrate()/renormFactor()).
 *
 * Static power: modelled as a fraction of the maximum dynamic power,
 * exponentially dependent on temperature (references [5, 38] of the
 * paper), distributed over blocks by area and scaled with supply voltage
 * through the technology's fitted leakage curve. Unused (shut-down) cores
 * consume no static power.
 *
 * Counter naming contract with tlp_sim (StatRegistry keys):
 *   core<i>.insts, core<i>.int_ops, core<i>.fp_ops, core<i>.loads,
 *   core<i>.stores, core<i>.l1i.reads, core<i>.l1d.reads,
 *   core<i>.l1d.writes, core<i>.l1d.fills, core<i>.active_cycles,
 *   l2.reads, l2.writes, bus.transactions, memory.reads
 */

#ifndef TLP_POWER_CHIP_POWER_HPP
#define TLP_POWER_CHIP_POWER_HPP

#include <string>
#include <vector>

#include "power/cacti_lite.hpp"
#include "tech/technology.hpp"
#include "thermal/floorplan.hpp"
#include "util/stats.hpp"

namespace tlp::power {

/** Cache geometry of the chip whose activity is being priced. */
struct CmpGeometry
{
    int n_cores = 16;
    ArrayConfig l1i{65536, 64, 2, 1};
    ArrayConfig l1d{65536, 64, 2, 2};
    ArrayConfig l2{4194304, 128, 8, 1};
};

/** Activity-based chip power model with paper-style renormalization. */
class ChipPowerModel
{
  public:
    /**
     * @param tech     technology node (energies are quoted at its nominal
     *                 supply; static magnitudes follow its hot split)
     * @param geometry cache organization
     *
     * Builds the matching per-core EV6 floorplan internally; access it via
     * floorplan() to construct the thermal model.
     */
    ChipPowerModel(const tech::Technology& tech, const CmpGeometry& geometry);

    /** The floorplan power maps are aligned with (L2 block + per-core EV6
     *  blocks). */
    const thermal::Floorplan& floorplan() const { return floorplan_; }

    /**
     * Raw (unrenormalized) per-block dynamic power of a finished run.
     *
     * @param stats    simulator counters (naming contract above)
     * @param cycles   run length in core cycles
     * @param n_active cores that participated (others are power-gated)
     * @param vdd      chip supply during the run [V]
     * @param freq     chip frequency during the run [Hz]
     */
    std::vector<double> rawDynamicPower(const util::StatRegistry& stats,
                                        std::uint64_t cycles, int n_active,
                                        double vdd, double freq) const;

    /**
     * Set the renormalization factor from a microbenchmark measurement:
     * @p raw_core_dynamic_w is the raw model's single-core dynamic power
     * for the compute-bound microbenchmark at nominal V/f; it is mapped
     * onto the technology's maximum operational dynamic power.
     */
    void calibrate(double raw_core_dynamic_w);

    /** True once calibrate() has run. */
    bool calibrated() const { return renorm_factor_ > 0.0; }

    /** The Wattch->thermal-budget renormalization factor. */
    double renormFactor() const;

    /** Renormalized per-block dynamic power (requires calibration). */
    std::vector<double> dynamicPower(const util::StatRegistry& stats,
                                     std::uint64_t cycles, int n_active,
                                     double vdd, double freq) const;

    /**
     * Per-block static power at the given block temperatures.
     *
     * Following the paper (§3.3, refs [5, 38]), static power is a
     * temperature-dependent fraction of dynamic power. Each block's
     * reference dynamic power is its activity rate re-expressed at
     * nominal V/f (so DVFS does not double-count), blended with a
     * block-capacity floor (idle transistors leak too); the fraction
     * scales with (V, T) through the technology's fitted leakage curve,
     * anchored at ratio r_hot = s/(1-s) at (V1, 100 C).
     *
     * @param temps_c   one temperature per floorplan block [deg C]
     * @param dynamic_w per-block dynamic power of the run [W]
     * @param n_active  active core count (idle cores are shut off)
     * @param vdd       chip supply [V]
     * @param freq      chip frequency [Hz]
     */
    std::vector<double> staticPower(const std::vector<double>& temps_c,
                                    const std::vector<double>& dynamic_w,
                                    int n_active, double vdd,
                                    double freq) const;

    /** Allocation-free staticPower(): writes the per-block map into
     *  @p out (resized to the block count). staticPower() delegates
     *  here, so both forms compute bitwise the same values — the batched
     *  pricing kernel leans on that. */
    void staticPowerInto(const std::vector<double>& temps_c,
                         const std::vector<double>& dynamic_w,
                         int n_active, double vdd, double freq,
                         std::vector<double>& out) const;

    /** Static/dynamic ratio at the hot anchor (from the technology's
     *  split): r = s / (1 - s). */
    double staticRatioHot() const;

    /** Maximum operational dynamic power of one core (the renormalization
     *  target) [W]. */
    double maxCoreDynamicPower() const;

    const CmpGeometry& geometry() const { return geometry_; }
    const CactiLite& cacti() const { return cacti_; }

    /** Per-access energies in use (for inspection/tests). */
    double l1iReadEnergy() const { return l1i_.read_energy_j; }
    double l1dReadEnergy() const { return l1d_.read_energy_j; }
    double l2ReadEnergy() const { return l2_.read_energy_j; }

    /** Die area from CactiLite plus core tiles [m^2]. */
    double chipArea() const;

  private:
    /** Pre-resolved floorplan indices of one core's EV6 blocks, so the
     *  per-run aggregation never rebuilds "core<i>.<block>" names. */
    struct CoreBlocks
    {
        std::size_t icache, dcache, bpred, itb, dtb, ldstq, clock;
        std::size_t int_blocks[4]; ///< kIntShares order
        std::size_t fp_blocks[5];  ///< kFpShares order
    };

    const tech::Technology* tech_;
    CmpGeometry geometry_;
    CactiLite cacti_;
    ArrayEstimate l1i_;
    ArrayEstimate l1d_;
    ArrayEstimate l2_;
    thermal::Floorplan floorplan_;
    std::vector<CoreBlocks> core_blocks_;
    bool has_l2_block_ = false;
    std::size_t l2_index_ = 0;
    double renorm_factor_ = 0.0;
};

} // namespace tlp::power

#endif // TLP_POWER_CHIP_POWER_HPP
