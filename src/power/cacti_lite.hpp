/**
 * @file
 * CactiLite — a reduced CACTI-style model for SRAM array energy, delay,
 * and area.
 *
 * The paper uses CACTI [40] to size the die (244.5 mm^2 for 16 cores plus a
 * 4 MB L2 at 65 nm) and Wattch's CACTI-derived per-access energies for the
 * array structures. We reproduce the parts the evaluation consumes:
 *
 *  - per-access dynamic energy, decomposed into decoder, wordline, bitline,
 *    and sense-amp terms with the classic sqrt-array scaling;
 *  - array area from cell area plus per-way overhead;
 *  - access latency with a log(size) decoder term plus wire delay.
 *
 * Energies are in joules at the technology's nominal supply; callers scale
 * by (V/Vn)^2 for other operating points. Absolute accuracy is not claimed
 * (neither does Wattch claim it); the experimental pipeline renormalizes
 * against the thermal budget exactly as the paper does (§3.3).
 */

#ifndef TLP_POWER_CACTI_LITE_HPP
#define TLP_POWER_CACTI_LITE_HPP

#include <cstdint>

namespace tlp::power {

/** Geometry of one SRAM array. */
struct ArrayConfig
{
    std::uint64_t size_bytes = 65536;
    std::uint32_t line_bytes = 64;
    std::uint32_t assoc = 2;
    std::uint32_t ports = 1;
};

/** Per-array estimates produced by CactiLite. */
struct ArrayEstimate
{
    double read_energy_j = 0.0;   ///< per read access at nominal V
    double write_energy_j = 0.0;  ///< per write access at nominal V
    double leakage_rel = 0.0;     ///< relative leakage weight (area-based)
    double area_m2 = 0.0;         ///< silicon area
    double access_time_s = 0.0;   ///< access latency
};

/** Reduced CACTI model bound to one feature size. */
class CactiLite
{
  public:
    /**
     * @param feature_nm  drawn feature size [nm]
     * @param vdd_nominal nominal supply the energies are quoted at [V]
     */
    CactiLite(double feature_nm, double vdd_nominal);

    /** Estimate energy/area/delay for an SRAM array. */
    ArrayEstimate estimate(const ArrayConfig& config) const;

    /** Energy of one 64-bit ALU operation at nominal V [J]. */
    double aluEnergy(bool floating_point) const;

    /** Energy of one register-file access at nominal V [J]. */
    double regfileEnergy() const;

    /** Energy per millimetre of bus wire toggled, per 64-bit flit [J]. */
    double busEnergyPerMm() const;

    /** Clock-tree energy per cycle per mm^2 of clocked area [J]. */
    double clockEnergyPerMm2() const;

    double featureNm() const { return feature_nm_; }
    double vddNominal() const { return vdd_nominal_; }

  private:
    double feature_nm_;
    double vdd_nominal_;
    double lambda_;  ///< feature size scale factor vs 100 nm reference
};

} // namespace tlp::power

#endif // TLP_POWER_CACTI_LITE_HPP
