#include "power/chip_power.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/units.hpp"

namespace tlp::power {

namespace {

/** Share of integer-pipeline energy attributed to each EV6 block. */
struct Share
{
    const char* block;
    double fraction;
};

constexpr Share kIntShares[] = {
    {"intexec", 0.50}, {"intq", 0.15}, {"intreg", 0.20}, {"intmap", 0.15},
};
constexpr Share kFpShares[] = {
    {"fpadd", 0.35}, {"fpmul", 0.35}, {"fpreg", 0.15}, {"fpq", 0.10},
    {"fpmap", 0.05},
};

/** Fraction of clock power that cannot be gated away when a core is
 *  active but under-utilized (Wattch's conditional-gating style). */
constexpr double kClockUngatedFraction = 0.25;

/**
 * Architectural overhead multiplier on per-event core energies. The
 * abstract op stream charges one ALU/cache event per retired operation,
 * while a real out-of-order core spends most of its switching energy on
 * fetch/rename/wakeup/bypass/speculation around each retired op. Folding
 * that in here keeps the core-vs-L2 energy ratio realistic, so the §3.3
 * renormalization factor stays small and does not inflate the shared-L2
 * and bus energies (the paper observes L2 power is comparatively low).
 */
constexpr double kCoreOverhead = 10.0;

/** EV6 issue width, used to estimate utilization for clock gating. */
constexpr double kIssueWidth = 4.0;

} // namespace

ChipPowerModel::ChipPowerModel(const tech::Technology& tech,
                               const CmpGeometry& geometry)
    : tech_(&tech), geometry_(geometry),
      cacti_(tech.featureNm(), tech.vddNominal()),
      l1i_(cacti_.estimate(geometry.l1i)),
      l1d_(cacti_.estimate(geometry.l1d)),
      l2_(cacti_.estimate(geometry.l2))
{
    if (geometry.n_cores < 1)
        util::fatal("ChipPowerModel: need at least one core");
    floorplan_ = thermal::makeTiledCmp(geometry.n_cores, tech.coreAreaM2(),
                                       l2_.area_m2,
                                       /*per_core_blocks=*/true);

    // Resolve every per-core block index once; rawDynamicPower runs after
    // every simulation and must not rebuild block names.
    core_blocks_.reserve(static_cast<std::size_t>(geometry.n_cores));
    for (int core = 0; core < geometry.n_cores; ++core) {
        const std::string p = "core" + std::to_string(core) + ".";
        CoreBlocks blocks;
        blocks.icache = floorplan_.indexOf(p + "icache");
        blocks.dcache = floorplan_.indexOf(p + "dcache");
        blocks.bpred = floorplan_.indexOf(p + "bpred");
        blocks.itb = floorplan_.indexOf(p + "itb");
        blocks.dtb = floorplan_.indexOf(p + "dtb");
        blocks.ldstq = floorplan_.indexOf(p + "ldstq");
        blocks.clock = floorplan_.indexOf(p + "clock");
        for (std::size_t i = 0; i < std::size(kIntShares); ++i)
            blocks.int_blocks[i] = floorplan_.indexOf(p +
                                                      kIntShares[i].block);
        for (std::size_t i = 0; i < std::size(kFpShares); ++i)
            blocks.fp_blocks[i] = floorplan_.indexOf(p +
                                                     kFpShares[i].block);
        core_blocks_.push_back(blocks);
    }
    has_l2_block_ = floorplan_.has("L2");
    if (has_l2_block_)
        l2_index_ = floorplan_.indexOf("L2");
}

double
ChipPowerModel::chipArea() const
{
    return floorplan_.totalArea();
}

double
ChipPowerModel::staticRatioHot() const
{
    const double s = tech_->params().static_fraction_hot;
    return s / (1.0 - s);
}

double
ChipPowerModel::maxCoreDynamicPower() const
{
    return tech_->dynamicPowerNominal();
}

std::vector<double>
ChipPowerModel::rawDynamicPower(const util::StatRegistry& stats,
                                std::uint64_t cycles, int n_active,
                                double vdd, double freq) const
{
    if (cycles == 0)
        util::fatal("ChipPowerModel: zero-cycle run");
    if (n_active < 1 || n_active > geometry_.n_cores)
        util::fatal("ChipPowerModel: bad active core count");
    if (vdd <= 0.0 || freq <= 0.0)
        util::fatal("ChipPowerModel: bad operating point");

    const double seconds = static_cast<double>(cycles) / freq;
    const double kappa = vdd / tech_->vddNominal();
    const double v_scale = kappa * kappa;

    std::vector<double> energy(floorplan_.size(), 0.0);

    const double alu_int = cacti_.aluEnergy(false) * kCoreOverhead;
    const double alu_fp = cacti_.aluEnergy(true) * kCoreOverhead;
    const double regfile = cacti_.regfileEnergy() * kCoreOverhead;
    const double l1i_read = l1i_.read_energy_j * kCoreOverhead;
    const double l1d_read = l1d_.read_energy_j * kCoreOverhead;
    const double l1d_write = l1d_.write_energy_j * kCoreOverhead;
    const double core_area = tech_->coreAreaM2();
    const double clock_per_cycle = kCoreOverhead *
        cacti_.clockEnergyPerMm2() * core_area / util::mm2(1.0);

    // One reused key buffer; all block indices were resolved in the
    // constructor. This aggregation runs after every simulated point, so
    // it must not allocate.
    std::string key;
    for (int core = 0; core < n_active; ++core) {
        const std::string p = "core" + std::to_string(core) + ".";
        const auto c = [&](const char* name) {
            key.assign(p);
            key.append(name);
            return static_cast<double>(stats.counterValue(key));
        };
        const CoreBlocks& b = core_blocks_[static_cast<std::size_t>(core)];

        const double insts = c("insts");
        const double l1i_reads = c("l1i.reads");
        const double l1d_reads = c("l1d.reads");
        const double l1d_writes = c("l1d.writes");
        const double l1d_fills = c("l1d.fills");
        const double int_ops = c("int_ops");
        const double fp_ops = c("fp_ops");
        const double mem_ops = c("loads") + c("stores");
        const double active = c("active_cycles");

        energy[b.icache] += l1i_reads * l1i_read;
        energy[b.dcache] += l1d_reads * l1d_read +
                            (l1d_writes + l1d_fills) * l1d_write;
        energy[b.bpred] += insts * 0.10 * alu_int;
        energy[b.itb] += l1i_reads * 0.05 * alu_int;
        energy[b.dtb] += mem_ops * 0.05 * alu_int;
        energy[b.ldstq] += mem_ops * 0.5 * regfile;

        for (std::size_t i = 0; i < std::size(kIntShares); ++i) {
            const Share& s = kIntShares[i];
            const double unit_e = i == 2 ? regfile : alu_int; // intreg
            energy[b.int_blocks[i]] +=
                int_ops * s.fraction * unit_e * 2.0;
        }
        for (std::size_t i = 0; i < std::size(kFpShares); ++i) {
            const Share& s = kFpShares[i];
            const double unit_e = i == 2 ? regfile : alu_fp; // fpreg
            energy[b.fp_blocks[i]] +=
                fp_ops * s.fraction * unit_e * 2.0;
        }

        // Conditional clock gating: a fully idle cycle still burns the
        // ungated fraction; utilization recovers the rest.
        const double util_factor =
            active > 0.0
                ? std::min(1.0, insts / (active * kIssueWidth))
                : 0.0;
        const double clock_e = active * clock_per_cycle *
            (kClockUngatedFraction +
             (1.0 - kClockUngatedFraction) * util_factor);
        energy[b.clock] += clock_e;
    }

    // Shared structures: the L2 and the snooping bus. The bus wires span
    // the chip edge; attribute their energy to the L2 block they run over.
    if (has_l2_block_) {
        const double l2_accesses =
            static_cast<double>(stats.counterValue("l2.reads")) +
            static_cast<double>(stats.counterValue("l2.writes"));
        const double bus_txns =
            static_cast<double>(stats.counterValue("bus.transactions"));
        const double chip_w_mm =
            std::sqrt(floorplan_.totalArea()) / util::kMilli;
        energy[l2_index_] += l2_accesses * l2_.read_energy_j +
                             bus_txns * cacti_.busEnergyPerMm() * chip_w_mm;
    }

    std::vector<double> watts(energy.size(), 0.0);
    for (std::size_t i = 0; i < energy.size(); ++i)
        watts[i] = energy[i] * v_scale / seconds;
    return watts;
}

void
ChipPowerModel::calibrate(double raw_core_dynamic_w)
{
    if (raw_core_dynamic_w <= 0.0)
        util::fatal("ChipPowerModel::calibrate: bad microbenchmark power");
    renorm_factor_ = maxCoreDynamicPower() / raw_core_dynamic_w;
}

double
ChipPowerModel::renormFactor() const
{
    if (!calibrated())
        util::fatal("ChipPowerModel: renormFactor before calibrate()");
    return renorm_factor_;
}

std::vector<double>
ChipPowerModel::dynamicPower(const util::StatRegistry& stats,
                             std::uint64_t cycles, int n_active, double vdd,
                             double freq) const
{
    std::vector<double> watts =
        rawDynamicPower(stats, cycles, n_active, vdd, freq);
    const double factor = renormFactor();
    for (double& w : watts)
        w *= factor;
    return watts;
}

namespace {

/** Weight of the activity-proportional term in the static model; the
 *  remainder is an area-proportional floor for idle-but-powered silicon. */
constexpr double kStaticActivityWeight = 0.7;

} // namespace

std::vector<double>
ChipPowerModel::staticPower(const std::vector<double>& temps_c,
                            const std::vector<double>& dynamic_w,
                            int n_active, double vdd, double freq) const
{
    std::vector<double> watts;
    staticPowerInto(temps_c, dynamic_w, n_active, vdd, freq, watts);
    return watts;
}

void
ChipPowerModel::staticPowerInto(const std::vector<double>& temps_c,
                                const std::vector<double>& dynamic_w,
                                int n_active, double vdd, double freq,
                                std::vector<double>& out) const
{
    if (temps_c.size() != floorplan_.size() ||
        dynamic_w.size() != floorplan_.size())
        util::fatal("ChipPowerModel::staticPower: map size mismatch");
    if (vdd <= 0.0 || freq <= 0.0)
        util::fatal("ChipPowerModel::staticPower: bad operating point");

    const tech::Technology& tech = *tech_;
    const double s_hot =
        tech.leakageFit().scale(tech.vddNominal(), tech.tHotC());
    const double kappa = vdd / tech.vddNominal();
    // Re-express the run's dynamic power at nominal V/f (activity rate).
    const double to_nominal =
        (tech.fNominal() / freq) / (kappa * kappa);
    const double core_area = floorplan_.coreArea() /
        static_cast<double>(geometry_.n_cores);
    // The area floor: a fully idle core still leaks this share of the
    // ratio anchor.
    const double floor_core_w =
        (1.0 - kStaticActivityWeight) * maxCoreDynamicPower();

    const auto& blocks = floorplan_.blocks();
    out.assign(blocks.size(), 0.0);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const int core = blocks[i].core_id;
        if (core >= n_active)
            continue; // power-gated core: no leakage
        const double area_share = core >= 0
            ? blocks[i].area() / core_area
            : blocks[i].area() / core_area * 0.25; // L2: low-power cells
        const double ref_dyn_w =
            kStaticActivityWeight * dynamic_w[i] * to_nominal +
            floor_core_w * area_share;
        out[i] = staticRatioHot() * ref_dyn_w *
            (vdd / tech.vddNominal()) *
            tech.leakageFit().scale(vdd, temps_c[i]) / s_hot;
    }
}

} // namespace tlp::power
