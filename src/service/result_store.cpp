#include "service/result_store.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/fault_injection.hpp"
#include "service/wire.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace tlp::service {

namespace {

constexpr std::string_view kManifestName = "MANIFEST";
constexpr std::string_view kLockName = "LOCK";
constexpr std::string_view kPointsPrefix = "points.g";
constexpr std::string_view kPointsSuffix = ".jsonl";

/** Artifact keys become file names: restrict them to a safe alphabet
 *  (no separators, no leading dot) so a key can never escape tables/. */
bool
validTableKey(const std::string& key)
{
    if (key.empty() || key.size() > 128 || key.front() == '.')
        return false;
    return std::all_of(key.begin(), key.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    });
}

/** Generation number of a `points.g<G>.jsonl` name, or nullopt. */
std::optional<std::uint64_t>
pointsGeneration(const std::string& name)
{
    if (name.rfind(kPointsPrefix, 0) != 0)
        return std::nullopt;
    if (name.size() <= kPointsPrefix.size() + kPointsSuffix.size())
        return std::nullopt;
    if (name.compare(name.size() - kPointsSuffix.size(),
                     kPointsSuffix.size(), kPointsSuffix) != 0)
        return std::nullopt;
    const std::string digits =
        name.substr(kPointsPrefix.size(),
                    name.size() - kPointsPrefix.size() -
                        kPointsSuffix.size());
    char* end = nullptr;
    errno = 0;
    const unsigned long long g = std::strtoull(digits.c_str(), &end, 10);
    if (end == digits.c_str() || *end != '\0' || errno == ERANGE)
        return std::nullopt;
    return static_cast<std::uint64_t>(g);
}

std::string
pointsName(std::uint64_t generation)
{
    return util::strcatMsg(std::string(kPointsPrefix), generation,
                           std::string(kPointsSuffix));
}

} // namespace

std::string
tableKey(const std::string& figure, double scale)
{
    return util::strcatMsg(figure, "-s", runner::quantizeScale(scale));
}

util::Expected<std::unique_ptr<ResultStore>>
ResultStore::open(const std::string& dir)
{
    TLPPM_TRACE_SCOPE("service", "store-open:", dir);
    std::unique_ptr<ResultStore> store(new ResultStore());
    store->dir_ = dir;

    if (auto made = util::ensureDir(dir); !made)
        return made.error().withContext("ResultStore::open");
    if (auto locked = store->lock_.acquire(
            dir + "/" + std::string(kLockName));
        !locked)
        return locked.error().withContext("ResultStore::open");
    for (const char* sub : {"/tables", "/queue", "/work", "/results"}) {
        if (auto made = util::ensureDir(dir + sub); !made)
            return made.error().withContext("ResultStore::open");
    }

    if (auto recovered = store->recoverManifest(); !recovered)
        return recovered.error().withContext("ResultStore::open");

    // Garbage-collect what a crash can leave behind: stray tmp files
    // from interrupted atomic writes, and orphan point generations from
    // a kill inside the compaction window. The manifest is the sole
    // authority on which generation is live.
    const std::size_t tmp_swept = util::sweepTmpFiles(dir) +
        util::sweepTmpFiles(dir + "/tables") +
        util::sweepTmpFiles(dir + "/results");
    std::size_t orphans = 0;
    for (const std::string& name : util::listDir(dir)) {
        const auto g = pointsGeneration(name);
        if (g && *g != store->generation_) {
            util::removePath(dir + "/" + name);
            ++orphans;
        }
    }
    if (tmp_swept > 0 || orphans > 0) {
        util::warn(util::strcatMsg(
            "store: recovered '", dir, "': removed ", tmp_swept,
            " stray tmp file(s) and ", orphans,
            " orphan generation file(s)"));
    }
    util::traceInstant("service", "store-open: generation ",
                       store->generation_);
    return store;
}

std::string
ResultStore::pointsPath() const
{
    return dir_ + "/" + pointsName(generation_);
}

util::Expected<bool>
ResultStore::recoverManifest()
{
    const std::string path = dir_ + "/" + std::string(kManifestName);
    auto content = util::readFileIfExists(path);
    if (!content)
        return content.error().withContext("recoverManifest");

    if (content.value().has_value()) {
        // Strip the trailing newline; the manifest is one sealed line.
        std::string line = *content.value();
        if (!line.empty() && line.back() == '\n')
            line.pop_back();
        std::uint64_t generation = 0;
        if (checkSealedJsonLine(line) &&
            line.rfind("{\"tlppm_store\":1", 0) == 0 &&
            jsonFieldU64(line, "generation", generation)) {
            generation_ = generation;
            return true;
        }
        // A corrupt manifest is quarantined, then rebuilt from the
        // on-disk evidence: the highest generation file present becomes
        // live (journal replay tolerates a torn tail, so the worst case
        // is re-running the records a newer lost manifest had compacted
        // away).
        quarantine(path, "manifest failed CRC/parse");
    }

    std::uint64_t best = 0;
    for (const std::string& name : util::listDir(dir_)) {
        if (const auto g = pointsGeneration(name))
            best = std::max(best, *g);
    }
    generation_ = best;
    return writeManifest(best);
}

util::Expected<bool>
ResultStore::writeManifest(std::uint64_t generation)
{
    const std::string line = sealJsonLine(util::strcatMsg(
        "{\"tlppm_store\":1,\"generation\":", generation));
    auto written = util::atomicWriteFile(
        dir_ + "/" + std::string(kManifestName), line + "\n");
    if (!written)
        return written.error().withContext("writeManifest");
    generation_ = generation;
    return true;
}

void
ResultStore::quarantine(const std::string& path, const char* why)
{
    quarantined_.fetch_add(1, std::memory_order_relaxed);
    util::traceInstant("service", "quarantined:", path, " (", why, ")");
    util::warn(util::strcatMsg("store: quarantining '", path, "': ", why));
    if (auto renamed = util::renamePath(path, path + ".quarantined");
        !renamed) {
        // Even losing the rename must not block recovery: drop the file
        // so the recompute path can rewrite it.
        util::removePath(path);
    }
}

util::Expected<std::optional<std::string>>
ResultStore::loadTable(const std::string& key)
{
    if (!validTableKey(key)) {
        return util::Error{util::ErrorCode::InvalidArgument,
                           util::strcatMsg("invalid table key '", key,
                                           "'")};
    }
    const std::string path = dir_ + "/tables/" + key + ".table";
    auto content = util::readFileIfExists(path);
    if (!content)
        return content.error().withContext("loadTable");
    if (!content.value().has_value()) {
        table_misses_.fetch_add(1, std::memory_order_relaxed);
        return std::optional<std::string>{};
    }

    std::string text = std::move(*content.value());
    // Deterministic read-path fault: flip one payload byte, exactly the
    // bit-rot the CRC must catch.
    if (runner::StoreFaultInjector::instance().shouldFault(
            runner::StoreFaultKind::CorruptRead, "table-load") &&
        !text.empty()) {
        text.back() = static_cast<char>(text.back() ^ 0x20);
    }

    const std::size_t nl = text.find('\n');
    bool intact = nl != std::string::npos;
    std::string payload;
    if (intact) {
        const std::string header = text.substr(0, nl);
        payload = text.substr(nl + 1);
        std::uint64_t bytes = 0, crc = 0;
        intact = checkSealedJsonLine(header) &&
            header.rfind("{\"tlppm_table\":1", 0) == 0 &&
            jsonFieldU64(header, "bytes", bytes) &&
            jsonFieldU64(header, "payload_crc", crc) &&
            payload.size() == bytes &&
            util::crc32(payload) == static_cast<std::uint32_t>(crc);
    }
    if (!intact) {
        // Torn or corrupt artifact: quarantine and report a miss so the
        // caller recomputes and rewrites it.
        quarantine(path, "table artifact failed CRC/parse");
        table_misses_.fetch_add(1, std::memory_order_relaxed);
        return std::optional<std::string>{};
    }
    table_hits_.fetch_add(1, std::memory_order_relaxed);
    util::traceInstant("service", "table-hit:", key);
    return std::optional<std::string>{std::move(payload)};
}

util::Expected<bool>
ResultStore::storeTable(const std::string& key, const std::string& payload)
{
    if (!validTableKey(key)) {
        return util::Error{util::ErrorCode::InvalidArgument,
                           util::strcatMsg("invalid table key '", key,
                                           "'")};
    }
    const std::string path = dir_ + "/tables/" + key + ".table";
    const std::string header = sealJsonLine(util::strcatMsg(
        "{\"tlppm_table\":1,\"key\":\"", key, "\",\"bytes\":",
        payload.size(), ",\"payload_crc\":", util::crc32(payload)));
    const std::string content = header + "\n" + payload;

    // Deterministic write-path fault: leave the torn on-disk state a
    // crashed non-atomic writer would — the next load must quarantine
    // it and recompute.
    if (runner::StoreFaultInjector::instance().shouldFault(
            runner::StoreFaultKind::TornWrite, "table-write")) {
        return util::writeFileRaw(path, content.substr(0,
                                                       content.size() / 2));
    }
    auto written = util::atomicWriteFile(path, content);
    if (!written)
        return written.error().withContext("storeTable");
    util::traceInstant("service", "table-store:", key);
    return true;
}

runner::ReplayStats
ResultStore::replayPoints(runner::RunCache& cache) const
{
    return runner::Journal::replayInto(pointsPath(), cache);
}

util::Expected<CompactionResult>
ResultStore::compact()
{
    TLPPM_TRACE_SCOPE("service", "store-compact");
    runner::RunCache cache;
    const runner::ReplayStats replay = replayPoints(cache);

    const std::uint64_t next = generation_ + 1;
    std::string body = runner::Journal::headerLine() + "\n";
    cache.forEach([&body](const runner::RunKey& key,
                          const runner::Measurement& m) {
        body += runner::Journal::formatLine(key, m);
        body += '\n';
    });
    const std::string old_path = pointsPath();
    auto written =
        util::atomicWriteFile(dir_ + "/" + pointsName(next), body);
    if (!written)
        return written.error().withContext("compact");

    // The publish window the recovery protocol must tolerate: the new
    // generation exists on disk but the manifest still names the old
    // one. A kill here leaves an orphan that open() collects.
    if (runner::StoreFaultInjector::instance().shouldFault(
            runner::StoreFaultKind::KillCompaction,
            "compaction-publish")) {
        throw runner::FaultKillError(
            "injected kill between generation write and manifest "
            "publish");
    }

    if (auto flipped = writeManifest(next); !flipped)
        return flipped.error().withContext("compact");
    util::removePath(old_path);
    compactions_.fetch_add(1, std::memory_order_relaxed);

    CompactionResult result;
    result.generation = next;
    result.kept = cache.size();
    result.dropped_corrupt = replay.corrupt;
    result.dropped_inadmissible = replay.inadmissible;
    util::traceInstant("service", "store-compact: generation ", next,
                       ", kept ", result.kept);
    return result;
}

StoreStats
ResultStore::stats() const
{
    StoreStats s;
    s.table_hits = table_hits_.load(std::memory_order_relaxed);
    s.table_misses = table_misses_.load(std::memory_order_relaxed);
    s.quarantined = quarantined_.load(std::memory_order_relaxed);
    s.compactions = compactions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace tlp::service
