#include "service/figures.hpp"

#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>
#include <utility>

#include "model/efficiency.hpp"
#include "model/multiprog.hpp"
#include "model/scenario1.hpp"
#include "model/scenario2.hpp"
#include "runner/sweep_runner.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tlp::service {

namespace {

/** Header banner naming the figure being regenerated (the batch
 *  harnesses' tlppm_bench::banner, rendered into the output string). */
void
banner(std::ostream& out, const std::string& what)
{
    out << "##\n## Reproducing " << what
        << "\n## (Li & Martinez, ISPASS 2005)\n##\n\n";
}

/** Containment ledger to stderr: one summary line plus one line per
 *  failed point (the batch harnesses' reportSweep). */
void
reportSweep(const runner::SweepReport& report, const char* tag)
{
    std::cerr << "  [" << tag << "] " << report.summary() << "\n";
    for (const auto& f : report.failed) {
        std::cerr << "  [" << tag << "] FAILED " << f.phase << " "
                  << f.workload << " n=" << f.n << " after " << f.attempts
                  << " attempt(s), " << f.wall_seconds
                  << " s: " << f.error.describe() << "\n";
    }
}

/** Two-level cache accounting line to stderr (--cache-stats), plus a
 *  persistent-store line when a raw store is attached. */
void
printCacheStats(const runner::SweepReport& report, const char* tag)
{
    std::cerr << "  [" << tag << "] cache-stats: sim_calls="
              << report.sim_calls << " price_calls=" << report.price_calls
              << " raw_hits=" << report.raw_hits
              << " raw_misses=" << report.raw_misses
              << " priced_hits=" << report.priced_hits
              << " priced_misses=" << report.priced_misses
              << " replayed=" << report.replayed
              << " replay_corrupt=" << report.replay_corrupt
              << " replay_inadmissible=" << report.replay_inadmissible
              << " sched=" << report.sched_expensive << "x/"
              << report.sched_cheap << "c"
              << " pool_tasks=" << report.pool_tasks
              << " steals=" << report.pool_steals
              << " pinned=" << report.pool_workers_pinned << "\n";
    if (report.store_attached) {
        std::cerr << "  [" << tag << "] store-stats: store_hits="
                  << report.store_hits
                  << " store_misses=" << report.store_misses
                  << " store_appends=" << report.store_appends
                  << " store_loaded=" << report.store_loaded
                  << " store_quarantined=" << report.store_quarantined
                  << " store_fp_rejected=" << report.store_fp_rejected
                  << " store_load_micros=" << report.store_load_micros
                  << "\n";
    }
}

int
resolveJobs(const FigureOptions& options)
{
    if (options.jobs > 0)
        return options.jobs;
    return static_cast<int>(util::ThreadPool::defaultJobs());
}

/** Thermal-solver work of the analytic figures, summed over nodes —
 *  what fig1/fig2's --metrics snapshot reports (zero simulations). */
struct AnalyticCounters
{
    std::uint64_t thermal_solves = 0;
    std::uint64_t thermal_solve_passes = 0;
    std::uint64_t thermal_factorizations = 0;
    std::uint64_t thermal_symbolic_analyses = 0;
    std::uint64_t thermal_max_batch_rhs = 0; ///< peak across nodes
};

std::string
analyticMetricsJson(const AnalyticCounters& counters)
{
    return util::strcatMsg(
        "{\n  \"sim_calls\": 0,\n  \"thermal_solves\": ",
        counters.thermal_solves,
        ",\n  \"thermal_solve_passes\": ", counters.thermal_solve_passes,
        ",\n  \"thermal_max_batch_rhs\": ", counters.thermal_max_batch_rhs,
        ",\n  \"thermal_factorizations\": ",
        counters.thermal_factorizations,
        ",\n  \"thermal_symbolic_analyses\": ",
        counters.thermal_symbolic_analyses, "\n}\n");
}

void
foldAnalyticCounters(const thermal::RCModel& model,
                     AnalyticCounters& counters)
{
    counters.thermal_solves += model.solveCount();
    counters.thermal_solve_passes += model.solvePassCount();
    counters.thermal_factorizations += model.factorizationCount();
    counters.thermal_symbolic_analyses += model.symbolicAnalysisCount();
    counters.thermal_max_batch_rhs =
        std::max<std::uint64_t>(counters.thermal_max_batch_rhs,
                                model.maxBatchRhs());
}

void
printAnalyticCacheStats(const thermal::RCModel& model, const char* tag,
                        const std::string& node)
{
    // The analytic figures run zero cycle-level simulations; the
    // relevant hot-path counters here are the thermal solver's:
    // multi-RHS substitution passes against the one cached factor.
    std::cerr << "  [" << tag << " " << node
              << "] cache-stats: sim_calls=0 thermal_solver="
              << model.solverName()
              << " thermal_solves=" << model.solveCount()
              << " thermal_solve_passes=" << model.solvePassCount()
              << " thermal_max_batch_rhs=" << model.maxBatchRhs()
              << " thermal_factorizations=" << model.factorizationCount()
              << " thermal_symbolic_analyses="
              << model.symbolicAnalysisCount() << "\n";
}

// --------------------------------------------------------------------
// Figure 1: normalized power P_N/P1 vs nominal parallel efficiency
// (Scenario I of the analytical model), 130 nm and 65 nm.
// --------------------------------------------------------------------

void
fig1Node(std::ostream& out, const tech::Technology& tech,
         util::ThreadPool* pool, bool cache_stats,
         AnalyticCounters& counters)
{
    TLPPM_TRACE_SCOPE("bench", "fig1:", tech.name());
    const model::AnalyticCmp cmp(tech, 32);
    const model::Scenario1 scenario(cmp);

    const int core_counts[] = {2, 4, 8, 16, 32};
    std::vector<std::string> header = {"eps_n"};
    for (int n : core_counts)
        header.push_back("N=" + std::to_string(n));

    util::Table table(
        "Figure 1 (" + tech.name() + "): normalized power P_N/P1 vs "
        "nominal parallel efficiency",
        header);

    // The (eps, N) grid points are independent; fan one task per eps row
    // and add the finished rows in order, so the table is identical to a
    // serial evaluation. Within a row, all five N are priced in one
    // batched call (a lockstep thermal fixed point with multi-RHS
    // solves); per-point results are bit-identical to scalar solve().
    std::vector<int> pcts;
    for (int pct = 5; pct <= 100; pct += 5)
        pcts.push_back(pct);
    std::vector<std::vector<std::string>> rows(pcts.size());
    const auto solve_row = [&](std::size_t i) {
        const double eps = pcts[i] / 100.0;
        std::vector<std::string> row = {util::Table::num(eps, 2)};
        std::vector<std::pair<int, double>> points;
        for (int n : core_counts)
            points.push_back({n, eps});
        std::vector<model::Scenario1Result> results;
        try {
            results = scenario.solveBatch(points);
        } catch (const std::exception& e) {
            std::cerr << "  [fig1] batched row eps=" << eps
                      << " failed (" << e.what()
                      << "); retrying points individually\n";
        }
        for (std::size_t k = 0; k < std::size(core_counts); ++k) {
            const int n = core_counts[k];
            // Contain per-point solver failures: one bad grid point
            // becomes one "error" cell, not a dead figure.
            try {
                const auto r = k < results.size() ? results[k]
                                                  : scenario.solve(n, eps);
                if (!r.feasible) {
                    row.push_back("-");       // needs f > f1: disallowed
                } else if (r.power.runaway) {
                    row.push_back("runaway"); // thermally infeasible
                } else {
                    row.push_back(util::Table::num(r.normalized_power, 3));
                }
            } catch (const std::exception& e) {
                std::cerr << "  [fig1] solve(N=" << n << ", eps=" << eps
                          << ") failed: " << e.what() << "\n";
                row.push_back("error");
            }
        }
        rows[i] = std::move(row);
    };
    if (pool)
        pool->parallelFor(0, pcts.size(), solve_row);
    else
        for (std::size_t i = 0; i < pcts.size(); ++i)
            solve_row(i);
    for (auto& row : rows)
        table.addRow(std::move(row));
    table.print(out);

    // Sample-application marks: eps_n decays with N (communication
    // overhead family), one working point per configuration.
    const model::OverheadEfficiency app(0.02);
    util::Table marks("Figure 1 (" + tech.name() +
                          "): sample-application working points",
                      {"N", "eps_n(N)", "P_N/P1", "V [V]", "f [GHz]",
                       "T [C]"});
    const std::size_t n_marks = std::size(core_counts);
    std::vector<std::vector<std::string>> mark_rows(n_marks);
    // The five working points form one batch (no fan-out needed: the
    // lockstep fixed point amortizes their thermal solves by itself).
    std::vector<std::pair<int, double>> mark_points;
    for (int n : core_counts)
        mark_points.push_back({n, app.at(n)});
    std::vector<model::Scenario1Result> mark_results;
    try {
        mark_results = scenario.solveBatch(mark_points);
    } catch (const std::exception& e) {
        std::cerr << "  [fig1] batched sample-app row failed ("
                  << e.what() << "); retrying points individually\n";
    }
    for (std::size_t i = 0; i < n_marks; ++i) {
        const int n = core_counts[i];
        try {
            const auto r = i < mark_results.size() ? mark_results[i]
                                                   : scenario.solve(n, app);
            mark_rows[i] = {util::Table::num(n),
                            util::Table::num(r.eps_n, 3),
                            util::Table::num(r.normalized_power, 3),
                            util::Table::num(r.vdd, 3),
                            util::Table::num(r.freq / 1e9, 3),
                            util::Table::num(r.power.avg_active_temp_c, 1)};
        } catch (const std::exception& e) {
            std::cerr << "  [fig1] sample-app solve(N=" << n
                      << ") failed: " << e.what() << "\n";
            mark_rows[i] = {util::Table::num(n), "error", "error",
                            "error", "error", "error"};
        }
    }
    for (auto& row : mark_rows)
        marks.addRow(std::move(row));
    marks.print(out);

    foldAnalyticCounters(cmp.thermalModel(), counters);
    if (cache_stats)
        printAnalyticCacheStats(cmp.thermalModel(), "fig1", tech.name());
}

FigureRun
renderFig1(const FigureOptions& options)
{
    FigureRun run;
    std::ostringstream out;
    banner(out, "Figure 1 -- Scenario I power optimization "
                "(analytical model)");
    const int jobs = resolveJobs(options);
    std::unique_ptr<util::ThreadPool> pool;
    if (jobs > 1)
        pool = std::make_unique<util::ThreadPool>(
            static_cast<unsigned>(jobs));
    AnalyticCounters counters;
    fig1Node(out, tech::tech130nm(), pool.get(), options.cache_stats,
             counters);
    fig1Node(out, tech::tech65nm(), pool.get(), options.cache_stats,
             counters);
    out << "Expected shape (paper): curves fall as eps_n grows; "
           "high-N curves lie above low-N ones at high eps_n; every "
           "curve drops below 1.0 beyond a break-even eps_n that "
           "shrinks with N; the best configuration for the sample "
           "app is not the largest N.\n";
    run.output = out.str();
    run.metrics_json = analyticMetricsJson(counters);
    return run;
}

// --------------------------------------------------------------------
// Figure 2: speedup under a fixed power budget (Scenario II of the
// analytical model), N = 1..32, 130 nm and 65 nm.
// --------------------------------------------------------------------

FigureRun
renderFig2(const FigureOptions& options)
{
    FigureRun run;
    std::ostringstream out;
    banner(out, "Figure 2 -- Scenario II speedup under a fixed "
                "power budget (analytical model)");

    const tech::Technology nodes[] = {tech::tech130nm(),
                                      tech::tech65nm()};
    const model::AnalyticCmp cmp130(nodes[0], 32);
    const model::AnalyticCmp cmp65(nodes[1], 32);
    const model::Scenario2 s130(cmp130);
    const model::Scenario2 s65(cmp65);

    util::Table table(
        "Figure 2: speedup vs cores, eps_n = 1, budget = P1",
        {"N", "130nm speedup", "130nm V", "130nm f[GHz]", "65nm speedup",
         "65nm V", "65nm f[GHz]"});

    // Both per-N solves are independent; fan them across the pool and
    // fold the table/peak scan serially in N order afterwards.
    constexpr int kMaxN = 32;
    std::vector<model::Scenario2Result> res130(kMaxN);
    std::vector<model::Scenario2Result> res65(kMaxN);
    std::vector<char> ok130(kMaxN, 1), ok65(kMaxN, 1);
    // Contain per-point solver failures: one bad N becomes one "error"
    // row cell, not a dead figure.
    const auto solve_n = [&](std::size_t i) {
        const int n = static_cast<int>(i) + 1;
        try {
            res130[i] = s130.solve(n, 1.0);
        } catch (const std::exception& e) {
            std::cerr << "  [fig2] 130nm solve(N=" << n
                      << ") failed: " << e.what() << "\n";
            ok130[i] = 0;
        }
        try {
            res65[i] = s65.solve(n, 1.0);
        } catch (const std::exception& e) {
            std::cerr << "  [fig2] 65nm solve(N=" << n
                      << ") failed: " << e.what() << "\n";
            ok65[i] = 0;
        }
    };
    const int jobs = resolveJobs(options);
    if (jobs > 1) {
        util::ThreadPool pool(static_cast<unsigned>(jobs));
        pool.parallelFor(0, kMaxN, solve_n);
    } else {
        for (std::size_t i = 0; i < kMaxN; ++i)
            solve_n(i);
    }

    double peak130 = 0.0, peak65 = 0.0;
    int argmax130 = 1, argmax65 = 1;
    for (int n = 1; n <= kMaxN; ++n) {
        const auto& a = res130[n - 1];
        const auto& b = res65[n - 1];
        if (ok130[n - 1] && a.speedup > peak130) {
            peak130 = a.speedup;
            argmax130 = n;
        }
        if (ok65[n - 1] && b.speedup > peak65) {
            peak65 = b.speedup;
            argmax65 = n;
        }
        std::vector<std::string> row = {util::Table::num(n)};
        if (ok130[n - 1]) {
            row.push_back(util::Table::num(a.speedup, 3));
            row.push_back(util::Table::num(a.vdd, 3));
            row.push_back(util::Table::num(a.freq / 1e9, 3));
        } else {
            row.insert(row.end(), {"error", "error", "error"});
        }
        if (ok65[n - 1]) {
            row.push_back(util::Table::num(b.speedup, 3));
            row.push_back(util::Table::num(b.vdd, 3));
            row.push_back(util::Table::num(b.freq / 1e9, 3));
        } else {
            row.insert(row.end(), {"error", "error", "error"});
        }
        table.addRow(std::move(row));
    }
    table.print(out);

    if (options.cache_stats) {
        for (const model::AnalyticCmp* cmp : {&cmp130, &cmp65}) {
            printAnalyticCacheStats(cmp->thermalModel(), "fig2",
                                    cmp->technology().name());
        }
    }

    AnalyticCounters counters;
    foldAnalyticCounters(cmp130.thermalModel(), counters);
    foldAnalyticCounters(cmp65.thermalModel(), counters);

    out << "Measured peaks: 130nm " << peak130 << "x at N=" << argmax130
        << "; 65nm " << peak65 << "x at N=" << argmax65 << "\n";
    out << "Expected shape (paper): maximum speedup only a little "
           "over 4, on 130nm; the 65nm curve lies below 130nm and "
           "degrades faster beyond its peak (higher static power "
           "share); both technologies decline well before N=32 "
           "despite eps_n = 1.\n";
    run.output = out.str();
    run.metrics_json = analyticMetricsJson(counters);
    return run;
}

// --------------------------------------------------------------------
// Figure 3: the five-panel Scenario I evaluation of the simulated
// 16-way CMP over the twelve applications, N in {1, 2, 4, 8, 16}.
// --------------------------------------------------------------------

runner::SweepRunner::Options
sweepOptions(const FigureOptions& options, const char* label)
{
    runner::SweepRunner::Options sweep;
    sweep.jobs = options.jobs;
    sweep.scale = options.scale;
    sweep.journal_path = options.journal_path;
    sweep.resume = options.resume;
    sweep.journal_flush_every = options.journal_flush_every;
    sweep.point_timeout_s = options.point_timeout_s;
    sweep.progress = options.progress;
    sweep.progress_label = label;
    sweep.shards = options.shards;
    sweep.raw_store = options.raw_store;
    sweep.shard_index = options.shard_index;
    sweep.workloads = options.workloads;
    return sweep;
}

/** Split the comma-joined --workloads list; empty input or empty parts
 *  (",,") yield no entries. */
std::vector<std::string>
splitList(const std::string& csv)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > start)
            parts.push_back(csv.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return parts;
}

/** Resolve the --workloads override of fig3/fig4 (suite names or
 *  trace:<path> specs); empty yields the figure's default @p fallback
 *  list. A bad spec or unreadable/corrupt trace is a typed error. */
util::Expected<std::vector<const workloads::WorkloadInfo*>>
resolveApps(const std::string& csv,
            std::vector<const workloads::WorkloadInfo*> fallback)
{
    if (csv.empty())
        return fallback;
    std::vector<const workloads::WorkloadInfo*> apps;
    for (const std::string& spec : splitList(csv)) {
        auto app = workloads::resolve(spec);
        if (!app)
            return std::move(app.error())
                .withContext("--workloads '" + spec + "'");
        apps.push_back(app.value());
    }
    if (apps.empty())
        return util::Error(util::ErrorCode::InvalidArgument,
                           "--workloads named no workloads");
    return apps;
}

util::Expected<FigureRun>
renderFig3(const FigureOptions& options)
{
    FigureRun run;
    run.simulated = true;
    std::ostringstream out;
    banner(out, "Figure 3 -- Scenario I on the simulated CMP (scale " +
                    util::Table::num(options.scale, 2) + ")");

    // Resolve the workload override before constructing the runner: a
    // bad --workloads spec (or a corrupt trace) must fail fast, not
    // after a journal/store has been opened.
    std::vector<const workloads::WorkloadInfo*> defaults;
    for (const auto& info : workloads::suite())
        defaults.push_back(&info);
    auto resolved = resolveApps(options.workloads, std::move(defaults));
    if (!resolved)
        return std::move(resolved.error()).withContext("fig3");
    const std::vector<const workloads::WorkloadInfo*>& apps =
        resolved.value();

    runner::SweepRunner sweep(sweepOptions(options, "fig3"));
    const std::vector<int> ns = {1, 2, 4, 8, 16};

    std::vector<std::string> header = {"Application"};
    for (int n : ns)
        header.push_back("N=" + std::to_string(n));

    util::Table eff("Panel 1: nominal parallel efficiency [%]", header);
    util::Table spd("Panel 2: actual speedup (performance pinned to "
                    "sequential nominal)",
                    header);
    util::Table pwr("Panel 3: normalized power P_N/P_1", header);
    util::Table dens("Panel 4: normalized power density", header);
    util::Table temp("Panel 5: average temperature [C]", header);

    std::cerr << "  [fig3] sweeping " << apps.size() << " applications on "
              << sweep.jobs() << " worker(s)\n";
    const auto all_rows = sweep.scenario1Sweep(apps, ns);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto& info = *apps[a];
        const auto& rows = all_rows[a];
        std::vector<std::string> r_eff = {info.name};
        std::vector<std::string> r_spd = {info.name};
        std::vector<std::string> r_pwr = {info.name};
        std::vector<std::string> r_dens = {info.name};
        std::vector<std::string> r_temp = {info.name};
        for (const auto& row : rows) {
            if (row.out_of_shard) {
                // Another shard of a sharded sweep owns this row; its
                // value appears after a tlppm_merge re-render.
                for (auto* cells : {&r_eff, &r_spd, &r_pwr, &r_dens,
                                    &r_temp})
                    cells->push_back("-");
                continue;
            }
            if (row.failed) {
                // Containment placeholder: the point is itemized in the
                // sweep report below.
                for (auto* cells : {&r_eff, &r_spd, &r_pwr, &r_dens,
                                    &r_temp})
                    cells->push_back("FAILED");
                continue;
            }
            // A '*' marks a thermally unsustainable (runaway) operating
            // point; only tiny TLPPM_SCALE values (distorted efficiency
            // curves) produce these.
            const std::string mark =
                row.measurement.runaway ? "*" : "";
            r_eff.push_back(util::Table::num(100.0 * row.eps_n, 1));
            r_spd.push_back(util::Table::num(row.actual_speedup, 2) +
                            mark);
            r_pwr.push_back(util::Table::num(row.normalized_power, 3) +
                            mark);
            r_dens.push_back(util::Table::num(row.normalized_density, 3) +
                             mark);
            r_temp.push_back(util::Table::num(row.avg_temp_c, 1) + mark);
        }
        eff.addRow(std::move(r_eff));
        spd.addRow(std::move(r_spd));
        pwr.addRow(std::move(r_pwr));
        dens.addRow(std::move(r_dens));
        temp.addRow(std::move(r_temp));
        std::cerr << "  [fig3] " << info.name << " done\n";
    }

    reportSweep(sweep.lastReport(), "fig3");
    if (options.cache_stats)
        printCacheStats(sweep.lastReport(), "fig3");
    run.report = sweep.lastReport();
    run.metrics_json = run.report.metricsJson();

    eff.print(out);
    spd.print(out);
    pwr.print(out);
    dens.print(out);
    temp.print(out);

    out << "Expected shape (paper): efficiency generally falls "
           "with N; actual speedups exceed 1 for memory-bound "
           "codes (Ocean, and to a lesser extent Cholesky/"
           "Radiosity) because chip DVFS narrows the processor-"
           "memory gap; normalized power falls with N given enough "
           "efficiency, then stagnates/recedes; power density "
           "drops ~95% at N=16; temperatures fall toward the 45 C "
           "ambient, fastest for the hottest applications (FMM, "
           "LU).\n";
    run.output = out.str();
    return run;
}

// --------------------------------------------------------------------
// Figure 4: nominal vs actual speedup of FMM, Cholesky, and Radix
// under the power budget of one maxed-out core, N = 1..16.
// --------------------------------------------------------------------

util::Expected<FigureRun>
renderFig4(const FigureOptions& options)
{
    FigureRun run;
    run.simulated = true;
    std::ostringstream out;
    banner(out, "Figure 4 -- Scenario II on the simulated CMP (scale " +
                    util::Table::num(options.scale, 2) + ")");

    std::vector<const workloads::WorkloadInfo*> defaults;
    for (const char* name : {"FMM", "Cholesky", "Radix"})
        defaults.push_back(&workloads::byName(name));
    auto resolved = resolveApps(options.workloads, std::move(defaults));
    if (!resolved)
        return std::move(resolved.error()).withContext("fig4");
    const std::vector<const workloads::WorkloadInfo*>& apps =
        resolved.value();

    runner::SweepRunner sweep(sweepOptions(options, "fig4"));
    out << "Power budget (microbenchmark-derived single-core "
           "maximum): "
        << util::Table::num(sweep.experiment().maxSingleCorePower(), 1)
        << " W\n\n";

    const std::vector<int> ns = {1, 2, 3, 4, 6, 8, 10, 12, 14, 16};
    std::cerr << "  [fig4] sweeping " << apps.size() << " applications on "
              << sweep.jobs() << " worker(s)\n";
    const auto all_rows = sweep.scenario2Sweep(apps, ns);
    reportSweep(sweep.lastReport(), "fig4");
    if (options.cache_stats)
        printCacheStats(sweep.lastReport(), "fig4");
    run.report = sweep.lastReport();
    run.metrics_json = run.report.metricsJson();

    for (std::size_t a = 0; a < apps.size(); ++a) {
        const std::string name = apps[a]->name;
        const auto& rows = all_rows[a];
        util::Table table("Figure 4: " + std::string(name) +
                              " (descending computational intensity: "
                              "FMM > Cholesky > Radix)",
                          {"N", "nominal speedup", "actual speedup",
                           "f [GHz]", "Vdd [V]", "power [W]",
                           "at nominal V/f"});
        for (const auto& row : rows) {
            if (row.out_of_shard) {
                table.addRow({util::Table::num(row.n), "-", "-", "-", "-",
                              "-", "-"});
                continue;
            }
            if (row.failed) {
                table.addRow({util::Table::num(row.n), "FAILED", "FAILED",
                              "-", "-", "-", "-"});
                continue;
            }
            table.addRow({util::Table::num(row.n),
                          util::Table::num(row.nominal_speedup, 2),
                          util::Table::num(row.actual_speedup, 2),
                          util::Table::num(row.freq_hz / 1e9, 2),
                          util::Table::num(row.vdd, 3),
                          util::Table::num(row.power_w, 1),
                          row.at_nominal ? "yes" : "no"});
        }
        table.print(out);
        std::cerr << "  [fig4] " << name << " done\n";
    }

    out << "Expected shape (paper): the nominal/actual gap is "
           "largest for the compute-intensive FMM and smallest for "
           "the memory-bound Radix; Radix runs small configurations "
           "at full V/f without exceeding the budget (its nominal "
           "power is far below the budget), and only develops a gap "
           "at larger N.\n";
    run.output = out.str();
    return run;
}

// --------------------------------------------------------------------
// Figure 5 (beyond the paper): multiprogrammed co-scheduling — k
// applications on disjoint core sets of the 16-way CMP, their DVFS
// operating points arbitrated against one global power budget.
// --------------------------------------------------------------------

/** Default co-schedules: a compute/memory pair and an asymmetric
 *  three-way mix, both filling the 16-way chip. */
const std::vector<std::string>&
defaultSchedules()
{
    static const std::vector<std::string> specs = {
        "FMM:8+Radix:8", "Cholesky:4+Ocean:4+FFT:8"};
    return specs;
}

util::Expected<FigureRun>
renderFig5(const FigureOptions& options)
{
    FigureRun run;
    run.simulated = true;
    std::ostringstream out;
    banner(out, "Figure 5 -- Multiprogrammed co-scheduling under one "
                "power budget (scale " +
                    util::Table::num(options.scale, 2) + ")");

    if (options.shards > 1)
        return util::Error(util::ErrorCode::InvalidArgument,
                           "fig5_multiprog does not shard (its unit of "
                           "work is one co-schedule, not one row)");

    runner::SweepRunner sweep(sweepOptions(options, "fig5"));
    const runner::Experiment& exp = sweep.experiment();
    const int chip_cores = exp.cmp().config().n_cores;
    const double budget_w = exp.maxSingleCorePower();
    const std::vector<double> grid = exp.defaultFrequencyGrid();
    const double f_nominal = exp.technology().fNominal();
    const double vdd_nominal = exp.technology().vddNominal();

    out << "Power budget (microbenchmark-derived single-core "
           "maximum): "
        << util::Table::num(budget_w, 1) << " W\n\n";

    // Parse every co-schedule up front: a bad spec is a usage error for
    // the whole figure, not a contained point failure.
    const std::vector<std::string> specs = options.workloads.empty()
                                               ? defaultSchedules()
                                               : splitList(options.workloads);
    std::vector<model::CoSchedule> schedules;
    for (const std::string& spec : specs) {
        auto sched = model::parseCoSchedule(spec, chip_cores);
        if (!sched)
            return std::move(sched.error()).withContext("fig5_multiprog");
        schedules.push_back(std::move(sched.value()));
    }
    if (schedules.empty())
        return util::Error(util::ErrorCode::InvalidArgument,
                           "fig5_multiprog: no co-schedules given");

    // Prefetch every grid point the arbitration will consult through the
    // jobs-parallel sweep path (shared caches make the later serial
    // arbitration pure lookup, so the tables are byte-identical at any
    // --jobs). scenario2Row's off-grid interpolation/validation probes
    // are the only points simulated after this — on the calling thread,
    // deterministically.
    std::vector<runner::MeasureSpec> specs_to_warm;
    for (const model::CoSchedule& sched : schedules) {
        for (const model::CoScheduledApp& a : sched.apps) {
            specs_to_warm.push_back({a.app, 1, vdd_nominal, f_nominal});
            specs_to_warm.push_back({a.app, a.n, vdd_nominal, f_nominal});
            for (double f : grid) {
                if (f != f_nominal)
                    specs_to_warm.push_back(
                        {a.app, a.n, exp.vfTable().voltageFor(f), f});
            }
        }
    }
    std::cerr << "  [fig5] warming " << specs_to_warm.size()
              << " grid points for " << schedules.size()
              << " co-schedule(s) on " << sweep.jobs() << " worker(s)\n";
    sweep.measureAll(specs_to_warm);
    run.report = sweep.lastReport();

    // Post-sweep counter snapshot: the arbitration below runs on the
    // calling thread after finishSweep(), so fold its (interpolation /
    // validation) work into the report by delta.
    const std::uint64_t sim0 = exp.simCalls();
    const std::uint64_t events0 = exp.simEvents();
    const std::uint64_t price0 = exp.priceCalls();

    for (const model::CoSchedule& sched : schedules) {
        util::Table table(
            "Figure 5: " + sched.name,
            {"Application", "cores", "f [GHz]", "Vdd [V]", "core [W]",
             "share [%]", "speedup", "fair speedup", "at nominal V/f"});
        auto result = model::arbitrateCoSchedule(exp, sched, grid,
                                                 budget_w);
        if (!result) {
            // Contain a failed arbitration (a point that still would not
            // measure): one FAILED table, itemized on stderr, the other
            // schedules still render.
            std::cerr << "  [fig5] FAILED " << sched.name << ": "
                      << result.error().describe() << "\n";
            table.addRow({"FAILED", "-", "-", "-", "-", "-", "-", "-",
                          "-"});
            table.print(out);
            continue;
        }
        const model::MultiprogResult& r = result.value();
        for (const model::MultiprogAppRow& row : r.rows) {
            table.addRow({row.workload, util::Table::num(row.n),
                          util::Table::num(row.freq_hz / 1e9, 2),
                          util::Table::num(row.vdd, 3),
                          util::Table::num(row.core_w, 1),
                          util::Table::num(100.0 * row.budget_share, 1),
                          util::Table::num(row.speedup, 2),
                          util::Table::num(row.fair_speedup, 2),
                          row.at_nominal ? "yes" : "no"});
        }
        table.print(out);
        out << "  chip power " << util::Table::num(r.chip_power_w, 1)
            << " W of " << util::Table::num(r.budget_w, 1)
            << " W budget (shared uncore "
            << util::Table::num(r.uncore_w, 1) << " W)"
            << (r.feasible ? "" : " -- INFEASIBLE at the lowest "
                                  "grid point")
            << "\n\n";
        std::cerr << "  [fig5] " << sched.name << " done\n";
    }

    run.report.sim_calls += exp.simCalls() - sim0;
    run.report.sim_events += exp.simEvents() - events0;
    run.report.price_calls += exp.priceCalls() - price0;
    reportSweep(run.report, "fig5");
    if (options.cache_stats)
        printCacheStats(run.report, "fig5");
    run.metrics_json = run.report.metricsJson();

    out << "Expected shape: global arbitration pushes the budget "
           "toward the co-runner that converts watts to speedup best; "
           "memory-bound co-runners (Radix, Ocean) reach nominal V/f "
           "cheaply while compute-bound ones (FMM, Cholesky) absorb "
           "the remaining headroom; each app's arbitrated speedup "
           "meets or beats its fair-share (static budget split) "
           "reference except when a power-hungry partner saturates "
           "the shared uncore allowance.\n";
    run.output = out.str();
    return run;
}

} // namespace

const std::vector<std::string>&
figureNames()
{
    static const std::vector<std::string> names = {
        "fig1", "fig2", "fig3", "fig4", "fig5_multiprog"};
    return names;
}

bool
figureExists(const std::string& name)
{
    const auto& names = figureNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

bool
isSimulatedFigure(const std::string& name)
{
    return name == "fig3" || name == "fig4" || name == "fig5_multiprog";
}

util::Expected<FigureRun>
renderFigure(const std::string& name, const FigureOptions& options)
{
    TLPPM_TRACE_SCOPE("service", "render:", name);
    if (name == "fig1")
        return renderFig1(options);
    if (name == "fig2")
        return renderFig2(options);
    if (name == "fig3")
        return renderFig3(options);
    if (name == "fig4")
        return renderFig4(options);
    if (name == "fig5_multiprog")
        return renderFig5(options);
    return util::Error{util::ErrorCode::InvalidArgument,
                       util::strcatMsg("unknown figure '", name,
                                       "' (expected fig1, fig2, fig3, "
                                       "fig4, or fig5_multiprog)")};
}

} // namespace tlp::service
