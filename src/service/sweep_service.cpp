#include "service/sweep_service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "runner/fault_injection.hpp"
#include "runner/persistent_raw_store.hpp"
#include "service/figures.hpp"
#include "service/wire.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"
#include "util/trace.hpp"

namespace tlp::service {

namespace {

using Clock = std::chrono::steady_clock;

/** Request ids become response file names: same safe alphabet as table
 *  keys (no separators, no leading dot). */
bool
validRequestId(const std::string& id)
{
    if (id.empty() || id.size() > 96 || id.front() == '.')
        return false;
    return std::all_of(id.begin(), id.end(), [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '-' || c == '_';
    });
}

/**
 * Generous static estimate of the simulation count one request can
 * trigger (profiling passes + bisection/budget-search points), for the
 * admission-time point budget. Overestimating only rejects sooner; the
 * analytic figures run zero simulations.
 */
std::uint64_t
estimatePoints(const std::string& figure)
{
    if (figure == "fig3")
        return 12u * 5u * 24u; // apps x core counts x search depth
    if (figure == "fig4")
        return 3u * 10u * 24u; // apps x core counts x V/f grid
    return 0;                  // fig1/fig2: analytic, no simulator
}

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

} // namespace

SweepService::SweepService(std::unique_ptr<ResultStore> store,
                           Options options)
    : store_(std::move(store)), options_(options)
{
    if (options_.max_retries < 0)
        options_.max_retries = 0;
    if (options_.max_queue < 1)
        options_.max_queue = 1;
}

util::Expected<Request>
SweepService::parseRequest(const std::string& id, const std::string& body)
{
    std::string line = body;
    const std::size_t nl = line.find('\n');
    if (nl != std::string::npos)
        line.resize(nl);

    if (line.rfind("{\"tlppm_request\":1", 0) != 0) {
        return util::Error{util::ErrorCode::ParseError,
                           "request is not a tlppm_request:1 object"};
    }
    Request request;
    request.id = id;
    if (!jsonFieldString(line, "figure", request.figure)) {
        return util::Error{util::ErrorCode::ParseError,
                           "request lacks a \"figure\" field"};
    }
    double scale = 1.0;
    if (jsonFieldDouble(line, "scale", scale))
        request.scale = scale;
    std::uint64_t jobs = 0;
    if (jsonFieldU64(line, "jobs", jobs)) {
        if (jobs > 4096) {
            return util::Error{util::ErrorCode::ParseError,
                               "request \"jobs\" out of range (0..4096)"};
        }
        request.jobs = static_cast<int>(jobs);
    }
    return request;
}

util::Expected<bool>
SweepService::validate(const Request& request) const
{
    if (!validRequestId(request.id)) {
        return util::Error{util::ErrorCode::InvalidArgument,
                           util::strcatMsg("invalid request id '",
                                           request.id, "'")};
    }
    if (!figureExists(request.figure)) {
        return util::Error{
            util::ErrorCode::InvalidArgument,
            util::strcatMsg("unknown figure '", request.figure,
                            "' (expected fig1, fig2, fig3, or fig4)")};
    }
    if (!(request.scale >= 1e-6 && request.scale <= 1.0)) {
        return util::Error{util::ErrorCode::InvalidArgument,
                           util::strcatMsg("scale ", request.scale,
                                           " out of range [1e-6, 1]")};
    }
    if (estimatePoints(request.figure) > options_.max_points) {
        return util::Error{
            util::ErrorCode::Overloaded,
            util::strcatMsg("request exceeds the per-request point "
                            "budget (estimated ",
                            estimatePoints(request.figure), " > budget ",
                            options_.max_points, "); retry when the "
                            "operator raises --max-points")};
    }
    return true;
}

ServeOutcome
SweepService::serve(const Request& request)
{
    TLPPM_TRACE_SCOPE("service", "serve:", request.id, ":",
                      request.figure);
    ServeOutcome out;
    out.id = request.id;
    out.figure = request.figure;

    if (auto valid = validate(request); !valid) {
        out.error = valid.error();
        return out;
    }

    const Clock::time_point start = Clock::now();
    const std::string key = tableKey(request.figure, request.scale);

    // Level-2 hit: the priced table artifact. Integrity-checked by the
    // store; a quarantined artifact comes back as a miss and is
    // recomputed below.
    if (auto hit = store_->loadTable(key); hit && hit.value()) {
        out.ok = true;
        out.from_store = true;
        out.payload = std::move(*hit.value());
        if (auto metrics = store_->loadTable(key + ".metrics");
            metrics && metrics.value()) {
            out.metrics_json = std::move(*metrics.value());
        }
        util::traceInstant("service", "store-hit:", key);
        return out;
    }

    FigureOptions fopts;
    fopts.jobs = request.jobs > 0 ? request.jobs : options_.jobs;
    fopts.scale = request.scale;
    fopts.cache_stats = options_.cache_stats;
    fopts.progress = options_.progress;
    if (isSimulatedFigure(request.figure)) {
        // Level-1 persistence: every completed point journals into the
        // store's live generation, and resume replays it first — so a
        // retry (or a restart after a crash) re-simulates only points
        // that never reached the file.
        fopts.journal_path = store_->pointsPath();
        fopts.resume = true;
        fopts.journal_flush_every = options_.journal_flush_every;
        // Level-0 persistence: raw runs memoize below the in-memory
        // cache, shared with any batch harness or shard pointing at
        // the same directory.
        fopts.raw_store = options_.raw_store;
    }

    for (int attempt = 1;; ++attempt) {
        out.attempts = attempt;
        double point_timeout = options_.point_timeout_s;
        if (options_.deadline_s > 0) {
            const double remaining =
                options_.deadline_s - secondsSince(start);
            if (remaining <= 0) {
                out.error = util::Error{
                    util::ErrorCode::Timeout,
                    util::strcatMsg("request deadline (",
                                    options_.deadline_s,
                                    " s) exhausted after ", attempt - 1,
                                    " attempt(s)")};
                return out;
            }
            // The cooperative per-point watchdog enforces the deadline
            // inside the sweep: no point may outlive what is left.
            point_timeout = point_timeout > 0
                ? std::min(point_timeout, remaining)
                : remaining;
        }
        fopts.point_timeout_s = point_timeout;

        auto run = renderFigure(request.figure, fopts);
        if (run) {
            out.sim_calls += run.value().report.sim_calls;
            if (run.value().report.store_attached) {
                const auto& report = run.value().report;
                raw_store_hits_total_ += report.store_hits;
                raw_store_misses_total_ += report.store_misses;
                raw_store_appends_total_ += report.store_appends;
                raw_store_quarantined_total_ += report.store_quarantined;
                raw_store_fp_rejected_total_ += report.store_fp_rejected;
            }
            if (!run.value().simulated || run.value().report.allOk()) {
                out.ok = true;
                out.payload = std::move(run.value().output);
                out.metrics_json = std::move(run.value().metrics_json);
                break;
            }
            const auto& failed = run.value().report.failed;
            out.error = util::Error{
                failed.empty() ? util::ErrorCode::Unknown
                               : failed.front().error.code,
                util::strcatMsg(failed.size(), " point(s) failed, ",
                                run.value().report.skipped,
                                " row(s) skipped")};
        } else {
            out.error = run.error();
        }

        if (attempt > options_.max_retries) {
            out.error =
                out.error.withContext("SweepService::serve: retries "
                                      "exhausted");
            return out;
        }
        // Completed points are journaled; only the failures re-run.
        stats_.retries += 1;
        util::traceInstant("service", "retry:", request.id, " attempt ",
                           attempt, ": ", out.error.describe());
        util::warn(util::strcatMsg("service: request '", request.id,
                                   "' attempt ", attempt, " failed (",
                                   out.error.describe(), "); retrying"));
        std::this_thread::sleep_for(std::chrono::duration<double>(
            options_.backoff_s * attempt));
    }

    // Persist both artifacts so the next identical request is a pure
    // store hit. Only clean renders are stored: a table with FAILED
    // cells must never be replayed to a future client.
    if (auto stored = store_->storeTable(key, out.payload); !stored) {
        util::warn(util::strcatMsg("service: storing table '", key,
                                   "' failed: ",
                                   stored.error().describe()));
    }
    if (!out.metrics_json.empty()) {
        if (auto stored =
                store_->storeTable(key + ".metrics", out.metrics_json);
            !stored) {
            util::warn(util::strcatMsg("service: storing metrics '", key,
                                       "' failed: ",
                                       stored.error().describe()));
        }
    }
    return out;
}

std::string
SweepService::formatResponse(const ServeOutcome& outcome)
{
    std::string header = util::strcatMsg(
        "{\"tlppm_response\":1,\"id\":\"", outcome.id, "\",\"figure\":\"",
        escapeForWire(outcome.figure), "\",\"status\":\"",
        outcome.ok ? "ok" : "error", "\"");
    if (!outcome.ok) {
        header += util::strcatMsg(
            ",\"code\":\"", util::errorCodeName(outcome.error.code),
            "\",\"message\":\"", escapeForWire(outcome.error.describe()),
            "\"");
    }
    header += util::strcatMsg(
        ",\"from_store\":", outcome.from_store ? 1 : 0,
        ",\"sim_calls\":", outcome.sim_calls,
        ",\"attempts\":", outcome.attempts,
        ",\"bytes\":", outcome.payload.size(),
        ",\"payload_crc\":", util::crc32(outcome.payload));
    return sealJsonLine(std::move(header)) + "\n" + outcome.payload;
}

void
SweepService::respond(const ServeOutcome& outcome)
{
    stats_.requests += 1;
    if (outcome.ok) {
        stats_.served_ok += 1;
        if (outcome.from_store)
            stats_.from_store += 1;
    } else if (outcome.error.code == util::ErrorCode::Overloaded) {
        stats_.shed += 1;
        util::traceInstant("service", "shed:", outcome.id);
    } else if (outcome.error.code == util::ErrorCode::ParseError ||
               outcome.error.code == util::ErrorCode::InvalidArgument) {
        stats_.invalid += 1;
    } else {
        stats_.failed += 1;
    }
    sim_calls_total_ += outcome.sim_calls;

    const std::string path =
        store_->resultsDir() + "/" + outcome.id + ".resp";
    if (auto written =
            util::atomicWriteFile(path, formatResponse(outcome));
        !written) {
        util::warn(util::strcatMsg("service: writing response '", path,
                                   "' failed: ",
                                   written.error().describe()));
    }
}

void
SweepService::requeueOrphans()
{
    for (const std::string& name : util::listDir(store_->workDir(),
                                                 ".req")) {
        // A claim without a response: the previous daemon died
        // mid-request. Its finished points are journaled, so redelivery
        // costs only the unfinished remainder.
        auto moved = util::renamePath(store_->workDir() + "/" + name,
                                      store_->queueDir() + "/" + name);
        if (moved) {
            util::warn(util::strcatMsg(
                "service: re-queued orphaned request '", name,
                "' from a previous run"));
        }
    }
}

util::Expected<std::size_t>
SweepService::pollOnce()
{
    if (!orphans_recovered_) {
        requeueOrphans();
        orphans_recovered_ = true;
    }

    const std::vector<std::string> names =
        util::listDir(store_->queueDir(), ".req");
    std::size_t answered = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        const std::string& name = names[i];
        const std::string id = name.substr(0, name.size() - 4);
        if (!validRequestId(id)) {
            // An unsafe id cannot even name a response file; drop the
            // request file and log.
            util::warn(util::strcatMsg(
                "service: dropping request with unsafe id '", name,
                "'"));
            util::removePath(store_->queueDir() + "/" + name);
            stats_.invalid += 1;
            continue;
        }

        // Claim by rename: atomic, so a concurrent daemon (which the
        // store lock already prevents) or a crash cannot double-serve.
        const std::string work_path = store_->workDir() + "/" + name;
        if (auto claimed = util::renamePath(
                store_->queueDir() + "/" + name, work_path);
            !claimed) {
            continue;
        }

        ServeOutcome outcome;
        outcome.id = id;
        if (i >= options_.max_queue) {
            // Admission control: bounded work per poll. The client gets
            // a typed Overloaded answer and retries later.
            outcome.error = util::Error{
                util::ErrorCode::Overloaded,
                util::strcatMsg("queue depth ", names.size(),
                                " exceeds the admission bound ",
                                options_.max_queue, "; retry later")};
        } else if (auto body = util::readFile(work_path); !body) {
            outcome.error = body.error().withContext("pollOnce");
        } else if (auto request = parseRequest(id, body.value());
                   !request) {
            outcome.error = request.error();
        } else {
            const std::string key = tableKey(request.value().figure,
                                             request.value().scale);
            if (!served_keys_.insert(key).second)
                stats_.deduped += 1; // same key already served: store hit
            outcome = serve(request.value());
        }
        respond(outcome);
        util::removePath(work_path);
        ++answered;
    }
    return answered;
}

std::size_t
SweepService::sweepRawStore()
{
    if (options_.raw_store.empty())
        return 0;
    const std::size_t swept =
        runner::sweepRawStoreOrphans(options_.raw_store);
    raw_store_files_swept_ += swept;
    return swept;
}

std::string
SweepService::metricsJson() const
{
    const StoreStats store = store_->stats();
    return util::strcatMsg(
        "{\n  \"requests\": ", stats_.requests,
        ",\n  \"served_ok\": ", stats_.served_ok,
        ",\n  \"served_from_store\": ", stats_.from_store,
        ",\n  \"deduped\": ", stats_.deduped,
        ",\n  \"shed\": ", stats_.shed,
        ",\n  \"retries\": ", stats_.retries,
        ",\n  \"failed\": ", stats_.failed,
        ",\n  \"invalid\": ", stats_.invalid,
        ",\n  \"sim_calls_total\": ", sim_calls_total_,
        ",\n  \"store_generation\": ", store_->generation(),
        ",\n  \"store_table_hits\": ", store.table_hits,
        ",\n  \"store_table_misses\": ", store.table_misses,
        ",\n  \"store_quarantined\": ", store.quarantined,
        ",\n  \"store_compactions\": ", store.compactions,
        ",\n  \"raw_store_attached\": ",
        options_.raw_store.empty() ? 0 : 1,
        ",\n  \"raw_store_hits\": ", raw_store_hits_total_,
        ",\n  \"raw_store_misses\": ", raw_store_misses_total_,
        ",\n  \"raw_store_appends\": ", raw_store_appends_total_,
        ",\n  \"raw_store_quarantined\": ", raw_store_quarantined_total_,
        ",\n  \"raw_store_fp_rejected\": ", raw_store_fp_rejected_total_,
        ",\n  \"raw_store_files_swept\": ", raw_store_files_swept_,
        "\n}\n");
}

} // namespace tlp::service
