/**
 * @file
 * SweepService — the request-queue front-end of sweep-as-a-service.
 *
 * Clients drop one-line JSON request files into `<store>/queue/`
 * (`{"tlppm_request":1,"figure":"fig3","scale":0.05,"jobs":1}`, named
 * `<id>.req`); the service claims each by renaming it into
 * `<store>/work/`, serves it, and atomically writes
 * `<store>/results/<id>.resp` — a sealed header line (status, origin,
 * sim_calls, payload size + CRC) followed by the figure's byte-exact
 * batch-harness output. Every file transition is atomic (rename), so a
 * kill at any instant leaves each request either queued, claimed, or
 * answered — never half-answered. Claimed-but-unanswered requests from
 * a crashed daemon are re-queued on the next start; their completed
 * points are already in the store's journal, so redelivery re-simulates
 * only what never finished.
 *
 * Graceful degradation:
 *  - admission control: at most `max_queue` requests are served per
 *    poll; the excess is shed with a typed Overloaded response (clients
 *    retry later) instead of growing an unbounded backlog;
 *  - a per-request point budget rejects requests whose estimated
 *    simulation count exceeds `max_points` (Overloaded, permanent until
 *    the operator raises the budget);
 *  - a per-request deadline bounds wall time: it caps the per-point
 *    cooperative watchdog and is re-checked between retry attempts;
 *  - failed renders (contained failed points, I/O trouble) are retried
 *    with backoff up to `max_retries` times; completed points persist
 *    in the journal between attempts, so each retry only re-runs what
 *    failed. Requests still failing are answered with a typed error.
 *
 * Dedup: results are keyed by (figure, quantized scale) — never by job
 * count — so a repeated request is served entirely from the store
 * (sim_calls == 0, byte-identical payload), and duplicate requests in
 * one batch render once.
 */

#ifndef TLP_SERVICE_SWEEP_SERVICE_HPP
#define TLP_SERVICE_SWEEP_SERVICE_HPP

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "service/result_store.hpp"
#include "util/error.hpp"

namespace tlp::service {

/** One parsed figure request. */
struct Request
{
    std::string id;     ///< from the queue file name (`<id>.req`)
    std::string figure; ///< "fig1".."fig4"
    double scale = 1.0; ///< problem-size scale (simulated figures)
    int jobs = 0;       ///< worker count; 0 defers to the service
};

/** How one request was answered. */
struct ServeOutcome
{
    std::string id;
    std::string figure;
    bool ok = false;
    bool from_store = false;    ///< payload came from a table artifact
    std::uint64_t sim_calls = 0; ///< simulations this request executed
    int attempts = 1;            ///< 1 + service-level retries taken
    std::string payload;         ///< figure output ("" on error)
    std::string metrics_json;    ///< renderer metrics ("" on error)
    util::Error error;           ///< valid when !ok
};

/** Service-level counters (lifetime of this SweepService). */
struct ServiceStats
{
    std::uint64_t requests = 0;     ///< requests answered (ok or error)
    std::uint64_t served_ok = 0;
    std::uint64_t from_store = 0;   ///< answered without simulating
    std::uint64_t deduped = 0;      ///< same-key duplicates in one batch
    std::uint64_t shed = 0;         ///< Overloaded admission rejections
    std::uint64_t retries = 0;      ///< service-level retry attempts
    std::uint64_t failed = 0;       ///< requests answered with an error
    std::uint64_t invalid = 0;      ///< malformed/unknown requests
};

/** The request-serving engine + queue pump (see the file comment). */
class SweepService
{
  public:
    struct Options
    {
        int jobs = 0; ///< default worker count (request may override)
        /** Admission bound: requests served per poll; the rest shed. */
        std::size_t max_queue = 32;
        /** Per-request estimated-simulation budget (admission). */
        std::uint64_t max_points = 100000;
        /** Per-request wall-clock deadline [s]; <= 0 disables. Caps the
         *  per-point watchdog and bounds the retry ladder. */
        double deadline_s = 0.0;
        /** Per-point cooperative watchdog [s]; <= 0 disables. */
        double point_timeout_s = 0.0;
        /** Service-level retry attempts for a failed render. */
        int max_retries = 2;
        /** Base backoff before retry k is backoff_s * k. */
        double backoff_s = 0.05;
        /** fsync the point journal every K appends. */
        int journal_flush_every = 1;
        bool cache_stats = false; ///< renderer counters to stderr
        bool progress = false;    ///< renderer heartbeat to stderr
        /** Persistent cross-process raw-run store directory attached
         *  to every simulated render (empty: off). Shards and batch
         *  harnesses pointing at the same directory share raw runs
         *  with this daemon. */
        std::string raw_store;
    };

    SweepService(std::unique_ptr<ResultStore> store, Options options);

    ResultStore& store() { return *store_; }
    const Options& options() const { return options_; }

    /** Parse a one-line request body (the queue file content). */
    static util::Expected<Request> parseRequest(const std::string& id,
                                                const std::string& body);

    /** Validate @p request (known figure, scale in (0,1], jobs bound)
     *  and admission-check its point budget. */
    util::Expected<bool> validate(const Request& request) const;

    /**
     * Serve @p request: store hit, or render through the shared figure
     * renderer with the store's journal attached (resume on), retrying
     * with backoff on contained failures. Never throws for contained
     * request trouble — the outcome carries the typed error. Admission
     * rejections (queue depth is the caller's; point budget and
     * deadline are checked here) come back as Overloaded / Timeout.
     */
    ServeOutcome serve(const Request& request);

    /**
     * Pump the queue once: re-queue orphaned claims (first call),
     * admit up to max_queue requests in name order, shed the excess
     * with Overloaded responses, serve the admitted ones, and write
     * one response file per request. Returns requests answered
     * (including shed/invalid ones).
     */
    util::Expected<std::size_t> pollOnce();

    ServiceStats stats() const { return stats_; }

    /**
     * Maintenance sweep of the configured raw store (no-op without
     * Options.raw_store): removes `*.tmp.*` droppings and orphaned
     * generations left by killed writers, without taking the store
     * lock. Returns files removed; the total is surfaced in
     * metricsJson() as raw_store_files_swept.
     */
    std::size_t sweepRawStore();

    /** Service + store counters as one JSON object (stable keys, only
     *  ever added): the service analogue of RunMetrics::toJson(). */
    std::string metricsJson() const;

    /** Compose a response file body: sealed header line + payload. */
    static std::string formatResponse(const ServeOutcome& outcome);

  private:
    /** Write `results/<id>.resp` atomically. */
    void respond(const ServeOutcome& outcome);

    /** Move claimed-but-unanswered work files back into the queue. */
    void requeueOrphans();

    std::unique_ptr<ResultStore> store_;
    Options options_;
    ServiceStats stats_;
    std::uint64_t sim_calls_total_ = 0;
    // Lifetime raw-store accounting, summed over the renders this
    // service executed (zero without Options.raw_store).
    std::uint64_t raw_store_hits_total_ = 0;
    std::uint64_t raw_store_misses_total_ = 0;
    std::uint64_t raw_store_appends_total_ = 0;
    std::uint64_t raw_store_quarantined_total_ = 0;
    std::uint64_t raw_store_fp_rejected_total_ = 0;
    std::uint64_t raw_store_files_swept_ = 0;
    bool orphans_recovered_ = false;
    /** Table keys this service has served (dedup accounting). */
    std::set<std::string> served_keys_;
};

} // namespace tlp::service

#endif // TLP_SERVICE_SWEEP_SERVICE_HPP
