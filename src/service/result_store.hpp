/**
 * @file
 * ResultStore — the crash-safe persistent result store of the sweep
 * service.
 *
 * Two levels of persistence back the service:
 *
 *  1. Raw point records: one journal-format JSONL file per store
 *     generation (`points.g<G>.jsonl`, the PR-format of runner::Journal —
 *     CRC32 per record, %.17g doubles, fsync'd appends). The service
 *     points each request's SweepRunner at this file with resume on, so
 *     every completed simulation persists the moment it finishes and a
 *     repeated or crash-recovered request re-simulates only points that
 *     never reached the file.
 *
 *  2. Priced table artifacts: the rendered figure output, stored under
 *     `tables/<key>.table` as a CRC-protected artifact keyed by
 *     (figure, quantized scale) — deliberately NOT by job count, because
 *     the sweep layer guarantees byte-identical tables at any job count.
 *
 * Crash-safety protocol:
 *  - every multi-byte file write is tmp + fsync + rename
 *    (util::atomicWriteFile): readers never see a torn artifact;
 *  - `MANIFEST` (one CRC-protected JSON line, atomically replaced) is
 *    the single source of truth for the live points generation. A
 *    compaction writes the *next* generation file completely, then
 *    flips the manifest, then unlinks the old file — a kill anywhere in
 *    that sequence leaves either the old or the new generation live,
 *    never neither, and open() garbage-collects the orphan;
 *  - artifacts that fail their CRC on load (torn/corrupt/flipped bytes)
 *    are quarantined: renamed to `<name>.quarantined`, counted in
 *    StoreStats, and reported as a miss so the service recomputes and
 *    rewrites them — corruption degrades to recomputation, never to a
 *    wrong answer;
 *  - an advisory flock on `LOCK` (held for the store's lifetime, dies
 *    with the process) keeps two daemons from interleaving writes.
 *
 * Fault-injection hooks (StoreFaultInjector, TLPPM_STORE_FAULT) let
 * tests and the CI crash-recovery leg plant torn table writes, short
 * journal writes, corrupt reads, and kills inside the compaction window
 * deterministically.
 */

#ifndef TLP_SERVICE_RESULT_STORE_HPP
#define TLP_SERVICE_RESULT_STORE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "runner/journal.hpp"
#include "runner/run_cache.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace tlp::service {

/** Store-level counters (process lifetime of this handle). */
struct StoreStats
{
    std::uint64_t table_hits = 0;    ///< artifacts served from disk
    std::uint64_t table_misses = 0;  ///< absent artifacts (recompute)
    std::uint64_t quarantined = 0;   ///< artifacts/manifests quarantined
    std::uint64_t compactions = 0;   ///< generations rewritten
};

/** Outcome of one compaction pass. */
struct CompactionResult
{
    std::uint64_t generation = 0; ///< the new live generation
    std::size_t kept = 0;         ///< deduplicated records rewritten
    std::size_t dropped_corrupt = 0;      ///< CRC/parse casualties
    std::size_t dropped_inadmissible = 0; ///< non-finite records
};

/** Artifact key for a figure table: "fig3-s50000000" — the figure name
 *  plus the quantized problem scale (1e-9 grid, the RunKey grid). Jobs
 *  are deliberately excluded: tables are byte-identical at any job
 *  count. */
std::string tableKey(const std::string& figure, double scale);

/** The crash-safe persistent result store (see the file comment). */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store at directory @p dir: take the
     * advisory lock, recover the manifest, garbage-collect orphan
     * generations and stray tmp files, and create the artifact/queue
     * subdirectories. Fails with Overloaded when another process holds
     * the lock, IoError on filesystem trouble.
     */
    static util::Expected<std::unique_ptr<ResultStore>>
    open(const std::string& dir);

    ~ResultStore() = default;
    ResultStore(const ResultStore&) = delete;
    ResultStore& operator=(const ResultStore&) = delete;

    const std::string& dir() const { return dir_; }
    std::uint64_t generation() const { return generation_; }

    /** The live raw-point journal file (`points.g<G>.jsonl`) — hand
     *  this to SweepRunner::Options::journal_path with resume on. */
    std::string pointsPath() const;

    /** Queue/work/results directories of the request front-end. */
    std::string queueDir() const { return dir_ + "/queue"; }
    std::string workDir() const { return dir_ + "/work"; }
    std::string resultsDir() const { return dir_ + "/results"; }

    /**
     * The artifact stored under @p key, or nullopt (counted as a miss)
     * when absent — or when present but failing its CRC, in which case
     * the file is quarantined and the caller recomputes. Only returns
     * payloads whose integrity proved out.
     */
    util::Expected<std::optional<std::string>>
    loadTable(const std::string& key);

    /** Atomically persist @p payload under @p key (CRC-protected,
     *  tmp + fsync + rename). */
    util::Expected<bool> storeTable(const std::string& key,
                                    const std::string& payload);

    /** Replay the live points generation into @p cache (journal replay:
     *  CRC-checked, first record wins). */
    runner::ReplayStats replayPoints(runner::RunCache& cache) const;

    /**
     * Rewrite the points level as generation G+1: replay the live file,
     * write the deduplicated, key-sorted survivors as a fresh journal
     * file, flip the manifest, unlink the old generation. Corrupt and
     * inadmissible records are dropped for good (they were already
     * quarantined on every replay). Throws FaultKillError inside the
     * publish window when a kill-compaction fault is armed.
     */
    util::Expected<CompactionResult> compact();

    /** Counters for metrics/tracing (monotone over this handle). */
    StoreStats stats() const;

  private:
    ResultStore() = default;

    util::Expected<bool> recoverManifest();
    util::Expected<bool> writeManifest(std::uint64_t generation);
    /** Rename @p path aside as `<path>.quarantined` and count it. */
    void quarantine(const std::string& path, const char* why);

    std::string dir_;
    util::FileLock lock_;
    std::uint64_t generation_ = 0;
    std::atomic<std::uint64_t> table_hits_{0};
    std::atomic<std::uint64_t> table_misses_{0};
    std::atomic<std::uint64_t> quarantined_{0};
    std::atomic<std::uint64_t> compactions_{0};
};

} // namespace tlp::service

#endif // TLP_SERVICE_RESULT_STORE_HPP
