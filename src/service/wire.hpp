/**
 * @file
 * Wire format helpers of the service layer. The implementation lives
 * in util/sealed_json (the persistent raw-run store uses the same
 * sealed-line convention below the service layer); this header keeps
 * the service-namespace names that existing callers use.
 */

#ifndef TLP_SERVICE_WIRE_HPP
#define TLP_SERVICE_WIRE_HPP

#include "util/sealed_json.hpp"

namespace tlp::service {

using util::checkSealedJsonLine;
using util::escapeForWire;
using util::jsonFieldDouble;
using util::jsonFieldString;
using util::jsonFieldU64;
using util::sealJsonLine;

} // namespace tlp::service

#endif // TLP_SERVICE_WIRE_HPP
