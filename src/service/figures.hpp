/**
 * @file
 * Shared figure renderers — the single implementation of fig1..fig4.
 *
 * The figure tables used to live in the bench mains; the sweep service
 * needs to produce the very same tables, so the rendering moved here and
 * both front-ends call it: the batch harness streams the result to
 * stdout, the service stores it as a table artifact and returns it to
 * clients. Byte-identity between the two paths is therefore structural —
 * there is exactly one code path that formats a figure.
 *
 * A renderer writes the would-be stdout of the batch harness into
 * FigureRun::output (tables, banners, expected-shape trailer) and keeps
 * operator chatter (progress, containment ledger, cache stats) on
 * stderr, exactly where the batch harnesses put it.
 */

#ifndef TLP_SERVICE_FIGURES_HPP
#define TLP_SERVICE_FIGURES_HPP

#include <string>
#include <vector>

#include "runner/sweep_report.hpp"
#include "util/error.hpp"

namespace tlp::service {

/** Execution knobs of one figure rendering (the sweep CLI, minus the
 *  I/O flags the front-ends own: --trace and --metrics). */
struct FigureOptions
{
    int jobs = 0;    ///< worker count; <= 0 selects the default
    double scale = 1.0; ///< workload problem-size scale (fig3/fig4)
    /** Crash-safe completed-point journal (fig3/fig4; empty: off). */
    std::string journal_path;
    bool resume = false;       ///< replay journal_path before sweeping
    int journal_flush_every = 1;
    double point_timeout_s = 0.0; ///< per-point watchdog (0: off)
    bool progress = false;        ///< heartbeat lines to stderr
    bool cache_stats = false;     ///< counters line(s) to stderr
    /** Deterministic multi-process sharding (fig3/fig4): compute only
     *  the rows a stable hash assigns to shard_index of shards; other
     *  rows render as "-" placeholders. Merge the shard journals with
     *  tlppm_merge to reassemble the full tables byte-identically. */
    int shards = 1;
    int shard_index = 0;
    /** Persistent cross-process raw-run store directory (fig3/fig4;
     *  empty: off). Accepted but inert for the analytic figures. */
    std::string raw_store;
    /**
     * Comma-joined workload override of the simulated figures (empty:
     * the figure's defaults). fig3/fig4: suite names or trace:<path>
     * specs replacing the application list — how a trace replay of the
     * synthetic workloads reproduces its generator tables
     * byte-identically. fig5_multiprog: co-schedule specs
     * "NAME:cores+NAME:cores" (core count after the LAST ':', so trace
     * specs keep their own colon). A spec that fails to resolve (or a
     * trace that fails its CRC) is a typed error from renderFigure,
     * not a contained point failure.
     */
    std::string workloads;
};

/** One rendered figure: the batch harness's stdout, its containment
 *  ledger, and its --metrics JSON. */
struct FigureRun
{
    /** Byte-exact stdout of the batch harness (banner, tables,
     *  expected-shape trailer). */
    std::string output;
    /** Sweep ledger; default-constructed for the analytic figures
     *  (fig1/fig2), which run no sweep. */
    runner::SweepReport report;
    /** What --metrics would have written. */
    std::string metrics_json;
    /** True for the simulation figures (fig3/fig4). */
    bool simulated = false;
};

/** The renderable figure names, in order: fig1, fig2, fig3, fig4,
 *  fig5_multiprog. */
const std::vector<std::string>& figureNames();

/** True when @p name is a renderable figure. */
bool figureExists(const std::string& name);

/** True when @p name runs the cycle-level simulator (fig3, fig4,
 *  fig5_multiprog) — the figures whose points are worth journaling. */
bool isSimulatedFigure(const std::string& name);

/**
 * Render @p name ("fig1".."fig4", "fig5_multiprog") with @p options.
 * Unknown names are an InvalidArgument error; render failures inside a
 * sweep are contained per point (see SweepRunner) and reported in
 * FigureRun::report, not as an error here.
 */
util::Expected<FigureRun> renderFigure(const std::string& name,
                                       const FigureOptions& options);

} // namespace tlp::service

#endif // TLP_SERVICE_FIGURES_HPP
