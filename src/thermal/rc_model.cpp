#include "thermal/rc_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/logging.hpp"
#include "util/solver.hpp"
#include "util/trace.hpp"
#include "util/watchdog.hpp"

namespace tlp::thermal {

namespace {

/** Resolve ThermalSolverKind::Auto through TLPPM_THERMAL_SOLVER.
 *  Unset / "" / "sparse" -> Sparse (the default); "dense" -> Dense;
 *  anything else is a configuration error, named loudly. */
ThermalSolverKind
resolveSolverKind(ThermalSolverKind requested)
{
    if (requested != ThermalSolverKind::Auto)
        return requested;
    static const ThermalSolverKind from_env = [] {
        const char* env = std::getenv("TLPPM_THERMAL_SOLVER");
        if (env == nullptr || *env == '\0' ||
            std::strcmp(env, "sparse") == 0)
            return ThermalSolverKind::Sparse;
        if (std::strcmp(env, "dense") == 0)
            return ThermalSolverKind::Dense;
        util::fatal(util::strcatMsg(
            "TLPPM_THERMAL_SOLVER: unknown solver '", env,
            "' (expected 'sparse' or 'dense')"));
    }();
    return from_env;
}

} // namespace

const char*
thermalSolverName(ThermalSolverKind kind)
{
    switch (kind) {
    case ThermalSolverKind::Dense:
        return "dense-lu";
    case ThermalSolverKind::Sparse:
        return "sparse-cholesky";
    case ThermalSolverKind::Auto:
        return "auto";
    }
    return "unknown";
}

RCModel::RCModel(Floorplan floorplan, RCParams params,
                 ThermalSolverKind solver)
    : floorplan_(std::move(floorplan)), params_(params),
      solver_(resolveSolverKind(solver))
{
    if (floorplan_.size() == 0)
        util::fatal("RCModel: empty floorplan");
    buildConductance();
}

RCModel::RCModel(const RCModel& other)
    : floorplan_(other.floorplan_), params_(other.params_),
      solver_(other.solver_), conductance_(other.conductance_),
      lu_(other.lu_), cholesky_(other.cholesky_),
      solves_(other.solves_.load(std::memory_order_relaxed)),
      solve_passes_(other.solve_passes_.load(std::memory_order_relaxed)),
      max_batch_rhs_(
          other.max_batch_rhs_.load(std::memory_order_relaxed)),
      factorizations_(
          other.factorizations_.load(std::memory_order_relaxed))
{}

RCModel&
RCModel::operator=(const RCModel& other)
{
    if (this != &other) {
        floorplan_ = other.floorplan_;
        params_ = other.params_;
        solver_ = other.solver_;
        conductance_ = other.conductance_;
        lu_ = other.lu_;
        cholesky_ = other.cholesky_;
        solves_.store(other.solves_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
        solve_passes_.store(
            other.solve_passes_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        max_batch_rhs_.store(
            other.max_batch_rhs_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        factorizations_.store(
            other.factorizations_.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    return *this;
}

void
RCModel::setParams(RCParams params)
{
    params_ = params;
    buildConductance();
}

void
RCModel::buildConductance()
{
    // Node layout: one node per floorplan block, plus a final shared
    // heat-sink node (index n) that collects every block's vertical path
    // and connects to ambient through the convective resistance.
    const auto& blocks = floorplan_.blocks();
    const std::size_t n = blocks.size();
    conductance_ = util::Matrix(n + 1, n + 1);

    for (std::size_t i = 0; i < n; ++i) {
        // Vertical path die -> sink.
        const double g_v = blocks[i].area() / params_.r_vertical_specific;
        conductance_(i, i) += g_v;
        conductance_(n, n) += g_v;
        conductance_(i, n) -= g_v;
        conductance_(n, i) -= g_v;
    }
    // Sink -> ambient.
    conductance_(n, n) += 1.0 / params_.r_convection;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double edge = blocks[i].sharedEdge(blocks[j]);
            if (edge <= 0.0)
                continue;
            const double cx_i = blocks[i].x + 0.5 * blocks[i].w;
            const double cy_i = blocks[i].y + 0.5 * blocks[i].h;
            const double cx_j = blocks[j].x + 0.5 * blocks[j].w;
            const double cy_j = blocks[j].y + 0.5 * blocks[j].h;
            const double dist = std::hypot(cx_i - cx_j, cy_i - cy_j);
            if (dist <= 0.0)
                continue;
            const double g =
                params_.k_lateral * params_.t_lateral * edge / dist;
            conductance_(i, i) += g;
            conductance_(j, j) += g;
            conductance_(i, j) -= g;
            conductance_(j, i) -= g;
        }
    }
    // Factor once per conductance rebuild (HotSpot factors its RC network
    // per floorplan, not per solve); every solve is then a substitution
    // against the cached factor. The dense matrix is always assembled —
    // the transient solver consumes conductance() directly — but only
    // the selected backend pays its factorization.
    if (solver_ == ThermalSolverKind::Dense) {
        lu_ = util::LuFactorization(conductance_);
    } else {
        // Sparse assembly mirrors the dense accumulation order entry for
        // entry, so the compressed values are bitwise the dense ones.
        util::SparseSpdMatrix g(n + 1);
        for (std::size_t i = 0; i < n; ++i) {
            const double g_v =
                blocks[i].area() / params_.r_vertical_specific;
            g.add(i, i, g_v);
            g.add(n, n, g_v);
            g.add(i, n, -g_v);
        }
        g.add(n, n, 1.0 / params_.r_convection);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const double edge = blocks[i].sharedEdge(blocks[j]);
                if (edge <= 0.0)
                    continue;
                const double cx_i = blocks[i].x + 0.5 * blocks[i].w;
                const double cy_i = blocks[i].y + 0.5 * blocks[i].h;
                const double cx_j = blocks[j].x + 0.5 * blocks[j].w;
                const double cy_j = blocks[j].y + 0.5 * blocks[j].h;
                const double dist = std::hypot(cx_i - cx_j, cy_i - cy_j);
                if (dist <= 0.0)
                    continue;
                const double lateral =
                    params_.k_lateral * params_.t_lateral * edge / dist;
                g.add(i, i, lateral);
                g.add(j, j, lateral);
                g.add(i, j, -lateral);
            }
        }
        g.compress();
        // Value-only rebuilds (setParams during calibration) reuse the
        // cached ordering + symbolic pattern; only the numeric
        // refactorization below is paid per rebuild.
        cholesky_.factorize(g);
    }
    factorizations_.fetch_add(1, std::memory_order_relaxed);
}

ThermalSolution
RCModel::solve(const std::vector<double>& block_power) const
{
    ThermalSolution sol;
    SolveScratch scratch;
    solveInto(block_power, sol, scratch);
    return sol;
}

namespace {

/** Shared validation of a power map against the floorplan. */
void
validatePowerMap(const std::vector<double>& block_power,
                 std::size_t n_blocks)
{
    if (block_power.size() != n_blocks) {
        util::fatal(util::strcatMsg("RCModel::solve: power map size ",
                                    block_power.size(), " != block count ",
                                    n_blocks));
    }
    for (double p : block_power) {
        if (p < 0.0)
            util::fatal("RCModel::solve: negative block power");
    }
}

} // namespace

void
RCModel::fillSolution(const double* rise, std::size_t stride,
                      ThermalSolution& sol) const
{
    const auto& blocks = floorplan_.blocks();
    sol.block_temps_c.resize(blocks.size());
    double core_area = 0.0;
    double core_temp_area = 0.0;
    double max_t = params_.ambient_c;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const double t = params_.ambient_c + rise[i * stride];
        sol.block_temps_c[i] = t;
        max_t = std::max(max_t, t);
        if (blocks[i].core_id >= 0) {
            core_area += blocks[i].area();
            core_temp_area += t * blocks[i].area();
        }
    }
    sol.max_temp_c = max_t;
    sol.avg_core_temp_c =
        core_area > 0.0 ? core_temp_area / core_area : params_.ambient_c;
    sol.sink_temp_c = params_.ambient_c + rise[blocks.size() * stride];
}

void
RCModel::solveInto(const std::vector<double>& block_power,
                   ThermalSolution& sol, SolveScratch& scratch) const
{
    const std::size_t n = floorplan_.size();
    validatePowerMap(block_power, n);
    solves_.fetch_add(1, std::memory_order_relaxed);
    solve_passes_.fetch_add(1, std::memory_order_relaxed);

    // Solve G * T' = P for temperature rises above ambient; the sink node
    // has no direct power injection.
    std::vector<double>& rise = scratch.rhs;
    rise.assign(block_power.begin(), block_power.end());
    rise.push_back(0.0);
    if (solver_ == ThermalSolverKind::Dense)
        lu_.solveInPlace(rise);
    else
        cholesky_.solveInPlace(rise, scratch.work);

    fillSolution(rise.data(), 1, sol);
}

void
RCModel::solveManyInto(
    const std::vector<const std::vector<double>*>& powers,
    std::vector<ThermalSolution>& sols, BatchSolveScratch& scratch) const
{
    const std::size_t n = floorplan_.size();
    const std::size_t n_rhs = powers.size();
    if (n_rhs == 0) {
        sols.clear();
        return;
    }
    for (const std::vector<double>* power : powers)
        validatePowerMap(*power, n);
    solves_.fetch_add(n_rhs, std::memory_order_relaxed);
    solve_passes_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t seen = max_batch_rhs_.load(std::memory_order_relaxed);
    while (seen < n_rhs &&
           !max_batch_rhs_.compare_exchange_weak(
               seen, n_rhs, std::memory_order_relaxed))
        ;

    // Interleaved gather: node i of point p at rhs[i * n_rhs + p], sink
    // row zeroed. One substitution pass serves the whole batch.
    std::vector<double>& rhs = scratch.rhs;
    rhs.resize((n + 1) * n_rhs);
    for (std::size_t i = 0; i < n; ++i) {
        double* row = rhs.data() + i * n_rhs;
        for (std::size_t p = 0; p < n_rhs; ++p)
            row[p] = (*powers[p])[i];
    }
    for (std::size_t p = 0; p < n_rhs; ++p)
        rhs[n * n_rhs + p] = 0.0;

    if (solver_ == ThermalSolverKind::Dense)
        lu_.solveInterleavedInPlace(rhs.data(), n_rhs, scratch.work);
    else
        cholesky_.solveInterleavedInPlace(rhs.data(), n_rhs,
                                          scratch.work);

    sols.resize(n_rhs);
    for (std::size_t p = 0; p < n_rhs; ++p)
        fillSolution(rhs.data() + p, n_rhs, sols[p]);
}

double
calibrateVertical(RCModel& model, const std::vector<double>& block_power,
                  double target_avg_core_temp_c)
{
    return calibrateVertical(
        model, block_power,
        [](const ThermalSolution& sol) { return sol.avg_core_temp_c; },
        target_avg_core_temp_c);
}

double
calibrateVertical(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target)
{
    RCParams params = model.params();
    if (target <= params.ambient_c) {
        util::fatal(util::strcatMsg("calibrateVertical: target ", target,
                                    " C not above ambient ",
                                    params.ambient_c, " C"));
    }

    // Any temperature metric is monotone increasing in the vertical
    // resistance, so bisect on log10(r).
    const auto residual = [&](double log_r) {
        RCParams p = params;
        p.r_vertical_specific = std::pow(10.0, log_r);
        model.setParams(p);
        return metric(model.solve(block_power)) - target;
    };
    const auto root = util::bisect(residual, -8.0, -2.0, 1e-6);
    params.r_vertical_specific = std::pow(10.0, root.x);
    model.setParams(params);
    return params.r_vertical_specific;
}

void
calibratePackage(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target, double sink_fraction)
{
    if (sink_fraction < 0.0 || sink_fraction >= 1.0)
        util::fatal("calibratePackage: sink_fraction must be in [0, 1)");

    double total_power = 0.0;
    for (double p : block_power)
        total_power += p;
    if (total_power <= 0.0)
        util::fatal("calibratePackage: reference power map is zero");

    RCParams params = model.params();
    params.r_convection = sink_fraction *
        (target - params.ambient_c) / total_power;
    if (params.r_convection <= 0.0)
        util::fatal("calibratePackage: target below ambient");
    model.setParams(params);

    calibrateVertical(model, block_power, metric, target);
}

CoupledResult
solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c, int max_iter, double damping)
{
    CoupledScratch scratch;
    return solveCoupled(model, power_of_temp, scratch, tol_c, max_iter,
                        damping);
}

CoupledResult
solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    CoupledScratch& scratch, double tol_c, int max_iter, double damping)
{
    TLPPM_TRACE_SCOPE("thermal", "solveCoupled damping=", damping,
                      " max_iter=", max_iter);
    const std::size_t n = model.floorplan().size();
    CoupledResult result;

    std::vector<double>& temps = scratch.temps;
    std::vector<double>& power = scratch.power;
    ThermalSolution& sol = scratch.sol;
    temps.assign(n, model.params().ambient_c);
    power.assign(n, 0.0);

    for (int it = 0; it < max_iter; ++it) {
        util::checkPointDeadline("solveCoupled");
        std::vector<double> new_power = power_of_temp(temps);
        if (new_power.size() != n)
            util::fatal("solveCoupled: power map size mismatch");
        if (it == 0) {
            power = std::move(new_power);
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                power[i] =
                    (1.0 - damping) * power[i] + damping * new_power[i];
            }
        }

        model.solveInto(power, sol, scratch.solve);
        // Leakage-temperature feedback can genuinely diverge (thermal
        // runaway); clamp and flag instead of iterating to infinity.
        for (double& t : sol.block_temps_c) {
            if (t > kRunawayTempC) {
                t = kRunawayTempC;
                result.runaway = true;
            }
        }
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            max_delta = std::max(
                max_delta, std::fabs(sol.block_temps_c[i] - temps[i]));
        }
        temps = sol.block_temps_c;
        result.iterations = it + 1;
        result.residual_c = max_delta;
        if (max_delta < tol_c) {
            result.converged = true;
            break;
        }
    }

    result.thermal = sol;
    result.block_power = power;
    result.total_power = 0.0;
    for (double p : power)
        result.total_power += p;
    return result;
}

CoupledResult
solveCoupledAccelerated(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c, int max_iter)
{
    TLPPM_TRACE_SCOPE("thermal", "solveCoupledAccelerated max_iter=",
                      max_iter);
    const std::size_t n = model.floorplan().size();
    const double ambient = model.params().ambient_c;
    CoupledResult result;

    std::vector<double> temps(n, ambient);
    std::vector<double> power(n, 0.0);
    ThermalSolution sol;
    SolveScratch scratch;
    // Anderson(1) history: previous iterate's fixed-point image and
    // residual.
    std::vector<double> g_prev, r_prev;
    std::vector<double> r(n, 0.0);

    for (int it = 0; it < max_iter; ++it) {
        util::checkPointDeadline("solveCoupledAccelerated");
        std::vector<double> new_power = power_of_temp(temps);
        if (new_power.size() != n)
            util::fatal("solveCoupledAccelerated: power map size mismatch");
        power = std::move(new_power);

        model.solveInto(power, sol, scratch);
        for (double& t : sol.block_temps_c) {
            if (t > kRunawayTempC) {
                t = kRunawayTempC;
                result.runaway = true;
            }
        }
        const std::vector<double>& g = sol.block_temps_c;
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            r[i] = g[i] - temps[i];
            max_delta = std::max(max_delta, std::fabs(r[i]));
        }
        result.iterations = it + 1;
        result.residual_c = max_delta;
        if (max_delta < tol_c) {
            temps = g;
            result.converged = true;
            break;
        }

        // Secant (Anderson m=1) extrapolation of the next iterate:
        //   gamma = <r - r_prev, r> / ||r - r_prev||^2
        //   t_next = g - gamma * (g - g_prev)
        // Safeguards fall back to the plain step t_next = g: no history
        // yet, a degenerate denominator, or an extrapolation that leaves
        // the physically meaningful band (the leakage fit is only valid
        // between ambient and the runaway cap).
        bool accelerated = false;
        if (!g_prev.empty() && !result.runaway) {
            double dr_dot_dr = 0.0;
            double dr_dot_r = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double dr = r[i] - r_prev[i];
                dr_dot_dr += dr * dr;
                dr_dot_r += dr * r[i];
            }
            if (dr_dot_dr > 0.0 && std::isfinite(dr_dot_dr) &&
                std::isfinite(dr_dot_r)) {
                const double gamma = dr_dot_r / dr_dot_dr;
                accelerated = true;
                for (std::size_t i = 0; i < n; ++i) {
                    const double t =
                        g[i] - gamma * (g[i] - g_prev[i]);
                    if (!std::isfinite(t) || t < ambient ||
                        t > kRunawayTempC) {
                        accelerated = false;
                        break;
                    }
                    temps[i] = t;
                }
            }
        }
        g_prev = g;
        r_prev = r;
        if (!accelerated)
            temps = g;
    }

    result.thermal = sol;
    result.block_power = power;
    result.total_power = 0.0;
    for (double p : power)
        result.total_power += p;
    return result;
}

std::vector<CoupledResult>
solveCoupledBatch(const RCModel& model, std::size_t n_points,
                  const BatchPowerFn& fn, CoupledBatchScratch& scratch,
                  double tol_c, int max_iter, double damping)
{
    TLPPM_TRACE_SCOPE("thermal", "solveCoupledBatch points=", n_points,
                      " damping=", damping, " max_iter=", max_iter);
    const std::size_t n = model.floorplan().size();
    const double ambient = model.params().ambient_c;
    std::vector<CoupledResult> results(n_points);
    if (n_points == 0)
        return results;

    // Per-point state, exactly the scalar iteration's: temperatures at
    // ambient, powers at zero.
    if (scratch.temps.size() < n_points) {
        scratch.temps.resize(n_points);
        scratch.power.resize(n_points);
    }
    scratch.sols.resize(n_points);
    scratch.active.clear();
    for (std::size_t p = 0; p < n_points; ++p) {
        scratch.temps[p].assign(n, ambient);
        scratch.power[p].assign(n, 0.0);
        scratch.active.push_back(p);
    }
    std::vector<double>& new_power = scratch.new_power;

    for (int it = 0; it < max_iter && !scratch.active.empty(); ++it) {
        util::checkPointDeadline("solveCoupledBatch");
        // Power maps of the still-iterating points; the blend is the
        // scalar solveCoupled()'s, per point.
        for (std::size_t p : scratch.active) {
            new_power.assign(n, 0.0);
            fn(p, scratch.temps[p], new_power);
            if (new_power.size() != n)
                util::fatal("solveCoupledBatch: power map size mismatch");
            if (it == 0) {
                scratch.power[p] = new_power;
            } else {
                std::vector<double>& power = scratch.power[p];
                for (std::size_t i = 0; i < n; ++i) {
                    power[i] = (1.0 - damping) * power[i] +
                        damping * new_power[i];
                }
            }
        }

        // One multi-RHS substitution serves every active point.
        scratch.batch_powers.clear();
        for (std::size_t p : scratch.active)
            scratch.batch_powers.push_back(&scratch.power[p]);
        model.solveManyInto(scratch.batch_powers, scratch.batch_sols,
                            scratch.solve);

        std::size_t kept = 0;
        for (std::size_t idx = 0; idx < scratch.active.size(); ++idx) {
            const std::size_t p = scratch.active[idx];
            ThermalSolution& sol = scratch.sols[p];
            sol = scratch.batch_sols[idx];
            CoupledResult& result = results[p];
            for (double& t : sol.block_temps_c) {
                if (t > kRunawayTempC) {
                    t = kRunawayTempC;
                    result.runaway = true;
                }
            }
            double max_delta = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                max_delta = std::max(
                    max_delta,
                    std::fabs(sol.block_temps_c[i] - scratch.temps[p][i]));
            }
            scratch.temps[p] = sol.block_temps_c;
            result.iterations = it + 1;
            result.residual_c = max_delta;
            if (max_delta < tol_c)
                result.converged = true;
            else
                scratch.active[kept++] = p;
        }
        scratch.active.resize(kept);
    }

    for (std::size_t p = 0; p < n_points; ++p) {
        CoupledResult& result = results[p];
        result.thermal = scratch.sols[p];
        result.block_power = scratch.power[p];
        result.total_power = 0.0;
        for (double w : result.block_power)
            result.total_power += w;
    }
    return results;
}

} // namespace tlp::thermal
