#include "thermal/rc_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/solver.hpp"
#include "util/watchdog.hpp"

namespace tlp::thermal {

RCModel::RCModel(Floorplan floorplan, RCParams params)
    : floorplan_(std::move(floorplan)), params_(params)
{
    if (floorplan_.size() == 0)
        util::fatal("RCModel: empty floorplan");
    buildConductance();
}

void
RCModel::setParams(RCParams params)
{
    params_ = params;
    buildConductance();
}

void
RCModel::buildConductance()
{
    // Node layout: one node per floorplan block, plus a final shared
    // heat-sink node (index n) that collects every block's vertical path
    // and connects to ambient through the convective resistance.
    const auto& blocks = floorplan_.blocks();
    const std::size_t n = blocks.size();
    conductance_ = util::Matrix(n + 1, n + 1);

    for (std::size_t i = 0; i < n; ++i) {
        // Vertical path die -> sink.
        const double g_v = blocks[i].area() / params_.r_vertical_specific;
        conductance_(i, i) += g_v;
        conductance_(n, n) += g_v;
        conductance_(i, n) -= g_v;
        conductance_(n, i) -= g_v;
    }
    // Sink -> ambient.
    conductance_(n, n) += 1.0 / params_.r_convection;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double edge = blocks[i].sharedEdge(blocks[j]);
            if (edge <= 0.0)
                continue;
            const double cx_i = blocks[i].x + 0.5 * blocks[i].w;
            const double cy_i = blocks[i].y + 0.5 * blocks[i].h;
            const double cx_j = blocks[j].x + 0.5 * blocks[j].w;
            const double cy_j = blocks[j].y + 0.5 * blocks[j].h;
            const double dist = std::hypot(cx_i - cx_j, cy_i - cy_j);
            if (dist <= 0.0)
                continue;
            const double g =
                params_.k_lateral * params_.t_lateral * edge / dist;
            conductance_(i, i) += g;
            conductance_(j, j) += g;
            conductance_(i, j) -= g;
            conductance_(j, i) -= g;
        }
    }
}

ThermalSolution
RCModel::solve(const std::vector<double>& block_power) const
{
    const auto& blocks = floorplan_.blocks();
    if (block_power.size() != blocks.size()) {
        util::fatal(util::strcatMsg("RCModel::solve: power map size ",
                                    block_power.size(), " != block count ",
                                    blocks.size()));
    }
    for (double p : block_power) {
        if (p < 0.0)
            util::fatal("RCModel::solve: negative block power");
    }

    // Solve G * T' = P for temperature rises above ambient; the sink node
    // has no direct power injection.
    std::vector<double> rhs = block_power;
    rhs.push_back(0.0);
    std::vector<double> rise = util::solveDense(conductance_, rhs);

    ThermalSolution sol;
    sol.block_temps_c.resize(blocks.size());
    double core_area = 0.0;
    double core_temp_area = 0.0;
    double max_t = params_.ambient_c;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const double t = params_.ambient_c + rise[i];
        sol.block_temps_c[i] = t;
        max_t = std::max(max_t, t);
        if (blocks[i].core_id >= 0) {
            core_area += blocks[i].area();
            core_temp_area += t * blocks[i].area();
        }
    }
    sol.max_temp_c = max_t;
    sol.avg_core_temp_c =
        core_area > 0.0 ? core_temp_area / core_area : params_.ambient_c;
    sol.sink_temp_c = params_.ambient_c + rise[blocks.size()];
    return sol;
}

double
calibrateVertical(RCModel& model, const std::vector<double>& block_power,
                  double target_avg_core_temp_c)
{
    return calibrateVertical(
        model, block_power,
        [](const ThermalSolution& sol) { return sol.avg_core_temp_c; },
        target_avg_core_temp_c);
}

double
calibrateVertical(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target)
{
    RCParams params = model.params();
    if (target <= params.ambient_c) {
        util::fatal(util::strcatMsg("calibrateVertical: target ", target,
                                    " C not above ambient ",
                                    params.ambient_c, " C"));
    }

    // Any temperature metric is monotone increasing in the vertical
    // resistance, so bisect on log10(r).
    const auto residual = [&](double log_r) {
        RCParams p = params;
        p.r_vertical_specific = std::pow(10.0, log_r);
        model.setParams(p);
        return metric(model.solve(block_power)) - target;
    };
    const auto root = util::bisect(residual, -8.0, -2.0, 1e-6);
    params.r_vertical_specific = std::pow(10.0, root.x);
    model.setParams(params);
    return params.r_vertical_specific;
}

void
calibratePackage(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target, double sink_fraction)
{
    if (sink_fraction < 0.0 || sink_fraction >= 1.0)
        util::fatal("calibratePackage: sink_fraction must be in [0, 1)");

    double total_power = 0.0;
    for (double p : block_power)
        total_power += p;
    if (total_power <= 0.0)
        util::fatal("calibratePackage: reference power map is zero");

    RCParams params = model.params();
    params.r_convection = sink_fraction *
        (target - params.ambient_c) / total_power;
    if (params.r_convection <= 0.0)
        util::fatal("calibratePackage: target below ambient");
    model.setParams(params);

    calibrateVertical(model, block_power, metric, target);
}

CoupledResult
solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c, int max_iter, double damping)
{
    const std::size_t n = model.floorplan().size();
    CoupledResult result;

    std::vector<double> temps(n, model.params().ambient_c);
    std::vector<double> power(n, 0.0);

    for (int it = 0; it < max_iter; ++it) {
        util::checkPointDeadline("solveCoupled");
        std::vector<double> new_power = power_of_temp(temps);
        if (new_power.size() != n)
            util::fatal("solveCoupled: power map size mismatch");
        if (it == 0) {
            power = std::move(new_power);
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                power[i] =
                    (1.0 - damping) * power[i] + damping * new_power[i];
            }
        }

        ThermalSolution sol = model.solve(power);
        // Leakage-temperature feedback can genuinely diverge (thermal
        // runaway); clamp and flag instead of iterating to infinity.
        for (double& t : sol.block_temps_c) {
            if (t > kRunawayTempC) {
                t = kRunawayTempC;
                result.runaway = true;
            }
        }
        double max_delta = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            max_delta = std::max(
                max_delta, std::fabs(sol.block_temps_c[i] - temps[i]));
        }
        temps = sol.block_temps_c;
        result.thermal = sol;
        result.iterations = it + 1;
        result.residual_c = max_delta;
        if (max_delta < tol_c) {
            result.converged = true;
            break;
        }
    }

    result.block_power = power;
    result.total_power = 0.0;
    for (double p : power)
        result.total_power += p;
    return result;
}

} // namespace tlp::thermal
