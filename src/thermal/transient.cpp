#include "thermal/transient.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::thermal {

TransientSolver::TransientSolver(const RCModel& model,
                                 TransientParams params)
    : model_(&model), params_(params)
{
    const auto& blocks = model.floorplan().blocks();
    capacity_.reserve(blocks.size() + 1);
    for (const Block& b : blocks) {
        capacity_.push_back(b.area() * params_.die_thickness *
                            params_.c_volumetric);
    }
    capacity_.push_back(params_.sink_capacity);
    for (double c : capacity_) {
        if (c <= 0.0)
            util::fatal("TransientSolver: non-positive heat capacity");
    }
}

double
TransientSolver::sinkTimeConstant() const
{
    return params_.sink_capacity * model_->params().r_convection;
}

TransientResult
TransientSolver::simulate(
    const std::vector<double>& initial_temps_c,
    const std::function<std::vector<double>(double)>& power_of_time,
    double duration_s, double dt_s, int samples) const
{
    const auto& blocks = model_->floorplan().blocks();
    const std::size_t n = blocks.size();
    const std::size_t nodes = n + 1;
    if (initial_temps_c.size() != n)
        util::fatal("TransientSolver: initial temperature map size");
    if (duration_s <= 0.0 || dt_s <= 0.0 || samples < 1)
        util::fatal("TransientSolver: bad integration parameters");

    const double ambient = model_->params().ambient_c;
    const util::Matrix& g = model_->conductance();

    // State: temperature rises over ambient, blocks then sink. Seed the
    // sink at the mean block rise (it settles quickly relative to its
    // own time constant anyway).
    std::vector<double> rise(nodes, 0.0);
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        rise[i] = initial_temps_c[i] - ambient;
        mean += rise[i];
    }
    rise[n] = n > 0 ? mean / static_cast<double>(n) : 0.0;

    // dT/dt = C^-1 (P - G T); P has no sink entry.
    const auto derivative = [&](const std::vector<double>& state,
                                const std::vector<double>& power) {
        std::vector<double> d(nodes, 0.0);
        for (std::size_t r = 0; r < nodes; ++r) {
            double flow = r < n ? power[r] : 0.0;
            for (std::size_t c = 0; c < nodes; ++c)
                flow -= g(r, c) * state[c];
            d[r] = flow / capacity_[r];
        }
        return d;
    };

    TransientResult out;
    out.samples.reserve(samples + 1);
    const double sample_interval = duration_s / samples;
    double next_sample = 0.0;

    const auto record = [&](double t) {
        TransientSample s;
        s.time_s = t;
        double area = 0.0, temp_area = 0.0, max_t = ambient;
        for (std::size_t i = 0; i < n; ++i) {
            const double temp = ambient + rise[i];
            max_t = std::max(max_t, temp);
            if (blocks[i].core_id >= 0) {
                area += blocks[i].area();
                temp_area += temp * blocks[i].area();
            }
        }
        s.avg_core_temp_c = area > 0.0 ? temp_area / area : ambient;
        s.max_temp_c = max_t;
        s.sink_temp_c = ambient + rise[n];
        out.samples.push_back(s);
    };

    const std::uint64_t steps =
        static_cast<std::uint64_t>(std::ceil(duration_s / dt_s));
    std::vector<double> k1, k2, k3, k4, tmp(nodes);
    for (std::uint64_t step = 0; step <= steps; ++step) {
        const double t = std::min(step * dt_s, duration_s);
        if (t >= next_sample - 1e-12) {
            record(t);
            next_sample += sample_interval;
        }
        if (step == steps)
            break;

        const double h = std::min(dt_s, duration_s - t);
        const std::vector<double> p1 = power_of_time(t);
        const std::vector<double> p2 = power_of_time(t + 0.5 * h);
        const std::vector<double> p3 = power_of_time(t + h);
        if (p1.size() != n)
            util::fatal("TransientSolver: power map size");

        k1 = derivative(rise, p1);
        for (std::size_t i = 0; i < nodes; ++i)
            tmp[i] = rise[i] + 0.5 * h * k1[i];
        k2 = derivative(tmp, p2);
        for (std::size_t i = 0; i < nodes; ++i)
            tmp[i] = rise[i] + 0.5 * h * k2[i];
        k3 = derivative(tmp, p2);
        for (std::size_t i = 0; i < nodes; ++i)
            tmp[i] = rise[i] + h * k3[i];
        k4 = derivative(tmp, p3);
        for (std::size_t i = 0; i < nodes; ++i) {
            rise[i] +=
                h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }

    out.final_temps_c.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out.final_temps_c[i] = ambient + rise[i];
    return out;
}

} // namespace tlp::thermal
