/**
 * @file
 * Chip floorplans for the compact thermal model.
 *
 * The paper estimates die temperature with HotSpot on its default Alpha
 * EV6 floorplan (analytical study, §2.2) and on the 16-way CMP (experimental
 * study, §3.3). We reproduce the two floorplan families here:
 *
 *  - ev6BlockFractions(): the EV6 functional blocks with HotSpot-like
 *    relative areas, laid out per core as a brick-wall of rows;
 *  - makeTiledCmp(): a CMP die with cores tiled in a grid and the shared L2
 *    occupying the remaining strip, with optional per-core EV6 sub-blocks.
 *
 * Geometry is only consumed through block areas and shared-edge lengths
 * (for the lateral thermal conductances), so a brick-wall packing is an
 * adequate stand-in for the exact EV6 layout.
 */

#ifndef TLP_THERMAL_FLOORPLAN_HPP
#define TLP_THERMAL_FLOORPLAN_HPP

#include <string>
#include <vector>

namespace tlp::thermal {

/** An axis-aligned rectangular floorplan block. */
struct Block
{
    std::string name;  ///< unique name, e.g. "core3.dcache" or "L2"
    double x = 0.0;    ///< left edge [m]
    double y = 0.0;    ///< bottom edge [m]
    double w = 0.0;    ///< width [m]
    double h = 0.0;    ///< height [m]
    int core_id = -1;  ///< owning core, or -1 for chip-level blocks (L2)

    double area() const { return w * h; }

    /** Length of the shared boundary with @p other [m]; zero when the
     *  blocks do not abut. */
    double sharedEdge(const Block& other) const;
};

/** A named functional unit and its share of the core area. */
struct UnitFraction
{
    std::string name;
    double fraction; ///< share of the core area, all fractions sum to 1
};

/** HotSpot-flavoured EV6 functional blocks and area fractions. */
const std::vector<UnitFraction>& ev6BlockFractions();

/** A complete chip floorplan. */
class Floorplan
{
  public:
    Floorplan() = default;

    /** Append a block; names must be unique (fatal otherwise). */
    void addBlock(Block block);

    const std::vector<Block>& blocks() const { return blocks_; }
    std::size_t size() const { return blocks_.size(); }

    /** Index of the block named @p name; fatal when absent. */
    std::size_t indexOf(const std::string& name) const;

    /** True when a block of this name exists. */
    bool has(const std::string& name) const;

    /** Indices of all blocks belonging to @p core_id. */
    std::vector<std::size_t> blocksOfCore(int core_id) const;

    /** Total area of all blocks [m^2]. */
    double totalArea() const;

    /** Total area of core blocks only (core_id >= 0) [m^2]. */
    double coreArea() const;

  private:
    std::vector<Block> blocks_;
};

/**
 * Build a CMP floorplan: @p total_cores cores tiled in a near-square grid
 * over the top of the die, and one L2 block filling a strip below them.
 *
 * @param total_cores     number of core tiles
 * @param core_area_m2    area of one core tile [m^2]
 * @param l2_area_m2      area of the shared L2 [m^2]
 * @param per_core_blocks when true each core contains the EV6 sub-blocks;
 *                        when false each core is a single tile (the
 *                        analytical study's configuration)
 */
Floorplan makeTiledCmp(int total_cores, double core_area_m2,
                       double l2_area_m2, bool per_core_blocks);

} // namespace tlp::thermal

#endif // TLP_THERMAL_FLOORPLAN_HPP
