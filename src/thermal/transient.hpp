/**
 * @file
 * Transient thermal simulation (extension beyond the paper's steady-state
 * analysis; HotSpot provides the same capability).
 *
 * The RC network of RCModel gains per-node heat capacities:
 *
 *     C dT'/dt = P(t) - G T'
 *
 * with T' the temperature rises over ambient, G the steady-state
 * conductance matrix, and C diagonal (silicon volumetric heat capacity
 * for die blocks, a large lumped capacity for the heat-sink node). The
 * system is integrated with classic RK4 at a caller-chosen step.
 *
 * Useful for studying how quickly the die responds when the DVFS
 * operating point changes — e.g. how many milliseconds after switching
 * from one hot core to sixteen scaled-down cores the temperature (and
 * with it the leakage) actually settles.
 */

#ifndef TLP_THERMAL_TRANSIENT_HPP
#define TLP_THERMAL_TRANSIENT_HPP

#include <functional>
#include <vector>

#include "thermal/rc_model.hpp"

namespace tlp::thermal {

/** Material constants for the transient extension. */
struct TransientParams
{
    /** Volumetric heat capacity of silicon [J/(m^3 K)]. */
    double c_volumetric = 1.63e6;
    /** Effective thermal thickness of the die blocks [m]. */
    double die_thickness = 0.5e-3;
    /** Lumped heat capacity of spreader + sink [J/K]. */
    double sink_capacity = 150.0;
};

/** A sampled trajectory point. */
struct TransientSample
{
    double time_s = 0.0;
    double avg_core_temp_c = 0.0;
    double max_temp_c = 0.0;
    double sink_temp_c = 0.0;
};

/** Result of a transient integration. */
struct TransientResult
{
    std::vector<TransientSample> samples; ///< one per sample interval
    std::vector<double> final_temps_c;    ///< per block, at the end
};

/** RK4 integrator over an RCModel's network. */
class TransientSolver
{
  public:
    /**
     * @param model  steady-state model supplying G and the floorplan
     * @param params heat-capacity constants
     */
    TransientSolver(const RCModel& model, TransientParams params = {});

    /**
     * Integrate from @p initial_temps_c for @p duration_s.
     *
     * @param initial_temps_c per-block start temperatures (block count
     *        entries; the sink starts at their conductance-weighted
     *        equilibrium estimate)
     * @param power_of_time   block power map as a function of time [W]
     * @param duration_s      simulated time span
     * @param dt_s            RK4 step (must resolve the smallest time
     *        constant; ~1e-5 s is safe for EV6-sized blocks)
     * @param samples         number of trajectory samples to record
     */
    TransientResult simulate(
        const std::vector<double>& initial_temps_c,
        const std::function<std::vector<double>(double)>& power_of_time,
        double duration_s, double dt_s = 1e-5, int samples = 100) const;

    /** Steady-state temperatures for @p power, for convergence checks. */
    ThermalSolution steadyState(const std::vector<double>& power) const
    {
        return model_->solve(power);
    }

    /** Dominant (slowest) time-constant estimate: sink capacity over
     *  convective conductance [s]. */
    double sinkTimeConstant() const;

    const TransientParams& params() const { return params_; }

  private:
    const RCModel* model_;
    TransientParams params_;
    std::vector<double> capacity_; ///< per node, including the sink
};

} // namespace tlp::thermal

#endif // TLP_THERMAL_TRANSIENT_HPP
