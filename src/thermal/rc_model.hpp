/**
 * @file
 * Steady-state compact thermal RC network (the HotSpot stand-in).
 *
 * Each floorplan block is one thermal node. Heat leaves a node two ways:
 *
 *  - vertically through die, spreader, and sink to ambient, with a
 *    conductance proportional to block area
 *    (G_v = area / r_vertical_specific);
 *  - laterally to abutting blocks through silicon + spreader, with a
 *    conductance proportional to the shared edge length
 *    (G_l = k_lateral * t_eff * edge / center_distance).
 *
 * Steady state solves the linear system
 *    sum_j G_l,ij (T_i - T_j) + G_v,i (T_i - T_amb) = P_i
 * for the block temperatures. The coupling with temperature-dependent
 * leakage power is handled by solveCoupled(), a damped fixed-point
 * iteration (power -> temperature -> power ...), exactly the loop the paper
 * runs between its power model and HotSpot.
 */

#ifndef TLP_THERMAL_RC_MODEL_HPP
#define TLP_THERMAL_RC_MODEL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "thermal/floorplan.hpp"
#include "util/linalg.hpp"

namespace tlp::thermal {

/** Package/material constants of the RC network. */
struct RCParams
{
    double ambient_c = 45.0;  ///< in-box ambient air temperature [deg C]
    /** Area-specific vertical thermal resistance die->heat sink
     *  [K*m^2/W]; calibrate with calibrateVertical(). */
    double r_vertical_specific = 1.25e-5;
    /** Effective lateral conductivity (silicon + spreader) [W/(m*K)]. */
    double k_lateral = 400.0;
    /** Effective lateral conduction thickness [m]. */
    double t_lateral = 2.0e-3;
    /** Convective resistance of the shared heat sink to ambient [K/W].
     *  This single shared node is what makes average die temperature track
     *  *total* chip power (as in HotSpot): spreading a fixed power budget
     *  over more cores lowers local hot spots but not the sink rise. */
    double r_convection = 0.45;
};

/** Per-run result of a steady-state solve. */
struct ThermalSolution
{
    std::vector<double> block_temps_c; ///< one temperature per block
    double avg_core_temp_c = 0.0; ///< area-weighted over core blocks only
    double max_temp_c = 0.0;      ///< hottest block
    double sink_temp_c = 0.0;     ///< shared heat-sink node temperature
};

/** Reusable scratch buffers for the steady-state solve hot path. */
struct SolveScratch
{
    std::vector<double> rhs; ///< (blocks + sink) right-hand side
};

/** Steady-state solver bound to one floorplan. */
class RCModel
{
  public:
    RCModel(Floorplan floorplan, RCParams params);

    /** Copies share no counters: each copy starts its solve/factorization
     *  accounting at the values of the source at copy time. */
    RCModel(const RCModel& other);
    RCModel& operator=(const RCModel& other);

    /**
     * Solve for block temperatures given per-block power [W].
     *
     * @param block_power one entry per floorplan block, in block order
     */
    ThermalSolution solve(const std::vector<double>& block_power) const;

    /**
     * Allocation-free solve for the coupled fixed point's inner loop:
     * reuses @p scratch across calls and overwrites @p sol in place.
     * Bit-identical to solve().
     */
    void solveInto(const std::vector<double>& block_power,
                   ThermalSolution& sol, SolveScratch& scratch) const;

    const Floorplan& floorplan() const { return floorplan_; }
    const RCParams& params() const { return params_; }

    /** Replace the package parameters (used by calibration). Rebuilds the
     *  conductance matrix and re-factorizes it. */
    void setParams(RCParams params);

    /** The assembled conductance matrix over (blocks..., sink) nodes;
     *  used by the transient solver. */
    const util::Matrix& conductance() const { return conductance_; }

    /** Steady-state solves performed (thread-safe, relaxed). */
    std::uint64_t solveCount() const
    {
        return solves_.load(std::memory_order_relaxed);
    }

    /** LU factorizations performed: one per floorplan/params change, not
     *  one per solve — the HotSpot-style factor-once optimization this
     *  counter makes auditable. */
    std::uint64_t factorizationCount() const
    {
        return factorizations_.load(std::memory_order_relaxed);
    }

  private:
    void buildConductance();

    Floorplan floorplan_;
    RCParams params_;
    util::Matrix conductance_; ///< G of the linear system G T' = P
    /** Cached LU of conductance_: rebuilt only by buildConductance()
     *  (construction and setParams), so every solve is an O(n^2)
     *  back-substitution instead of an O(n^3) elimination. */
    util::LuFactorization lu_;
    /** Relaxed atomics: solve() runs concurrently on shared const models
     *  (the analytic figure benches fan one model across a pool). */
    mutable std::atomic<std::uint64_t> solves_{0};
    std::atomic<std::uint64_t> factorizations_{0};
};

/**
 * Calibrate RCParams::r_vertical_specific so that the given power map
 * produces the target area-weighted average core temperature (the paper
 * anchors the single-core full-throttle configuration at T1 = 100 C).
 *
 * @return the calibrated parameter value (also set in @p model)
 */
double calibrateVertical(RCModel& model,
                         const std::vector<double>& block_power,
                         double target_avg_core_temp_c);

/**
 * Generalized calibration: adjust r_vertical_specific until
 * @p metric(solution) reaches @p target. The metric must be monotone
 * increasing in the vertical resistance (any temperature average is).
 */
double calibrateVertical(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target);

/**
 * Full package calibration: split the temperature rise of the reference
 * power map between the shared heat sink and the local die paths.
 *
 * Sets r_convection so the sink carries @p sink_fraction of
 * (target - ambient) at the reference map's total power, then calibrates
 * r_vertical_specific so @p metric hits @p target exactly.
 *
 * @param sink_fraction share of the rise attributed to the shared sink;
 *        higher values make average die temperature track total chip power
 *        more strongly (HotSpot-like behaviour).
 */
void calibratePackage(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target, double sink_fraction = 0.6);

/** Result of the coupled power/temperature fixed point. */
struct CoupledResult
{
    ThermalSolution thermal;
    std::vector<double> block_power; ///< converged power map [W]
    double total_power = 0.0;        ///< sum of block powers [W]
    int iterations = 0;
    bool converged = false;
    /** Last max block-temperature change [K]; the convergence residual a
     *  non-converged solve reports upward. */
    double residual_c = 0.0;
    /** True when the leakage-temperature feedback diverged and the
     *  iteration had to clamp temperatures at the runaway cap; the
     *  configuration is thermally infeasible. */
    bool runaway = false;
};

/** Temperature cap used to detect leakage-thermal runaway [deg C]. */
inline constexpr double kRunawayTempC = 300.0;

/** Reusable buffers for solveCoupled(): one per thread-confined caller
 *  (the Experiment pricing loop) saves the per-call temps/power/rhs
 *  allocations of the fixed point. */
struct CoupledScratch
{
    std::vector<double> temps;
    std::vector<double> power;
    ThermalSolution sol;
    SolveScratch solve;
};

/**
 * Damped fixed-point iteration between a temperature-dependent power map
 * and the steady-state thermal solve.
 *
 * @param model         thermal solver
 * @param power_of_temp maps block temperatures [deg C] to block powers [W]
 * @param tol_c         convergence threshold on max block-temperature
 *                      change [K]
 * @param max_iter      iteration cap
 * @param damping       fraction of the new power map blended in per step
 */
CoupledResult solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c = 0.01, int max_iter = 100, double damping = 0.7);

/** solveCoupled() with caller-owned scratch buffers; bit-identical to
 *  the overload above, minus its per-call allocations. */
CoupledResult solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    CoupledScratch& scratch, double tol_c = 0.01, int max_iter = 100,
    double damping = 0.7);

/**
 * Anderson(m=1)-accelerated variant of the coupled fixed point (secant
 * extrapolation on the temperature iterates, safeguarded: a step that
 * extrapolates out of [ambient, runaway cap] or goes non-finite falls
 * back to a plain undamped step). Converges in far fewer iterations on
 * the oscillating points near the leakage knee where the damped
 * iteration crawls. Used by the Experiment pricing ladder as a rescue
 * rung between the historical damped default and the heavy-damping
 * fallbacks, so converging points keep their exact legacy trajectory.
 */
CoupledResult solveCoupledAccelerated(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c = 0.01, int max_iter = 100);

} // namespace tlp::thermal

#endif // TLP_THERMAL_RC_MODEL_HPP
