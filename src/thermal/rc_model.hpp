/**
 * @file
 * Steady-state compact thermal RC network (the HotSpot stand-in).
 *
 * Each floorplan block is one thermal node. Heat leaves a node two ways:
 *
 *  - vertically through die, spreader, and sink to ambient, with a
 *    conductance proportional to block area
 *    (G_v = area / r_vertical_specific);
 *  - laterally to abutting blocks through silicon + spreader, with a
 *    conductance proportional to the shared edge length
 *    (G_l = k_lateral * t_eff * edge / center_distance).
 *
 * Steady state solves the linear system
 *    sum_j G_l,ij (T_i - T_j) + G_v,i (T_i - T_amb) = P_i
 * for the block temperatures. The coupling with temperature-dependent
 * leakage power is handled by solveCoupled(), a damped fixed-point
 * iteration (power -> temperature -> power ...), exactly the loop the paper
 * runs between its power model and HotSpot.
 */

#ifndef TLP_THERMAL_RC_MODEL_HPP
#define TLP_THERMAL_RC_MODEL_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "thermal/floorplan.hpp"
#include "util/linalg.hpp"
#include "util/sparse_cholesky.hpp"

namespace tlp::thermal {

/**
 * Which factored solver backs the steady-state solves.
 *
 * Auto resolves through the TLPPM_THERMAL_SOLVER environment variable:
 * unset/"sparse" selects the sparse Cholesky (the default — the
 * conductance matrix is SPD and floorplan-sparse), "dense" the historical
 * dense LU, kept selectable for differential testing.
 */
enum class ThermalSolverKind {
    Auto,
    Dense,
    Sparse,
};

/** Stable name of a resolved solver kind: "dense-lu" / "sparse-cholesky". */
const char* thermalSolverName(ThermalSolverKind kind);

/** Package/material constants of the RC network. */
struct RCParams
{
    double ambient_c = 45.0;  ///< in-box ambient air temperature [deg C]
    /** Area-specific vertical thermal resistance die->heat sink
     *  [K*m^2/W]; calibrate with calibrateVertical(). */
    double r_vertical_specific = 1.25e-5;
    /** Effective lateral conductivity (silicon + spreader) [W/(m*K)]. */
    double k_lateral = 400.0;
    /** Effective lateral conduction thickness [m]. */
    double t_lateral = 2.0e-3;
    /** Convective resistance of the shared heat sink to ambient [K/W].
     *  This single shared node is what makes average die temperature track
     *  *total* chip power (as in HotSpot): spreading a fixed power budget
     *  over more cores lowers local hot spots but not the sink rise. */
    double r_convection = 0.45;
};

/** Per-run result of a steady-state solve. */
struct ThermalSolution
{
    std::vector<double> block_temps_c; ///< one temperature per block
    double avg_core_temp_c = 0.0; ///< area-weighted over core blocks only
    double max_temp_c = 0.0;      ///< hottest block
    double sink_temp_c = 0.0;     ///< shared heat-sink node temperature
};

/** Reusable scratch buffers for the steady-state solve hot path. */
struct SolveScratch
{
    std::vector<double> rhs;  ///< (blocks + sink) right-hand side
    std::vector<double> work; ///< solver workspace
};

/** Reusable scratch buffers for the multi-RHS solve hot path. */
struct BatchSolveScratch
{
    std::vector<double> rhs;  ///< interleaved (blocks + sink) x n_rhs
    std::vector<double> work; ///< solver workspace
};

/** Steady-state solver bound to one floorplan. */
class RCModel
{
  public:
    RCModel(Floorplan floorplan, RCParams params,
            ThermalSolverKind solver = ThermalSolverKind::Auto);

    /** Copies share no counters: each copy starts its solve/factorization
     *  accounting at the values of the source at copy time. */
    RCModel(const RCModel& other);
    RCModel& operator=(const RCModel& other);

    /**
     * Solve for block temperatures given per-block power [W].
     *
     * @param block_power one entry per floorplan block, in block order
     */
    ThermalSolution solve(const std::vector<double>& block_power) const;

    /**
     * Allocation-free solve for the coupled fixed point's inner loop:
     * reuses @p scratch across calls and overwrites @p sol in place.
     * Bit-identical to solve().
     */
    void solveInto(const std::vector<double>& block_power,
                   ThermalSolution& sol, SolveScratch& scratch) const;

    /**
     * Batched steady-state solve: one traversal of the cached factor
     * serves every power map (multi-RHS substitution), amortizing the
     * factor walk across the batch. powers[p] and sols[p] follow the
     * solveInto() contract; per-point arithmetic is identical to
     * solveInto() (a batch of one is bit-identical), because the per-RHS
     * substitutions perform the same operations in the same order.
     *
     * Counters: solveCount() advances by powers.size() (it counts
     * right-hand sides), solvePassCount() by one.
     */
    void solveManyInto(const std::vector<const std::vector<double>*>&
                           powers,
                       std::vector<ThermalSolution>& sols,
                       BatchSolveScratch& scratch) const;

    const Floorplan& floorplan() const { return floorplan_; }
    const RCParams& params() const { return params_; }

    /** Replace the package parameters (used by calibration). Rebuilds the
     *  conductance matrix and re-factorizes it. */
    void setParams(RCParams params);

    /** The assembled conductance matrix over (blocks..., sink) nodes;
     *  used by the transient solver. */
    const util::Matrix& conductance() const { return conductance_; }

    /** Steady-state solves performed (thread-safe, relaxed). */
    std::uint64_t solveCount() const
    {
        return solves_.load(std::memory_order_relaxed);
    }

    /** Numeric factorizations performed: one per floorplan/params change,
     *  not one per solve — the HotSpot-style factor-once optimization
     *  this counter makes auditable. Counts dense LU and sparse numeric
     *  refactorizations alike. */
    std::uint64_t factorizationCount() const
    {
        return factorizations_.load(std::memory_order_relaxed);
    }

    /** Factor traversals performed: a batched solve of B right-hand
     *  sides is one pass, a scalar solve is one pass of one RHS.
     *  solveCount() / solvePassCount() is the batching amortization. */
    std::uint64_t solvePassCount() const
    {
        return solve_passes_.load(std::memory_order_relaxed);
    }

    /** Largest right-hand-side batch served by one factor traversal. */
    std::uint64_t maxBatchRhs() const
    {
        return max_batch_rhs_.load(std::memory_order_relaxed);
    }

    /** Symbolic analyses of the sparse factorization — stays at 1 across
     *  any number of setParams() refactorizations (the pattern is fixed
     *  per floorplan). Always 0 for the dense solver. */
    std::uint64_t symbolicAnalysisCount() const
    {
        return solver_ == ThermalSolverKind::Sparse
            ? cholesky_.symbolicAnalyses()
            : 0;
    }

    /** Structural fill-in of the sparse factor (nonzeros of L beyond the
     *  assembled lower triangle); 0 for the dense solver, whose factor is
     *  always fully dense. */
    std::uint64_t fillInNnz() const
    {
        return solver_ == ThermalSolverKind::Sparse ? cholesky_.fillIn()
                                                    : 0;
    }

    /** The resolved solver kind (never Auto). */
    ThermalSolverKind solverKind() const { return solver_; }
    /** Stable solver name for logs and --cache-stats lines. */
    const char* solverName() const { return thermalSolverName(solver_); }

  private:
    void buildConductance();
    /** Shared epilogue of solveInto()/solveManyInto(): read the solved
     *  temperature rises at @p stride (interleaved batches read their
     *  own column) and fill @p sol. Identical arithmetic per point. */
    void fillSolution(const double* rise, std::size_t stride,
                      ThermalSolution& sol) const;

    Floorplan floorplan_;
    RCParams params_;
    ThermalSolverKind solver_; ///< resolved: Dense or Sparse
    util::Matrix conductance_; ///< G of the linear system G T' = P
    /** Cached factorization of conductance_ (one of the two below is
     *  live, per solver_): rebuilt only by buildConductance()
     *  (construction and setParams), so every solve is a substitution
     *  against the cached factor instead of a fresh elimination. */
    util::LuFactorization lu_;
    /** Sparse Cholesky with its fill-reducing ordering and symbolic
     *  pattern computed once per floorplan; setParams() refactorizes
     *  numerically against the cached symbolic analysis. */
    util::SparseCholesky cholesky_;
    /** Relaxed atomics: solve() runs concurrently on shared const models
     *  (the analytic figure benches fan one model across a pool). */
    mutable std::atomic<std::uint64_t> solves_{0};
    mutable std::atomic<std::uint64_t> solve_passes_{0};
    mutable std::atomic<std::uint64_t> max_batch_rhs_{0};
    std::atomic<std::uint64_t> factorizations_{0};
};

/**
 * Calibrate RCParams::r_vertical_specific so that the given power map
 * produces the target area-weighted average core temperature (the paper
 * anchors the single-core full-throttle configuration at T1 = 100 C).
 *
 * @return the calibrated parameter value (also set in @p model)
 */
double calibrateVertical(RCModel& model,
                         const std::vector<double>& block_power,
                         double target_avg_core_temp_c);

/**
 * Generalized calibration: adjust r_vertical_specific until
 * @p metric(solution) reaches @p target. The metric must be monotone
 * increasing in the vertical resistance (any temperature average is).
 */
double calibrateVertical(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target);

/**
 * Full package calibration: split the temperature rise of the reference
 * power map between the shared heat sink and the local die paths.
 *
 * Sets r_convection so the sink carries @p sink_fraction of
 * (target - ambient) at the reference map's total power, then calibrates
 * r_vertical_specific so @p metric hits @p target exactly.
 *
 * @param sink_fraction share of the rise attributed to the shared sink;
 *        higher values make average die temperature track total chip power
 *        more strongly (HotSpot-like behaviour).
 */
void calibratePackage(
    RCModel& model, const std::vector<double>& block_power,
    const std::function<double(const ThermalSolution&)>& metric,
    double target, double sink_fraction = 0.6);

/** Result of the coupled power/temperature fixed point. */
struct CoupledResult
{
    ThermalSolution thermal;
    std::vector<double> block_power; ///< converged power map [W]
    double total_power = 0.0;        ///< sum of block powers [W]
    int iterations = 0;
    bool converged = false;
    /** Last max block-temperature change [K]; the convergence residual a
     *  non-converged solve reports upward. */
    double residual_c = 0.0;
    /** True when the leakage-temperature feedback diverged and the
     *  iteration had to clamp temperatures at the runaway cap; the
     *  configuration is thermally infeasible. */
    bool runaway = false;
};

/** Temperature cap used to detect leakage-thermal runaway [deg C]. */
inline constexpr double kRunawayTempC = 300.0;

/** Reusable buffers for solveCoupled(): one per thread-confined caller
 *  (the Experiment pricing loop) saves the per-call temps/power/rhs
 *  allocations of the fixed point. */
struct CoupledScratch
{
    std::vector<double> temps;
    std::vector<double> power;
    ThermalSolution sol;
    SolveScratch solve;
};

/**
 * Damped fixed-point iteration between a temperature-dependent power map
 * and the steady-state thermal solve.
 *
 * @param model         thermal solver
 * @param power_of_temp maps block temperatures [deg C] to block powers [W]
 * @param tol_c         convergence threshold on max block-temperature
 *                      change [K]
 * @param max_iter      iteration cap
 * @param damping       fraction of the new power map blended in per step
 */
CoupledResult solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c = 0.01, int max_iter = 100, double damping = 0.7);

/** solveCoupled() with caller-owned scratch buffers; bit-identical to
 *  the overload above, minus its per-call allocations. */
CoupledResult solveCoupled(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    CoupledScratch& scratch, double tol_c = 0.01, int max_iter = 100,
    double damping = 0.7);

/**
 * Anderson(m=1)-accelerated variant of the coupled fixed point (secant
 * extrapolation on the temperature iterates, safeguarded: a step that
 * extrapolates out of [ambient, runaway cap] or goes non-finite falls
 * back to a plain undamped step). Converges in far fewer iterations on
 * the oscillating points near the leakage knee where the damped
 * iteration crawls. Used by the Experiment pricing ladder as a rescue
 * rung between the historical damped default and the heavy-damping
 * fallbacks, so converging points keep their exact legacy trajectory.
 */
CoupledResult solveCoupledAccelerated(
    const RCModel& model,
    const std::function<std::vector<double>(const std::vector<double>&)>&
        power_of_temp,
    double tol_c = 0.01, int max_iter = 100);

/**
 * Power-map callback of the batched coupled fixed point: write point
 * @p point's block powers for temperatures @p temps_c into @p power_out
 * (pre-sized to the block count). Must compute exactly what the scalar
 * power_of_temp would for that point — the batched iteration's
 * per-point byte-identity rests on it.
 */
using BatchPowerFn = std::function<void(
    std::size_t point, const std::vector<double>& temps_c,
    std::vector<double>& power_out)>;

/** Reusable buffers for solveCoupledBatch(); one per thread-confined
 *  caller. Allocation scales with the batch width, so a caller pricing
 *  whole V/f grids reuses the grid-sized buffers across calls. */
struct CoupledBatchScratch
{
    std::vector<std::vector<double>> temps; ///< per-point iterates
    std::vector<std::vector<double>> power; ///< per-point blended maps
    std::vector<double> new_power;          ///< per-point callback output
    std::vector<ThermalSolution> sols;      ///< per-point last solve
    std::vector<std::size_t> active;        ///< unconverged point indices
    std::vector<const std::vector<double>*> batch_powers;
    std::vector<ThermalSolution> batch_sols;
    BatchSolveScratch solve;
};

/**
 * Batched damped fixed point: @p n_points operating points iterate in
 * lockstep, their steady-state solves gathered into one multi-RHS
 * substitution per iteration (converged points drop out of the batch).
 *
 * Per point, the arithmetic is exactly solveCoupled()'s: same initial
 * temperatures, same damping blend, same runaway clamp, same convergence
 * test, in the same order. A batch of one is bit-identical to the scalar
 * iteration, and point p of any batch is bit-identical to solving p
 * alone — batching changes only which factor traversal carries the
 * solve, never the values.
 */
std::vector<CoupledResult> solveCoupledBatch(
    const RCModel& model, std::size_t n_points, const BatchPowerFn& fn,
    CoupledBatchScratch& scratch, double tol_c = 0.01, int max_iter = 100,
    double damping = 0.7);

} // namespace tlp::thermal

#endif // TLP_THERMAL_RC_MODEL_HPP
