#include "thermal/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace tlp::thermal {

namespace {

/** Overlap length of 1-D intervals [a0, a1] and [b0, b1]. */
double
overlap1d(double a0, double a1, double b0, double b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

constexpr double kAbutEps = 1e-9; // metres; tolerance for "touching" edges

} // namespace

double
Block::sharedEdge(const Block& other) const
{
    // Vertical abutment (this right edge on other's left edge or vice
    // versa): shared length is the y-overlap.
    if (std::fabs((x + w) - other.x) < kAbutEps ||
        std::fabs((other.x + other.w) - x) < kAbutEps) {
        return overlap1d(y, y + h, other.y, other.y + other.h);
    }
    // Horizontal abutment: shared length is the x-overlap.
    if (std::fabs((y + h) - other.y) < kAbutEps ||
        std::fabs((other.y + other.h) - y) < kAbutEps) {
        return overlap1d(x, x + w, other.x, other.x + other.w);
    }
    return 0.0;
}

const std::vector<UnitFraction>&
ev6BlockFractions()
{
    // HotSpot's default ev6.flp, blocks merged slightly and areas rounded
    // to fractions of the core tile; fractions sum to 1.
    static const std::vector<UnitFraction> fractions = {
        {"icache", 0.14}, {"dcache", 0.14}, {"bpred", 0.06},
        {"itb", 0.02},    {"dtb", 0.02},    {"intexec", 0.12},
        {"intreg", 0.06}, {"intq", 0.05},   {"intmap", 0.04},
        {"fpadd", 0.06},  {"fpmul", 0.06},  {"fpreg", 0.04},
        {"fpq", 0.03},    {"fpmap", 0.03},  {"ldstq", 0.06},
        {"clock", 0.07},
    };
    return fractions;
}

void
Floorplan::addBlock(Block block)
{
    if (block.w <= 0.0 || block.h <= 0.0)
        util::fatal(util::strcatMsg("Floorplan: block '", block.name,
                                    "' has non-positive dimensions"));
    if (has(block.name))
        util::fatal(util::strcatMsg("Floorplan: duplicate block '",
                                    block.name, "'"));
    blocks_.push_back(std::move(block));
}

std::size_t
Floorplan::indexOf(const std::string& name) const
{
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].name == name)
            return i;
    }
    util::fatal(util::strcatMsg("Floorplan: no block named '", name, "'"));
}

bool
Floorplan::has(const std::string& name) const
{
    return std::any_of(blocks_.begin(), blocks_.end(),
                       [&](const Block& b) { return b.name == name; });
}

std::vector<std::size_t>
Floorplan::blocksOfCore(int core_id) const
{
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        if (blocks_[i].core_id == core_id)
            indices.push_back(i);
    }
    return indices;
}

double
Floorplan::totalArea() const
{
    double area = 0.0;
    for (const Block& b : blocks_)
        area += b.area();
    return area;
}

double
Floorplan::coreArea() const
{
    double area = 0.0;
    for (const Block& b : blocks_) {
        if (b.core_id >= 0)
            area += b.area();
    }
    return area;
}

namespace {

/**
 * Pack the EV6 unit fractions into a core tile at (x0, y0) with dimensions
 * (w, h) as a brick wall of 4 rows, appending blocks to @p plan.
 */
void
packCoreBlocks(Floorplan& plan, int core_id, double x0, double y0, double w,
               double h)
{
    const auto& units = ev6BlockFractions();
    constexpr int n_rows = 4;
    const double row_h = h / n_rows;

    // Greedily split the units into n_rows groups of ~equal total fraction.
    std::vector<std::vector<UnitFraction>> rows(n_rows);
    std::vector<double> row_fill(n_rows, 0.0);
    int row = 0;
    double target = 1.0 / n_rows;
    for (const UnitFraction& u : units) {
        if (row < n_rows - 1 && row_fill[row] >= target) {
            ++row;
        }
        rows[row].push_back(u);
        row_fill[row] += u.fraction;
    }

    const std::string prefix = "core" + std::to_string(core_id) + ".";
    for (int r = 0; r < n_rows; ++r) {
        double x = x0;
        const double row_fraction = row_fill[r];
        for (const UnitFraction& u : rows[r]) {
            Block b;
            b.name = prefix + u.name;
            b.core_id = core_id;
            b.x = x;
            b.y = y0 + r * row_h;
            b.w = w * (u.fraction / row_fraction);
            b.h = row_h;
            x += b.w;
            plan.addBlock(std::move(b));
        }
    }
}

} // namespace

Floorplan
makeTiledCmp(int total_cores, double core_area_m2, double l2_area_m2,
             bool per_core_blocks)
{
    if (total_cores <= 0)
        util::fatal("makeTiledCmp: need at least one core");
    if (core_area_m2 <= 0.0 || l2_area_m2 < 0.0)
        util::fatal("makeTiledCmp: invalid areas");

    // Tile cores in a near-square grid.
    const int cols = static_cast<int>(
        std::ceil(std::sqrt(static_cast<double>(total_cores))));
    const int rows = (total_cores + cols - 1) / cols;

    const double tile_side = std::sqrt(core_area_m2);
    const double chip_w = cols * tile_side;
    const double l2_h = l2_area_m2 > 0.0 ? l2_area_m2 / chip_w : 0.0;

    Floorplan plan;
    if (l2_area_m2 > 0.0) {
        Block l2;
        l2.name = "L2";
        l2.core_id = -1;
        l2.x = 0.0;
        l2.y = 0.0;
        l2.w = chip_w;
        l2.h = l2_h;
        plan.addBlock(std::move(l2));
    }

    for (int core = 0; core < total_cores; ++core) {
        const int r = core / cols;
        const int c = core % cols;
        const double x0 = c * tile_side;
        const double y0 = l2_h + r * tile_side;
        if (per_core_blocks) {
            packCoreBlocks(plan, core, x0, y0, tile_side, tile_side);
        } else {
            Block b;
            b.name = "core" + std::to_string(core);
            b.core_id = core;
            b.x = x0;
            b.y = y0;
            b.w = tile_side;
            b.h = tile_side;
            plan.addBlock(std::move(b));
        }
    }
    // Unused grid slots in the last row simply stay empty; the RC model
    // only connects blocks that exist.
    (void)rows;
    return plan;
}

} // namespace tlp::thermal
