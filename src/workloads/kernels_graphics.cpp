/**
 * @file
 * Graphics members of the suite (Raytrace, Volrend, Radiosity) and the
 * power-calibration microbenchmark.
 */

#include "workloads/workload.hpp"

#include "util/rng.hpp"
#include "workloads/common.hpp"

namespace tlp::workloads {

using sim::Program;
using sim::ThreadProgram;
using util::Rng;

Program
makeRaytrace(int n_threads, double scale)
{
    // Paper: "car" scene. Rays traverse a 2 MB scene structure with a hot
    // upper BVH region and colder leaf geometry; tiles of rays are grabbed
    // from a dynamic task queue.
    const std::uint64_t n_rays = scaled(16384, scale, 256);
    constexpr std::uint64_t kRaysPerTile = 64;
    const std::uint64_t n_tiles = n_rays / kRaysPerTile + 1;
    const std::uint64_t scene_lines = 32768; // 2 MB
    const std::uint64_t hot_lines = 2048;    // 128 KB BVH top

    AddressSpace mem;
    const sim::Addr scene = mem.alloc(scene_lines * kLine);
    const sim::Addr image = mem.alloc(n_rays * 8);
    const sim::Addr queue_head = mem.alloc(kLine);

    Program prog;
    prog.threads.resize(n_threads);

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed("raytrace", t));
        taskQueue(tp, t, n_threads, n_tiles, /*queue_lock=*/0, queue_head,
                  [&](std::uint64_t tile) {
                      for (std::uint64_t r = 0; r < kRaysPerTile; ++r) {
                          const int depth = 8 + static_cast<int>(
                              rng.below(10));
                          for (int d = 0; d < depth; ++d) {
                              const std::uint64_t line = rng.chance(0.7)
                                  ? rng.below(hot_lines)
                                  : rng.below(scene_lines);
                              tp.load(scene + line * kLine);
                              tp.fpOps(24);
                          }
                          tp.store(image +
                                   (tile * kRaysPerTile + r) % n_rays * 8);
                      }
                  });
        tp.barrier(0);
        tp.finish();
    }
    prog.n_barriers = 1;
    prog.n_locks = 1;
    return prog;
}

Program
makeVolrend(int n_threads, double scale)
{
    // Paper: "head" volume. Ray casting with strongly variable ray
    // lengths (empty-space skipping), which makes load imbalance the
    // dominant efficiency limiter at high core counts.
    const std::uint64_t n_rays = scaled(12288, scale, 256);
    constexpr std::uint64_t kRaysPerTile = 48;
    const std::uint64_t n_tiles = n_rays / kRaysPerTile + 1;
    const std::uint64_t volume_lines = 16384; // 1 MB

    AddressSpace mem;
    const sim::Addr volume = mem.alloc(volume_lines * kLine);
    const sim::Addr image = mem.alloc(n_rays * 8);
    const sim::Addr queue_head = mem.alloc(kLine);

    Program prog;
    prog.threads.resize(n_threads);

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed("volrend", t));
        taskQueue(tp, t, n_threads, n_tiles, /*queue_lock=*/0, queue_head,
                  [&](std::uint64_t tile) {
                      // Whole tiles vary widely in cost (opaque vs empty
                      // image regions).
                      const bool heavy = (tile % 5) < 2;
                      for (std::uint64_t r = 0; r < kRaysPerTile; ++r) {
                          const int steps = heavy
                              ? 20 + static_cast<int>(rng.below(16))
                              : 2 + static_cast<int>(rng.below(5));
                          std::uint64_t line = rng.below(volume_lines);
                          for (int s = 0; s < steps; ++s) {
                              tp.load(volume + line * kLine);
                              tp.fpOps(8);
                              line = (line + 9) % volume_lines;
                          }
                          tp.store(image +
                                   (tile * kRaysPerTile + r) % n_rays * 8);
                      }
                  });
        tp.barrier(0);
        tp.finish();
    }
    prog.n_barriers = 1;
    prog.n_locks = 1;
    return prog;
}

Program
makeRadiosity(int n_threads, double scale)
{
    // Paper: "room -ae 5000.0 -en 0.05 -bf 0.1". Iterative hierarchical
    // radiosity: interaction tasks read two patches and accumulate energy
    // into shared patch records under hashed locks; a serial task-
    // generation step precedes each iteration.
    const std::uint64_t n_patches = scaled(2048, scale, 64);
    const std::uint64_t n_interactions = scaled(4096, scale, 128);
    constexpr int kIterations = 2;
    constexpr std::uint64_t kPatchLocks = 32;

    AddressSpace mem;
    const sim::Addr patches = mem.alloc(n_patches * 4 * kLine);
    const sim::Addr queue_head = mem.alloc(kLine);

    Program prog;
    prog.threads.resize(n_threads);

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed("radiosity", t));
        Rng pairs(workloadSeed("radiosity-pairs", 0)); // shared pairing
        std::uint64_t bid = 0;

        for (int iter = 0; iter < kIterations; ++iter) {
            if (t == 0) {
                // Serial visibility/task generation.
                for (std::uint64_t i = 0; i < n_interactions / 4; ++i) {
                    tp.load(patches + (i % n_patches) * 4 * kLine);
                    tp.intOps(16);
                }
            }
            tp.barrier(bid++);

            taskQueue(tp, t, n_threads, n_interactions, /*queue_lock=*/0,
                      queue_head, [&](std::uint64_t task) {
                          (void)task;
                          const std::uint64_t i = pairs.below(n_patches);
                          const std::uint64_t j = pairs.below(n_patches);
                          loadRegion(tp, patches + i * 4 * kLine,
                                     4 * kLine);
                          loadRegion(tp, patches + j * 4 * kLine,
                                     4 * kLine);
                          tp.fpOps(64 +
                                   static_cast<std::uint32_t>(
                                       rng.below(64)));
                          tp.lock(400 + i % kPatchLocks);
                          tp.load(patches + i * 4 * kLine);
                          tp.fpOps(8);
                          tp.store(patches + i * 4 * kLine);
                          tp.unlock(400 + i % kPatchLocks);
                      });
            tp.barrier(bid++);
        }
        tp.finish();
    }
    prog.n_barriers = 2 * kIterations;
    prog.n_locks = 1 + kPatchLocks;
    return prog;
}

Program
makePowerVirus(int n_threads, double scale)
{
    // Compute-bound calibration kernel (§3.3): saturates integer and FP
    // issue with an L1-resident working set, recreating a quasi-maximum
    // dynamic power scenario at nominal V/f.
    const std::uint64_t iterations = scaled(200000, scale, 1024);
    constexpr std::uint64_t kBufferLines = 256; // 16 KB, L1-resident

    AddressSpace mem;
    Program prog;
    prog.threads.resize(n_threads);
    for (int t = 0; t < n_threads; ++t) {
        const sim::Addr buffer = mem.alloc(kBufferLines * kLine);
        ThreadProgram& tp = prog.threads[t];
        for (std::uint64_t i = 0; i < iterations; ++i) {
            tp.load(buffer + (i % kBufferLines) * kLine);
            tp.intOps(10);
            tp.fpOps(5);
            tp.store(buffer + ((i * 7 + 1) % kBufferLines) * kLine);
        }
        tp.finish();
    }
    return prog;
}

} // namespace tlp::workloads
