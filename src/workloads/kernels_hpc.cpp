/**
 * @file
 * Scientific-computation members of the suite: Barnes-Hut, FMM, Ocean,
 * and the two Water codes.
 */

#include "workloads/workload.hpp"

#include "util/rng.hpp"
#include "workloads/common.hpp"

namespace tlp::workloads {

using sim::Program;
using sim::ThreadProgram;
using util::Rng;

namespace {

/**
 * Shared skeleton of the two hierarchical N-body codes (Barnes-Hut and
 * FMM). Both build a shared tree (lock-protected inserts), then compute
 * forces by walking cells; FMM performs far more floating-point work per
 * visited cell (multipole evaluations), which is exactly the contrast the
 * paper exploits (FMM is its most compute-intensive application).
 */
Program
nbody(const char* name, std::uint64_t n_particles, int cells_per_body,
      int fp_per_cell, int n_threads)
{
    AddressSpace mem;
    const sim::Addr bodies = mem.alloc(n_particles * 128);
    const std::uint64_t n_cells = n_particles / 4 + 64;
    const sim::Addr tree = mem.alloc(n_cells * 128);
    constexpr std::uint64_t kTreeLocks = 64;

    // Two timesteps: the first warms the caches (the paper skips
    // initialization before measuring), the second exercises steady-state
    // behaviour.
    constexpr int kTimesteps = 2;

    Program prog;
    prog.threads.resize(n_threads);

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed(name, t));
        std::uint64_t bid = 0;

        for (int step = 0; step < kTimesteps; ++step) {
            // Phase 1: tree build. Each thread inserts its bodies;
            // inserts on the same subtree serialize on hashed cell locks.
            for (std::uint64_t i = t; i < n_particles;
                 i += static_cast<std::uint64_t>(n_threads)) {
                tp.load(bodies + i * 128);
                const std::uint64_t cell = rng.below(n_cells);
                tp.lock(100 + cell % kTreeLocks);
                tp.load(tree + cell * 128);
                tp.intOps(12);
                tp.store(tree + cell * 128);
                tp.unlock(100 + cell % kTreeLocks);
            }
            tp.barrier(bid++);

            // Phase 2: center-of-mass / multipole pass up the tree (read
            // mostly, a slice per thread).
            for (std::uint64_t c = t; c < n_cells;
                 c += static_cast<std::uint64_t>(n_threads)) {
                tp.load(tree + c * 128);
                tp.fpOps(8);
            }
            tp.barrier(bid++);

            // Phase 3: force computation. Walks favour the top of the
            // tree (good reuse) with excursions into leaves.
            for (std::uint64_t i = t; i < n_particles;
                 i += static_cast<std::uint64_t>(n_threads)) {
                tp.load(bodies + i * 128);
                tp.load(bodies + i * 128 + 64);
                for (int c = 0; c < cells_per_body; ++c) {
                    const bool deep = rng.chance(0.4);
                    const std::uint64_t cell = deep
                        ? rng.below(n_cells)
                        : rng.below(n_cells / 16 + 1);
                    tp.load(tree + cell * 128);
                    tp.fpOps(static_cast<std::uint32_t>(fp_per_cell));
                }
                tp.store(bodies + i * 128);
            }
            tp.barrier(bid++);
        }
        tp.finish();
    }
    prog.n_barriers = 3 * kTimesteps;
    prog.n_locks = kTreeLocks;
    return prog;
}

} // namespace

Program
makeBarnes(int n_threads, double scale)
{
    // Paper: 16K particles. Scaled default: 8K.
    return nbody("barnes", scaled(8192, scale, 64), 18, 9, n_threads);
}

Program
makeFmm(int n_threads, double scale)
{
    // Paper: 16K particles. Scaled default: 4K with heavy multipole math.
    return nbody("fmm", scaled(4096, scale, 64), 14, 44, n_threads);
}

Program
makeOcean(int n_threads, double scale)
{
    // Paper: 514x514 ocean; simulated at full size. Two grids of doubles
    // (4.2 MB combined, exceeding the 4 MB L2) relaxed with red-black
    // sweeps; rows are block-partitioned and boundary rows are shared
    // between neighbouring threads.
    const std::uint64_t n =
        scaled(514, scale < 1.0 ? scale : 1.0, 34);
    const std::uint64_t row_bytes = n * 8;
    AddressSpace mem;
    const sim::Addr grid_a = mem.alloc(n * row_bytes);
    const sim::Addr grid_b = mem.alloc(n * row_bytes);
    constexpr int kIterations = 2;

    Program prog;
    prog.threads.resize(n_threads);

    const std::uint64_t rows_per_thread = (n - 2) / n_threads + 1;
    std::uint64_t barrier_id = 0;

    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        const std::uint64_t row_lo = 1 + t * rows_per_thread;
        const std::uint64_t row_hi =
            std::min<std::uint64_t>(n - 1, row_lo + rows_per_thread);

        std::uint64_t bid = barrier_id;
        for (int iter = 0; iter < kIterations; ++iter) {
            for (int colour = 0; colour < 2; ++colour) {
                const sim::Addr src = (iter % 2 == 0) ? grid_a : grid_b;
                const sim::Addr dst = (iter % 2 == 0) ? grid_b : grid_a;
                for (std::uint64_t r = row_lo; r < row_hi; ++r) {
                    if (static_cast<int>(r % 2) != colour)
                        continue;
                    // Line-granular 5-point stencil over the row.
                    for (std::uint64_t off = 0; off < row_bytes;
                         off += kLine) {
                        tp.load(src + (r - 1) * row_bytes + off);
                        tp.load(src + r * row_bytes + off);
                        tp.load(src + (r + 1) * row_bytes + off);
                        tp.fpOps(48); // 6 flops x 8 points per line
                        tp.store(dst + r * row_bytes + off);
                    }
                }
                tp.barrier(bid++);
            }
        }
        tp.finish();
    }
    prog.n_barriers = 2 * kIterations;
    return prog;
}

namespace {

/** Molecule record size: position, velocity, force (two lines). */
constexpr std::uint64_t kMolBytes = 128;

} // namespace

Program
makeWaterNsq(int n_threads, double scale)
{
    // Paper: 512 molecules, O(n^2) pairwise interactions. Threads own
    // interleaved rows of the pair triangle (balanced); forces accumulate
    // into shared per-molecule records under hashed locks.
    const std::uint64_t n_mol = scaled(512, scale, 32);
    AddressSpace mem;
    const sim::Addr mol = mem.alloc(n_mol * kMolBytes);
    constexpr std::uint64_t kForceLocks = 64;

    Program prog;
    prog.threads.resize(n_threads);

    constexpr int kTimesteps = 2;
    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        std::uint64_t bid = 0;
        for (int step = 0; step < kTimesteps; ++step) {
            for (std::uint64_t i = t; i < n_mol;
                 i += static_cast<std::uint64_t>(n_threads)) {
                tp.load(mol + i * kMolBytes);
                for (std::uint64_t j = i + 1; j < n_mol; ++j) {
                    tp.load(mol + j * kMolBytes);
                    tp.fpOps(12);
                }
                // Accumulate the force on molecule i.
                tp.lock(200 + i % kForceLocks);
                tp.load(mol + i * kMolBytes + 64);
                tp.fpOps(6);
                tp.store(mol + i * kMolBytes + 64);
                tp.unlock(200 + i % kForceLocks);
            }
            tp.barrier(bid++);
            // Integration step over owned molecules.
            for (std::uint64_t i = t; i < n_mol;
                 i += static_cast<std::uint64_t>(n_threads)) {
                tp.load(mol + i * kMolBytes + 64);
                tp.fpOps(16);
                tp.store(mol + i * kMolBytes);
            }
            tp.barrier(bid++);
        }
        tp.finish();
    }
    prog.n_barriers = 2 * kTimesteps;
    prog.n_locks = kForceLocks;
    return prog;
}

Program
makeWaterSp(int n_threads, double scale)
{
    // Paper: 512 molecules with a spatial cell grid: only neighbouring
    // cells interact, giving far better locality and scalability than
    // Water-Nsq.
    const std::uint64_t n_mol = scaled(512, scale, 64);
    constexpr std::uint64_t kCellSide = 8;
    const std::uint64_t n_cells = kCellSide * kCellSide * kCellSide;
    const std::uint64_t mol_per_cell = n_mol / n_cells + 1;

    AddressSpace mem;
    const sim::Addr mol = mem.alloc(n_mol * kMolBytes);
    constexpr std::uint64_t kForceLocks = 64;

    Program prog;
    prog.threads.resize(n_threads);

    constexpr int kTimesteps = 3;
    for (int t = 0; t < n_threads; ++t) {
        ThreadProgram& tp = prog.threads[t];
        Rng rng(workloadSeed("water-sp", t));
        std::uint64_t bid = 0;
        for (int step = 0; step < kTimesteps; ++step) {
            for (std::uint64_t cell = t; cell < n_cells;
                 cell += static_cast<std::uint64_t>(n_threads)) {
                // Molecules of this cell interact with ~13 neighbour
                // cells (half shell); cell-major layout keeps accesses
                // local.
                for (std::uint64_t m = 0; m < mol_per_cell; ++m) {
                    const std::uint64_t i =
                        (cell * mol_per_cell + m) % n_mol;
                    tp.load(mol + i * kMolBytes);
                    for (int nb = 0; nb < 13; ++nb) {
                        const std::uint64_t j =
                            (i + 1 + rng.below(mol_per_cell * 3 + 1)) %
                            n_mol;
                        tp.load(mol + j * kMolBytes);
                        tp.fpOps(12);
                    }
                    tp.lock(300 + i % kForceLocks);
                    tp.load(mol + i * kMolBytes + 64);
                    tp.fpOps(6);
                    tp.store(mol + i * kMolBytes + 64);
                    tp.unlock(300 + i % kForceLocks);
                }
            }
            tp.barrier(bid++);
            for (std::uint64_t i = t; i < n_mol;
                 i += static_cast<std::uint64_t>(n_threads)) {
                tp.load(mol + i * kMolBytes + 64);
                tp.fpOps(16);
                tp.store(mol + i * kMolBytes);
            }
            tp.barrier(bid++);
        }
        tp.finish();
    }
    prog.n_barriers = 2 * kTimesteps;
    prog.n_locks = kForceLocks;
    return prog;
}

} // namespace tlp::workloads
