#include "workloads/common.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hpp"

namespace tlp::workloads {

std::uint64_t
scaled(std::uint64_t count, double scale, std::uint64_t floor)
{
    if (scale <= 0.0 || scale > 1.0)
        util::fatal("workloads: scale must be in (0, 1]");
    const auto value =
        static_cast<std::uint64_t>(std::llround(count * scale));
    return std::max(floor, value);
}

void
loadRegion(sim::ThreadProgram& tp, sim::Addr addr, std::uint64_t bytes)
{
    const sim::Addr first = addr / kLine * kLine;
    const sim::Addr last = (addr + bytes + kLine - 1) / kLine * kLine;
    for (sim::Addr a = first; a < last; a += kLine)
        tp.load(a);
}

void
storeRegion(sim::ThreadProgram& tp, sim::Addr addr, std::uint64_t bytes)
{
    const sim::Addr first = addr / kLine * kLine;
    const sim::Addr last = (addr + bytes + kLine - 1) / kLine * kLine;
    for (sim::Addr a = first; a < last; a += kLine)
        tp.store(a);
}

void
taskQueue(sim::ThreadProgram& tp, int thread, int n_threads,
          std::uint64_t n_tasks, std::uint64_t queue_lock,
          sim::Addr queue_head,
          const std::function<void(std::uint64_t)>& body)
{
    for (std::uint64_t task = 0; task < n_tasks; ++task) {
        if (static_cast<int>(task % n_threads) != thread)
            continue;
        tp.lock(queue_lock);
        tp.load(queue_head);
        tp.intOps(4);
        tp.store(queue_head);
        tp.unlock(queue_lock);
        body(task);
    }
}

std::uint64_t
workloadSeed(const char* name, int thread)
{
    // FNV-1a over the name, mixed with the thread index.
    std::uint64_t hash = 1469598103934665603ull;
    for (const char* p = name; *p; ++p) {
        hash ^= static_cast<std::uint64_t>(*p);
        hash *= 1099511628211ull;
    }
    return hash ^ (0x9e3779b97f4a7c15ull * (thread + 1));
}

} // namespace tlp::workloads
